#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, all tests.
# This is what CI runs; keep it green before merging.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip fmt/clippy (compile + test only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

step() { printf '\n==> %s\n' "$*"; }

if [ "$quick" -eq 0 ]; then
    step "cargo fmt --check"
    cargo fmt --all -- --check

    step "cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

step "cargo build --release"
cargo build --release

step "cargo test (workspace)"
cargo test --workspace -q

step "cargo test (tier-1: facade crate)"
cargo test -q

# Seeded chaos sweep: the workspace test run above already covers the
# default 100-seed sweep once; this dedicated pass widens/narrows it via
# GDP_SIM_SEEDS and, on failure, surfaces the failing seed with an exact
# replay command (every panic in the chaos suite leads with GDP_SIM_SEED=<n>).
sweep="${GDP_SIM_SEEDS:-50}"
step "chaos seed sweep ($sweep seeds)"
sweep_log="$(mktemp)"
if ! GDP_SIM_SEEDS="$sweep" cargo test -p gdp-sim --test chaos seed_sweep -- --nocapture 2>&1 \
        | tee "$sweep_log"; then
    seed="$(grep -oE 'GDP_SIM_SEED=[0-9]+' "$sweep_log" | head -n1 || true)"
    rm -f "$sweep_log"
    printf '\n!!! chaos sweep FAILED'
    if [ -n "$seed" ]; then
        printf ' at %s — replay deterministically with:\n' "$seed"
        printf '!!!   %s cargo test -p gdp-sim --test chaos -- seed_sweep\n' "$seed"
        printf '!!!   (add GDP_SIM_DEBUG=1 to narrate every client event)\n'
    else
        printf ' — see output above\n'
    fi
    exit 1
fi
rm -f "$sweep_log"

step "OK"

#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, all tests.
# This is what CI runs; keep it green before merging.
#
# Step order is deliberate and fail-fast, cheapest gate first:
#   fmt -> clippy -> gdp-lint -> build --release -> test -> fuzz corpus
#   -> chaos sweep -> metric smoke -> overload smoke -> bench JSON
#   -> perf smoke
# gdp-lint runs before the release build: it is a sub-second whole-
# workspace scan, and a workspace-invariant violation (timing-unsafe
# compare, secret in a log, hot-path panic, swallowed wire variant)
# should fail the gate before minutes of compilation, not after.
#
# Usage: scripts/verify.sh [--quick|--tsan]
#   --quick   skip fmt/clippy/gdp-lint (compile + test only)
#   --tsan    ThreadSanitizer pass only: build crates/node/tests/tsan_smoke.rs
#             with -Zsanitizer=thread on nightly and run it. Skips (with a
#             visible warning, exit 0) when no nightly toolchain is installed;
#             the same test file runs un-instrumented in the tier-1 suite, so
#             the workload itself is always exercised.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
tsan=0
case "${1:-}" in
--quick) quick=1 ;;
--tsan) tsan=1 ;;
esac

if [ "$tsan" -eq 1 ]; then
    printf '==> ThreadSanitizer smoke (crates/node/tests/tsan_smoke.rs)\n'
    if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
        printf 'WARNING: no nightly toolchain installed; skipping TSan pass.\n'
        printf 'WARNING: install one with `rustup toolchain install nightly` to enable it.\n'
        exit 0
    fi
    # -Zsanitizer=thread instruments every cargo-built crate. Without the
    # rust-src component we cannot -Zbuild-std, so std itself stays
    # un-instrumented; -Cunsafe-allow-abi-mismatch=sanitizer accepts that
    # split, and --cfg gdp_tsan activates the fence words in the
    # parking_lot/crossbeam shims that restore the lock happens-before
    # edges TSan would otherwise miss (see shims/parking_lot docs).
    # scripts/tsan.supp masks the two false-positive classes that remain
    # without an instrumented std (Arc's fence-based teardown, libtest's
    # mpsc result channel) — see the comments in that file.
    if ! RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer --cfg gdp_tsan" \
        TSAN_OPTIONS="halt_on_error=1 suppressions=$(pwd)/scripts/tsan.supp" \
        cargo +nightly test -p gdp-node --test tsan_smoke \
        --target x86_64-unknown-linux-gnu; then
        printf '!!! ThreadSanitizer reported a data race (or the TSan build failed)\n'
        exit 1
    fi
    printf 'tsan_smoke OK\n'
    exit 0
fi

step() { printf '\n==> %s\n' "$*"; }

if [ "$quick" -eq 0 ]; then
    step "cargo fmt --check"
    cargo fmt --all -- --check

    step "cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings

    # Workspace-invariant static analysis (see DESIGN.md, "Static
    # analysis"). Exits nonzero on any unsuppressed finding; the JSON
    # report is kept as LINT.json for inspection and the summary line
    # below is extracted from it (findings_total / suppressed_total).
    step "gdp-lint (workspace invariants)"
    cargo build -q -p gdp-lint
    lint_started="$(date +%s)"
    cargo run -q -p gdp-lint -- --format json > LINT.json || {
        cargo run -q -p gdp-lint -- --format text || true
        printf '!!! gdp-lint found invariant violations (full report: LINT.json)\n'
        exit 1
    }
    lint_secs="$(( $(date +%s) - lint_started ))"
    findings="$(sed -n 's/.*"findings_total": \([0-9]*\).*/\1/p' LINT.json)"
    suppressed="$(sed -n 's/.*"suppressed_total": \([0-9]*\).*/\1/p' LINT.json)"
    printf 'lint_findings_total %s\nlint_suppressed_total %s\n' \
        "${findings:-?}" "${suppressed:-?}"
    # Per-rule breakdown straight from the report's "by_rule" object, one
    # line per rule in the lint_findings{rule=...} shape dashboards expect.
    sed -n 's/^ *"by_rule": {\(.*\)},\{0,1\}$/\1/p' LINT.json | tr ',' '\n' \
        | sed 's/^ *"\([A-Z][A-Z][0-9][0-9]\)": \([0-9]*\)$/lint_findings{rule="\1"} \2/'
    # Runtime budget: the whole-workspace scan must stay a cheap fail-fast
    # gate. The binary is pre-built above so the 5s budget measures the
    # scan itself (plus cargo-run dispatch), not compilation.
    if [ "$lint_secs" -gt 5 ]; then
        printf '!!! gdp-lint took %ss (budget: 5s) — the scan must stay fail-fast cheap\n' \
            "$lint_secs"
        exit 1
    fi
    printf 'lint_runtime_seconds %s (budget 5)\n' "$lint_secs"
fi

step "cargo build --release"
cargo build --release

step "cargo test (workspace)"
cargo test --workspace -q

step "cargo test (tier-1: facade crate)"
cargo test -q

# Wire-decoder fuzz gate: replay the pinned crasher corpus, then the
# 10k-case seeded sweep — any panic in `Pdu`/frame decoding fails here
# with the crashing input written to crates/wire/tests/corpus/.
step "wire decode fuzz (corpus replay + seeded sweep)"
cargo test -q -p gdp-wire --test fuzz_decode -- --nocapture

# Seeded chaos sweep: the workspace test run above already covers the
# default 100-seed sweep once; this dedicated pass widens/narrows it via
# GDP_SIM_SEEDS and, on failure, surfaces the failing seed with an exact
# replay command (every panic in the chaos suite leads with GDP_SIM_SEED=<n>).
sweep="${GDP_SIM_SEEDS:-50}"
step "chaos seed sweep ($sweep seeds)"
sweep_log="$(mktemp)"
if ! GDP_SIM_SEEDS="$sweep" cargo test -p gdp-sim --test chaos seed_sweep -- --nocapture 2>&1 \
        | tee "$sweep_log"; then
    seed="$(grep -oE 'GDP_SIM_SEED=[0-9]+' "$sweep_log" | head -n1 || true)"
    rm -f "$sweep_log"
    printf '\n!!! chaos sweep FAILED'
    if [ -n "$seed" ]; then
        printf ' at %s — replay deterministically with:\n' "$seed"
        printf '!!!   %s cargo test -p gdp-sim --test chaos -- seed_sweep\n' "$seed"
        printf '!!!   (add GDP_SIM_DEBUG=1 to narrate every client event)\n'
    else
        printf ' — see output above\n'
    fi
    exit 1
fi
rm -f "$sweep_log"

# Observability smoke: a fault-free cluster run must count every hop and
# move none of the failure counters (verify_failures, crc_failures,
# recovery_truncations, requests_timed_out stay zero).
step "fault-free metric smoke"
cargo test -p gdp-sim --test chaos fault_free_metric_accounting -- --nocapture

# Overload smoke: the flash-crowd and byzantine-flood scenarios hold the
# conservation laws (every shed frame lands in a typed Nack or a failure
# counter) while goodput survives 4x hostile load end-to-end.
step "overload smoke (flash crowd + byzantine flood)"
cargo test -p gdp-sim --test chaos -- --nocapture \
    flash_crowd_sheds_typed_nacks_and_recovers \
    byzantine_flood_is_accounted_and_survived

# Bench artifacts: the report binary must emit parseable figure JSON.
# `report store` also asserts the storage-engine floors inline: segmented
# >=10x the file engine at 10k+ capsules, recovery replay == checkpoint
# tail, warm point reads >=5x uncached at 10k+ capsules, warm range
# records zero-copy, and the 1M-capsule read run inside its pooled-fd
# budget (it exits nonzero when any contract is broken).
step "bench report JSON (fig6 + store + overload + fig8-quick)"
rm -f BENCH_fig6.json BENCH_store.json BENCH_overload.json BENCH_fig8.json
cargo run --release -p gdp-bench --bin report -- fig6 >/dev/null
cargo run --release -p gdp-bench --bin report -- store >/dev/null
cargo run --release -p gdp-bench --bin report -- overload >/dev/null
cargo run --release -p gdp-bench --bin report -- fig8-quick >/dev/null
for f in BENCH_fig6.json BENCH_store.json BENCH_overload.json BENCH_fig8.json; do
    [ -s "$f" ] || { printf '!!! %s missing or empty\n' "$f"; exit 1; }
    # Re-validate with the same strict parser the dumps are checked with
    # (python as an independent cross-check when available).
    if command -v python3 >/dev/null 2>&1; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f" \
            || { printf '!!! %s is not valid JSON\n' "$f"; exit 1; }
    fi
    printf '%s OK\n' "$f"
done

# The store artifact must carry both recorded floors (append rate and
# warm read rate) plus the read series, or the perf smoke below would
# silently skip the read-path regression gate.
for key in '"store_floor"' '"read_floor"' '"read_points"'; do
    grep -q "$key" BENCH_store.json \
        || { printf '!!! BENCH_store.json missing %s\n' "$key"; exit 1; }
done

# Perf smoke: re-measure 64 B zero-copy forwarding, segmented durable
# appends, and warm sealed-segment point reads; fail if any has regressed
# more than 30% below the floors the fig6/store runs just recorded (the
# data-path and storage fast paths must not silently rot).
step "perf smoke (forwarding + store floors)"
cargo run --release -p gdp-bench --bin report -- perf-smoke

# Overload floor: the saturated 4x point must keep serving the full
# append budget (goodput never collapses below the recorded floor).
step "overload perf smoke (saturated goodput floor)"
cargo run --release -p gdp-bench --bin report -- overload-smoke

step "OK"

#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, all tests.
# This is what CI runs; keep it green before merging.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip fmt/clippy (compile + test only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

step() { printf '\n==> %s\n' "$*"; }

if [ "$quick" -eq 0 ]; then
    step "cargo fmt --check"
    cargo fmt --all -- --check

    step "cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

step "cargo build --release"
cargo build --release

step "cargo test (workspace)"
cargo test --workspace -q

step "cargo test (tier-1: facade crate)"
cargo test -q

step "OK"

//! Federation mechanics: trust domains, secure advertisement, anycast to
//! the closest replica, scope policies, and independently verifiable
//! lookups (paper §VII).
//!
//! Run with: `cargo run --example federated_routing`

use gdp::capsule::MetadataBuilder;
use gdp::cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp::crypto::SigningKey;
use gdp::net::{LinkSpec, SimNet};
use gdp::router::{Router, SimRouter};
use gdp::server::{DataCapsuleServer, SimServer};
use gdp::sim::FOREVER;

fn main() {
    let owner = SigningKey::from_seed(&[1u8; 32]);
    let writer = SigningKey::from_seed(&[2u8; 32]);

    // Three administrative domains: a global root, a public cloud, and a
    // factory. Each runs its own GDP-router (= its own GLookupService).
    let mut net = SimNet::new(2026);
    let root = Router::from_seed(&[10u8; 32], "tier-1 root");
    let cloud = Router::from_seed(&[11u8; 32], "public cloud");
    let factory = Router::from_seed(&[12u8; 32], "factory floor");
    let factory_name = factory.name();
    let root_node = net.add_node(SimRouter::new(root));
    let cloud_node = net.add_node(SimRouter::new(cloud));
    let factory_node = net.add_node(SimRouter::new(factory));
    net.connect(root_node, cloud_node, LinkSpec::wan());
    net.connect(root_node, factory_node, LinkSpec::wan());
    net.node_mut::<SimRouter>(cloud_node).router.set_parent(root_node);
    net.node_mut::<SimRouter>(factory_node).router.set_parent(root_node);

    // Two capsules: a public dataset (global scope) and the factory's
    // episode log (restricted to the factory domain).
    let public_meta = MetadataBuilder::new()
        .writer(&writer.verifying_key())
        .set_str("description", "public dataset")
        .sign(&owner);
    let secret_meta = MetadataBuilder::new()
        .writer(&writer.verifying_key())
        .set_str("description", "factory episode log")
        .sign(&owner);

    // The factory's server hosts both; the owner scopes the episode log to
    // the factory domain in its AdCert.
    let server_id = PrincipalId::from_seed(PrincipalKind::Server, &[20u8; 32], "factory-server");
    let mut server = DataCapsuleServer::new(server_id.clone());
    let chain = |meta: &gdp::capsule::CapsuleMetadata, scope: Scope| {
        ServingChain::direct(
            AdCert::issue(&owner, meta.name(), server_id.name(), false, scope, FOREVER),
            server_id.principal().clone(),
        )
    };
    server.host(public_meta.clone(), chain(&public_meta, Scope::Global), vec![]).unwrap();
    server
        .host(secret_meta.clone(), chain(&secret_meta, Scope::Domain(factory_name)), vec![])
        .unwrap();
    let factory_router_name = net.node_mut::<SimRouter>(factory_node).router.name();
    let server_node =
        net.add_node(SimServer::new(server, factory_node, factory_router_name, FOREVER));
    net.connect(server_node, factory_node, LinkSpec::lan());
    net.inject_timer(server_node, 0, gdp::server::ATTACH_TIMER);
    net.run_to_quiescence();

    println!("secure advertisement completed; checking GLookupService state:\n");
    let now = net.now();
    for (label, node) in [("factory", factory_node), ("root", root_node), ("cloud", cloud_node)] {
        let r = &mut net.node_mut::<SimRouter>(node).router;
        let public_known = !r.lookup_local(&public_meta.name(), now).is_empty();
        let secret_known = !r.lookup_local(&secret_meta.name(), now).is_empty();
        println!("  {label:8} GLookupService: public dataset: {public_known:5}  episode log: {secret_known}");
    }

    // The scope policy: the episode log never left the factory domain.
    assert!(net
        .node_mut::<SimRouter>(root_node)
        .router
        .lookup_local(&secret_meta.name(), now)
        .is_empty());

    // Any party can independently verify a route returned by the (totally
    // untrusted) GLookupService: the chain runs from the capsule name to
    // the AdCert to the RtCert with no PKI.
    let routes = net.node_mut::<SimRouter>(root_node).router.lookup_local(&public_meta.name(), now);
    let route = &routes[0];
    route.verify(now).expect("route verifies end to end");
    println!("\nroot route for public dataset:");
    println!("  serving server : {}", route.server_name());
    println!("  delegation     : owner → AdCert → server → RtCert → router");
    println!("  verification   : OK (from the flat name alone) ✔");

    // A forged route (e.g. a MITM router claiming the name) fails.
    let mut forged = route.clone();
    forged.name = secret_meta.name();
    assert!(forged.verify(now).is_err());
    println!("  forged variant : rejected ✔");
}

//! Robotics / machine-learning at the edge — the paper's case study
//! (§IX, Fig 7): "General purpose robots are trained in the cloud and
//! refined at the edge. DataCapsules serve as the information containers
//! for both models and episode history."
//!
//! A model file is stored through the filesystem CAAPI (the TensorFlow
//! plugin structure), first against cloud infrastructure over a
//! residential uplink, then against on-premise edge resources — showing
//! the locality win the paper demonstrates in Fig 8.
//!
//! Run with: `cargo run --release --example edge_ml_pipeline`

use gdp::caapi::GdpFs;
use gdp::sim::{workload, GdpWorld, Placement};

fn run_pipeline(placement: Placement, label: &str, model_bytes: usize) {
    let world = GdpWorld::new(9, placement);
    let owner = world.owner.clone();
    let mut fs = GdpFs::format(world, owner).expect("format fs");

    // 1. Deploy the pretrained model to the factory's data plane.
    let model = workload::blob(1, model_bytes);
    let t0 = fs.backend_mut().now();
    fs.write_file("models/grasp-planner.pb", &model).expect("store model");
    let store_time = fs.backend_mut().now() - t0;

    // 2. Robots load the model at start of shift.
    let t0 = fs.backend_mut().now();
    let loaded = fs.read_file("models/grasp-planner.pb").expect("load model");
    let load_time = fs.backend_mut().now() - t0;
    assert_eq!(loaded, model);

    // 3. A robot logs episodes (stay local — sensitive factory data).
    let t0 = fs.backend_mut().now();
    let mut episode_log = Vec::new();
    for step in 0..16u64 {
        episode_log.extend_from_slice(&workload::robot_episode(3, step));
    }
    fs.write_file("episodes/shift-042.log", &episode_log).expect("log episodes");
    let episode_time = fs.backend_mut().now() - t0;

    // 4. The refined model replaces the old one — old versions remain
    //    readable (provenance / reproducibility).
    let refined = workload::blob(2, model_bytes);
    fs.write_file("models/grasp-planner.pb", &refined).expect("refine model");
    let versions = fs.versions("models/grasp-planner.pb").expect("versions");

    println!("── {label} ──");
    println!("  model store : {:>8.2} s", store_time as f64 / 1e6);
    println!("  model load  : {:>8.2} s", load_time as f64 / 1e6);
    println!("  episode log : {:>8.2} s ({} bytes)", episode_time as f64 / 1e6, episode_log.len());
    println!("  model versions kept: {}", versions.len());
}

fn main() {
    // A small model keeps the example fast; the full 28 MB / 115 MB sweep
    // lives in the Fig 8 benchmark (`cargo run -p gdp-bench --bin report -- fig8`).
    let model_bytes = 2_000_000;
    println!("storing and loading a {} MB model through the fs CAAPI\n", model_bytes / 1_000_000);
    run_pipeline(
        Placement::CloudFromResidential,
        "cloud region via residential uplink (100/10 Mbps)",
        model_bytes,
    );
    run_pipeline(Placement::EdgeLan, "on-premise edge (1 Gbps LAN)", model_bytes);
    println!("\nedge placement is orders of magnitude faster — the paper's Fig 8 shape.");
}

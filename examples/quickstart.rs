//! Quickstart: create a DataCapsule, append records, verify everything.
//!
//! Run with: `cargo run --example quickstart`

use gdp::capsule::{
    CapsuleWriter, DataCapsule, MembershipProof, MetadataBuilder, PointerStrategy, RangeProof,
    ReadKey,
};
use gdp::crypto::SigningKey;

fn main() {
    // 1. Identities: the owner controls the capsule; the writer is the
    //    single principal allowed to append. They may be the same party.
    let owner = SigningKey::from_seed(&[1u8; 32]);
    let writer_key = SigningKey::from_seed(&[2u8; 32]);

    // 2. Metadata: immutable, owner-signed key-value pairs. Its hash IS
    //    the capsule's globally unique name — the trust anchor.
    let metadata = MetadataBuilder::new()
        .writer(&writer_key.verifying_key())
        .set_str("description", "quickstart capsule")
        .set_str("created-micros", "1700000000000000")
        .sign(&owner);
    let name = metadata.name();
    println!("capsule name (hash of metadata): {}", name.to_hex());

    // 3. A writer appends; a capsule ingests and verifies.
    let mut capsule = DataCapsule::new(metadata.clone()).expect("valid metadata");
    let mut writer =
        CapsuleWriter::new(&metadata, writer_key, PointerStrategy::SkipList).expect("writer");

    for i in 0..32u64 {
        let record =
            writer.append(format!("measurement #{i}").as_bytes(), i * 1_000).expect("append");
        capsule.ingest(record).expect("verified ingest");
    }
    println!("appended {} records; head seq = {}", capsule.len(), capsule.latest_seq());

    // 4. One heartbeat signature attests the entire history.
    let heartbeat = capsule.head_heartbeat().unwrap().expect("non-empty");
    capsule.verify_history(&heartbeat).expect("full history verifies");
    println!("history verified against heartbeat at seq {}", heartbeat.seq);

    // 5. Membership proofs: logarithmic thanks to skip-list pointers.
    let proof = MembershipProof::build(&capsule, &heartbeat, 3).expect("proof");
    println!(
        "membership proof for seq 3: {} hops, {} bytes on the wire",
        proof.hops(),
        proof.wire_size()
    );
    let proven = proof
        .verify(&name, capsule.writer_key())
        .expect("proof verifies from name + writer key alone");
    assert_eq!(proven.body, b"measurement #2"); // seq 3 = third append (0-indexed bodies)

    // 6. Range proofs: contiguous runs are self-verifying.
    let range = RangeProof::build(&capsule, &heartbeat, 10, 20).expect("range proof");
    let records = range.verify(&name, capsule.writer_key()).expect("range verifies");
    println!("range proof covers {} records", records.len());

    // 7. Confidentiality: seal bodies with a read key; the infrastructure
    //    only ever sees ciphertext.
    let read_key = ReadKey::generate();
    let sealed = read_key.seal(&name, 99, b"secret sensor value");
    assert!(read_key.open(&name, 99, &sealed).is_ok());
    assert!(read_key.open(&name, 100, &sealed).is_err(), "replay to another seq fails");
    println!("sealed body: {} bytes (plaintext 19)", sealed.len());

    // 8. Tampering is always detected.
    let mut forged = capsule.get_one(5).unwrap().clone();
    forged.body = b"forged!".to_vec().into();
    let mut fresh = DataCapsule::new(metadata).unwrap();
    assert!(fresh.ingest(forged).is_err(), "tampered record rejected");
    println!("tampered record rejected ✔");
}

//! Multiple writers on a single-writer substrate — both patterns from
//! paper §V-A:
//!
//! (a) a Paxos-backed **commit service** that serializes updates from many
//!     writers into one capsule, and
//! (b) an **aggregation service** that merges several single-writer
//!     capsules into a combined stream.
//!
//! Run with: `cargo run --example multi_writer`

use gdp::caapi::{
    new_capsule_spec, Acceptor, Aggregator, CapsuleAccess, CommitService, LocalBackend, Submission,
};
use gdp::capsule::PointerStrategy;
use gdp::crypto::SigningKey;

fn main() {
    let owner = SigningKey::from_seed(&[1u8; 32]);

    // ── Pattern (a): Paxos commit service ────────────────────────────────
    println!("pattern (a): distributed commit service");
    let mut backend = LocalBackend::new();
    let (meta, writer) = new_capsule_spec(&owner, "shared shopping list");
    let capsule = backend.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
    let mut svc = CommitService::new(backend, capsule, /*proposer id*/ 1);
    let mut acceptors: Vec<Acceptor> = (0..5).map(|_| Acceptor::new()).collect();

    // Three household members (distinct writers) submit concurrently.
    let submissions = [
        Submission { writer_id: 100, op: b"alice: add milk".to_vec() },
        Submission { writer_id: 200, op: b"bob: add coffee".to_vec() },
        Submission { writer_id: 300, op: b"carol: remove milk".to_vec() },
    ];
    for sub in &submissions {
        let (slot, seq, chosen) = svc.commit(&mut acceptors, sub).unwrap();
        println!("  slot {slot} → record {seq}: {}", String::from_utf8_lossy(&chosen.op));
    }

    // Two acceptors crash; the service still commits (majority alive).
    acceptors[0].down = true;
    acceptors[4].down = true;
    let sub = Submission { writer_id: 100, op: b"alice: add bread".to_vec() };
    let (slot, _, _) = svc.commit(&mut acceptors, &sub).unwrap();
    println!("  slot {slot} committed despite 2/5 acceptors down ✔");

    // ── Pattern (b): aggregation service ─────────────────────────────────
    println!("\npattern (b): aggregation service");
    let mut backend = LocalBackend::new();
    let (m1, w1) = new_capsule_spec(&owner, "sensor A");
    let sensor_a = backend.create_capsule(m1, w1, PointerStrategy::Chain).unwrap();
    let (m2, w2) = new_capsule_spec(&owner, "sensor B");
    let sensor_b = backend.create_capsule(m2, w2, PointerStrategy::Chain).unwrap();
    let (mo, wo) = new_capsule_spec(&owner, "combined feed");
    let combined = backend.create_capsule(mo, wo, PointerStrategy::Chain).unwrap();

    // Each sensor is its own single writer.
    for i in 0..3 {
        backend.append(&sensor_a, format!("A reading {i}").as_bytes()).unwrap();
        backend.append(&sensor_b, format!("B reading {i}").as_bytes()).unwrap();
    }

    let mut agg = Aggregator::new(backend, vec![sensor_a, sensor_b], combined);
    let merged = agg.run_once().unwrap();
    println!("  merged {merged} records into the combined capsule:");
    for m in agg.merged().unwrap() {
        println!(
            "    t={} {}: {}",
            m.timestamp_micros,
            if m.source == sensor_a { "A" } else { "B" },
            String::from_utf8_lossy(&m.body)
        );
    }
    println!("  the combined capsule is itself an ordinary single-writer capsule ✔");
}

//! A live 3-node GDP cluster over real TCP sockets — the same wiring the
//! `gdpd` daemon uses, driven in-process so one binary shows the whole
//! flow: one GDP-router and two DataCapsule-server replicas on loopback,
//! a verifying client appending signed records with quorum durability,
//! reading them back with proofs, and failing over when a replica stops.
//!
//! Run with: `cargo run --example live_cluster`
//!
//! To run the same topology as three separate OS processes, see the
//! `gdpd` section of the README.

use gdp::capsule::{MetadataBuilder, PointerStrategy};
use gdp::cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp::client::VerifiedRead;
use gdp::crypto::SigningKey;
use gdp::node::{self, ClusterClient, HostSpec, NodeConfig, Role, StoreEngine, FOREVER};
use gdp::router::Router;
use gdp::server::{AckMode, ReadTarget};

/// The server identity a storage node derives from its config seed.
fn server_identity(seed: [u8; 32], label: &str) -> PrincipalId {
    let mut s = seed;
    s[0] ^= 0x5a;
    PrincipalId::from_seed(PrincipalKind::Server, &s, label)
}

fn main() {
    // ---- Identities & the capsule's delegations (owner-side setup) ----
    let router_seed = [10u8; 32];
    let router_name = Router::from_seed(&router_seed, "edge-router").name();
    let s1 = server_identity([21u8; 32], "replica-1");
    let s2 = server_identity([22u8; 32], "replica-2");

    let owner = SigningKey::from_seed(&[31u8; 32]);
    let writer_key = SigningKey::from_seed(&[32u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&writer_key.verifying_key())
        .set_str("description", "live cluster demo")
        .sign(&owner);
    let capsule = meta.name();
    let chain_for = |srv: &PrincipalId| {
        ServingChain::direct(
            AdCert::issue(&owner, capsule, srv.name(), false, Scope::Global, FOREVER),
            srv.principal().clone(),
        )
    };

    // ---- The cluster: router first, then two storage replicas ---------
    let router = node::start(NodeConfig {
        role: Role::Router,
        listen: "127.0.0.1:0".parse().unwrap(),
        seed: router_seed,
        label: "edge-router".into(),
        peers: vec![],
        router: None,
        data_dir: None,
        store_engine: StoreEngine::File,
        fsync: None,
        read_cache_bytes: None,
        max_open_segments: None,
        stats_path: None,
        hosts: vec![],
        shards: 1,
        shard_batch: 64,
        admission_rate: 0,
        admission_burst: 64,
    })
    .expect("start router");
    println!("router     {} @ {}", router_name.to_hex(), router.local_addr());

    let storage = |seed: [u8; 32], label: &str, me: &PrincipalId, other: &PrincipalId| {
        node::start(NodeConfig {
            role: Role::Storage,
            listen: "127.0.0.1:0".parse().unwrap(),
            seed,
            label: label.into(),
            peers: vec![router.local_addr()],
            router: Some(router_name),
            data_dir: None, // in-memory stores for the demo
            store_engine: StoreEngine::File,
            fsync: None,
            read_cache_bytes: None,
            max_open_segments: None,
            stats_path: None,
            shards: 1,
            shard_batch: 64,
            admission_rate: 0,
            admission_burst: 64,
            hosts: vec![HostSpec {
                metadata: meta.clone(),
                chain: chain_for(me),
                peers: vec![other.name()],
            }],
        })
        .expect("start storage node")
    };
    let replica1 = storage([21u8; 32], "replica-1", &s1, &s2);
    let replica2 = storage([22u8; 32], "replica-2", &s2, &s1);
    println!("replica-1  {} @ {}", s1.name().to_hex(), replica1.local_addr());
    println!("replica-2  {} @ {}", s2.name().to_hex(), replica2.local_addr());

    // ---- A verifying client over real sockets -------------------------
    let mut client = ClusterClient::connect(router.local_addr(), router_name, &[41u8; 32], "demo")
        .expect("attach to router");
    client.track(&meta).expect("track capsule");
    client.register_writer(&meta, writer_key, PointerStrategy::Chain).expect("register writer");

    client.session(capsule).expect("session");
    println!("client     session established");

    for i in 0..5u64 {
        let seq = client
            .append(capsule, format!("measurement {i}").as_bytes(), AckMode::Quorum(1))
            .expect("replicated append");
        println!("append     seq {seq} replicated to quorum");
    }

    let read = client.read(capsule, ReadTarget::Range(1, 5)).expect("range read");
    let VerifiedRead::Records(records) = read else { unreachable!() };
    println!("read       {} records, hash chain verified", records.len());

    let read = client.read(capsule, ReadTarget::ProofOf(2)).expect("proof read");
    let VerifiedRead::Proven(rec) = read else { unreachable!() };
    println!("proof      seq {} proven against newest heartbeat", rec.header.seq);

    // ---- Failover -----------------------------------------------------
    replica2.stop();
    println!("failover   replica-2 stopped");
    let seq = client.append(capsule, b"after failover", AckMode::Local).expect("append");
    let read = client.read(capsule, ReadTarget::Range(1, seq)).expect("read after failover");
    let VerifiedRead::Records(records) = read else { unreachable!() };
    println!(
        "failover   append + read served by survivor ({} records, last: {:?})",
        records.len(),
        String::from_utf8_lossy(&records.last().unwrap().body),
    );

    client.close();
    replica1.stop();
    router.stop();
    println!("done       cluster shut down cleanly");
}

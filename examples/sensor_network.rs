//! An IoT sensor network on the Global Data Plane.
//!
//! The paper's first deployed applications (§VIII): "time-series
//! environmental sensors" writing into DataCapsules, with visualization
//! clients reading windows and subscribers receiving live, verified
//! updates — here over a simulated edge domain.
//!
//! Run with: `cargo run --example sensor_network`

use gdp::caapi::{GdpTimeSeries, Sample};
use gdp::client::{ClientEvent, GdpClient, SimClient};
use gdp::net::LinkSpec;
use gdp::server::SimServer;
use gdp::sim::{GdpWorld, Placement, FOREVER};

fn main() {
    // A single edge domain: sensor (writer) and dashboard (subscriber)
    // share a LAN with the DataCapsule-server.
    let world = GdpWorld::new(42, Placement::EdgeLan);
    let owner = world.owner.clone();

    // The time-series CAAPI runs directly over the network world: every
    // record() below is a signed append travelling client → router →
    // server, acknowledged with an authenticated response.
    println!("creating temperature capsule…");
    let mut series = GdpTimeSeries::create(world, &owner, "ambient temperature, lab 420").unwrap();
    let capsule = series.capsule();
    println!("capsule: {}", capsule.to_hex());

    // The sensor records four hours of minute-resolution samples.
    println!("recording 240 samples over the network…");
    let trace = gdp::sim::workload::sensor_trace(7, 240, 60_000_000);
    for (t, v) in &trace {
        series.record(Sample { timestamp_micros: *t, value: *v }).unwrap();
    }

    // Range query: a 30-minute window.
    let from = 100 * 60_000_000u64;
    let to = 130 * 60_000_000u64;
    let agg = series.aggregate(from, to).unwrap().unwrap();
    println!(
        "window query: min {:.2}°C  max {:.2}°C  mean {:.2}°C over {} samples",
        agg.min, agg.max, agg.mean, agg.count
    );

    // Downsampled view for a dashboard (one point per hour).
    let buckets = series.downsample(0, 240 * 60_000_000, 3_600_000_000).unwrap();
    println!("hourly means for visualization:");
    for (t, mean) in &buckets {
        println!("  hour starting {:>13} µs: {mean:.2}°C", t);
    }

    // Live pub-sub: a dashboard client subscribes, then the sensor keeps
    // publishing. The dashboard fetches the capsule metadata (the trust
    // anchor) from the serving replica.
    let world = series.backend_mut();
    let (router_node, router_name) = world.routers[0];
    let (server_node, _) = world.servers[0];
    let metadata = world
        .net
        .node_mut::<SimServer>(server_node)
        .server
        .capsule(&capsule)
        .unwrap()
        .metadata()
        .clone();

    let mut dashboard = GdpClient::from_seed(&[77u8; 32], "dashboard");
    dashboard.track_capsule(&metadata).unwrap();
    let dash_node =
        world.net.add_node(SimClient::new(dashboard, router_node, router_name, FOREVER));
    world.net.connect(dash_node, router_node, LinkSpec::lan());
    world.net.inject_timer(dash_node, world.net.now() + 1, gdp::client::simnode::ATTACH_TIMER);
    world.net.run_to_quiescence();

    let sub = world.net.node_mut::<SimClient>(dash_node).client.subscribe(capsule, 240); // only future records
    world.net.inject(dash_node, router_node, sub);
    world.net.run_to_quiescence();

    println!("dashboard subscribed; sensor publishes 5 live samples…");
    for i in 0..5u64 {
        let sample =
            Sample { timestamp_micros: (241 + i) * 60_000_000, value: 22.5 + i as f64 * 0.1 };
        series.record(sample).unwrap();
    }
    let world = series.backend_mut();
    world.net.run_to_quiescence();

    let events = world.net.node_mut::<SimClient>(dash_node).take_events();
    let live = events.iter().filter(|e| matches!(e, ClientEvent::SubEvent { .. })).count();
    println!("dashboard received {live} live, verified events ✔");
    assert_eq!(live, 5);
}

//! A durable event stream with consumer groups, on the network stack —
//! plus a DHT-backed global lookup of the topic's routes.
//!
//! Combines two pieces the paper sketches: the Kafka-style append-only log
//! (§V-A cites Kafka as the exemplar) and the DHT-backed global
//! GLookupService (§VII).
//!
//! Run with: `cargo run --example event_stream`

use gdp::caapi::{GdpStream, Message};
use gdp::router::{DhtCluster, SimRouter};
use gdp::sim::{GdpWorld, Placement};
use gdp::wire::Name;

fn main() {
    // The topic lives on an edge deployment; every publish/poll below is a
    // full client → router → server round trip with verification.
    let world = GdpWorld::new(77, Placement::EdgeLan);
    let owner = world.owner.clone();
    let mut stream = GdpStream::create(world, owner, "factory-events").unwrap();
    let topic = stream.topic();
    println!("topic capsule: {}", topic.to_hex());

    // Producers publish (batch = pipelined on the wire).
    let events: Vec<Message> = (0..12)
        .map(|i| Message {
            key: format!("robot-{}", i % 3).into_bytes(),
            value: format!("step {i} completed").into_bytes(),
        })
        .collect();
    stream.publish_batch(&events).unwrap();
    println!(
        "published {} events; high watermark = {}",
        events.len(),
        stream.high_watermark().unwrap()
    );

    // Two independent consumer groups at their own pace.
    let batch = stream.poll("alerting", 5).unwrap();
    println!(
        "alerting group polled {} events (offsets {}..{})",
        batch.len(),
        batch[0].0,
        batch[batch.len() - 1].0
    );
    stream.commit_offset("alerting", batch.last().unwrap().0).unwrap();

    let audit = stream.poll("audit", 100).unwrap();
    println!("audit group sees all {} events independently", audit.len());

    // Time shift: replay history regardless of commits.
    let replay = stream.replay(3, 4).unwrap();
    println!(
        "replay from offset 3: {} events, first = {:?}",
        replay.len(),
        String::from_utf8_lossy(&replay[0].1.value)
    );

    // Publish the topic's route into a DHT-backed global GLookupService and
    // resolve it from an arbitrary member.
    let world = stream.backend_mut();
    let (router_node, _) = world.routers[0];
    let now = world.now();
    let routes = world.net.node_mut::<SimRouter>(router_node).router.lookup_local(&topic, now);
    let mut dht = DhtCluster::new();
    let members: Vec<Name> =
        (0..24).map(|i| Name::from_content(format!("dht member {i}").as_bytes())).collect();
    dht.join(members[0], None);
    for m in &members[1..] {
        dht.join(*m, Some(members[0]));
    }
    dht.publish(&members[0], routes[0].clone());
    let found = dht.lookup(&members[23], &topic, now);
    println!(
        "DHT lookup from member 23: {} verifiable route(s) in {} iterative hops ✔",
        found.len(),
        dht.last_lookup_hops
    );
    found[0].verify(now).expect("route verifies end to end");
}

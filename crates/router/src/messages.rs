//! Control-plane messages carried in PDU payloads.
//!
//! Three families, matching the router-visible PDU types:
//! * [`AdvertiseMsg`] — the secure-advertisement handshake (§VII).
//! * [`ControlMsg`] — router-to-router route announcements up the domain
//!   hierarchy (GLookupService population).
//! * [`LookupMsg`] — GLookupService queries, recursing to the parent
//!   domain on a miss, with independently verifiable answers.

use gdp_cert::{
    AdvertExtension, Advertisement, CapsuleAdvert, CertError, Challenge, ChallengeProof, Principal,
    RtCert,
};
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};

/// A route to one capsule (or principal) that anyone can re-verify:
/// the full advertisement entry plus the server→router delegation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedRoute {
    /// The capsule entry (metadata + serving chain), or `None` when the
    /// route is for a bare principal (a client or server's own name).
    pub entry: Option<CapsuleAdvert>,
    /// The served name (capsule name, or the principal's own name).
    pub name: Name,
    /// The serving principal (public identity; lets anyone re-verify the
    /// RtCert and chain end).
    pub server: Principal,
    /// Server-issued delegation to the router that first admitted it.
    pub rtcert: RtCert,
    /// Expiry (min over the underlying certificates).
    pub expires: u64,
}

impl VerifiedRoute {
    /// The serving principal's flat name.
    pub fn server_name(&self) -> Name {
        self.server.name()
    }

    /// Full independent re-verification: the GLookupService is untrusted,
    /// so queriers (and routers caching answers) run this on every route
    /// they receive (paper §VII: "the returned information is
    /// independently verifiable").
    pub fn verify(&self, now: u64) -> Result<(), CertError> {
        if now > self.expires {
            return Err(CertError::Expired { kind: "VerifiedRoute", expires: self.expires, now });
        }
        let server_name = self.server.name();
        if self.rtcert.principal != server_name {
            return Err(CertError::BrokenChain("RtCert principal is not the server"));
        }
        self.rtcert.verify(&self.server.key, now)?;
        match &self.entry {
            Some(entry) => {
                if entry.capsule() != self.name {
                    return Err(CertError::BrokenChain("route name is not the entry capsule"));
                }
                entry.verify(&server_name, now)
            }
            None => {
                if self.name != server_name {
                    return Err(CertError::BrokenChain(
                        "bare route name is not the principal name",
                    ));
                }
                Ok(())
            }
        }
    }
}

impl Wire for VerifiedRoute {
    fn encode(&self, enc: &mut Encoder) {
        enc.option(&self.entry, |e, entry| entry.encode(e));
        enc.name(&self.name);
        self.server.encode(enc);
        self.rtcert.encode(enc);
        enc.varint(self.expires);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let entry = dec.option(CapsuleAdvert::decode)?;
        let name = dec.name()?;
        let server = Principal::decode(dec)?;
        let rtcert = RtCert::decode(dec)?;
        let expires = dec.varint()?;
        Ok(VerifiedRoute { entry, name, server, rtcert, expires })
    }
}

/// Secure-advertisement handshake messages (PduType::Advertise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdvertiseMsg {
    /// Advertiser → router: request to attach.
    Hello,
    /// Router → advertiser: prove possession of your key.
    ChallengeMsg(Challenge),
    /// Advertiser → router: proof + catalog + RtCert for this router.
    Attach {
        /// Key-possession proof bound to this router.
        proof: ChallengeProof,
        /// Signed catalog of served capsules (may be empty for clients).
        advertisement: Advertisement,
        /// Delegation allowing this router to carry the advertiser's
        /// traffic (issued after the challenge succeeds, §VII).
        rtcert: RtCert,
    },
    /// Router → advertiser: attach accepted; `accepted` lists the names
    /// now routed here.
    Accepted {
        /// Names installed in the FIB.
        accepted: Vec<Name>,
    },
    /// Router → advertiser: attach rejected.
    Rejected {
        /// Human-readable reason (not trusted).
        reason: String,
    },
    /// Advertiser → router: defer the expiry of the previously attached
    /// catalog "as a group" without re-shipping the entries (paper §VII).
    Extend {
        /// Signed extension record bound to the catalog digest.
        extension: AdvertExtension,
    },
}

impl Wire for AdvertiseMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            AdvertiseMsg::Hello => {
                enc.u8(0);
            }
            AdvertiseMsg::ChallengeMsg(c) => {
                enc.u8(1);
                c.encode(enc);
            }
            AdvertiseMsg::Attach { proof, advertisement, rtcert } => {
                enc.u8(2);
                proof.encode(enc);
                advertisement.encode(enc);
                rtcert.encode(enc);
            }
            AdvertiseMsg::Accepted { accepted } => {
                enc.u8(3);
                enc.seq(accepted, |e, n| {
                    e.name(n);
                });
            }
            AdvertiseMsg::Rejected { reason } => {
                enc.u8(4);
                enc.string(reason);
            }
            AdvertiseMsg::Extend { extension } => {
                enc.u8(5);
                extension.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.u8()? {
            0 => AdvertiseMsg::Hello,
            1 => AdvertiseMsg::ChallengeMsg(Challenge::decode(dec)?),
            2 => AdvertiseMsg::Attach {
                proof: ChallengeProof::decode(dec)?,
                advertisement: Advertisement::decode(dec)?,
                rtcert: RtCert::decode(dec)?,
            },
            3 => AdvertiseMsg::Accepted { accepted: dec.seq(|d| d.name())? },
            4 => AdvertiseMsg::Rejected { reason: dec.string()? },
            5 => AdvertiseMsg::Extend { extension: AdvertExtension::decode(dec)? },
            t => return Err(DecodeError::BadTag(t as u64)),
        })
    }
}

/// Router-to-router control messages (PduType::RouterControl).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlMsg {
    /// A child router announces reachability of a name through itself,
    /// carrying the verifiable route and the hop distance from the origin.
    Announce {
        /// The verifiable route.
        route: VerifiedRoute,
        /// Router hops from the serving attachment point.
        distance: u32,
    },
}

impl Wire for ControlMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ControlMsg::Announce { route, distance } => {
                enc.u8(0);
                route.encode(enc);
                enc.u32(*distance);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.u8()? {
            0 => Ok(ControlMsg::Announce {
                route: VerifiedRoute::decode(dec)?,
                distance: dec.u32()?,
            }),
            t => Err(DecodeError::BadTag(t as u64)),
        }
    }
}

/// GLookupService messages (PduType::Lookup).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupMsg {
    /// Query for a name; `query_id` correlates the answer.
    Query {
        /// Correlation id.
        query_id: u64,
        /// The flat name being resolved.
        name: Name,
    },
    /// Answer with zero or more verifiable routes.
    Answer {
        /// Echo of the query id.
        query_id: u64,
        /// The resolved name.
        name: Name,
        /// Verifiable routes (empty = not found).
        routes: Vec<VerifiedRoute>,
    },
}

impl Wire for LookupMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            LookupMsg::Query { query_id, name } => {
                enc.u8(0);
                enc.varint(*query_id);
                enc.name(name);
            }
            LookupMsg::Answer { query_id, name, routes } => {
                enc.u8(1);
                enc.varint(*query_id);
                enc.name(name);
                enc.seq(routes, |e, r| r.encode(e));
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.u8()? {
            0 => LookupMsg::Query { query_id: dec.varint()?, name: dec.name()? },
            1 => LookupMsg::Answer {
                query_id: dec.varint()?,
                name: dec.name()?,
                routes: dec.seq(VerifiedRoute::decode)?,
            },
            t => return Err(DecodeError::BadTag(t as u64)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
    use gdp_crypto::SigningKey;

    fn sample_route() -> VerifiedRoute {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let server = PrincipalId::from_seed(PrincipalKind::Server, &[2u8; 32], "s");
        let router = PrincipalId::from_seed(PrincipalKind::Router, &[3u8; 32], "r");
        let capsule = Name::from_content(b"c");
        let rtcert = RtCert::issue(server.signing_key(), server.name(), router.name(), 99);
        let _chain = ServingChain::direct(
            AdCert::issue(&owner, capsule, server.name(), false, Scope::Global, 99),
            server.principal().clone(),
        );
        VerifiedRoute {
            entry: None,
            name: capsule,
            server: server.principal().clone(),
            rtcert,
            expires: 99,
        }
    }

    #[test]
    fn advertise_msgs_roundtrip() {
        let msgs = vec![
            AdvertiseMsg::Hello,
            AdvertiseMsg::ChallengeMsg(Challenge::random()),
            AdvertiseMsg::Accepted { accepted: vec![Name::from_content(b"x")] },
            AdvertiseMsg::Rejected { reason: "bad chain".to_string() },
        ];
        for m in msgs {
            assert_eq!(AdvertiseMsg::from_wire(&m.to_wire()).unwrap(), m);
        }
    }

    #[test]
    fn control_and_lookup_roundtrip() {
        let route = sample_route();
        let c = ControlMsg::Announce { route: route.clone(), distance: 3 };
        assert_eq!(ControlMsg::from_wire(&c.to_wire()).unwrap(), c);

        let q = LookupMsg::Query { query_id: 9, name: route.name };
        assert_eq!(LookupMsg::from_wire(&q.to_wire()).unwrap(), q);
        let a = LookupMsg::Answer { query_id: 9, name: route.name, routes: vec![route] };
        assert_eq!(LookupMsg::from_wire(&a.to_wire()).unwrap(), a);
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(AdvertiseMsg::from_wire(&[99]).is_err());
        assert!(ControlMsg::from_wire(&[99]).is_err());
        assert!(LookupMsg::from_wire(&[99]).is_err());
    }
}

//! Forwarding Information Base.
//!
//! Maps flat names to candidate next hops. A name may have several
//! candidates — one per replica subtree — enabling anycast: the router
//! picks the minimum-distance candidate ("the underlying routing network
//! ensures that the requests are automatically directed to the closest
//! replica", paper §VI).

use gdp_wire::{FastMap, Name};

/// Identifier of a neighbor attachment (a link endpoint), shared with the
/// network substrate.
pub type NeighborId = usize;

/// One candidate next hop for a name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FibEntry {
    /// Neighbor to forward to.
    pub neighbor: NeighborId,
    /// Router-hop distance to the serving attachment point (0 = attached
    /// directly to this router).
    pub distance: u32,
    /// Entry expiry (microseconds since epoch); stale entries are ignored
    /// and lazily purged.
    pub expires: u64,
    /// Name of the serving principal (for diagnostics and dedup).
    pub server: Name,
}

/// The forwarding table.
#[derive(Clone, Debug, Default)]
pub struct Fib {
    /// Keyed by flat name. Names are SHA-256 outputs, so the cheap
    /// [`FastMap`] hasher is safe here (see `gdp_wire::fasthash`).
    entries: FastMap<Name, Vec<FibEntry>>,
}

impl Fib {
    /// Creates an empty FIB.
    pub fn new() -> Fib {
        Fib::default()
    }

    /// Installs (or refreshes) a candidate next hop for `name`.
    pub fn install(&mut self, name: Name, entry: FibEntry) {
        let slot = self.entries.entry(name).or_default();
        // Replace an existing candidate from the same server via the same
        // neighbor (refresh), otherwise add.
        if let Some(existing) =
            slot.iter_mut().find(|e| e.server == entry.server && e.neighbor == entry.neighbor)
        {
            *existing = entry;
        } else {
            slot.push(entry);
        }
    }

    /// Best (minimum-distance, then lowest server name) live candidate.
    pub fn best(&self, name: &Name, now: u64) -> Option<FibEntry> {
        let slot = self.entries.get(name)?;
        // Single-candidate fast path: the overwhelmingly common case on
        // the forwarding hot loop (one replica per name per router).
        if let [only] = slot.as_slice() {
            return (only.expires > now).then_some(*only);
        }
        slot.iter().filter(|e| e.expires > now).min_by_key(|e| (e.distance, e.server)).copied()
    }

    /// All live candidates (anycast set), sorted by preference.
    pub fn candidates(&self, name: &Name, now: u64) -> Vec<FibEntry> {
        let mut out: Vec<FibEntry> = self
            .entries
            .get(name)
            .map(|slot| slot.iter().filter(|e| e.expires > now).copied().collect())
            .unwrap_or_default();
        out.sort_by_key(|e| (e.distance, e.server));
        out
    }

    /// Re-stamps the expiry of entries for `name` served by `server`
    /// (advertisement extension records).
    pub fn extend(&mut self, name: &Name, server: &Name, new_expires: u64) {
        if let Some(slot) = self.entries.get_mut(name) {
            for e in slot.iter_mut().filter(|e| e.server == *server) {
                e.expires = e.expires.max(new_expires);
            }
        }
    }

    /// Removes all entries pointing at a neighbor (link failure).
    pub fn purge_neighbor(&mut self, neighbor: NeighborId) {
        for slot in self.entries.values_mut() {
            slot.retain(|e| e.neighbor != neighbor);
        }
        self.entries.retain(|_, slot| !slot.is_empty());
    }

    /// Drops expired entries.
    pub fn purge_expired(&mut self, now: u64) {
        for slot in self.entries.values_mut() {
            slot.retain(|e| e.expires > now);
        }
        self.entries.retain(|_, slot| !slot.is_empty());
    }

    /// Number of names with at least one candidate.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no names are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all (name, entries) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Vec<FibEntry>)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(b: &[u8]) -> Name {
        Name::from_content(b)
    }

    fn entry(neighbor: NeighborId, distance: u32, expires: u64, server: &[u8]) -> FibEntry {
        FibEntry { neighbor, distance, expires, server: name(server) }
    }

    #[test]
    fn best_prefers_closest() {
        let mut fib = Fib::new();
        let n = name(b"capsule");
        fib.install(n, entry(1, 3, 100, b"far"));
        fib.install(n, entry(2, 1, 100, b"near"));
        assert_eq!(fib.best(&n, 0).unwrap().neighbor, 2);
        assert_eq!(fib.candidates(&n, 0).len(), 2);
    }

    #[test]
    fn expired_entries_skipped() {
        let mut fib = Fib::new();
        let n = name(b"c");
        fib.install(n, entry(1, 0, 50, b"s"));
        assert!(fib.best(&n, 49).is_some());
        assert!(fib.best(&n, 50).is_none());
        fib.purge_expired(50);
        assert!(fib.is_empty());
    }

    #[test]
    fn refresh_replaces_same_server_same_neighbor() {
        let mut fib = Fib::new();
        let n = name(b"c");
        fib.install(n, entry(1, 0, 50, b"s"));
        fib.install(n, entry(1, 0, 500, b"s"));
        assert_eq!(fib.candidates(&n, 0).len(), 1);
        assert_eq!(fib.best(&n, 100).unwrap().expires, 500);
    }

    #[test]
    fn purge_neighbor_removes_routes() {
        let mut fib = Fib::new();
        let n = name(b"c");
        fib.install(n, entry(1, 0, 100, b"a"));
        fib.install(n, entry(2, 1, 100, b"b"));
        fib.purge_neighbor(1);
        assert_eq!(fib.best(&n, 0).unwrap().neighbor, 2);
        fib.purge_neighbor(2);
        assert!(fib.best(&n, 0).is_none());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut fib = Fib::new();
        let n = name(b"c");
        fib.install(n, entry(1, 1, 100, b"server-b"));
        fib.install(n, entry(2, 1, 100, b"server-a"));
        let best1 = fib.best(&n, 0).unwrap();
        let best2 = fib.best(&n, 0).unwrap();
        assert_eq!(best1, best2);
    }
}

//! The GDP-router: a sans-I/O state machine.
//!
//! One router per routing domain (the paper's GLookupService "shared
//! database" per domain lives inside it; see `glookup.rs`). Domains form a
//! tree that "mimics physical network topology" (Table I): each router has
//! an optional parent. Forwarding walks the tree: down toward the closest
//! advertised replica when a FIB candidate exists, otherwise up the default
//! route. Secure advertisements gate all FIB state, and scoped capsules are
//! never announced above their designated domain.
//!
//! The struct is transport-agnostic: `handle_pdu(now, from, pdu)` returns
//! the PDUs to emit, so the same code runs on the deterministic simulator,
//! the threaded fabric, or (in a real deployment) sockets.

use crate::fib::{Fib, FibEntry, NeighborId};
use crate::glookup::GLookup;
use crate::messages::{AdvertiseMsg, ControlMsg, LookupMsg, VerifiedRoute};
use crate::vcache::{self, VerifyCache, DEFAULT_VERIFY_CACHE_CAP};
use gdp_cert::{Challenge, Principal, PrincipalId, PrincipalKind, Scope};
use gdp_obs::{Counter, Scope as ObsScope};
use gdp_wire::{FastMap, Name, Pdu, PduType, Wire};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Most attach challenges kept outstanding per neighbor. Big enough that
/// every handshake cycle a retrying-but-honest advertiser can have in
/// flight stays answerable; small enough to bound per-neighbor state.
const MAX_OUTSTANDING_CHALLENGES: usize = 4;

/// Router statistics (observable by tests and benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Data PDUs forwarded toward a FIB candidate or the parent.
    pub forwarded: u64,
    /// Data PDUs delivered to a locally attached principal.
    pub delivered_local: u64,
    /// Data PDUs dropped for lack of any route (root only).
    pub no_route: u64,
    /// Advertisements accepted.
    pub adverts_accepted: u64,
    /// Advertisements rejected (bad proof/chain/certs).
    pub adverts_rejected: u64,
    /// Route announcements accepted from child routers.
    pub announces_accepted: u64,
    /// Route announcements rejected on re-verification.
    pub announces_rejected: u64,
    /// Lookup queries answered from the local GLookupService.
    pub lookups_local: u64,
    /// Lookup queries escalated to the parent domain.
    pub lookups_escalated: u64,
    /// Signature verifications skipped via the verification cache.
    pub verify_cache_hits: u64,
    /// Verifications that ran in full (first sight, expired, or evicted).
    pub verify_cache_misses: u64,
    /// Control-plane PDUs (Advertise/RouterControl/Lookup) whose payload
    /// did not decode — dropped, but counted so a byzantine flood of
    /// garbage control frames is fully accounted for.
    pub ctrl_undecodable: u64,
}

/// Cached observability handles: resolved once at construction so the
/// data plane only ever touches atomics. Mirrors [`RouterStats`] and adds
/// the FIB/GLookup hit-miss split plus sparse attach/no-route traces.
struct RouterObs {
    scope: ObsScope,
    pdus_forwarded: Counter,
    pdus_delivered_local: Counter,
    pdus_no_route: Counter,
    fib_hits: Counter,
    fib_misses: Counter,
    glookup_hits: Counter,
    glookup_misses: Counter,
    attach_hellos: Counter,
    adverts_accepted: Counter,
    adverts_rejected: Counter,
    announces_accepted: Counter,
    announces_rejected: Counter,
    lookups_local: Counter,
    lookups_escalated: Counter,
    verify_cache_hits: Counter,
    verify_cache_misses: Counter,
    ctrl_undecodable: Counter,
}

impl RouterObs {
    fn new(scope: &ObsScope) -> RouterObs {
        RouterObs {
            pdus_forwarded: scope.counter("pdus_forwarded"),
            pdus_delivered_local: scope.counter("pdus_delivered_local"),
            pdus_no_route: scope.counter("pdus_no_route"),
            fib_hits: scope.counter("fib_hits"),
            fib_misses: scope.counter("fib_misses"),
            glookup_hits: scope.counter("glookup_hits"),
            glookup_misses: scope.counter("glookup_misses"),
            attach_hellos: scope.counter("attach_hellos"),
            adverts_accepted: scope.counter("adverts_accepted"),
            adverts_rejected: scope.counter("adverts_rejected"),
            announces_accepted: scope.counter("announces_accepted"),
            announces_rejected: scope.counter("announces_rejected"),
            lookups_local: scope.counter("lookups_local"),
            lookups_escalated: scope.counter("lookups_escalated"),
            verify_cache_hits: scope.counter("verify_cache_hits"),
            verify_cache_misses: scope.counter("verify_cache_misses"),
            ctrl_undecodable: scope.counter("ctrl_undecodable"),
            scope: scope.clone(),
        }
    }

    fn trace(&self, at_us: u64, event: &str, fields: &[(&str, String)]) {
        self.scope.trace(at_us, event, fields);
    }
}

/// What the router remembers about an attached catalog, so later
/// extension records can be validated and applied.
struct AttachedCatalog {
    digest: [u8; 32],
    advertiser: Principal,
    /// (name, cert-bound expiry): extensions never exceed the bound set by
    /// the underlying certificates.
    names: Vec<(Name, u64)>,
}

/// The router state machine.
pub struct Router {
    id: PrincipalId,
    parent: Option<NeighborId>,
    fib: Fib,
    glookup: GLookup,
    /// Outstanding attach challenges per neighbor. A small *set*, not a
    /// single slot: retried Hellos (lossy links, duplication) put several
    /// handshake cycles in flight at once, and if each new challenge
    /// overwrote the last, a proof could only ever match the *latest*
    /// challenge — two interleaved cycles then reject each other forever
    /// (attach livelock, found by seed 160 of the chaos sweep). A proof is
    /// accepted against any outstanding challenge; failures consume none.
    pending_challenges: FastMap<NeighborId, Vec<Challenge>>,
    /// Principals attached directly (neighbor → principal name).
    attached: FastMap<NeighborId, Name>,
    /// Catalogs by attaching neighbor (for extension records).
    catalogs: FastMap<NeighborId, AttachedCatalog>,
    /// In-flight lookup escalations: local id → (original id, requester).
    pending_lookups: FastMap<u64, (u64, NeighborId)>,
    next_query_id: u64,
    /// Memoized signature verifications (see [`crate::vcache`]).
    vcache: VerifyCache,
    /// When set, every route installation is also appended here so a
    /// sharded engine can mirror FIB state into its worker shards. Off by
    /// default — only the gdpd control router enables it.
    install_log: Option<Vec<RouteInstall>>,
    /// Statistics.
    pub stats: RouterStats,
    /// Cached metric handles (shared registry when built `with_obs`).
    obs: RouterObs,
    /// Where routers at this level send unknown names (`None` = root, which
    /// drops and reports).
    seq: u64,
    /// Nonce generator for attach challenges. Entropy-seeded by default;
    /// [`Router::set_rng_seed`] makes it replayable under the simulator.
    rng: StdRng,
}

/// PDUs to emit, paired with the neighbor to emit them to.
pub type Outbox = Vec<(NeighborId, Pdu)>;

/// True when a router named `router_name` would *forward* this PDU in
/// the data plane rather than consume it in the control plane.
///
/// This is the single source of truth for the split:
/// [`Router::handle_pdu_into`] derives its dispatch from it, and the
/// sharded engine's reader-side classifier (`gdp-node`) re-exports it —
/// adding a `PduType` variant forces both through this one match, so the
/// two can never drift apart.
#[inline]
pub fn is_data_plane(pdu: &Pdu, router_name: &Name) -> bool {
    match pdu.pdu_type {
        // Data first: the forwarding fast path evaluates no name guards.
        PduType::Data => true,
        // Advertisements are consumed by the router they address; transit
        // advertisements (toward some other router) are forwarded.
        PduType::Advertise => pdu.dst != *router_name,
        // Lookups and router control are consumed when addressed to this
        // router or the hop-by-hop wildcard zero name.
        PduType::Lookup | PduType::RouterControl => !(pdu.dst == *router_name || pdu.dst.is_zero()),
        // Errors always travel the data plane back toward the source.
        PduType::Error => true,
    }
}

/// One recorded route installation (for mirroring into shard workers).
#[derive(Clone, Debug)]
pub struct RouteInstall {
    /// Neighbor the route points at.
    pub neighbor: NeighborId,
    /// Router-hop distance.
    pub distance: u32,
    /// The verified route itself.
    pub route: VerifiedRoute,
}

impl Router {
    /// Creates a router with the given identity (private metric registry).
    pub fn new(id: PrincipalId) -> Router {
        Router::new_with_obs(id, &ObsScope::default())
    }

    /// Creates a router registering its metrics under `obs` — the scope a
    /// node hands out from its shared per-node [`gdp_obs::Metrics`].
    pub fn new_with_obs(id: PrincipalId, obs: &ObsScope) -> Router {
        assert_eq!(id.principal().kind, PrincipalKind::Router);
        Router {
            id,
            parent: None,
            fib: Fib::new(),
            glookup: GLookup::new(),
            pending_challenges: FastMap::default(),
            attached: FastMap::default(),
            catalogs: FastMap::default(),
            pending_lookups: FastMap::default(),
            next_query_id: 1,
            stats: RouterStats::default(),
            obs: RouterObs::new(obs),
            seq: 0,
            rng: StdRng::from_entropy(),
            vcache: VerifyCache::new(DEFAULT_VERIFY_CACHE_CAP),
            install_log: None,
        }
    }

    /// Replaces the challenge-nonce generator with a deterministic one.
    /// Only the simulator should call this: with a fixed seed the router's
    /// entire output becomes a pure function of its inputs.
    pub fn set_rng_seed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Convenience constructor from a seed and label.
    pub fn from_seed(seed: &[u8; 32], label: &str) -> Router {
        Router::new(PrincipalId::from_seed(PrincipalKind::Router, seed, label))
    }

    /// Seeded constructor with an observability scope.
    pub fn from_seed_with_obs(seed: &[u8; 32], label: &str, obs: &ObsScope) -> Router {
        Router::new_with_obs(PrincipalId::from_seed(PrincipalKind::Router, seed, label), obs)
    }

    /// Sets the parent-domain router's neighbor id (default route).
    pub fn set_parent(&mut self, parent: NeighborId) {
        self.parent = Some(parent);
    }

    /// This router's flat name (= its routing-domain identifier).
    pub fn name(&self) -> Name {
        self.id.name()
    }

    /// Read access to the domain's GLookupService.
    pub fn glookup(&self) -> &GLookup {
        &self.glookup
    }

    /// Read access to the FIB.
    pub fn fib(&self) -> &Fib {
        &self.fib
    }

    /// Handles a link-down event for a neighbor.
    pub fn neighbor_down(&mut self, neighbor: NeighborId) {
        self.fib.purge_neighbor(neighbor);
        self.attached.remove(&neighbor);
        self.catalogs.remove(&neighbor);
        self.pending_challenges.remove(&neighbor);
    }

    /// Periodic maintenance: drop expired routing state.
    pub fn purge_expired(&mut self, now: u64) {
        self.fib.purge_expired(now);
        self.glookup.purge_expired(now);
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Main entry point: processes one PDU, returning PDUs to emit.
    pub fn handle_pdu(&mut self, now: u64, from: NeighborId, pdu: Pdu) -> Outbox {
        let mut out = Outbox::new();
        self.handle_pdu_into(now, from, pdu, &mut out);
        out
    }

    /// Allocation-free variant of [`handle_pdu`](Router::handle_pdu):
    /// emitted PDUs are appended to a caller-owned outbox, so a tight
    /// forwarding loop can reuse one `Vec` across millions of PDUs. The
    /// append order is identical to `handle_pdu`'s return order, keeping
    /// simulator determinism intact.
    pub fn handle_pdu_into(&mut self, now: u64, from: NeighborId, pdu: Pdu, out: &mut Outbox) {
        // The forward-vs-consume split is derived from the shared
        // [`is_data_plane`] predicate — the same function the sharded
        // engine's reader-side classifier uses — so routing dispatch and
        // shard classification cannot drift apart.
        if is_data_plane(&pdu, &self.name()) {
            return self.forward_into(now, from, pdu, out);
        }
        // Control traffic addressed to this router (or to the wildcard
        // zero name, used hop-by-hop between routers) is consumed here.
        // Named explicitly -- not `_` -- so adding a PduType variant
        // forces a routing decision in `is_data_plane` *and* a
        // consumption arm here.
        match pdu.pdu_type {
            PduType::Advertise => {
                let emitted = self.handle_advertise(now, from, pdu);
                out.extend(emitted);
            }
            PduType::Lookup => {
                let emitted = self.handle_lookup(now, from, pdu);
                out.extend(emitted);
            }
            PduType::RouterControl => {
                let emitted = self.handle_control(now, from, pdu);
                out.extend(emitted);
            }
            // `is_data_plane` is unconditionally true for these, so they
            // took the forwarding branch above.
            PduType::Data | PduType::Error => {}
        }
    }

    // ---- data plane -----------------------------------------------------

    fn forward_into(&mut self, now: u64, from: NeighborId, pdu: Pdu, out: &mut Outbox) {
        if let Some(best) = self.fib.best(&pdu.dst, now) {
            // Hot-path counters use the single-writer increment (plain
            // load/store, no locked RMW): a Router instance is driven by
            // exactly one thread, scrapers only read.
            self.obs.fib_hits.inc_single_writer();
            // Never bounce a PDU back out the neighbor it arrived on —
            // prefer an alternate candidate (multi-replica), else fall
            // through to the parent.
            if best.neighbor != from {
                // `distance == 0` is exactly "attached at this router":
                // only `admit` installs distance-0 entries, and both the
                // FIB entry and the `attached` slot die together on
                // `neighbor_down`. Checking the distance avoids a second
                // map lookup on the forwarding fast path.
                if best.distance == 0 {
                    self.stats.delivered_local += 1;
                    self.obs.pdus_delivered_local.inc_single_writer();
                } else {
                    self.stats.forwarded += 1;
                    self.obs.pdus_forwarded.inc_single_writer();
                }
                out.push((best.neighbor, pdu));
                return;
            }
            if let Some(alt) =
                self.fib.candidates(&pdu.dst, now).into_iter().find(|e| e.neighbor != from)
            {
                self.stats.forwarded += 1;
                self.obs.pdus_forwarded.inc();
                out.push((alt.neighbor, pdu));
                return;
            }
        } else {
            self.obs.fib_misses.inc_single_writer();
        }
        match self.parent {
            Some(parent) if parent != from => {
                self.stats.forwarded += 1;
                self.obs.pdus_forwarded.inc();
                out.push((parent, pdu));
            }
            _ => {
                self.stats.no_route += 1;
                self.obs.pdus_no_route.inc();
                self.obs.trace(now, "no_route", &[("dst", pdu.dst.to_hex())]);
                // Report unreachability to the source if we can route back.
                let err = Pdu {
                    pdu_type: PduType::Error,
                    src: self.name(),
                    dst: pdu.src,
                    seq: pdu.seq,
                    payload: pdu.dst.0.to_vec().into(),
                };
                match self.fib.best(&err.dst, now) {
                    Some(e) => out.push((e.neighbor, err)),
                    None if from != usize::MAX => out.push((from, err)),
                    None => {}
                }
            }
        }
    }

    // ---- secure advertisement (§VII) ------------------------------------

    fn handle_advertise(&mut self, now: u64, from: NeighborId, pdu: Pdu) -> Outbox {
        let msg = match AdvertiseMsg::from_wire(&pdu.payload) {
            Ok(m) => m,
            Err(_) => {
                self.stats.ctrl_undecodable += 1;
                self.obs.ctrl_undecodable.inc();
                return Vec::new();
            }
        };
        match msg {
            AdvertiseMsg::Hello => {
                self.obs.attach_hellos.inc();
                let challenge = Challenge::from_rng(&mut self.rng);
                let outstanding = self.pending_challenges.entry(from).or_default();
                // Bound the set: a flapping or hostile neighbor must not
                // grow state without limit. Oldest challenges die first.
                if outstanding.len() >= MAX_OUTSTANDING_CHALLENGES {
                    outstanding.remove(0);
                }
                outstanding.push(challenge);
                let reply = AdvertiseMsg::ChallengeMsg(challenge);
                vec![(from, self.advertise_pdu(pdu.src, pdu.seq, &reply))]
            }
            AdvertiseMsg::Attach { proof, advertisement, rtcert } => {
                match self.admit(now, from, &proof, &advertisement, &rtcert) {
                    Ok((accepted, mut announcements)) => {
                        self.stats.adverts_accepted += 1;
                        self.obs.adverts_accepted.inc();
                        self.obs.trace(
                            now,
                            "attach_accepted",
                            &[
                                ("advertiser", pdu.src.to_hex()),
                                ("names", accepted.len().to_string()),
                            ],
                        );
                        let reply = AdvertiseMsg::Accepted { accepted };
                        let mut out = vec![(from, self.advertise_pdu(pdu.src, pdu.seq, &reply))];
                        out.append(&mut announcements);
                        out
                    }
                    Err(reason) => {
                        self.stats.adverts_rejected += 1;
                        self.obs.adverts_rejected.inc();
                        self.obs.trace(
                            now,
                            "attach_rejected",
                            &[("advertiser", pdu.src.to_hex()), ("reason", reason.to_string())],
                        );
                        let reply = AdvertiseMsg::Rejected { reason: reason.to_string() };
                        vec![(from, self.advertise_pdu(pdu.src, pdu.seq, &reply))]
                    }
                }
            }
            AdvertiseMsg::Extend { extension } => self.handle_extension(from, &extension),
            // Router-originated messages arriving here are protocol misuse.
            AdvertiseMsg::ChallengeMsg(_)
            | AdvertiseMsg::Accepted { .. }
            | AdvertiseMsg::Rejected { .. } => Vec::new(),
        }
    }

    fn advertise_pdu(&self, dst: Name, seq: u64, msg: &AdvertiseMsg) -> Pdu {
        Pdu {
            pdu_type: PduType::Advertise,
            src: self.name(),
            dst,
            seq,
            payload: msg.to_wire().into(),
        }
    }

    /// Verifies and installs an attachment. Returns accepted names and the
    /// announcements to propagate to the parent.
    fn admit(
        &mut self,
        now: u64,
        from: NeighborId,
        proof: &gdp_cert::ChallengeProof,
        advertisement: &gdp_cert::Advertisement,
        rtcert: &gdp_cert::RtCert,
    ) -> Result<(Vec<Name>, Outbox), &'static str> {
        let outstanding = self.pending_challenges.get(&from).ok_or("no outstanding challenge")?;
        // Accept a proof of *any* outstanding challenge for this neighbor;
        // a failed proof consumes none of them, so a stale or duplicated
        // Attach cannot cancel the handshake cycle that is still live.
        if !outstanding.iter().any(|c| proof.verify(c, &self.name()).is_ok()) {
            return Err("challenge proof failed");
        }
        self.pending_challenges.remove(&from);
        if proof.principal != advertisement.advertiser {
            return Err("proof principal is not the advertiser");
        }
        // The challenge proof above is NEVER cached — every nonce is
        // unique. The catalog and RtCert verifications are memoizable:
        // the same advertiser re-attaching (refresh, reconnect, flap)
        // re-presents byte-identical signed objects.
        let advert_key = vcache::advert_digest(advertisement);
        if self.vcache.hit(&advert_key, now) {
            self.stats.verify_cache_hits += 1;
            self.obs.verify_cache_hits.inc();
        } else {
            self.stats.verify_cache_misses += 1;
            self.obs.verify_cache_misses.inc();
            advertisement.verify(now).map_err(|_| "advertisement failed verification")?;
            self.vcache.insert(advert_key, vcache::advert_expiry(advertisement));
        }
        let advertiser = advertisement.advertiser.name();
        if rtcert.principal != advertiser || rtcert.router != self.name() {
            return Err("rtcert does not bind advertiser to this router");
        }
        let rtcert_key = vcache::rtcert_digest(rtcert, &advertisement.advertiser.key);
        if self.vcache.hit(&rtcert_key, now) {
            self.stats.verify_cache_hits += 1;
            self.obs.verify_cache_hits.inc();
        } else {
            self.stats.verify_cache_misses += 1;
            self.obs.verify_cache_misses.inc();
            rtcert
                .verify(&advertisement.advertiser.key, now)
                .map_err(|_| "rtcert signature invalid")?;
            self.vcache.insert(rtcert_key, rtcert.expires);
        }

        self.attached.insert(from, advertiser);
        let mut accepted = Vec::new();
        let mut announcements: Outbox = Vec::new();
        let mut catalog_names: Vec<(Name, u64)> = Vec::new();

        // The advertiser's own name: always installed, always global.
        let own_route = VerifiedRoute {
            entry: None,
            name: advertiser,
            server: advertisement.advertiser.clone(),
            rtcert: rtcert.clone(),
            expires: advertisement.expires.min(rtcert.expires),
        };
        self.install_route(from, 0, &own_route, now);
        accepted.push(advertiser);
        catalog_names.push((advertiser, rtcert.expires));
        if let Some(parent) = self.parent {
            // `own_route` is moved into the announcement — no clone.
            announcements.push((
                parent,
                self.control_pdu(ControlMsg::Announce { route: own_route, distance: 1 }),
            ));
        }

        // Each capsule entry.
        for entry in &advertisement.entries {
            let capsule = entry.capsule();
            let expires = advertisement.expires.min(rtcert.expires).min(entry.chain.adcert.expires);
            let route = VerifiedRoute {
                entry: Some(entry.clone()),
                name: capsule,
                server: advertisement.advertiser.clone(),
                rtcert: rtcert.clone(),
                expires,
            };
            self.install_route(from, 0, &route, now);
            accepted.push(capsule);
            catalog_names.push((capsule, rtcert.expires.min(entry.chain.adcert.expires)));
            if self.may_propagate(&entry.chain.adcert.scope) {
                if let Some(parent) = self.parent {
                    announcements.push((
                        parent,
                        self.control_pdu(ControlMsg::Announce { route, distance: 1 }),
                    ));
                }
            }
        }
        self.catalogs.insert(
            from,
            AttachedCatalog {
                digest: advertisement.digest(),
                advertiser: advertisement.advertiser.clone(),
                names: catalog_names,
            },
        );
        Ok((accepted, announcements))
    }

    /// Applies a verified extension record: the whole catalog's expiry is
    /// deferred as a group, bounded per name by its certificate expiries.
    fn handle_extension(&mut self, from: NeighborId, ext: &gdp_cert::AdvertExtension) -> Outbox {
        let Some(catalog) = self.catalogs.get(&from) else {
            return Vec::new();
        };
        // gdp-lint: allow(CT01) -- advert digests are public record identifiers; the security decision is the signature verification on the next clause
        if ext.advert_digest != catalog.digest || ext.verify(&catalog.advertiser).is_err() {
            self.stats.adverts_rejected += 1;
            self.obs.adverts_rejected.inc();
            return Vec::new();
        }
        let server = catalog.advertiser.name();
        // Disjoint-field borrows: `catalog` borrows `self.catalogs` while
        // the FIB/GLookup are updated — no clone of the name list needed.
        for (name, bound) in &catalog.names {
            let new_expires = ext.new_expires.min(*bound);
            self.fib.extend(name, &server, new_expires);
            self.glookup.extend(name, &server, new_expires);
        }
        // Re-announce extended routes upstream so parent domains defer too.
        let mut out = Vec::new();
        if let Some(parent) = self.parent {
            for (name, _) in &catalog.names {
                for route in self.glookup.lookup(name, 0) {
                    if route.server_name() == server {
                        let scope_ok = match &route.entry {
                            Some(entry) => self.may_propagate(&entry.chain.adcert.scope),
                            None => true,
                        };
                        if scope_ok {
                            out.push((
                                parent,
                                self.control_pdu(ControlMsg::Announce { route, distance: 1 }),
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Scope policy: a capsule restricted to domain `d` is not announced
    /// beyond the router named `d`.
    fn may_propagate(&self, scope: &Scope) -> bool {
        match scope {
            Scope::Global => true,
            Scope::Domain(d) => *d != self.name(),
        }
    }

    fn install_route(
        &mut self,
        neighbor: NeighborId,
        distance: u32,
        route: &VerifiedRoute,
        _now: u64,
    ) {
        self.fib.install(
            route.name,
            FibEntry { neighbor, distance, expires: route.expires, server: route.server_name() },
        );
        self.glookup.insert(route.clone());
        if let Some(log) = &mut self.install_log {
            log.push(RouteInstall { neighbor, distance, route: route.clone() });
        }
    }

    /// Installs an already-verified route without re-running verification.
    ///
    /// For shard workers only: the control router verified the route
    /// (admission or announcement) and mirrors it here. Callers outside a
    /// sharded engine should let the normal PDU paths install routes.
    pub fn install_verified(
        &mut self,
        neighbor: NeighborId,
        distance: u32,
        route: &VerifiedRoute,
        now: u64,
    ) {
        self.install_route(neighbor, distance, route, now);
    }

    /// Enables (or disables) route-install recording for shard mirroring.
    pub fn record_installs(&mut self, on: bool) {
        self.install_log = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the route installations recorded since the last drain.
    pub fn drain_installs(&mut self) -> Vec<RouteInstall> {
        self.install_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn control_pdu(&self, msg: ControlMsg) -> Pdu {
        // Hop-by-hop router control uses the wildcard zero destination: the
        // next router consumes it regardless of its own name.
        Pdu {
            pdu_type: PduType::RouterControl,
            src: self.name(),
            dst: Name::ZERO,
            seq: 0,
            payload: msg.to_wire().into(),
        }
    }

    // ---- route announcements from children -------------------------------

    fn handle_control(&mut self, now: u64, from: NeighborId, pdu: Pdu) -> Outbox {
        let ControlMsg::Announce { route, distance } = match ControlMsg::from_wire(&pdu.payload) {
            Ok(m) => m,
            Err(_) => {
                self.stats.ctrl_undecodable += 1;
                self.obs.ctrl_undecodable.inc();
                return Vec::new();
            }
        };
        // Independently re-verify: child routers are in other trust
        // domains. Re-announcement refresh presents byte-identical routes,
        // so the verification memoizes; first sight and post-expiry runs
        // the full chain check.
        if !self.verify_route_cached(&route, now) {
            self.stats.announces_rejected += 1;
            self.obs.announces_rejected.inc();
            return Vec::new();
        }
        self.stats.announces_accepted += 1;
        self.obs.announces_accepted.inc();
        let scope_ok = match &route.entry {
            Some(entry) => self.may_propagate(&entry.chain.adcert.scope),
            None => true,
        };
        self.install_route(from, distance, &route, now);
        if scope_ok {
            if let Some(parent) = self.parent {
                return vec![(
                    parent,
                    self.control_pdu(ControlMsg::Announce { route, distance: distance + 1 }),
                )];
            }
        }
        Vec::new()
    }

    /// Route verification through the memoization cache: a digest hit
    /// (within its recorded expiry) skips the Ed25519 chain walk; a miss
    /// runs [`VerifiedRoute::verify`] in full and caches success.
    fn verify_route_cached(&mut self, route: &VerifiedRoute, now: u64) -> bool {
        let digest = vcache::route_digest(route);
        if self.vcache.hit(&digest, now) {
            self.stats.verify_cache_hits += 1;
            self.obs.verify_cache_hits.inc();
            return true;
        }
        self.stats.verify_cache_misses += 1;
        self.obs.verify_cache_misses.inc();
        if route.verify(now).is_err() {
            return false;
        }
        self.vcache.insert(digest, vcache::route_expiry(route));
        true
    }

    // ---- GLookupService queries ------------------------------------------

    fn handle_lookup(&mut self, now: u64, from: NeighborId, pdu: Pdu) -> Outbox {
        match LookupMsg::from_wire(&pdu.payload) {
            Ok(LookupMsg::Query { query_id, name }) => {
                let routes = self.glookup.lookup(&name, now);
                if routes.is_empty() {
                    self.obs.glookup_misses.inc();
                } else {
                    self.obs.glookup_hits.inc();
                }
                match self.parent {
                    Some(parent) if routes.is_empty() => {
                        self.stats.lookups_escalated += 1;
                        self.obs.lookups_escalated.inc();
                        let local_id = self.next_query_id;
                        self.next_query_id += 1;
                        self.pending_lookups.insert(local_id, (query_id, from));
                        let query = LookupMsg::Query { query_id: local_id, name };
                        vec![(parent, self.lookup_pdu(Name::ZERO, &query))]
                    }
                    _ => {
                        self.stats.lookups_local += 1;
                        self.obs.lookups_local.inc();
                        let answer = LookupMsg::Answer { query_id, name, routes };
                        vec![(from, self.lookup_pdu(pdu.src, &answer))]
                    }
                }
            }
            Ok(LookupMsg::Answer { query_id, name, routes }) => {
                // Re-verify before caching: the parent GLookupService is
                // untrusted. Repeat answers memoize via the verify cache.
                let verified: Vec<VerifiedRoute> = routes
                    .into_iter()
                    .filter(|r| r.name == name && self.verify_route_cached(r, now))
                    .collect();
                for r in &verified {
                    // Cache: reachable via the neighbor that answered.
                    self.install_route(from, u32::MAX / 2, r, now);
                }
                match self.pending_lookups.remove(&query_id) {
                    Some((orig_id, requester)) => {
                        let answer =
                            LookupMsg::Answer { query_id: orig_id, name, routes: verified };
                        vec![(requester, self.lookup_pdu(Name::ZERO, &answer))]
                    }
                    None => Vec::new(),
                }
            }
            Err(_) => {
                self.stats.ctrl_undecodable += 1;
                self.obs.ctrl_undecodable.inc();
                Vec::new()
            }
        }
    }

    fn lookup_pdu(&self, dst: Name, msg: &LookupMsg) -> Pdu {
        Pdu {
            pdu_type: PduType::Lookup,
            src: self.name(),
            dst,
            seq: self.seq,
            payload: msg.to_wire().into(),
        }
    }

    /// Local (same-process) GLookupService query used by co-located tools;
    /// network clients use `LookupMsg` PDUs instead.
    pub fn lookup_local(&mut self, name: &Name, now: u64) -> Vec<VerifiedRoute> {
        let _ = self.next_seq();
        let routes = self.glookup.lookup(name, now);
        if routes.is_empty() {
            self.obs.glookup_misses.inc();
        } else {
            self.obs.glookup_hits.inc();
        }
        routes
    }
}

//! Advertiser-side secure-advertisement driver.
//!
//! DataCapsule-servers and clients both run this little state machine to
//! attach to a GDP-router: Hello → (challenge) → Attach{proof, catalog,
//! RtCert} → Accepted. "Once this process succeeds, the DataCapsule-server
//! issues a RtCert to the GDP-router" (paper §VII) — here the RtCert rides
//! in the Attach message.

use crate::messages::AdvertiseMsg;
use gdp_cert::{
    AdvertExtension, Advertisement, CapsuleAdvert, ChallengeProof, PrincipalId, RtCert,
};
use gdp_wire::{Name, Pdu, PduType, Wire};

/// Progress of an attach handshake.
#[derive(Debug)]
pub enum AttachStep {
    /// Send this PDU to the router and keep waiting.
    Send(Pdu),
    /// Attachment accepted; the router installed these names.
    Done(Vec<Name>),
    /// Attachment rejected.
    Failed(String),
    /// PDU was not part of this handshake; ignore it.
    Ignored,
}

/// Client/server side of the secure-advertisement handshake.
pub struct Attacher {
    principal: PrincipalId,
    router: Name,
    entries: Vec<CapsuleAdvert>,
    expires: u64,
    rtcert_expires: u64,
    seq: u64,
    last_advertisement: Option<Advertisement>,
}

impl Attacher {
    /// Prepares an attach of `principal` to `router`, advertising
    /// `entries` (empty for plain clients) until `expires`.
    pub fn new(
        principal: PrincipalId,
        router: Name,
        entries: Vec<CapsuleAdvert>,
        expires: u64,
    ) -> Attacher {
        Attacher {
            principal,
            router,
            entries,
            expires,
            rtcert_expires: expires,
            seq: 1,
            last_advertisement: None,
        }
    }

    /// Sets a longer validity for the RtCert than for the catalog. The
    /// catalog expiry is a liveness signal meant to be refreshed (or
    /// deferred with extension records); the RtCert is the routing
    /// delegation and may outlive many catalogs.
    pub fn with_rtcert_expires(mut self, expires: u64) -> Attacher {
        self.rtcert_expires = expires;
        self
    }

    /// After a successful attach: builds an extension PDU deferring the
    /// catalog's expiry to `new_expires` (paper §VII extension records).
    pub fn extend(&mut self, new_expires: u64) -> Option<Pdu> {
        let advert = self.last_advertisement.as_ref()?;
        let extension = AdvertExtension::sign(self.principal.signing_key(), advert, new_expires);
        self.seq += 1;
        Some(Pdu {
            pdu_type: PduType::Advertise,
            src: self.principal.name(),
            dst: self.router,
            seq: self.seq,
            payload: AdvertiseMsg::Extend { extension }.to_wire().into(),
        })
    }

    /// The initial Hello PDU.
    pub fn hello(&self) -> Pdu {
        Pdu {
            pdu_type: PduType::Advertise,
            src: self.principal.name(),
            dst: self.router,
            seq: self.seq,
            payload: AdvertiseMsg::Hello.to_wire().into(),
        }
    }

    /// Processes a router reply.
    pub fn on_pdu(&mut self, pdu: &Pdu) -> AttachStep {
        if pdu.pdu_type != PduType::Advertise || pdu.src != self.router {
            return AttachStep::Ignored;
        }
        match AdvertiseMsg::from_wire(&pdu.payload) {
            Ok(AdvertiseMsg::ChallengeMsg(challenge)) => {
                let proof = ChallengeProof::answer(
                    self.principal.signing_key(),
                    self.principal.principal().clone(),
                    &challenge,
                    &self.router,
                );
                let advertisement = Advertisement::sign(
                    self.principal.signing_key(),
                    self.principal.principal().clone(),
                    self.entries.clone(),
                    self.expires,
                );
                let rtcert = RtCert::issue(
                    self.principal.signing_key(),
                    self.principal.name(),
                    self.router,
                    self.rtcert_expires,
                );
                self.last_advertisement = Some(advertisement.clone());
                self.seq += 1;
                AttachStep::Send(Pdu {
                    pdu_type: PduType::Advertise,
                    src: self.principal.name(),
                    dst: self.router,
                    seq: self.seq,
                    payload: AdvertiseMsg::Attach { proof, advertisement, rtcert }.to_wire().into(),
                })
            }
            Ok(AdvertiseMsg::Accepted { accepted }) => AttachStep::Done(accepted),
            Ok(AdvertiseMsg::Rejected { reason }) => AttachStep::Failed(reason),
            _ => AttachStep::Ignored,
        }
    }
}

/// Drives a complete handshake synchronously against an in-process router
/// (no network): used by tests and by simulation setup code.
pub fn attach_directly(
    router: &mut crate::router::Router,
    neighbor: crate::fib::NeighborId,
    attacher: &mut Attacher,
    now: u64,
) -> Result<Vec<Name>, String> {
    let mut inbound = vec![attacher.hello()];
    // Bounded loop: Hello → Challenge → Attach → Accepted.
    for _ in 0..4 {
        let mut next = Vec::new();
        for pdu in inbound.drain(..) {
            for (_, reply) in router.handle_pdu(now, neighbor, pdu) {
                match attacher.on_pdu(&reply) {
                    AttachStep::Send(p) => next.push(p),
                    AttachStep::Done(names) => return Ok(names),
                    AttachStep::Failed(reason) => return Err(reason),
                    AttachStep::Ignored => {}
                }
            }
        }
        if next.is_empty() {
            break;
        }
        inbound = next;
    }
    Err("handshake did not complete".to_string())
}

//! The GLookupService: a verified routing database.
//!
//! "Within a routing domain, all routing information is kept in a shared
//! database that we call a GLookupService ... essentially a key-value store
//! and is not required to be trusted" (paper §VII/§VIII): every stored
//! route carries the full certificate chain, so queriers re-verify answers
//! themselves. One instance lives in each domain router; misses recurse to
//! the parent domain, and the root instance is the global GLookupService.

use crate::messages::VerifiedRoute;
use gdp_wire::{FastMap, Name};

/// Verified routing database for one routing domain.
#[derive(Clone, Debug, Default)]
pub struct GLookup {
    /// Keyed by flat name (SHA-256 output → [`FastMap`] hashing is safe).
    routes: FastMap<Name, Vec<VerifiedRoute>>,
}

impl GLookup {
    /// Creates an empty database.
    pub fn new() -> GLookup {
        GLookup::default()
    }

    /// Inserts (or refreshes) a verified route. The caller is responsible
    /// for having verified the chain; the database itself is untrusted
    /// storage and queriers re-verify.
    pub fn insert(&mut self, route: VerifiedRoute) {
        let slot = self.routes.entry(route.name).or_default();
        if let Some(existing) = slot.iter_mut().find(|r| r.server == route.server) {
            *existing = route;
        } else {
            slot.push(route);
        }
    }

    /// Live routes for a name.
    pub fn lookup(&self, name: &Name, now: u64) -> Vec<VerifiedRoute> {
        self.routes
            .get(name)
            .map(|slot| slot.iter().filter(|r| r.expires > now).cloned().collect())
            .unwrap_or_default()
    }

    /// True if at least one live route exists.
    pub fn contains(&self, name: &Name, now: u64) -> bool {
        !self.lookup(name, now).is_empty()
    }

    /// Re-stamps the expiry of `name`'s route served by `server`.
    pub fn extend(&mut self, name: &Name, server: &Name, new_expires: u64) {
        if let Some(slot) = self.routes.get_mut(name) {
            for r in slot.iter_mut().filter(|r| r.server_name() == *server) {
                r.expires = r.expires.max(new_expires);
            }
        }
    }

    /// Drops expired routes.
    pub fn purge_expired(&mut self, now: u64) {
        for slot in self.routes.values_mut() {
            slot.retain(|r| r.expires > now);
        }
        self.routes.retain(|_, slot| !slot.is_empty());
    }

    /// Number of names known.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_cert::{PrincipalId, PrincipalKind, RtCert};

    fn route(name_bytes: &[u8], server_seed: u8, expires: u64) -> VerifiedRoute {
        let server = PrincipalId::from_seed(PrincipalKind::Server, &[server_seed; 32], "s");
        let router = PrincipalId::from_seed(PrincipalKind::Router, &[99u8; 32], "r");
        VerifiedRoute {
            entry: None,
            name: Name::from_content(name_bytes),
            server: server.principal().clone(),
            rtcert: RtCert::issue(server.signing_key(), server.name(), router.name(), expires),
            expires,
        }
    }

    #[test]
    fn insert_lookup() {
        let mut g = GLookup::new();
        g.insert(route(b"a", 1, 100));
        g.insert(route(b"a", 2, 100)); // second replica
        g.insert(route(b"b", 1, 100));
        assert_eq!(g.lookup(&Name::from_content(b"a"), 0).len(), 2);
        assert_eq!(g.lookup(&Name::from_content(b"b"), 0).len(), 1);
        assert!(g.lookup(&Name::from_content(b"zzz"), 0).is_empty());
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn refresh_same_server() {
        let mut g = GLookup::new();
        g.insert(route(b"a", 1, 100));
        g.insert(route(b"a", 1, 500));
        let routes = g.lookup(&Name::from_content(b"a"), 0);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].expires, 500);
    }

    #[test]
    fn expiry() {
        let mut g = GLookup::new();
        g.insert(route(b"a", 1, 100));
        assert!(g.contains(&Name::from_content(b"a"), 99));
        assert!(!g.contains(&Name::from_content(b"a"), 100));
        g.purge_expired(100);
        assert!(g.is_empty());
    }
}

//! Bounded verification cache for Ed25519-signed routing objects.
//!
//! Steady-state forwarding re-verifies the same advertisements, RtCerts,
//! and announced routes on every refresh and every lookup answer — at
//! ~50 µs per Ed25519 verification that dominates the control-plane
//! budget (the same observation NDN forwarding work makes about
//! per-packet signature cost). The cache memoizes *successful*
//! verifications, keyed by a SHA-256 digest over a domain-separation tag,
//! the object's full canonical encoding, and the signer's public key.
//! Any flipped bit — in the payload, the signature, the expiry, or the
//! key — changes the digest and forces a full re-verification, so a
//! cached hit is exactly as strong as the verification it memoized.
//!
//! Expiry is enforced on every hit: the stored deadline is the *minimum*
//! over every certificate expiry the original verification checked, so a
//! hit can never outlive any constituent certificate. First-sight and
//! post-expiry paths always run the real verifier. Challenge proofs are
//! never cached (each nonce is unique by construction).
//!
//! Capacity is bounded; eviction is insertion-ordered (FIFO), which is
//! enough because entries are immutable facts, not working-set state —
//! re-verifying an evicted entry is only a latency cost, never a
//! correctness one.

use crate::messages::VerifiedRoute;
use gdp_cert::{Advertisement, RtCert};
use gdp_crypto::sha256;
use gdp_wire::{Encoder, FastMap, Wire};
use std::collections::VecDeque;

/// Default entry capacity: covers a busy router's live neighbor set many
/// times over while bounding memory to ~40 bytes per entry.
pub const DEFAULT_VERIFY_CACHE_CAP: usize = 1024;

/// Memoization table for successful signature verifications.
#[derive(Debug, Default)]
pub struct VerifyCache {
    cap: usize,
    /// digest → effective expiry (µs since epoch).
    entries: FastMap<[u8; 32], u64>,
    /// Insertion order for FIFO eviction. May briefly hold digests already
    /// removed from `entries` (expired on access); eviction skips those.
    order: VecDeque<[u8; 32]>,
}

impl VerifyCache {
    /// A cache holding at most `cap` verified digests.
    pub fn new(cap: usize) -> VerifyCache {
        VerifyCache { cap, entries: FastMap::default(), order: VecDeque::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns true iff `digest` was verified before and its effective
    /// expiry has not passed. An expired entry is removed and reported as
    /// a miss, forcing the caller back onto the full verification path.
    pub fn hit(&mut self, digest: &[u8; 32], now: u64) -> bool {
        match self.entries.get(digest) {
            Some(&expires) if now <= expires => true,
            Some(_) => {
                self.entries.remove(digest);
                false
            }
            None => false,
        }
    }

    /// Records a successful verification valid until `expires`.
    pub fn insert(&mut self, digest: [u8; 32], expires: u64) {
        if self.cap == 0 || self.entries.contains_key(&digest) {
            return;
        }
        while self.entries.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break, // order desynced (all stale): give up evicting
            }
        }
        self.entries.insert(digest, expires);
        self.order.push_back(digest);
        // Drop stale order slots so the deque cannot outgrow the map
        // unboundedly under heavy expiry churn.
        while self.order.len() > self.cap * 2 {
            if let Some(front) = self.order.pop_front() {
                if self.entries.contains_key(&front) {
                    self.order.push_front(front);
                    break;
                }
            }
        }
    }
}

fn tagged_digest(tag: &str, parts: &[&[u8]]) -> [u8; 32] {
    let mut enc = Encoder::with_capacity(64 + parts.iter().map(|p| p.len()).sum::<usize>());
    enc.string(tag);
    for p in parts {
        enc.bytes(p);
    }
    sha256(&enc.finish())
}

/// Cache key for a [`VerifiedRoute`]: tag ‖ full route encoding. The
/// encoding already contains the server principal (signer key), the
/// RtCert, and the capsule chain, so every signed byte is bound.
pub fn route_digest(route: &VerifiedRoute) -> [u8; 32] {
    tagged_digest("gdp/vcache/route/v1", &[&route.to_wire()])
}

/// Effective expiry of a route: the minimum over every certificate the
/// full verification checks. A cached hit must never outlive any of them.
pub fn route_expiry(route: &VerifiedRoute) -> u64 {
    let mut exp = route.expires.min(route.rtcert.expires);
    if let Some(entry) = &route.entry {
        exp = exp.min(chain_expiry(&entry.chain));
    }
    exp
}

/// Cache key for an advertisement catalog: tag ‖ catalog digest ‖ signer
/// key ‖ catalog signature. `Advertisement::digest()` covers the
/// advertiser principal and entries but not the signature, so it is mixed
/// in explicitly — a forged signature must never collide with a cached
/// good one.
pub fn advert_digest(advertisement: &Advertisement) -> [u8; 32] {
    tagged_digest(
        "gdp/vcache/advert/v1",
        &[
            &advertisement.digest(),
            &advertisement.advertiser.key.to_bytes(),
            &advertisement.signature.to_bytes(),
        ],
    )
}

/// Effective expiry of an advertisement: catalog expiry capped by every
/// entry's chain expiries.
pub fn advert_expiry(advertisement: &Advertisement) -> u64 {
    let mut exp = advertisement.expires;
    for entry in &advertisement.entries {
        exp = exp.min(chain_expiry(&entry.chain));
    }
    exp
}

/// Cache key for an RtCert verification: tag ‖ cert encoding ‖ signer key
/// (the key is *not* part of the cert encoding, so it must be mixed in —
/// the same cert bytes verified against a different key is a different
/// fact).
pub fn rtcert_digest(rtcert: &RtCert, signer_key: &gdp_crypto::VerifyingKey) -> [u8; 32] {
    tagged_digest("gdp/vcache/rtcert/v1", &[&rtcert.to_wire(), &signer_key.to_bytes()])
}

fn chain_expiry(chain: &gdp_cert::ServingChain) -> u64 {
    let mut exp = chain.adcert.expires;
    for (cert, _) in &chain.memberships {
        exp = exp.min(cert.expires);
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: u8) -> [u8; 32] {
        [b; 32]
    }

    #[test]
    fn hit_respects_expiry() {
        let mut c = VerifyCache::new(8);
        c.insert(d(1), 100);
        assert!(c.hit(&d(1), 50));
        assert!(c.hit(&d(1), 100));
        // Past the deadline: miss, and the entry is gone for good.
        assert!(!c.hit(&d(1), 101));
        assert!(!c.hit(&d(1), 50));
    }

    #[test]
    fn unknown_digest_misses() {
        let mut c = VerifyCache::new(8);
        c.insert(d(1), 100);
        assert!(!c.hit(&d(2), 0));
    }

    #[test]
    fn capacity_bounded_fifo() {
        let mut c = VerifyCache::new(4);
        for i in 0..10u8 {
            c.insert(d(i), 1000);
        }
        assert!(c.len() <= 4);
        // The newest survive, the oldest were evicted.
        assert!(c.hit(&d(9), 0));
        assert!(!c.hit(&d(0), 0));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = VerifyCache::new(0);
        c.insert(d(1), 1000);
        assert!(!c.hit(&d(1), 0));
        assert_eq!(c.len(), 0);
    }
}

//! Adapter running a [`Router`] on the deterministic simulator.

use crate::router::Router;
use gdp_net::{SimCtx, SimNode, SimTime};
use gdp_wire::Pdu;
use std::any::Any;

/// Timer token used for periodic expiry purges.
pub const PURGE_TIMER: u64 = 0xA0;

/// A [`Router`] bound to a simulator node.
pub struct SimRouter {
    /// The wrapped router (public for test/bench inspection).
    pub router: Router,
    /// Purge interval in simulator microseconds (0 = disabled).
    pub purge_interval: SimTime,
    /// Modeled per-PDU forwarding cost in µs (0 = free). Used by the Fig 6
    /// reproduction: the paper's router sustains ~120k PDU/s for small
    /// PDUs, i.e. ≈ 8.3 µs of CPU per PDU.
    pub per_pdu_cost_us: SimTime,
    /// Modeled per-byte forwarding cost in nanoseconds (memory/NIC path);
    /// together with `per_pdu_cost_us` this reproduces both Fig 6 curves.
    pub per_byte_cost_ns: SimTime,
    busy_until: SimTime,
}

impl SimRouter {
    /// Wraps a router with no modeled CPU cost.
    pub fn new(router: Router) -> Box<SimRouter> {
        Box::new(SimRouter {
            router,
            purge_interval: 0,
            per_pdu_cost_us: 0,
            per_byte_cost_ns: 0,
            busy_until: 0,
        })
    }

    /// Wraps a router with a modeled forwarding cost: `per_pdu_cost_us`
    /// fixed work per PDU plus `per_byte_cost_ns` per payload byte.
    pub fn with_cpu_cost(
        router: Router,
        per_pdu_cost_us: SimTime,
        per_byte_cost_ns: SimTime,
    ) -> Box<SimRouter> {
        Box::new(SimRouter {
            router,
            purge_interval: 0,
            per_pdu_cost_us,
            per_byte_cost_ns,
            busy_until: 0,
        })
    }
}

impl SimNode for SimRouter {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, from: gdp_net::NodeId, pdu: Pdu) {
        let out = self.router.handle_pdu(ctx.now, from, pdu);
        if self.per_pdu_cost_us == 0 && self.per_byte_cost_ns == 0 {
            for (to, pdu) in out {
                ctx.send(to, pdu);
            }
        } else {
            // Model a single forwarding core: each PDU occupies the CPU
            // before it can leave.
            for (to, pdu) in out {
                let cost = self.per_pdu_cost_us
                    + (pdu.payload.len() as SimTime * self.per_byte_cost_ns) / 1000;
                let start = ctx.now.max(self.busy_until);
                let done = start + cost;
                self.busy_until = done;
                ctx.send_delayed(to, pdu, done - ctx.now);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        if token == PURGE_TIMER && self.purge_interval > 0 {
            self.router.purge_expired(ctx.now);
            ctx.set_timer(self.purge_interval, PURGE_TIMER);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

//! A Kademlia-style DHT backend for the global GLookupService.
//!
//! Paper §VII: "the GLookupService is essentially a key-value store and is
//! not required to be trusted; existing technologies such as distributed
//! hash tables (DHTs) can be used to implement a highly distributed and
//! scalable GLookupService."
//!
//! Keys are flat names; distance is XOR ([`Name::xor_distance`]); values
//! are [`VerifiedRoute`]s, which carry their own certificate chains — so a
//! malicious DHT node can *withhold* a route but cannot *forge* one
//! (retrievers re-verify everything, and this module does it for them).
//!
//! The implementation is an in-process cluster with iterative lookups over
//! k-buckets: the algorithmic content of Kademlia (routing-table
//! maintenance, α-parallel iterative search, k-replication) without a
//! socket layer, matching how the rest of the repo separates protocol
//! logic from transport.

use crate::messages::VerifiedRoute;
use gdp_wire::Name;
use std::collections::{HashMap, HashSet};

/// Replication factor: values live on the K closest nodes.
pub const K: usize = 4;
/// Bucket capacity (classic Kademlia uses 20; smaller fits test clusters).
pub const BUCKET_SIZE: usize = 8;
/// Lookup parallelism.
pub const ALPHA: usize = 3;

fn distance(a: &Name, b: &Name) -> [u8; 32] {
    a.xor_distance(b)
}

/// Index of the highest set bit of the distance → bucket number (0..256).
fn bucket_index(d: &[u8; 32]) -> Option<usize> {
    for (i, byte) in d.iter().enumerate() {
        if *byte != 0 {
            return Some((31 - i) * 8 + (7 - byte.leading_zeros() as usize));
        }
    }
    None // distance zero: self
}

/// One DHT participant.
pub struct DhtNode {
    /// This node's id (its flat name).
    pub id: Name,
    /// k-buckets: per distance-bit, up to BUCKET_SIZE known peers.
    buckets: Vec<Vec<Name>>,
    /// Locally stored routes, keyed by the looked-up name.
    store: HashMap<Name, Vec<VerifiedRoute>>,
    /// Simulated failure: a down node answers nothing.
    pub down: bool,
}

impl DhtNode {
    /// Creates a node with the given id.
    pub fn new(id: Name) -> DhtNode {
        DhtNode { id, buckets: vec![Vec::new(); 256], store: HashMap::new(), down: false }
    }

    /// Records contact with a peer (k-bucket insert, LRU-ish: move to
    /// front, drop the tail when full).
    pub fn touch(&mut self, peer: Name) {
        if peer == self.id {
            return;
        }
        let Some(b) = bucket_index(&distance(&self.id, &peer)) else {
            return;
        };
        let bucket = &mut self.buckets[b];
        if let Some(pos) = bucket.iter().position(|p| *p == peer) {
            bucket.remove(pos);
        }
        bucket.insert(0, peer);
        bucket.truncate(BUCKET_SIZE);
    }

    /// The closest `n` peers to `target` this node knows of.
    pub fn closest_known(&self, target: &Name, n: usize) -> Vec<Name> {
        let mut all: Vec<Name> = self.buckets.iter().flatten().copied().collect();
        all.push(self.id);
        all.sort_by_key(|p| distance(p, target));
        all.dedup();
        all.truncate(n);
        all
    }

    /// Stores a route locally (no verification here: the DHT is untrusted
    /// storage; retrieval verifies).
    pub fn store_value(&mut self, key: Name, route: VerifiedRoute) {
        let slot = self.store.entry(key).or_default();
        if let Some(existing) = slot.iter_mut().find(|r| r.server == route.server) {
            *existing = route;
        } else {
            slot.push(route);
        }
    }

    /// Local lookup.
    pub fn find_value(&self, key: &Name) -> Vec<VerifiedRoute> {
        self.store.get(key).cloned().unwrap_or_default()
    }

    /// Number of stored keys.
    pub fn stored_keys(&self) -> usize {
        self.store.len()
    }
}

/// An in-process DHT cluster: the global GLookupService.
pub struct DhtCluster {
    nodes: HashMap<Name, DhtNode>,
    /// Iterative-lookup hop counter for the most recent operation
    /// (observability: lookups should be O(log n)).
    pub last_lookup_hops: usize,
}

impl Default for DhtCluster {
    fn default() -> Self {
        Self::new()
    }
}

impl DhtCluster {
    /// Creates an empty cluster.
    pub fn new() -> DhtCluster {
        DhtCluster { nodes: HashMap::new(), last_lookup_hops: 0 }
    }

    /// Adds a node and bootstraps its routing table via `bootstrap` (any
    /// existing member; `None` for the first node).
    pub fn join(&mut self, id: Name, bootstrap: Option<Name>) {
        let mut node = DhtNode::new(id);
        if let Some(b) = bootstrap {
            node.touch(b);
        }
        self.nodes.insert(id, node);
        if bootstrap.is_some() {
            // Self-lookup populates buckets along the path (Kademlia join).
            let closest = self.iterative_find_node(&id, &id);
            for peer in closest {
                self.nodes.get_mut(&id).unwrap().touch(peer);
                if let Some(p) = self.nodes.get_mut(&peer) {
                    p.touch(id);
                }
            }
        }
    }

    /// Marks a node up/down (failure injection).
    pub fn set_down(&mut self, id: &Name, down: bool) {
        if let Some(n) = self.nodes.get_mut(id) {
            n.down = down;
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterative FIND_NODE from `start`: returns the K closest live nodes
    /// to `target` discovered by querying progressively closer peers.
    ///
    /// The working shortlist is wider than K (dead entries must not mask
    /// the rest of a node's routing table); only the final result is cut
    /// down to the K closest live nodes.
    fn iterative_find_node(&mut self, start: &Name, target: &Name) -> Vec<Name> {
        const POOL: usize = K * 4;
        let mut queried: HashSet<Name> = HashSet::new();
        let mut hops = 0usize;
        let mut shortlist: Vec<Name> =
            self.nodes.get(start).map(|n| n.closest_known(target, POOL)).unwrap_or_default();
        shortlist.retain(|p| self.nodes.get(p).map(|n| !n.down).unwrap_or(false));
        loop {
            // Query up to ALPHA new candidates, closest first.
            let candidates: Vec<Name> =
                shortlist.iter().filter(|p| !queried.contains(*p)).take(ALPHA).copied().collect();
            if candidates.is_empty() {
                break;
            }
            let mut learned = Vec::new();
            for peer in candidates {
                queried.insert(peer);
                let Some(node) = self.nodes.get(&peer) else { continue };
                if node.down {
                    continue;
                }
                hops += 1;
                learned.extend(node.closest_known(target, POOL));
            }
            let before: Vec<Name> = shortlist.clone();
            shortlist.extend(learned);
            shortlist.sort_by_key(|p| distance(p, target));
            shortlist.dedup();
            shortlist.retain(|p| self.nodes.get(p).map(|n| !n.down).unwrap_or(false));
            shortlist.truncate(POOL);
            if shortlist == before {
                break; // converged
            }
        }
        self.last_lookup_hops = hops;
        shortlist.truncate(K);
        shortlist
    }

    /// Publishes a route under its name: stored on the K closest live
    /// nodes (what the root GLookupService does on every propagated
    /// advertisement).
    pub fn publish(&mut self, from: &Name, route: VerifiedRoute) {
        let key = route.name;
        let closest = self.iterative_find_node(from, &key);
        for peer in closest {
            if let Some(node) = self.nodes.get_mut(&peer) {
                if !node.down {
                    node.store_value(key, route.clone());
                }
            }
        }
    }

    /// Looks a name up starting from `from`, re-verifying every returned
    /// route at time `now` (the DHT is untrusted; forged entries are
    /// silently dropped).
    pub fn lookup(&mut self, from: &Name, key: &Name, now: u64) -> Vec<VerifiedRoute> {
        let closest = self.iterative_find_node(from, key);
        let mut out: Vec<VerifiedRoute> = Vec::new();
        for peer in closest {
            let Some(node) = self.nodes.get(&peer) else { continue };
            if node.down {
                continue;
            }
            for route in node.find_value(key) {
                if route.name == *key
                    && route.verify(now).is_ok()
                    && !out.iter().any(|r| r.server == route.server)
                {
                    out.push(route);
                }
            }
        }
        out
    }

    /// Re-replicates every stored value to its current K closest live
    /// nodes (periodic maintenance; heals after failures).
    pub fn replicate_all(&mut self) {
        let snapshot: Vec<(Name, Name, Vec<VerifiedRoute>)> = self
            .nodes
            .iter()
            .filter(|(_, n)| !n.down)
            .flat_map(|(id, n)| n.store.iter().map(move |(k, v)| (*id, *k, v.clone())))
            .collect();
        for (holder, key, routes) in snapshot {
            for route in routes {
                self.publish(&holder, route.clone());
                let _ = key;
                let _ = holder;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_cert::{PrincipalId, PrincipalKind, RtCert};

    fn route(server_seed: u8) -> VerifiedRoute {
        let server = PrincipalId::from_seed(PrincipalKind::Server, &[server_seed; 32], "s");
        let router = PrincipalId::from_seed(PrincipalKind::Router, &[99u8; 32], "r");
        VerifiedRoute {
            entry: None,
            name: server.name(), // bare principal route: name == server name
            server: server.principal().clone(),
            rtcert: RtCert::issue(server.signing_key(), server.name(), router.name(), 1 << 50),
            expires: 1 << 50,
        }
    }

    fn cluster(n: usize) -> (DhtCluster, Vec<Name>) {
        let mut c = DhtCluster::new();
        let ids: Vec<Name> =
            (0..n).map(|i| Name::from_content(format!("dht node {i}").as_bytes())).collect();
        c.join(ids[0], None);
        for id in &ids[1..] {
            c.join(*id, Some(ids[0]));
        }
        (c, ids)
    }

    #[test]
    fn publish_and_lookup_across_cluster() {
        let (mut c, ids) = cluster(40);
        let r = route(1);
        let key = r.name;
        c.publish(&ids[3], r.clone());
        // Any node can find it.
        for start in [&ids[0], &ids[17], &ids[39]] {
            let got = c.lookup(start, &key, 0);
            assert_eq!(got.len(), 1, "lookup from {start}");
            assert_eq!(got[0].server_name(), r.server_name());
        }
    }

    #[test]
    fn lookups_are_logarithmic() {
        let (mut c, ids) = cluster(60);
        let r = route(2);
        let key = r.name;
        c.publish(&ids[0], r);
        c.lookup(&ids[59], &key, 0);
        assert!(
            c.last_lookup_hops <= 30,
            "iterative lookup should converge quickly, took {} hops",
            c.last_lookup_hops
        );
    }

    #[test]
    fn survives_minority_node_failures() {
        let (mut c, ids) = cluster(30);
        let r = route(3);
        let key = r.name;
        c.publish(&ids[0], r.clone());
        // Kill one of the K holders (find them by checking storage).
        let holders: Vec<Name> =
            ids.iter().filter(|id| !c.nodes[*id].find_value(&key).is_empty()).copied().collect();
        assert_eq!(holders.len(), K);
        c.set_down(&holders[0], true);
        c.set_down(&holders[1], true);
        let got = c.lookup(&ids[29], &key, 0);
        assert_eq!(got.len(), 1, "K-replication must survive 2 failures");
    }

    #[test]
    fn replication_heals_after_failures() {
        let (mut c, ids) = cluster(25);
        let r = route(4);
        let key = r.name;
        c.publish(&ids[0], r.clone());
        let holders: Vec<Name> =
            ids.iter().filter(|id| !c.nodes[*id].find_value(&key).is_empty()).copied().collect();
        // Permanently fail all but one holder, then run maintenance.
        for h in &holders[..K - 1] {
            c.set_down(h, true);
        }
        c.replicate_all();
        // Bring nothing back: the value must now live on K fresh live nodes.
        let live_holders = ids
            .iter()
            .filter(|id| !c.nodes[*id].down && !c.nodes[*id].find_value(&key).is_empty())
            .count();
        assert!(live_holders >= K, "re-replication restored {live_holders} copies");
    }

    #[test]
    fn forged_routes_dropped_on_retrieval() {
        let (mut c, ids) = cluster(10);
        let mut forged = route(5);
        forged.name = Name::from_content(b"some other name"); // breaks binding
        let key = forged.name;
        c.publish(&ids[0], forged);
        let got = c.lookup(&ids[9], &key, 0);
        assert!(got.is_empty(), "unverifiable routes must not be returned");
    }

    #[test]
    fn bucket_index_sane() {
        let a = Name::from_content(b"a");
        assert_eq!(bucket_index(&a.xor_distance(&a)), None);
        let b = Name::from_content(b"b");
        let idx = bucket_index(&a.xor_distance(&b)).unwrap();
        assert!(idx < 256);
    }
}

//! # gdp-router
//!
//! The GDP-router and its routing ecosystem: the [`Fib`] forwarding table,
//! the [`GLookup`] verified routing database (one per routing domain, with
//! hierarchical recursion to the parent and a global root — paper §VII),
//! the control-plane [`messages`], and the sans-I/O [`Router`] state
//! machine with a simulator adapter.
//!
//! Routing goals implemented (paper §VII): "(a) provide locality of access
//! and enable 'anycast' for the layer above, and (b) ensure routing
//! security to prevent trivial man-in-the-middle attacks, i.e. ensure that
//! people can not simply claim any name they desire."

#![forbid(unsafe_code)]

pub mod attach;
pub mod dht;
pub mod fib;
pub mod glookup;
pub mod messages;
pub mod router;
pub mod simnode;
pub mod vcache;

pub use attach::{attach_directly, AttachStep, Attacher};
pub use dht::{DhtCluster, DhtNode};
pub use fib::{Fib, FibEntry, NeighborId};
pub use glookup::GLookup;
pub use messages::{AdvertiseMsg, ControlMsg, LookupMsg, VerifiedRoute};
pub use router::{is_data_plane, Outbox, RouteInstall, Router, RouterStats};
pub use simnode::SimRouter;
pub use vcache::{VerifyCache, DEFAULT_VERIFY_CACHE_CAP};

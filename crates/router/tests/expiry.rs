//! Advertisement lifecycle: expiry, purge, and extension records
//! (paper §VII: "Advertisements have corresponding expiration times, which
//! can be deferred as a group by appending extension records").

use gdp_capsule::MetadataBuilder;
use gdp_cert::{AdCert, CapsuleAdvert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_crypto::SigningKey;
use gdp_router::{attach_directly, Attacher, Router};
use gdp_wire::{Name, Pdu};

const CERT_BOUND: u64 = 1 << 50;

fn owner() -> SigningKey {
    SigningKey::from_seed(&[1u8; 32])
}

fn setup(advert_expires: u64) -> (Router, Attacher, Name) {
    let writer = SigningKey::from_seed(&[2u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&writer.verifying_key())
        .set_str("description", "expiry test")
        .sign(&owner());
    let server = PrincipalId::from_seed(PrincipalKind::Server, &[3u8; 32], "srv");
    let adcert =
        AdCert::issue(&owner(), meta.name(), server.name(), false, Scope::Global, CERT_BOUND);
    let entry = CapsuleAdvert {
        metadata: meta.clone(),
        chain: ServingChain::direct(adcert, server.principal().clone()),
    };
    let router = Router::from_seed(&[4u8; 32], "router");
    let attacher = Attacher::new(server, router.name(), vec![entry], advert_expires)
        .with_rtcert_expires(CERT_BOUND);
    (router, attacher, meta.name())
}

fn deliver(router: &mut Router, now: u64, neighbor: usize, pdu: Pdu) {
    let _ = router.handle_pdu(now, neighbor, pdu);
}

#[test]
fn routes_expire_without_extension() {
    let (mut router, mut attacher, capsule) = setup(1000);
    attach_directly(&mut router, 5, &mut attacher, 0).unwrap();
    assert!(router.fib().best(&capsule, 500).is_some());
    // Past the advertisement expiry: the route is dead and purgeable.
    assert!(router.fib().best(&capsule, 1001).is_none());
    router.purge_expired(1001);
    assert!(router.fib().is_empty());
    assert!(router.glookup().is_empty());
}

#[test]
fn extension_defers_whole_catalog() {
    let (mut router, mut attacher, capsule) = setup(1000);
    attach_directly(&mut router, 5, &mut attacher, 0).unwrap();
    // Defer to 5000 before the original expiry hits.
    let ext_pdu = attacher.extend(5000).expect("attached, so extendable");
    deliver(&mut router, 900, 5, ext_pdu);
    // Alive well past the original expiry — both the capsule and the
    // server's own name (group deferral).
    assert!(router.fib().best(&capsule, 3000).is_some());
    let server_name = router.fib().best(&capsule, 3000).unwrap().server;
    assert!(router.fib().best(&server_name, 3000).is_some());
    assert_eq!(router.glookup().lookup(&capsule, 3000).len(), 1);
    // But not past the new expiry.
    assert!(router.fib().best(&capsule, 5001).is_none());
}

#[test]
fn extension_cannot_exceed_certificate_bounds() {
    let (mut router, mut attacher, capsule) = setup(1000);
    attach_directly(&mut router, 5, &mut attacher, 0).unwrap();
    // Ask for an absurd deferral: clamped to the AdCert/RtCert bound.
    let ext_pdu = attacher.extend(u64::MAX).unwrap();
    deliver(&mut router, 900, 5, ext_pdu);
    assert!(router.fib().best(&capsule, CERT_BOUND - 1).is_some());
    assert!(router.fib().best(&capsule, CERT_BOUND + 1).is_none());
}

#[test]
fn forged_extension_ignored() {
    let (mut router, mut attacher, capsule) = setup(1000);
    attach_directly(&mut router, 5, &mut attacher, 0).unwrap();
    // An attacker on the same link forges an extension with its own key.
    let ext_pdu = attacher.extend(5000).unwrap();
    let mut forged = ext_pdu;
    // Corrupt the signature portion of the payload (last bytes). The
    // payload buffer is immutable/shared, so mutate an owned copy.
    let mut tampered = forged.payload.to_vec();
    let len = tampered.len();
    tampered[len - 10] ^= 0xff;
    forged.payload = tampered.into();
    let before = router.stats.adverts_rejected;
    deliver(&mut router, 900, 5, forged);
    assert_eq!(router.stats.adverts_rejected, before + 1);
    // Expiry unchanged.
    assert!(router.fib().best(&capsule, 1001).is_none());
}

#[test]
fn extension_from_wrong_neighbor_ignored() {
    let (mut router, mut attacher, capsule) = setup(1000);
    attach_directly(&mut router, 5, &mut attacher, 0).unwrap();
    let ext_pdu = attacher.extend(5000).unwrap();
    // Delivered from a neighbor that never attached: no catalog, no effect.
    deliver(&mut router, 99, 900, ext_pdu);
    assert!(router.fib().best(&capsule, 1001).is_none());
}

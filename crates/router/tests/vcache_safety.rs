//! Safety of the verification cache: a cache hit must never stand in for
//! a verification that would fail. Three attack surfaces are checked —
//! expiry (a cached digest must stop hitting once the underlying cert
//! expires), tampering (any flipped bit in the signed bytes changes the
//! digest, so the tampered object goes back through full verification
//! and is rejected), and a seeded chaos loop driving the cache against a
//! reference model across eviction and expiry churn.

use gdp_cert::{AdCert, CapsuleAdvert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_router::{attach_directly, vcache, Attacher, Router, VerifiedRoute, VerifyCache};
use gdp_wire::FastMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Expiry stamped on every certificate in the fixture route (µs).
const EXPIRES: u64 = 1_000_000;

/// A route carrying a real serving chain with a *finite* expiry,
/// produced through the actual attach path against a recording router.
fn finite_route() -> VerifiedRoute {
    let mut router = Router::from_seed(&[80u8; 32], "vcache router");
    router.record_installs(true);
    let owner = gdp_crypto::SigningKey::from_seed(&[81u8; 32]);
    let server = PrincipalId::from_seed(PrincipalKind::Server, &[82u8; 32], "vcache-srv");
    let meta = gdp_capsule::MetadataBuilder::new()
        .writer(&gdp_crypto::SigningKey::from_seed(&[83u8; 32]).verifying_key())
        .sign(&owner);
    let chain = ServingChain::direct(
        AdCert::issue(&owner, meta.name(), server.name(), false, Scope::Global, EXPIRES),
        server.principal().clone(),
    );
    let adverts = vec![CapsuleAdvert { metadata: meta, chain }];
    let mut attacher = Attacher::new(server, router.name(), adverts, EXPIRES);
    attach_directly(&mut router, 3, &mut attacher, 0).expect("attach");
    router
        .drain_installs()
        .into_iter()
        .map(|i| i.route)
        .find(|r| r.entry.is_some())
        .expect("attach installed a chained route")
}

#[test]
fn expired_cert_is_never_accepted_from_cache() {
    let route = finite_route();
    assert_eq!(route.expires, EXPIRES, "fixture expiry must drive the cache entry");
    let digest = vcache::route_digest(&route);

    let mut cache = VerifyCache::new(16);
    route.verify(1).expect("fresh route verifies");
    cache.insert(digest, vcache::route_expiry(&route));

    // While the certs live, the digest hits.
    assert!(cache.hit(&digest, EXPIRES));
    // One microsecond past expiry the cache must miss — and the full
    // verification path the caller falls back to must reject.
    assert!(!cache.hit(&digest, EXPIRES + 1), "cache accepted an expired cert");
    assert!(route.verify(EXPIRES + 1).is_err(), "full verify accepted an expired cert");
    // The expired entry was evicted on access; even a rewound clock
    // cannot resurrect it without a fresh full verification.
    assert!(!cache.hit(&digest, 1));
}

#[test]
fn flipped_bit_digest_never_hits() {
    let route = finite_route();
    let digest = vcache::route_digest(&route);
    let mut cache = VerifyCache::new(16);
    cache.insert(digest, vcache::route_expiry(&route));

    // Every single-bit perturbation of the digest misses.
    for byte in 0..32 {
        for bit in 0..8 {
            let mut flipped = digest;
            flipped[byte] ^= 1 << bit;
            assert!(!cache.hit(&flipped, 1), "flipped bit {byte}:{bit} hit the cache");
        }
    }
    // And a tampered *object* keys to a different digest, so it cannot
    // ride on the genuine entry: corrupt the RtCert signature and check
    // both that the digest moved and that full verification rejects it.
    let mut tampered = route.clone();
    tampered.rtcert.signature.0[0] ^= 0x01;
    let tampered_digest = vcache::route_digest(&tampered);
    assert_ne!(tampered_digest, digest, "tampering must move the cache key");
    assert!(!cache.hit(&tampered_digest, 1));
    assert!(tampered.verify(1).is_err(), "tampered route must fail full verification");
}

/// Chaos loop: random inserts, probes, and clock jumps against a small
/// cache, mirrored in an unbounded reference model. The cache may forget
/// (FIFO eviction, expiry) but must never hit on a digest the model says
/// is absent or expired — a false hit is a forged verification.
#[test]
fn chaos_cache_never_overclaims() {
    for seed in 0u64..20 {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + seed);
        let mut cache = VerifyCache::new(8);
        let mut model: FastMap<[u8; 32], u64> = FastMap::default();
        let mut now = 0u64;
        for _ in 0..2_000 {
            now += rng.gen_range(0..50u64);
            let mut digest = [0u8; 32];
            // A small digest universe forces collisions between inserts
            // and probes, so the loop actually exercises hits.
            digest[0] = rng.gen_range(0..32u8);
            digest = gdp_crypto::sha256(&digest);
            if rng.gen_range(0..100u32) < 40 {
                let expires = now + rng.gen_range(0..200u64);
                cache.insert(digest, expires);
                // Every insert stands for a successful full verification
                // valid until `expires`; a hit is forged only when `now`
                // is past *every* expiry ever legitimately recorded, so
                // the model keeps the max.
                let granted = model.entry(digest).or_insert(0);
                *granted = (*granted).max(expires);
            } else if cache.hit(&digest, now) {
                let granted = model.get(&digest).copied();
                assert!(
                    granted.is_some_and(|e| now <= e),
                    "seed {seed}: cache hit digest the model calls {} at now={now}",
                    if granted.is_some() { "expired" } else { "absent" },
                );
            }
            assert!(cache.len() <= 8, "seed {seed}: cache exceeded its bound");
        }
    }
}

//! End-to-end routing tests on the deterministic simulator: secure
//! advertisement over the network, hierarchical forwarding, anycast
//! locality, scope enforcement, and GLookupService recursion.

use gdp_capsule::{CapsuleMetadata, MetadataBuilder};
use gdp_cert::{AdCert, CapsuleAdvert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_crypto::SigningKey;
use gdp_net::{LinkSpec, NodeId, SimCtx, SimNet, SimNode};
use gdp_router::{AttachStep, Attacher, LookupMsg, Router, SimRouter};
use gdp_wire::{Name, Pdu, PduType, Wire};
use std::any::Any;

fn owner() -> SigningKey {
    SigningKey::from_seed(&[1u8; 32])
}
fn writer() -> SigningKey {
    SigningKey::from_seed(&[2u8; 32])
}

fn metadata(desc: &str) -> CapsuleMetadata {
    MetadataBuilder::new()
        .writer(&writer().verifying_key())
        .set_str("description", desc)
        .sign(&owner())
}

/// A simulator node that runs an attach handshake and then records
/// everything it receives. Stands in for a server or client endpoint.
struct EndpointNode {
    attacher: Option<Attacher>,
    router_neighbor: NodeId,
    pub attached: Option<Vec<Name>>,
    pub attach_error: Option<String>,
    pub received: Vec<Pdu>,
}

impl EndpointNode {
    fn new(attacher: Attacher, router_neighbor: NodeId) -> Box<EndpointNode> {
        Box::new(EndpointNode {
            attacher: Some(attacher),
            router_neighbor,
            attached: None,
            attach_error: None,
            received: Vec::new(),
        })
    }
}

impl SimNode for EndpointNode {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, _from: NodeId, pdu: Pdu) {
        if let Some(attacher) = self.attacher.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(p) => {
                    ctx.send(self.router_neighbor, p);
                    return;
                }
                AttachStep::Done(names) => {
                    self.attached = Some(names);
                    self.attacher = None;
                    return;
                }
                AttachStep::Failed(reason) => {
                    self.attach_error = Some(reason);
                    self.attacher = None;
                    return;
                }
                AttachStep::Ignored => {}
            }
        }
        self.received.push(pdu);
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, _token: u64) {
        // Timer 0 = kick off the handshake.
        if let Some(attacher) = self.attacher.as_ref() {
            ctx.send(self.router_neighbor, attacher.hello());
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn server_principal(seed: u8, label: &str) -> PrincipalId {
    PrincipalId::from_seed(PrincipalKind::Server, &[seed; 32], label)
}

fn capsule_advert(meta: &CapsuleMetadata, server: &PrincipalId, scope: Scope) -> CapsuleAdvert {
    let adcert = AdCert::issue(&owner(), meta.name(), server.name(), false, scope, 1 << 40);
    CapsuleAdvert {
        metadata: meta.clone(),
        chain: ServingChain::direct(adcert, server.principal().clone()),
    }
}

/// Builds: root router ── r1 ── endpoints, r2 ── endpoints topology.
struct Hierarchy {
    net: SimNet,
    root: NodeId,
    r1: NodeId,
    r2: NodeId,
    r1_name: Name,
    r2_name: Name,
}

fn hierarchy() -> Hierarchy {
    let mut net = SimNet::new(7);
    let root_router = Router::from_seed(&[10u8; 32], "root");
    let r1_router = Router::from_seed(&[11u8; 32], "domain-1");
    let r2_router = Router::from_seed(&[12u8; 32], "domain-2");
    let root_name = root_router.name();
    let r1_name = r1_router.name();
    let r2_name = r2_router.name();
    let root = net.add_node(SimRouter::new(root_router));
    let r1 = net.add_node(SimRouter::new(r1_router));
    let r2 = net.add_node(SimRouter::new(r2_router));
    net.connect(root, r1, LinkSpec::wan());
    net.connect(root, r2, LinkSpec::wan());
    net.node_mut::<SimRouter>(r1).router.set_parent(root);
    net.node_mut::<SimRouter>(r2).router.set_parent(root);
    let _ = root_name;
    Hierarchy { net, root, r1, r2, r1_name, r2_name }
}

fn add_endpoint(
    net: &mut SimNet,
    router_node: NodeId,
    router_name: Name,
    principal: PrincipalId,
    entries: Vec<CapsuleAdvert>,
) -> NodeId {
    let attacher = Attacher::new(principal, router_name, entries, 1 << 40);
    let node = net.add_node(EndpointNode::new(attacher, router_node));
    net.connect(node, router_node, LinkSpec::lan());
    net.inject_timer(node, 0, 0); // start handshake
    node
}

#[test]
fn advertisement_and_cross_domain_forwarding() {
    let mut h = hierarchy();
    let meta = metadata("cross-domain");
    let server = server_principal(20, "srv-d1");
    let server_name = server.name();
    let advert = capsule_advert(&meta, &server, Scope::Global);
    let server_node = add_endpoint(&mut h.net, h.r1, h.r1_name, server, vec![advert]);

    let client = PrincipalId::from_seed(PrincipalKind::Client, &[21u8; 32], "client-d2");
    let client_name = client.name();
    let client_node = add_endpoint(&mut h.net, h.r2, h.r2_name, client, vec![]);

    h.net.run_to_quiescence();
    assert!(h.net.node_mut::<EndpointNode>(server_node).attached.is_some());
    assert!(h.net.node_mut::<EndpointNode>(client_node).attached.is_some());

    // The capsule propagated to the root GLookupService (global scope).
    let now = h.net.now();
    let root_routes = h.net.node_mut::<SimRouter>(h.root).router.lookup_local(&meta.name(), now);
    assert_eq!(root_routes.len(), 1);
    root_routes[0].verify(now).unwrap();
    assert_eq!(root_routes[0].server_name(), server_name);

    // Client sends a data PDU addressed to the *capsule name*; it must
    // cross r2 → root → r1 → server.
    let data = Pdu::data(client_name, meta.name(), 99, b"read request".to_vec());
    h.net.inject(client_node, h.r2, data);
    h.net.run_to_quiescence();
    let server_rx = &h.net.node_mut::<EndpointNode>(server_node).received;
    assert_eq!(server_rx.len(), 1);
    assert_eq!(server_rx[0].seq, 99);

    // And the server can respond to the client's flat name.
    let resp = Pdu::data(server_name, client_name, 99, b"response".to_vec());
    h.net.inject(server_node, h.r1, resp);
    h.net.run_to_quiescence();
    let client_rx = &h.net.node_mut::<EndpointNode>(client_node).received;
    assert_eq!(client_rx.len(), 1);
    assert_eq!(client_rx[0].payload, b"response");
}

#[test]
fn anycast_prefers_local_replica() {
    let mut h = hierarchy();
    let meta = metadata("replicated");
    // Two replicas of the same capsule: one in domain 1, one in domain 2.
    let srv1 = server_principal(30, "replica-d1");
    let srv2 = server_principal(31, "replica-d2");
    let srv2_name = srv2.name();
    let advert1 = capsule_advert(&meta, &srv1, Scope::Global);
    let advert2 = capsule_advert(&meta, &srv2, Scope::Global);
    let _n1 = add_endpoint(&mut h.net, h.r1, h.r1_name, srv1, vec![advert1]);
    let n2 = add_endpoint(&mut h.net, h.r2, h.r2_name, srv2, vec![advert2]);

    let client = PrincipalId::from_seed(PrincipalKind::Client, &[32u8; 32], "client-d2");
    let client_node = add_endpoint(&mut h.net, h.r2, h.r2_name, client, vec![]);
    h.net.run_to_quiescence();

    // A request from domain 2 must be served by the domain-2 replica
    // (distance 0 at r2) without ever reaching the root.
    let before_root = h.net.node_mut::<SimRouter>(h.root).router.stats;
    let data = Pdu::data(Name::from_content(b"anon"), meta.name(), 5, vec![]);
    h.net.inject(client_node, h.r2, data);
    h.net.run_to_quiescence();
    let n2_rx = &h.net.node_mut::<EndpointNode>(n2).received;
    assert_eq!(n2_rx.len(), 1, "local replica should receive the request");
    let after_root = h.net.node_mut::<SimRouter>(h.root).router.stats;
    assert_eq!(
        before_root.forwarded + before_root.delivered_local,
        after_root.forwarded + after_root.delivered_local,
        "root router should not carry anycast-local traffic"
    );
    // The root still knows both replicas (for clients elsewhere).
    let now = h.net.now();
    let routes = h.net.node_mut::<SimRouter>(h.root).router.lookup_local(&meta.name(), now);
    assert_eq!(routes.len(), 2);
    assert!(routes.iter().any(|r| r.server_name() == srv2_name));
}

#[test]
fn scoped_capsule_stays_in_domain() {
    let mut h = hierarchy();
    let meta = metadata("factory-secret");
    let server = server_principal(40, "factory-server");
    // Scope: do not advertise beyond router r1 (the factory domain).
    let advert = capsule_advert(&meta, &server, Scope::Domain(h.r1_name));
    let _srv_node = add_endpoint(&mut h.net, h.r1, h.r1_name, server, vec![advert]);
    h.net.run_to_quiescence();

    let now = h.net.now();
    // r1 knows the capsule.
    assert!(!h.net.node_mut::<SimRouter>(h.r1).router.lookup_local(&meta.name(), now).is_empty());
    // The root must NOT know it.
    assert!(h.net.node_mut::<SimRouter>(h.root).router.lookup_local(&meta.name(), now).is_empty());
}

#[test]
fn forged_advertisement_rejected() {
    let mut h = hierarchy();
    let meta = metadata("victim");
    let legit = server_principal(50, "legit");
    let thief = server_principal(51, "thief");
    // Thief presents a chain delegated to the legit server.
    let adcert = AdCert::issue(&owner(), meta.name(), legit.name(), false, Scope::Global, 1 << 40);
    let stolen = CapsuleAdvert {
        metadata: meta.clone(),
        chain: ServingChain::direct(adcert, legit.principal().clone()),
    };
    let thief_node = add_endpoint(&mut h.net, h.r1, h.r1_name, thief, vec![stolen]);
    h.net.run_to_quiescence();

    let node = h.net.node_mut::<EndpointNode>(thief_node);
    assert!(node.attached.is_none());
    assert!(node.attach_error.is_some());
    let now = h.net.now();
    assert!(h.net.node_mut::<SimRouter>(h.r1).router.lookup_local(&meta.name(), now).is_empty());
    assert_eq!(h.net.node_mut::<SimRouter>(h.r1).router.stats.adverts_rejected, 1);
}

#[test]
fn lookup_recurses_to_parent() {
    let mut h = hierarchy();
    let meta = metadata("looked-up");
    let server = server_principal(60, "srv");
    let advert = capsule_advert(&meta, &server, Scope::Global);
    let _srv = add_endpoint(&mut h.net, h.r1, h.r1_name, server, vec![advert]);

    let client = PrincipalId::from_seed(PrincipalKind::Client, &[61u8; 32], "asker");
    let client_node = add_endpoint(&mut h.net, h.r2, h.r2_name, client.clone(), vec![]);
    h.net.run_to_quiescence();

    // r2 has no local route for the capsule; a Lookup query must recurse
    // via the root and come back verifiable.
    let query = LookupMsg::Query { query_id: 77, name: meta.name() };
    let pdu = Pdu {
        pdu_type: PduType::Lookup,
        src: client.name(),
        dst: h.r2_name,
        seq: 1,
        payload: query.to_wire().into(),
    };
    h.net.inject(client_node, h.r2, pdu);
    h.net.run_to_quiescence();

    let received = &h.net.node_mut::<EndpointNode>(client_node).received;
    let answer = received.iter().find(|p| p.pdu_type == PduType::Lookup).expect("lookup answer");
    match LookupMsg::from_wire(&answer.payload).unwrap() {
        LookupMsg::Answer { query_id, name, routes } => {
            assert_eq!(query_id, 77);
            assert_eq!(name, meta.name());
            assert_eq!(routes.len(), 1);
            routes[0].verify(h.net.now()).unwrap();
        }
        other => panic!("expected answer, got {other:?}"),
    }
    assert!(h.net.node_mut::<SimRouter>(h.r2).router.stats.lookups_escalated >= 1);
}

#[test]
fn unroutable_name_yields_error_pdu() {
    let mut h = hierarchy();
    let client = PrincipalId::from_seed(PrincipalKind::Client, &[70u8; 32], "lost");
    let client_name = client.name();
    let client_node = add_endpoint(&mut h.net, h.r2, h.r2_name, client, vec![]);
    h.net.run_to_quiescence();

    let ghost = Name::from_content(b"no such capsule");
    let data = Pdu::data(client_name, ghost, 3, vec![]);
    h.net.inject(client_node, h.r2, data);
    h.net.run_to_quiescence();

    let received = &h.net.node_mut::<EndpointNode>(client_node).received;
    let err = received
        .iter()
        .find(|p| p.pdu_type == PduType::Error)
        .expect("error PDU should be routed back to the source");
    assert_eq!(err.payload, ghost.0.to_vec());
    assert_eq!(err.seq, 3);
}

#[test]
fn router_crash_heals_via_second_replica() {
    let mut h = hierarchy();
    let meta = metadata("ha-capsule");
    let srv1 = server_principal(80, "r1-replica");
    let srv2 = server_principal(81, "r2-replica");
    let a1 = capsule_advert(&meta, &srv1, Scope::Global);
    let a2 = capsule_advert(&meta, &srv2, Scope::Global);
    let n1 = add_endpoint(&mut h.net, h.r1, h.r1_name, srv1, vec![a1]);
    let n2 = add_endpoint(&mut h.net, h.r2, h.r2_name, srv2, vec![a2]);
    let client = PrincipalId::from_seed(PrincipalKind::Client, &[82u8; 32], "c");
    let client_name = client.name();
    let client_node = add_endpoint(&mut h.net, h.r2, h.r2_name, client, vec![]);
    h.net.run_to_quiescence();

    // Partition the r2 replica away; its router notices via neighbor_down.
    h.net.set_link_up(n2, h.r2, false);
    h.net.node_mut::<SimRouter>(h.r2).router.neighbor_down(n2);

    let data = Pdu::data(client_name, meta.name(), 11, vec![]);
    h.net.inject(client_node, h.r2, data);
    h.net.run_to_quiescence();
    // The request must reach the remaining replica in domain 1.
    assert_eq!(h.net.node_mut::<EndpointNode>(n1).received.len(), 1);
}

//! Property test for the zero-copy data path: a batch of framed PDUs
//! decoded out of ONE shared source buffer, forwarded through a real
//! router, and re-encoded must be byte-identical to the original frames
//! — while every in-flight payload stays a refcounted window into that
//! same source allocation (no hidden copies).

use gdp_cert::{PrincipalId, PrincipalKind};
use gdp_router::{attach_directly, Attacher, Router};
use gdp_wire::frame::{decode_frame_shared, encode_frame, encode_frame_into};
use gdp_wire::{Bytes, Name, Pdu, MAX_FRAME};
use proptest::prelude::*;

/// A router with one directly-attached receiver, so Data PDUs addressed
/// to `recv` forward (rather than erroring on a FIB miss).
fn forwarding_router() -> (Router, Name) {
    let mut router = Router::from_seed(&[90u8; 32], "zc router");
    let recv = PrincipalId::from_seed(PrincipalKind::Client, &[91u8; 32], "zc sink");
    let recv_name = recv.name();
    let mut attacher = Attacher::new(recv, router.name(), vec![], 1 << 50);
    attach_directly(&mut router, 7, &mut attacher, 0).expect("attach");
    (router, recv_name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_forward_reencode_is_byte_identical(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..512), 1..8),
        seqs in proptest::collection::vec(any::<u64>(), 8),
    ) {
        let (mut router, recv_name) = forwarding_router();

        // One contiguous ingest buffer holding every frame, as the TCP
        // reader would accumulate it.
        let mut wire = Vec::new();
        let mut offsets = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            offsets.push(wire.len());
            encode_frame_into(
                &Pdu::data(Name::ZERO, recv_name, seqs[i], payload.clone()),
                &mut wire,
            );
        }
        let source = Bytes::from_vec(wire);

        // Decode ALL frames first and keep them in flight together: each
        // payload must be a window into the one shared allocation.
        let mut in_flight = Vec::new();
        let mut at = 0;
        for _ in &payloads {
            let (pdu, next) = decode_frame_shared(&source, at, MAX_FRAME).expect("decodes");
            in_flight.push((pdu, at, next));
            at = next;
        }
        prop_assert_eq!(at, source.len(), "every byte consumed");
        // source + one refcount per non-trivial decoded payload (header
        // fields are always copied out; only payload bytes are shared).
        prop_assert_eq!(source.ref_count(), 1 + payloads.len());

        for ((pdu, start, end), payload) in in_flight.into_iter().zip(&payloads) {
            prop_assert_eq!(pdu.payload.as_slice(), &payload[..]);
            let out = router.handle_pdu(1, 3, pdu);
            prop_assert_eq!(out.len(), 1, "forwarded exactly once");
            let (_, forwarded) = out.into_iter().next().unwrap();
            // Forwarding must not touch a byte: re-encoding reproduces
            // the original frame exactly.
            prop_assert_eq!(&encode_frame(&forwarded)[..], &source.as_slice()[start..end]);
            // …and the forwarded PDU still shares the source allocation.
            prop_assert!(forwarded.payload.ref_count() > 1, "payload was copied");
        }
    }
}

//! Criterion bench for ablation A3: per-response authentication cost —
//! Ed25519 signature vs flow-key HMAC (paper §V "Secure Responses"), plus
//! the underlying primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gdp_crypto::{aead, hmac, sha2, SigningKey};
use gdp_server::proto::{mac_response, response_transcript, sign_response};
use gdp_wire::Name;

fn response_auth(c: &mut Criterion) {
    let key = SigningKey::from_seed(&[3u8; 32]);
    let capsule = Name::from_content(b"bench");
    let body = vec![0u8; 1024];
    let mut group = c.benchmark_group("session/response_auth_1KiB");

    group.bench_function("sign", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sign_response(&key, &capsule, i, &body)
        });
    });
    let sig = sign_response(&key, &capsule, 0, &body);
    let vk = key.verifying_key();
    group.bench_function("verify", |b| {
        b.iter(|| {
            let t = response_transcript(&capsule, 0, &body);
            assert!(vk.verify(&t, &sig));
        });
    });
    group.bench_function("hmac", |b| {
        let flow = [9u8; 32];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            mac_response(&flow, &capsule, i, &body)
        });
    });
    group.finish();
}

fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/primitives");
    let data = vec![0u8; 4096];
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("sha256_4KiB", |b| b.iter(|| sha2::sha256(&data)));
    group.bench_function("hmac_sha256_4KiB", |b| b.iter(|| hmac::hmac_sha256(b"key", &data)));
    group.bench_function("chacha20poly1305_seal_4KiB", |b| {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        b.iter(|| aead::seal(&key, &nonce, b"", &data));
    });
    group.finish();

    let mut group = c.benchmark_group("crypto/ed25519");
    let key = SigningKey::from_seed(&[4u8; 32]);
    group.bench_function("sign_64B", |b| {
        b.iter(|| key.sign(b"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"))
    });
    let msg = b"hello";
    let sig = key.sign(msg);
    let vk = key.verifying_key();
    group.bench_function("verify", |b| b.iter(|| assert!(vk.verify(msg, &sig))));
    group.finish();
}

criterion_group!(benches, response_auth, primitives);
criterion_main!(benches);

//! Criterion bench for the Fig 8 case study at reduced model size (the
//! full 28/115 MB runs live in `cargo run -p gdp-bench --bin report -- fig8`).
//!
//! Measures wall-clock cost of simulating one store+load cycle per system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp_bench::fig8;
use gdp_sim::{BaselineWorld, Placement};

fn casestudy(c: &mut Criterion) {
    let model = 2_000_000usize;
    let mut group = c.benchmark_group("fig8/store_load_2MB");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("gdp", "cloud"), |b| {
        b.iter(|| fig8::gdp_run(Placement::CloudFromResidential, model, 1))
    });
    group.bench_function(BenchmarkId::new("gdp", "edge"), |b| {
        b.iter(|| fig8::gdp_run(Placement::EdgeLan, model, 1))
    });
    group.bench_function(BenchmarkId::new("s3", "cloud"), |b| {
        b.iter(|| fig8::baseline_run(BaselineWorld::object_store_cloud, model, 1))
    });
    group.bench_function(BenchmarkId::new("sshfs", "cloud"), |b| {
        b.iter(|| fig8::baseline_run(BaselineWorld::remote_fs_cloud, model, 1))
    });
    group.finish();
}

criterion_group!(benches, casestudy);
criterion_main!(benches);

//! Microbench for the storage engines' durable-append hot paths: one
//! group-commit batch (64 appends + one covering fsync) on the shared
//! segmented log vs one durably-acked append (write + fdatasync) on a
//! per-capsule `FileStore`. The full capsule-count sweep with asserted
//! floors lives in `report store`; this isolates the per-call costs.

use criterion::{criterion_group, criterion_main, Criterion};
use gdp_bench::storebench::GROUP_SIZE;
use gdp_capsule::{Record, RecordHash};
use gdp_crypto::SigningKey;
use gdp_store::{CapsuleStore, FileStore, FsyncPolicy, SegConfig, SegLog};
use gdp_wire::Name;
use std::path::PathBuf;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdp-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn store_engines(c: &mut Criterion) {
    let writer = SigningKey::from_seed(&[0xB5; 32]);
    let capsule = Name::from_content(b"bench-store-engine");
    let mut group = c.benchmark_group("store/durable_append");
    group.sample_size(20);

    let dir = bench_dir("seg");
    let scope = gdp_obs::Metrics::new().scope("store");
    let log = SegLog::open_with(&dir, SegConfig::default(), &scope).expect("open seg log");
    let mut handle = log.handle(capsule);
    let mut seq = 0u64;
    let mut prev = RecordHash::anchor(&capsule);
    let mut now_us = 0u64;
    group.bench_function("seg_group_commit_64", |b| {
        b.iter(|| {
            for _ in 0..GROUP_SIZE {
                seq += 1;
                let r = Record::create(&capsule, &writer, seq, 0, prev, vec![], vec![0xAB; 64]);
                prev = r.hash();
                handle.append_acked(&r).expect("append");
            }
            now_us += 5_000;
            log.flush_now(now_us).expect("flush");
        });
    });

    let dir = bench_dir("file");
    let mut store = FileStore::open(dir.join("bench.log"))
        .and_then(|s| s.with_policy(FsyncPolicy::Always))
        .expect("open file store");
    let mut seq = 0u64;
    let mut prev = RecordHash::anchor(&capsule);
    group.bench_function("file_fsync_always_1", |b| {
        b.iter(|| {
            seq += 1;
            let r = Record::create(&capsule, &writer, seq, 0, prev, vec![], vec![0xAB; 64]);
            prev = r.hash();
            store.append_acked(&r).expect("append");
        });
    });
    group.finish();
}

criterion_group!(benches, store_engines);
criterion_main!(benches);

//! Microbench for route-advertisement verification: the cold path (three
//! Ed25519 verifications down the serving chain) vs the cached path (a
//! SHA-256 digest of the advertisement plus an expiry lookup in the
//! router's verification cache — exactly what the router pays on a hit).

use criterion::{criterion_group, criterion_main, Criterion};
use gdp_bench::fig6::chained_route_fixture;
use gdp_router::{vcache, VerifyCache};

fn verify(c: &mut Criterion) {
    let route = chained_route_fixture();
    let mut group = c.benchmark_group("verify/route");
    group.sample_size(20);
    group.bench_function("cold_full_chain", |b| {
        b.iter(|| route.verify(1).expect("route verifies"));
    });
    let mut cache = VerifyCache::new(16);
    cache.insert(vcache::route_digest(&route), vcache::route_expiry(&route));
    group.bench_function("cached_digest_hit", |b| {
        b.iter(|| {
            // The hot path recomputes the digest: the cache is keyed by
            // content, never by pointer identity.
            assert!(cache.hit(&vcache::route_digest(&route), 1));
        });
    });
    group.finish();
}

criterion_group!(benches, verify);
criterion_main!(benches);

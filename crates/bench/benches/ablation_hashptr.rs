//! Criterion bench for ablation A1: append cost and proof-build cost per
//! hash-pointer strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdp_capsule::{CapsuleWriter, DataCapsule, MembershipProof, MetadataBuilder, PointerStrategy};
use gdp_crypto::SigningKey;

fn setup(strategy: &PointerStrategy, n: u64) -> DataCapsule {
    let owner = SigningKey::from_seed(&[1u8; 32]);
    let wk = SigningKey::from_seed(&[2u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&wk.verifying_key())
        .set_str("description", "bench")
        .sign(&owner);
    let mut capsule = DataCapsule::new(meta.clone()).unwrap();
    let mut writer = CapsuleWriter::new(&meta, wk, strategy.clone()).unwrap();
    for i in 0..n {
        capsule.ingest(writer.append(&i.to_be_bytes(), i).unwrap()).unwrap();
    }
    capsule
}

fn strategies() -> Vec<(&'static str, PointerStrategy)> {
    vec![
        ("chain", PointerStrategy::Chain),
        ("skiplist", PointerStrategy::SkipList),
        ("checkpoint64", PointerStrategy::Checkpoint { interval: 64 }),
    ]
}

fn append_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashptr/append");
    for (label, strategy) in strategies() {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let owner = SigningKey::from_seed(&[1u8; 32]);
            let wk = SigningKey::from_seed(&[2u8; 32]);
            let meta = MetadataBuilder::new()
                .writer(&wk.verifying_key())
                .set_str("description", "bench")
                .sign(&owner);
            let mut writer = CapsuleWriter::new(&meta, wk, strategy.clone()).unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                writer.append(&i.to_be_bytes(), i).unwrap()
            });
        });
    }
    group.finish();
}

fn proof_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashptr/proof_build_n1024");
    group.sample_size(20);
    for (label, strategy) in strategies() {
        let capsule = setup(&strategy, 1024);
        let hb = capsule.head_heartbeat().unwrap().unwrap();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| MembershipProof::build(&capsule, &hb, 1).unwrap());
        });
    }
    group.finish();
}

fn proof_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashptr/proof_verify_n1024");
    group.sample_size(20);
    for (label, strategy) in strategies() {
        let capsule = setup(&strategy, 1024);
        let hb = capsule.head_heartbeat().unwrap().unwrap();
        let proof = MembershipProof::build(&capsule, &hb, 1).unwrap();
        let name = capsule.name();
        let wk = *capsule.writer_key();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| proof.verify(&name, &wk).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, append_cost, proof_build, proof_verify);
criterion_main!(benches);

//! Microbenches for the wire codec: frame encode (allocating vs into a
//! reused scratch buffer) and frame decode (copying `Pdu::from_wire` vs
//! zero-copy `decode_frame_shared` over a refcounted buffer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdp_wire::frame::{decode_frame, decode_frame_shared, encode_frame, encode_frame_into};
use gdp_wire::{Bytes, Name, Pdu, MAX_FRAME};

fn sample_pdu(payload_len: usize) -> Pdu {
    Pdu::data(Name::from_content(b"src"), Name::from_content(b"dst"), 7, vec![0xabu8; payload_len])
}

fn encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/encode_frame");
    for size in [64usize, 1024, 10240] {
        let pdu = sample_pdu(size);
        group.throughput(Throughput::Bytes(pdu.wire_len() as u64));
        group.bench_with_input(BenchmarkId::new("alloc", size), &pdu, |b, pdu| {
            b.iter(|| encode_frame(pdu));
        });
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("into_scratch", size), &pdu, |b, pdu| {
            b.iter(|| {
                scratch.clear();
                encode_frame_into(pdu, &mut scratch);
                scratch.len()
            });
        });
    }
    group.finish();
}

fn decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire/decode_frame");
    for size in [64usize, 1024, 10240] {
        let frame = encode_frame(&sample_pdu(size));
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("copying", size), &frame, |b, frame| {
            b.iter(|| decode_frame(frame, MAX_FRAME).expect("decodes"));
        });
        let shared = Bytes::from_vec(frame.clone());
        group.bench_with_input(BenchmarkId::new("zero_copy", size), &shared, |b, shared| {
            b.iter(|| decode_frame_shared(shared, 0, MAX_FRAME).expect("decodes"));
        });
    }
    group.finish();
}

criterion_group!(benches, encode, decode);
criterion_main!(benches);

//! Criterion bench for Fig 6: real (wall-clock) router forwarding cost per
//! PDU size, plus the simulated 32×32 steady-state rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdp_cert::{PrincipalId, PrincipalKind};
use gdp_router::{attach_directly, Attacher, Router};
use gdp_wire::{Name, Pdu};

fn forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/forward_pdu");
    for size in [64usize, 256, 1024, 4096, 10240, 16384] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut router = Router::from_seed(&[61u8; 32], "bench router");
            let recv = PrincipalId::from_seed(PrincipalKind::Client, &[62u8; 32], "sink");
            let recv_name = recv.name();
            let mut attacher = Attacher::new(recv, router.name(), vec![], 1 << 50);
            attach_directly(&mut router, 7, &mut attacher, 0).expect("attach");
            let template = Pdu::data(Name::ZERO, recv_name, 0, vec![0u8; size]);
            b.iter(|| {
                let out = router.handle_pdu(1, 3, template.clone());
                assert_eq!(out.len(), 1);
                out
            });
        });
    }
    group.finish();
}

fn simulated_steady_state(c: &mut Criterion) {
    // Wall-clock cost of simulating the full 32×32 experiment (meta-bench:
    // how fast the simulator itself runs Fig 6).
    let mut group = c.benchmark_group("fig6/simulate_32x32");
    group.sample_size(10);
    for size in [64usize, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| gdp_bench::fig6::simulated(size, 20));
        });
    }
    group.finish();
}

criterion_group!(benches, forwarding, simulated_steady_state);
criterion_main!(benches);

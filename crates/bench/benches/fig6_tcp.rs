//! Fig 6 companion over real sockets: PDU forwarding rate through a
//! loopback TCP hop, per payload size.
//!
//! Where `fig6_forwarding` measures the router state machine in
//! isolation and the simulator end-to-end, this measures the deployable
//! transport path: frame encode → kernel TCP (loopback) → framed decode
//! on a hardened `FrameReader` — i.e. what a `gdpd` hop costs without
//! protocol work. Numbers are directly comparable with the in-process
//! `MemNet` hop to show what the socket boundary itself adds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdp_net::tcp::{TcpNet, TcpNetConfig};
use gdp_net::MemNet;
use gdp_wire::{Name, Pdu};
use std::time::Duration;

const SIZES: [usize; 5] = [64, 256, 1024, 4096, 16384];
/// PDUs per measured batch: enough to amortize the receive wakeup but
/// small enough to stay inside socket buffers (no backpressure stalls).
const BATCH: u64 = 64;

fn pdu(size: usize) -> Pdu {
    Pdu::data(
        Name::from_content(b"bench-src"),
        Name::from_content(b"bench-dst"),
        0,
        vec![0u8; size],
    )
}

fn tcp_hop(c: &mut Criterion) {
    let cfg = TcpNetConfig { poll_interval: Duration::from_millis(1), ..TcpNetConfig::default() };
    let a = TcpNet::bind_with("127.0.0.1:0".parse().unwrap(), cfg.clone()).expect("bind");
    let b = TcpNet::bind_with("127.0.0.1:0".parse().unwrap(), cfg).expect("bind");
    let b_addr = b.local_addr();
    // Warm the connection so dialing is outside the measurement.
    a.send(b_addr, pdu(16)).unwrap();
    b.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();

    let mut group = c.benchmark_group("fig6_tcp/loopback_hop");
    for size in SIZES {
        group.throughput(Throughput::Bytes((size as u64) * BATCH));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, &size| {
            let template = pdu(size);
            bench.iter(|| {
                for i in 0..BATCH {
                    let mut p = template.clone();
                    p.seq = i;
                    a.send(b_addr, p).expect("send");
                }
                for _ in 0..BATCH {
                    b.recv_timeout(Duration::from_secs(5)).expect("recv").expect("timeout");
                }
            });
        });
    }
    group.finish();
    a.shutdown();
    b.shutdown();
}

fn mem_hop(c: &mut Criterion) {
    let net = MemNet::new();
    let a = net.endpoint();
    let b = net.endpoint();

    let mut group = c.benchmark_group("fig6_tcp/memnet_hop");
    for size in SIZES {
        group.throughput(Throughput::Bytes((size as u64) * BATCH));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, &size| {
            let template = pdu(size);
            bench.iter(|| {
                for i in 0..BATCH {
                    let mut p = template.clone();
                    p.seq = i;
                    a.send(b.id, p).expect("send");
                }
                for _ in 0..BATCH {
                    b.recv_timeout(Duration::from_secs(5)).expect("recv").expect("timeout");
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, tcp_hop, mem_hop);
criterion_main!(benches);

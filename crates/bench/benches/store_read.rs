//! Microbench for the sealed-segment read fast lane: one warm point
//! read (block-cache hit, zero-copy body, CRC skipped via the verified
//! set) vs one uncached point read (cache disabled: a block fetch plus
//! an entry CRC per call), plus the warm 8-record range scan. The
//! capsule-count sweep with asserted floors lives in `report store`;
//! this isolates the per-call costs.

use criterion::{criterion_group, criterion_main, Criterion};
use gdp_bench::storebench;
use gdp_store::{CapsuleStore, FsyncPolicy, SegConfig};
use std::path::PathBuf;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdp-bench-read-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

const CAPSULES: usize = 256;
const PER_CAPSULE: u64 = 8;

fn cfg(read_cache_bytes: usize) -> SegConfig {
    SegConfig {
        policy: FsyncPolicy::DEFAULT_BATCH,
        compact_min_dead_pct: 0,
        read_cache_bytes,
        ..SegConfig::default()
    }
}

fn store_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/sealed_read");
    group.sample_size(20);

    let dir = bench_dir("warm");
    let (log, names) = storebench::seed_capsules(&dir, cfg(4 * 1024 * 1024), CAPSULES, 8);
    let handles: Vec<_> = names.iter().map(|n| log.handle(*n)).collect();
    for h in &handles {
        h.range(1, PER_CAPSULE).expect("warm fill");
    }
    let mut i = 0usize;
    group.bench_function("warm_point_read", |b| {
        b.iter(|| {
            i = (i + 1) % handles.len();
            handles[i].get_by_seq(PER_CAPSULE).expect("read").expect("record")
        });
    });
    let mut j = 0usize;
    group.bench_function("warm_range_8", |b| {
        b.iter(|| {
            j = (j + 1) % handles.len();
            handles[j].range(1, PER_CAPSULE).expect("range")
        });
    });

    let dir = bench_dir("uncached");
    let (log, names) = storebench::seed_capsules(&dir, cfg(0), CAPSULES, 8);
    let handles: Vec<_> = names.iter().map(|n| log.handle(*n)).collect();
    let mut k = 0usize;
    group.bench_function("uncached_point_read", |b| {
        b.iter(|| {
            k = (k + 1) % handles.len();
            handles[k].get_by_seq(PER_CAPSULE).expect("read").expect("record")
        });
    });
    group.finish();
}

criterion_group!(benches, store_reads);
criterion_main!(benches);

//! Ablation studies for the design choices the paper argues qualitatively
//! (DESIGN.md experiments A1–A4).

use crate::table::{rate, secs, Table};
use gdp_capsule::{CapsuleWriter, DataCapsule, MembershipProof, MetadataBuilder, PointerStrategy};
use gdp_crypto::SigningKey;
use gdp_server::{AckMode, SimServer};
use gdp_sim::GdpWorld;
use gdp_wire::Wire;

fn build_capsule(strategy: &PointerStrategy, n: u64) -> (DataCapsule, std::time::Duration) {
    let owner = SigningKey::from_seed(&[1u8; 32]);
    let writer_key = SigningKey::from_seed(&[2u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&writer_key.verifying_key())
        .set_str("description", "ablation")
        .sign(&owner);
    let mut capsule = DataCapsule::new(meta.clone()).unwrap();
    let mut writer = CapsuleWriter::new(&meta, writer_key, strategy.clone()).unwrap();
    let start = std::time::Instant::now();
    for i in 0..n {
        let r = writer.append(&i.to_be_bytes(), i).unwrap();
        capsule.ingest(r).unwrap();
    }
    (capsule, start.elapsed())
}

/// A1 — hash-pointer strategy: append cost vs proof size/hops vs writer
/// cache, across strategies (paper §V "How to choose the hash-pointers?").
pub fn hashptr(n: u64) {
    println!("\nA1 — hash-pointer strategies, {n} records (proof target: seq 1 from head)");
    let strategies: Vec<(&str, PointerStrategy)> = vec![
        ("chain", PointerStrategy::Chain),
        ("skiplist", PointerStrategy::SkipList),
        ("checkpoint/64", PointerStrategy::Checkpoint { interval: 64 }),
        ("stream[2,4]", PointerStrategy::Stream { lags: vec![2, 4] }),
    ];
    let mut t = Table::new(&["strategy", "append/s", "proof hops", "proof bytes", "writer cache"]);
    for (label, strategy) in strategies {
        let (capsule, elapsed) = build_capsule(&strategy, n);
        let hb = capsule.head_heartbeat().unwrap().unwrap();
        let proof = MembershipProof::build(&capsule, &hb, 1).unwrap();
        // Rebuild a writer to read its steady-state cache size.
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let wk = SigningKey::from_seed(&[2u8; 32]);
        let meta = MetadataBuilder::new()
            .writer(&wk.verifying_key())
            .set_str("description", "ablation")
            .sign(&owner);
        let mut w = CapsuleWriter::new(&meta, wk, strategy).unwrap();
        for i in 0..n {
            w.append(&i.to_be_bytes(), i).unwrap();
        }
        t.row(&[
            label.to_string(),
            rate(n as f64 / elapsed.as_secs_f64()),
            proof.hops().to_string(),
            proof.to_wire().len().to_string(),
            w.cache_size().to_string(),
        ]);
    }
    t.print();
    println!("shape: chain = O(n) proofs, cheapest appends; skiplist = O(log n) proofs.");
}

/// A2 — durability modes: append latency, and what a domain partition +
/// replica crash does to an acknowledged write (paper §VI-B).
pub fn durability() {
    println!("\nA2 — durability modes (hierarchy world: replica in each of 2 domains)");
    use gdp_caapi::CapsuleAccess;
    let mut t =
        Table::new(&["ack mode", "append latency (s)", "partitioned write", "acked data lost"]);
    for (label, mode) in
        [("Local", AckMode::Local), ("Quorum(1)", AckMode::Quorum(1)), ("All", AckMode::All)]
    {
        // Latency on a healthy deployment.
        let mut world = GdpWorld::hierarchy(21);
        world.ack_mode = mode;
        let owner = world.owner.clone();
        let writer_key = SigningKey::from_seed(&[5u8; 32]);
        let meta = MetadataBuilder::new()
            .writer(&writer_key.verifying_key())
            .set_str("description", "durability")
            .sign(&owner);
        let capsule = world.provision_capsule(&meta, writer_key, PointerStrategy::Chain).unwrap();
        let t0 = world.now();
        world.append(&capsule, &vec![7u8; 65_536]).unwrap();
        let latency = world.now() - t0;

        // Exposure: partition the client's domain from the root *before*
        // the write, then crash the serving replica. Local mode acks the
        // write and loses it; quorum modes refuse the write instead.
        let mut world = GdpWorld::hierarchy(22);
        world.ack_mode = mode;
        let owner = world.owner.clone();
        let writer_key = SigningKey::from_seed(&[5u8; 32]);
        let meta = MetadataBuilder::new()
            .writer(&writer_key.verifying_key())
            .set_str("description", "durability-exposure")
            .sign(&owner);
        let capsule = world.provision_capsule(&meta, writer_key, PointerStrategy::Chain).unwrap();
        let d2_router = world.routers[0].0;
        let root_router = world.routers[1].0;
        world.net.set_link_up(d2_router, root_router, false);
        let write = world.append(&capsule, b"precious");
        let (acked, lost) = match write {
            Ok(_) => {
                // Crash the serving replica; is the record anywhere else?
                let (survivor_node, _) = world.servers[0];
                world.net.run_to_quiescence();
                let survived = world
                    .net
                    .node_mut::<SimServer>(survivor_node)
                    .server
                    .capsule(&capsule)
                    .map(|c| c.len() == 1)
                    .unwrap_or(false);
                ("acked", !survived)
            }
            Err(_) => ("refused", false),
        };
        t.row(&[label.to_string(), secs(latency), acked.to_string(), lost.to_string()]);
    }
    t.print();
    println!("shape: Local acks fastest but can lose acked data under partition+crash;");
    println!("       quorum modes refuse the write instead (\"the writer must block and retry\", §VI-B).");
}

/// A3 — signatures vs HMAC steady state: per-response CPU cost and the
/// amortization the flow-key design buys (paper §V "Secure Responses").
pub fn session(flow_lengths: &[u32]) {
    println!("\nA3 — response authentication: signature vs flow-key HMAC");
    let key = SigningKey::from_seed(&[3u8; 32]);
    let capsule = gdp_wire::Name::from_content(b"ablation");
    let body = vec![0u8; 1024];

    let iters = 200u32;
    let start = std::time::Instant::now();
    for i in 0..iters {
        let _ = gdp_server::proto::sign_response(&key, &capsule, i as u64, &body);
    }
    let sign_us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let sig = gdp_server::proto::sign_response(&key, &capsule, 0, &body);
    let vk = key.verifying_key();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let t = gdp_server::proto::response_transcript(&capsule, 0, &body);
        assert!(vk.verify(&t, &sig));
    }
    let verify_us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let flow_key = [9u8; 32];
    let start = std::time::Instant::now();
    for i in 0..iters * 50 {
        let _ = gdp_server::proto::mac_response(&flow_key, &capsule, i as u64, &body);
    }
    let mac_us = start.elapsed().as_secs_f64() * 1e6 / (iters * 50) as f64;

    println!(
        "  sign: {sign_us:.1} µs   verify: {verify_us:.1} µs   hmac: {mac_us:.2} µs (1 KiB body)"
    );
    println!(
        "  byte overhead: signed ≈ {} B (sig+principal+chain)  hmac = 32 B (≈ TLS record MAC)",
        64 + 35 + 200
    );

    let mut t =
        Table::new(&["flow length", "all-signed µs/resp", "1 sig + hmac µs/resp", "speedup"]);
    for &n in flow_lengths {
        let all_signed = sign_us + verify_us;
        let amortized = ((sign_us + verify_us) + (n as f64 - 1.0) * 2.0 * mac_us) / n as f64;
        t.row(&[
            n.to_string(),
            format!("{all_signed:.1}"),
            format!("{amortized:.2}"),
            format!("{:.0}×", all_signed / amortized),
        ]);
    }
    t.print();
    println!("shape: crypto cost is incurred once per flow; steady state is HMAC-cheap.");
}

/// A4 — anycast locality: read latency with and without a local replica
/// (paper §VII goal (a) / Table I "Locality").
pub fn anycast() {
    println!("\nA4 — anycast locality (client in domain 2)");
    use gdp_caapi::CapsuleAccess;
    let mut t = Table::new(&["deployment", "read latency (ms)"]);

    // Replicas in both domains: anycast serves from the local one.
    let mut both = GdpWorld::hierarchy(31);
    let owner = both.owner.clone();
    let wk = SigningKey::from_seed(&[6u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&wk.verifying_key())
        .set_str("description", "anycast-both")
        .sign(&owner);
    let capsule = both.provision_capsule(&meta, wk, PointerStrategy::Chain).unwrap();
    both.append(&capsule, b"payload").unwrap();
    both.net.run_to_quiescence();
    let t0 = both.now();
    both.read(&capsule, 1).unwrap();
    let local_latency = both.now() - t0;
    t.row(&["replica in both domains".to_string(), format!("{:.1}", local_latency as f64 / 1e3)]);

    // Replica only in the remote domain: reads cross the root.
    let mut remote = GdpWorld::hierarchy(32);
    let owner = remote.owner.clone();
    let wk = SigningKey::from_seed(&[6u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&wk.verifying_key())
        .set_str("description", "anycast-remote")
        .sign(&owner);
    // Keep only the remote (domain-1) server for this capsule.
    remote.servers.truncate(1);
    let capsule = remote.provision_capsule(&meta, wk, PointerStrategy::Chain).unwrap();
    remote.append(&capsule, b"payload").unwrap();
    remote.net.run_to_quiescence();
    let t0 = remote.now();
    remote.read(&capsule, 1).unwrap();
    let remote_latency = remote.now() - t0;
    t.row(&[
        "replica in remote domain only".to_string(),
        format!("{:.1}", remote_latency as f64 / 1e3),
    ]);
    t.print();
    println!(
        "shape: a local replica cuts read latency ≈{:.0}× (two WAN hops avoided).",
        remote_latency as f64 / local_latency as f64
    );
}

/// A5 — read flow-control batch: how many records a reader requests per
/// round trip. Models the client-side window that turns per-record
/// request/response (chatty, SSHFS-like) into streaming (bulk) reads.
pub fn read_batch() {
    use gdp_caapi::GdpFs;
    use gdp_sim::{workload, Placement};
    println!("\nA5 — read batch size vs model-load time (8 MB file, cloud path)");
    let mut t = Table::new(&["batch (records)", "read (s)"]);
    for batch in [1u64, 2, 4, 8, 16, 32] {
        let mut world = GdpWorld::new(51, Placement::CloudFromResidential);
        world.read_batch = batch;
        let owner = world.owner.clone();
        let mut fs = GdpFs::format(world, owner).unwrap();
        let model = workload::blob(5, 8_000_000);
        fs.write_file("model.pb", &model).unwrap();
        let t0 = fs.backend_mut().now();
        let loaded = fs.read_file("model.pb").unwrap();
        let elapsed = fs.backend_mut().now() - t0;
        assert_eq!(loaded.len(), model.len());
        t.row(&[batch.to_string(), secs(elapsed)]);
    }
    t.print();
    println!("shape: batch=1 pays a WAN round trip per 256 KiB record; larger");
    println!("windows amortize it toward the bandwidth floor (≈0.64 s at 100 Mbps).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashptr_tradeoff_shape() {
        let (chain, _) = build_capsule(&PointerStrategy::Chain, 256);
        let (skip, _) = build_capsule(&PointerStrategy::SkipList, 256);
        let hb_c = chain.head_heartbeat().unwrap().unwrap();
        let hb_s = skip.head_heartbeat().unwrap().unwrap();
        let p_chain = MembershipProof::build(&chain, &hb_c, 1).unwrap();
        let p_skip = MembershipProof::build(&skip, &hb_s, 1).unwrap();
        assert!(p_skip.hops() * 4 < p_chain.hops(), "skiplist proofs must be far shorter");
    }

    #[test]
    fn durability_shape() {
        // Local-mode ack must be faster than All-mode ack in the hierarchy
        // world (All waits a WAN round trip for the peer replica).
        use gdp_caapi::CapsuleAccess;
        let run = |mode: AckMode| {
            let mut world = GdpWorld::hierarchy(41);
            world.ack_mode = mode;
            let owner = world.owner.clone();
            let wk = SigningKey::from_seed(&[5u8; 32]);
            let meta = MetadataBuilder::new()
                .writer(&wk.verifying_key())
                .set_str("description", "durability-shape")
                .sign(&owner);
            let capsule = world.provision_capsule(&meta, wk, PointerStrategy::Chain).unwrap();
            let t0 = world.now();
            world.append(&capsule, b"x").unwrap();
            world.now() - t0
        };
        let local = run(AckMode::Local);
        let all = run(AckMode::All);
        assert!(all > local * 2, "all {all} local {local}");
    }
}

//! Fig 6 reproduction: GDP-router forwarding rate and throughput as a
//! function of PDU size.
//!
//! The paper (§VIII) drives one router with 32 client and 32 server
//! processes and reports ~120k PDU/s for small PDUs, approaching 1 Gbps as
//! PDU size nears 10 kB. We reproduce the *shape* two ways:
//!
//! * [`simulated`] — the same 32×32 topology on the simulator, with the
//!   router's CPU modeled as `8.3 µs + 1 ns/byte` per PDU (calibrated to
//!   the paper's two asymptotes).
//! * [`in_process`] — the real, wall-clock forwarding rate of this
//!   implementation's `Router::handle_pdu` (also exercised by the
//!   Criterion bench `fig6_forwarding`).

use gdp_cert::{PrincipalId, PrincipalKind, Scope};
use gdp_net::{LinkSpec, NodeId, SimCtx, SimNet, SimNode};
use gdp_router::{AttachStep, Attacher, Router, SimRouter};
use gdp_wire::{Name, Pdu, PduType};
use std::any::Any;

/// Calibrated fixed CPU cost per forwarded PDU (µs).
pub const PER_PDU_US: u64 = 8;
/// Calibrated per-byte CPU cost (ns).
pub const PER_BYTE_NS: u64 = 7;

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Payload size in bytes.
    pub pdu_size: usize,
    /// Sustained forwarding rate in PDUs per second.
    pub pdus_per_sec: f64,
    /// Sustained goodput in bits per second.
    pub throughput_bps: f64,
}

/// Endpoint that attaches and then either blasts PDUs or counts arrivals.
struct LoadEndpoint {
    attacher: Option<Attacher>,
    router: NodeId,
    peer: Name,
    to_send: u32,
    pdu_size: usize,
    received: u64,
    attached: bool,
}

impl LoadEndpoint {
    fn new(
        attacher: Attacher,
        router: NodeId,
        peer: Name,
        to_send: u32,
        pdu_size: usize,
    ) -> Box<Self> {
        Box::new(LoadEndpoint {
            attacher: Some(attacher),
            router,
            peer,
            to_send,
            pdu_size,
            received: 0,
            attached: false,
        })
    }
}

impl SimNode for LoadEndpoint {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, _from: NodeId, pdu: Pdu) {
        if let Some(attacher) = self.attacher.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(p) => {
                    ctx.send(self.router, p);
                    return;
                }
                AttachStep::Done(_) => {
                    self.attached = true;
                    self.attacher = None;
                    return;
                }
                AttachStep::Failed(r) => panic!("attach failed: {r}"),
                AttachStep::Ignored => {}
            }
        }
        if pdu.pdu_type == PduType::Data {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        match token {
            0 => {
                if let Some(attacher) = self.attacher.as_ref() {
                    ctx.send(self.router, attacher.hello());
                }
            }
            1 => {
                // Blast all PDUs back to back; the sender link serializes.
                for i in 0..self.to_send {
                    let pdu = Pdu::data(Name::ZERO, self.peer, i as u64, vec![0u8; self.pdu_size]);
                    ctx.send(self.router, pdu);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs the simulated 32×32 experiment for one payload size.
pub fn simulated(pdu_size: usize, pdus_per_sender: u32) -> Fig6Point {
    let pairs = 32usize;
    let mut net = SimNet::new(6 + pdu_size as u64);
    let router = Router::from_seed(&[60u8; 32], "fig6 router");
    let router_name = router.name();
    let router_node = net.add_node(SimRouter::with_cpu_cost(router, PER_PDU_US, PER_BYTE_NS));

    // 10 Gbps access links so endpoints never bottleneck the router.
    let link = LinkSpec { latency_us: 50, bandwidth_bps: 10_000_000_000, loss: 0.0 };
    let mut senders = Vec::new();
    for i in 0..pairs {
        let recv_id = PrincipalId::from_seed(
            PrincipalKind::Client,
            &[(200 + i) as u8; 32],
            &format!("recv{i}"),
        );
        let recv_name = recv_id.name();
        let recv_attach = Attacher::new(recv_id, router_name, vec![], 1 << 50);
        let recv_node = net.add_node(LoadEndpoint::new(recv_attach, router_node, Name::ZERO, 0, 0));
        net.connect(recv_node, router_node, link);
        net.inject_timer(recv_node, 0, 0);

        let send_id = PrincipalId::from_seed(
            PrincipalKind::Client,
            &[(100 + i) as u8; 32],
            &format!("send{i}"),
        );
        let send_attach = Attacher::new(send_id, router_name, vec![], 1 << 50);
        let send_node = net.add_node(LoadEndpoint::new(
            send_attach,
            router_node,
            recv_name,
            pdus_per_sender,
            pdu_size,
        ));
        net.connect(send_node, router_node, link);
        net.inject_timer(send_node, 0, 0);
        senders.push((send_node, recv_node));
    }
    net.run_to_quiescence();
    let t0 = net.now();
    for (send_node, _) in &senders {
        net.inject_timer(*send_node, t0 + 1, 1);
    }
    net.run_to_quiescence();
    let elapsed = (net.now() - t0) as f64 / 1e6;

    let mut delivered = 0u64;
    for (_, recv_node) in &senders {
        delivered += net.node_mut::<LoadEndpoint>(*recv_node).received;
    }
    let pdus_per_sec = delivered as f64 / elapsed;
    let throughput_bps = pdus_per_sec * (pdu_size as f64) * 8.0;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps }
}

/// A router with one directly-attached endpoint, plus that endpoint's
/// name — the minimal forwarding fixture shared by the wall-clock runs.
fn forwarding_fixture(seed: u8) -> (Router, Name) {
    let mut router = Router::from_seed(&[seed; 32], "wall-clock router");
    let recv = PrincipalId::from_seed(PrincipalKind::Client, &[62u8; 32], "sink");
    let recv_name = recv.name();
    let mut attacher = Attacher::new(recv, router.name(), vec![], 1 << 50);
    gdp_router::attach_directly(&mut router, 7, &mut attacher, 0).expect("attach");
    (router, recv_name)
}

/// Measures the real wall-clock forwarding rate of the zero-copy fast
/// path for one payload size (single thread): the template's refcounted
/// payload is shared by every clone, and the outbox is reused across
/// iterations, so the steady-state loop performs no per-PDU allocation.
pub fn in_process(pdu_size: usize, iterations: u32) -> Fig6Point {
    let (mut router, recv_name) = forwarding_fixture(61);
    let template = Pdu::data(Name::ZERO, recv_name, 0, vec![0u8; pdu_size]);
    let mut out = gdp_router::Outbox::new();
    let start = std::time::Instant::now();
    let mut forwarded = 0u64;
    for i in 0..iterations {
        let mut pdu = template.clone();
        pdu.seq = i as u64;
        out.clear();
        router.handle_pdu_into(1, 3, pdu, &mut out);
        forwarded += out.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let pdus_per_sec = forwarded as f64 / elapsed;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps: pdus_per_sec * pdu_size as f64 * 8.0 }
}

/// Ablation: the pre-fast-path data plane — every PDU carries a freshly
/// allocated payload (as decode-by-copy used to produce) and every
/// `handle_pdu` call allocates its own outbox.
pub fn in_process_copying(pdu_size: usize, iterations: u32) -> Fig6Point {
    let (mut router, recv_name) = forwarding_fixture(61);
    let start = std::time::Instant::now();
    let mut forwarded = 0u64;
    for i in 0..iterations {
        let pdu = Pdu::data(Name::ZERO, recv_name, i as u64, vec![0u8; pdu_size]);
        let out = router.handle_pdu(1, 3, pdu);
        forwarded += out.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let pdus_per_sec = forwarded as f64 / elapsed;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps: pdus_per_sec * pdu_size as f64 * 8.0 }
}

/// A route carrying a real serving chain (capsule metadata + AdCert),
/// produced through the actual attach path against a recording router.
/// Shared by the in-library ablation and the criterion verify bench.
pub fn chained_route_fixture() -> gdp_router::VerifiedRoute {
    let mut router = Router::from_seed(&[65u8; 32], "verify router");
    router.record_installs(true);
    let owner = gdp_crypto::SigningKey::from_seed(&[66u8; 32]);
    let server = PrincipalId::from_seed(PrincipalKind::Server, &[67u8; 32], "verify-srv");
    let meta = gdp_capsule::MetadataBuilder::new()
        .writer(&gdp_crypto::SigningKey::from_seed(&[68u8; 32]).verifying_key())
        .sign(&owner);
    let chain = gdp_cert::ServingChain::direct(
        gdp_cert::AdCert::issue(&owner, meta.name(), server.name(), false, Scope::Global, 1 << 50),
        server.principal().clone(),
    );
    let adverts = vec![gdp_cert::CapsuleAdvert { metadata: meta, chain }];
    let mut attacher = Attacher::new(server, router.name(), adverts, 1 << 50);
    gdp_router::attach_directly(&mut router, 3, &mut attacher, 0).expect("attach");
    router
        .drain_installs()
        .into_iter()
        .map(|i| i.route)
        .find(|r| r.entry.is_some())
        .expect("attach installed a chained route")
}

/// Ablation: route verification, cold (full certificate-chain check per
/// operation) vs cached (digest + expiry lookup in the verification
/// cache). Returns `(cold_per_sec, cached_per_sec)` for a route carrying
/// a real serving chain, produced through the actual attach path.
pub fn verify_cold_vs_cached(iterations: u32) -> (f64, f64) {
    use gdp_router::vcache;

    let route = chained_route_fixture();

    let start = std::time::Instant::now();
    for _ in 0..iterations {
        route.verify(1).expect("route verifies");
    }
    let cold = iterations as f64 / start.elapsed().as_secs_f64();

    let mut cache = gdp_router::VerifyCache::new(16);
    cache.insert(vcache::route_digest(&route), vcache::route_expiry(&route));
    let start = std::time::Instant::now();
    let mut hits = 0u32;
    for _ in 0..iterations {
        // The cached path still pays the digest (the cache is keyed by
        // content, not by pointer) — this is exactly what the router does.
        if cache.hit(&vcache::route_digest(&route), 1) {
            hits += 1;
        }
    }
    let cached = hits as f64 / start.elapsed().as_secs_f64();
    assert_eq!(hits, iterations, "cache must hit every time");
    (cold, cached)
}

/// Ablation: aggregate forwarding rate with the data plane partitioned
/// over `shards` worker threads (each owning its own router, fed its
/// share of the load up front — the zero-queueing upper bound for the
/// sharded engine). With one core this is ≈ flat; with N cores it scales.
pub fn sharded(pdu_size: usize, iterations: u32, shards: usize) -> Fig6Point {
    let per_shard = iterations / shards.max(1) as u32;
    let start = std::time::Instant::now();
    let forwarded: u64 = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..shards)
            .map(|_| {
                scope.spawn(move || {
                    let (mut router, recv_name) = forwarding_fixture(61);
                    let template = Pdu::data(Name::ZERO, recv_name, 0, vec![0u8; pdu_size]);
                    let mut out = gdp_router::Outbox::new();
                    let mut forwarded = 0u64;
                    for i in 0..per_shard {
                        let mut pdu = template.clone();
                        pdu.seq = i as u64;
                        out.clear();
                        router.handle_pdu_into(1, 3, pdu, &mut out);
                        forwarded += out.len() as u64;
                    }
                    forwarded
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("shard worker")).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let pdus_per_sec = forwarded as f64 / elapsed;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps: pdus_per_sec * pdu_size as f64 * 8.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pdus_cpu_bound_large_pdus_bandwidth_bound() {
        let small = simulated(64, 60);
        let large = simulated(10_240, 60);
        // Small PDUs: rate near the CPU cap (1e6 / PER_PDU_US ≈ 125k/s),
        // throughput far below 1 Gbps.
        assert!(
            small.pdus_per_sec > 80_000.0 && small.pdus_per_sec < 140_000.0,
            "small rate {}",
            small.pdus_per_sec
        );
        assert!(small.throughput_bps < 200_000_000.0);
        // Large PDUs: close to 1 Gbps, far lower PDU rate.
        assert!(large.throughput_bps > 700_000_000.0, "large throughput {}", large.throughput_bps);
        assert!(large.pdus_per_sec < small.pdus_per_sec);
    }

    #[test]
    fn in_process_forwards() {
        let p = in_process(256, 2_000);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }

    #[test]
    fn copying_ablation_forwards_same_pdus() {
        let p = in_process_copying(256, 2_000);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }

    #[test]
    fn cached_verification_is_faster_than_cold() {
        let (cold, cached) = verify_cold_vs_cached(200);
        assert!(cold > 0.0 && cached > 0.0);
        // A digest check must beat three Ed25519 verifications by a wide
        // margin; 5× is a very conservative floor.
        assert!(cached > cold * 5.0, "cold {cold:.0}/s vs cached {cached:.0}/s");
    }

    #[test]
    fn sharded_runs_and_forwards_everything() {
        let p = sharded(64, 4_000, 2);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }
}

//! Fig 6 reproduction: GDP-router forwarding rate and throughput as a
//! function of PDU size.
//!
//! The paper (§VIII) drives one router with 32 client and 32 server
//! processes and reports ~120k PDU/s for small PDUs, approaching 1 Gbps as
//! PDU size nears 10 kB. We reproduce the *shape* two ways:
//!
//! * [`simulated`] — the same 32×32 topology on the simulator, with the
//!   router's CPU modeled as `8.3 µs + 1 ns/byte` per PDU (calibrated to
//!   the paper's two asymptotes).
//! * [`in_process`] — the real, wall-clock forwarding rate of this
//!   implementation's `Router::handle_pdu` (also exercised by the
//!   Criterion bench `fig6_forwarding`).

use gdp_cert::{PrincipalId, PrincipalKind, Scope};
use gdp_net::{LinkSpec, NodeId, SimCtx, SimNet, SimNode};
use gdp_router::{AttachStep, Attacher, Router, SimRouter};
use gdp_wire::{Name, Pdu, PduType};
use std::any::Any;

/// Calibrated fixed CPU cost per forwarded PDU (µs).
pub const PER_PDU_US: u64 = 8;
/// Calibrated per-byte CPU cost (ns).
pub const PER_BYTE_NS: u64 = 7;

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Payload size in bytes.
    pub pdu_size: usize,
    /// Sustained forwarding rate in PDUs per second.
    pub pdus_per_sec: f64,
    /// Sustained goodput in bits per second.
    pub throughput_bps: f64,
}

/// Endpoint that attaches and then either blasts PDUs or counts arrivals.
struct LoadEndpoint {
    attacher: Option<Attacher>,
    router: NodeId,
    peer: Name,
    to_send: u32,
    pdu_size: usize,
    received: u64,
    attached: bool,
}

impl LoadEndpoint {
    fn new(
        attacher: Attacher,
        router: NodeId,
        peer: Name,
        to_send: u32,
        pdu_size: usize,
    ) -> Box<Self> {
        Box::new(LoadEndpoint {
            attacher: Some(attacher),
            router,
            peer,
            to_send,
            pdu_size,
            received: 0,
            attached: false,
        })
    }
}

impl SimNode for LoadEndpoint {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, _from: NodeId, pdu: Pdu) {
        if let Some(attacher) = self.attacher.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(p) => {
                    ctx.send(self.router, p);
                    return;
                }
                AttachStep::Done(_) => {
                    self.attached = true;
                    self.attacher = None;
                    return;
                }
                AttachStep::Failed(r) => panic!("attach failed: {r}"),
                AttachStep::Ignored => {}
            }
        }
        if pdu.pdu_type == PduType::Data {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        match token {
            0 => {
                if let Some(attacher) = self.attacher.as_ref() {
                    ctx.send(self.router, attacher.hello());
                }
            }
            1 => {
                // Blast all PDUs back to back; the sender link serializes.
                for i in 0..self.to_send {
                    let pdu = Pdu::data(Name::ZERO, self.peer, i as u64, vec![0u8; self.pdu_size]);
                    ctx.send(self.router, pdu);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs the simulated 32×32 experiment for one payload size.
pub fn simulated(pdu_size: usize, pdus_per_sender: u32) -> Fig6Point {
    let pairs = 32usize;
    let mut net = SimNet::new(6 + pdu_size as u64);
    let router = Router::from_seed(&[60u8; 32], "fig6 router");
    let router_name = router.name();
    let router_node = net.add_node(SimRouter::with_cpu_cost(router, PER_PDU_US, PER_BYTE_NS));

    // 10 Gbps access links so endpoints never bottleneck the router.
    let link = LinkSpec { latency_us: 50, bandwidth_bps: 10_000_000_000, loss: 0.0 };
    let mut senders = Vec::new();
    for i in 0..pairs {
        let recv_id = PrincipalId::from_seed(
            PrincipalKind::Client,
            &[(200 + i) as u8; 32],
            &format!("recv{i}"),
        );
        let recv_name = recv_id.name();
        let recv_attach = Attacher::new(recv_id, router_name, vec![], 1 << 50);
        let recv_node = net.add_node(LoadEndpoint::new(recv_attach, router_node, Name::ZERO, 0, 0));
        net.connect(recv_node, router_node, link);
        net.inject_timer(recv_node, 0, 0);

        let send_id = PrincipalId::from_seed(
            PrincipalKind::Client,
            &[(100 + i) as u8; 32],
            &format!("send{i}"),
        );
        let send_attach = Attacher::new(send_id, router_name, vec![], 1 << 50);
        let send_node = net.add_node(LoadEndpoint::new(
            send_attach,
            router_node,
            recv_name,
            pdus_per_sender,
            pdu_size,
        ));
        net.connect(send_node, router_node, link);
        net.inject_timer(send_node, 0, 0);
        senders.push((send_node, recv_node));
    }
    net.run_to_quiescence();
    let t0 = net.now();
    for (send_node, _) in &senders {
        net.inject_timer(*send_node, t0 + 1, 1);
    }
    net.run_to_quiescence();
    let elapsed = (net.now() - t0) as f64 / 1e6;

    let mut delivered = 0u64;
    for (_, recv_node) in &senders {
        delivered += net.node_mut::<LoadEndpoint>(*recv_node).received;
    }
    let pdus_per_sec = delivered as f64 / elapsed;
    let throughput_bps = pdus_per_sec * (pdu_size as f64) * 8.0;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps }
}

/// A router with one directly-attached endpoint, plus that endpoint's
/// name — the minimal forwarding fixture shared by the wall-clock runs.
fn forwarding_fixture(seed: u8) -> (Router, Name) {
    let mut router = Router::from_seed(&[seed; 32], "wall-clock router");
    let recv = PrincipalId::from_seed(PrincipalKind::Client, &[62u8; 32], "sink");
    let recv_name = recv.name();
    let mut attacher = Attacher::new(recv, router.name(), vec![], 1 << 50);
    gdp_router::attach_directly(&mut router, 7, &mut attacher, 0).expect("attach");
    (router, recv_name)
}

/// Measures the real wall-clock forwarding rate of the zero-copy fast
/// path for one payload size (single thread): the template's refcounted
/// payload is shared by every clone, and the outbox is reused across
/// iterations, so the steady-state loop performs no per-PDU allocation.
pub fn in_process(pdu_size: usize, iterations: u32) -> Fig6Point {
    let (mut router, recv_name) = forwarding_fixture(61);
    let template = Pdu::data(Name::ZERO, recv_name, 0, vec![0u8; pdu_size]);
    let mut out = gdp_router::Outbox::new();
    let start = std::time::Instant::now();
    let mut forwarded = 0u64;
    for i in 0..iterations {
        let mut pdu = template.clone();
        pdu.seq = i as u64;
        out.clear();
        router.handle_pdu_into(1, 3, pdu, &mut out);
        forwarded += out.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let pdus_per_sec = forwarded as f64 / elapsed;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps: pdus_per_sec * pdu_size as f64 * 8.0 }
}

/// Ablation: the pre-fast-path data plane — every PDU carries a freshly
/// allocated payload (as decode-by-copy used to produce) and every
/// `handle_pdu` call allocates its own outbox.
pub fn in_process_copying(pdu_size: usize, iterations: u32) -> Fig6Point {
    let (mut router, recv_name) = forwarding_fixture(61);
    let start = std::time::Instant::now();
    let mut forwarded = 0u64;
    for i in 0..iterations {
        let pdu = Pdu::data(Name::ZERO, recv_name, i as u64, vec![0u8; pdu_size]);
        let out = router.handle_pdu(1, 3, pdu);
        forwarded += out.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let pdus_per_sec = forwarded as f64 / elapsed;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps: pdus_per_sec * pdu_size as f64 * 8.0 }
}

/// A route carrying a real serving chain (capsule metadata + AdCert),
/// produced through the actual attach path against a recording router.
/// Shared by the in-library ablation and the criterion verify bench.
pub fn chained_route_fixture() -> gdp_router::VerifiedRoute {
    let mut router = Router::from_seed(&[65u8; 32], "verify router");
    router.record_installs(true);
    let owner = gdp_crypto::SigningKey::from_seed(&[66u8; 32]);
    let server = PrincipalId::from_seed(PrincipalKind::Server, &[67u8; 32], "verify-srv");
    let meta = gdp_capsule::MetadataBuilder::new()
        .writer(&gdp_crypto::SigningKey::from_seed(&[68u8; 32]).verifying_key())
        .sign(&owner);
    let chain = gdp_cert::ServingChain::direct(
        gdp_cert::AdCert::issue(&owner, meta.name(), server.name(), false, Scope::Global, 1 << 50),
        server.principal().clone(),
    );
    let adverts = vec![gdp_cert::CapsuleAdvert { metadata: meta, chain }];
    let mut attacher = Attacher::new(server, router.name(), adverts, 1 << 50);
    gdp_router::attach_directly(&mut router, 3, &mut attacher, 0).expect("attach");
    router
        .drain_installs()
        .into_iter()
        .map(|i| i.route)
        .find(|r| r.entry.is_some())
        .expect("attach installed a chained route")
}

/// Ablation: route verification, cold (full certificate-chain check per
/// operation) vs cached (digest + expiry lookup in the verification
/// cache). Returns `(cold_per_sec, cached_per_sec)` for a route carrying
/// a real serving chain, produced through the actual attach path.
pub fn verify_cold_vs_cached(iterations: u32) -> (f64, f64) {
    use gdp_router::vcache;

    let route = chained_route_fixture();

    let start = std::time::Instant::now();
    for _ in 0..iterations {
        route.verify(1).expect("route verifies");
    }
    let cold = iterations as f64 / start.elapsed().as_secs_f64();

    let mut cache = gdp_router::VerifyCache::new(16);
    cache.insert(vcache::route_digest(&route), vcache::route_expiry(&route));
    let start = std::time::Instant::now();
    let mut hits = 0u32;
    for _ in 0..iterations {
        // The cached path still pays the digest (the cache is keyed by
        // content, not by pointer) — this is exactly what the router does.
        if cache.hit(&vcache::route_digest(&route), 1) {
            hits += 1;
        }
    }
    let cached = hits as f64 / start.elapsed().as_secs_f64();
    assert_eq!(hits, iterations, "cache must hit every time");
    (cold, cached)
}

/// How a [`ShardedPoint`] was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardedMode {
    /// End-to-end through the real engine (batcher → lanes → workers →
    /// egress), wall-clock. Requires at least `shards + 1` cores for
    /// `shards > 1` to mean anything.
    Live,
    /// Pipeline projection from two *measured* stage rates on this
    /// machine: `min(dispatch_rate, shards × worker_rate)`. Used when
    /// the host has fewer cores than `shards + 1`, where a wall-clock
    /// multi-thread run only measures the scheduler.
    Projected,
}

impl ShardedMode {
    /// Stable string for the benchmark JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardedMode::Live => "live",
            ShardedMode::Projected => "projected",
        }
    }
}

/// One sharded-ablation measurement.
#[derive(Clone, Copy, Debug)]
pub struct ShardedPoint {
    /// Shard count.
    pub shards: usize,
    /// Aggregate forwarding rate, PDUs/s.
    pub pdus_per_sec: f64,
    /// Live measurement or pipeline projection.
    pub mode: ShardedMode,
    /// Measured dispatch-stage rate (batcher + batched channel handoff),
    /// PDUs/s — the shared-stage ceiling of the pipeline.
    pub dispatch_rate: f64,
    /// Measured single-worker forwarding rate over real batches, PDUs/s.
    pub worker_rate: f64,
    /// Cores the host exposed during the run.
    pub cores: usize,
}

/// Egress that counts sends; the bench equivalent of the TCP port.
struct CountingEgress {
    sent: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

struct CountingPort {
    sent: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl gdp_node::Egress for CountingEgress {
    fn port(&self) -> Box<dyn gdp_node::EgressPort> {
        Box::new(CountingPort { sent: std::sync::Arc::clone(&self.sent) })
    }
}

impl gdp_node::EgressPort for CountingPort {
    fn send_to(&mut self, _addr: std::net::SocketAddr, _pdu: Pdu) {
        self.sent.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// The shared sharded-ablation fixture: a recording control router with
/// 32 attached destinations (uniform over shards), the drained installs,
/// and a nid map binding ids 0..=3 (0 = ingress peer, 3 = the attach
/// neighbor every route points at).
fn sharded_fixture(
    seed: &[u8; 32],
) -> (
    Vec<Name>,
    Vec<gdp_router::RouteInstall>,
    std::sync::Arc<gdp_node::NidMap<std::net::SocketAddr>>,
) {
    let mut control = Router::from_seed(seed, "sharded-control");
    control.record_installs(true);
    let mut dests = Vec::new();
    for d in 0..32u8 {
        let p = PrincipalId::from_seed(PrincipalKind::Server, &[70 + d; 32], "sharded-dst");
        dests.push(p.name());
        let mut attacher = Attacher::new(p, control.name(), vec![], 1 << 50);
        gdp_router::attach_directly(&mut control, 3, &mut attacher, 0).expect("attach");
    }
    let installs = control.drain_installs();
    let nids = std::sync::Arc::new(gdp_node::NidMap::default());
    for port in 0..4u16 {
        let addr: std::net::SocketAddr =
            format!("127.0.0.1:{}", 23000 + port).parse().expect("addr");
        nids.nid(addr);
    }
    (dests, installs, nids)
}

/// Prebuilds the load: `iterations` Data PDUs cycling the destination
/// set, payload refcount-shared from one template. Built outside every
/// timed region so both stages and both modes pay identical input cost
/// (none).
fn prebuilt_load(dests: &[Name], pdu_size: usize, iterations: u32) -> Vec<Pdu> {
    let template = Pdu::data(Name::ZERO, dests[0], 0, vec![0u8; pdu_size]);
    (0..iterations)
        .map(|i| {
            let mut pdu = template.clone();
            pdu.dst = dests[i as usize % dests.len()];
            pdu.seq = i as u64;
            pdu
        })
        .collect()
}

/// PDUs per timed pass: small enough that a pass's working set is
/// cache-resident (rebuilt untimed right before each pass), so the
/// stages measure per-PDU engine cost rather than DRAM streaming.
const SHARDED_CHUNK: u32 = 8_192;

/// Ablation: aggregate forwarding rate with the data plane partitioned
/// over `shards` run-to-completion workers fed in batches by the
/// per-connection readers.
///
/// Two stage rates are always measured live on this machine, over the
/// same prebuilt load, timed in cache-warm chunks:
///
/// * **dispatch** — one reader staging through the real
///   [`gdp_node::ShardBatcher`] into unconsumed lanes: shard hash,
///   staging, batched channel enqueue, counters. This is the per-reader
///   handoff capacity — exactly the quantity a per-PDU-handoff
///   regression destroys.
/// * **worker** — one real [`gdp_node::ShardState`] (seeded router +
///   mirrored routes + counting egress) run over real batches.
///
/// The reported point is:
///
/// * `shards == 1`, or enough cores: **live** — prebuilt PDUs staged
///   through the real engine end to end; the clock stops when the last
///   PDU leaves the counting egress.
/// * Otherwise: **projected** — on a host with fewer than `shards + 1`
///   cores a wall-clock N-thread run measures the scheduler, not the
///   engine, so the point is computed as `shards × min(dispatch,
///   worker)`: in the run-to-completion design every *connection* has
///   its own batcher (dispatch is not a shared serial stage — the
///   paper's fig6 topology drives 32 senders), so with at least one
///   sender per shard each worker's pipeline sustains `min(dispatch,
///   worker)` and shards scale additively. The perf gate additionally
///   pins the absolute projected rate, so a handoff regression that
///   degrades `dispatch` below `worker` fails the floor even though the
///   formula stays linear in `shards`.
pub fn sharded(pdu_size: usize, iterations: u32, shards: usize) -> ShardedPoint {
    use gdp_obs::Metrics;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let shards = shards.max(1);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seed = [61u8; 32];
    let (dests, installs, nids) = sharded_fixture(&seed);
    let batch_cap = gdp_node::DEFAULT_SHARD_BATCH;
    let chunk = SHARDED_CHUNK.min(iterations.max(1));

    // Worker stage, timed per cache-warm chunk.
    let worker_rate = {
        let mut router = Router::from_seed(&seed, "sharded-worker");
        for i in &installs {
            router.install_verified(i.neighbor, i.distance, &i.route, 0);
        }
        let sent = Arc::new(AtomicU64::new(0));
        let port = gdp_node::Egress::port(&CountingEgress { sent: Arc::clone(&sent) });
        let mut state = gdp_node::ShardState::new(router, Arc::clone(&nids), port);
        let mut timed = Duration::ZERO;
        let mut done = 0u32;
        while done < iterations {
            let n = chunk.min(iterations - done);
            let load = prebuilt_load(&dests, pdu_size, n);
            let mut batches: Vec<gdp_node::ShardBatch> = load
                .chunks(batch_cap)
                .map(|c| gdp_node::ShardBatch {
                    now: 1,
                    items: c.iter().map(|p| (0usize, p.clone())).collect(),
                })
                .collect();
            let start = Instant::now();
            for batch in &mut batches {
                state.process_batch(batch);
            }
            timed += start.elapsed();
            done += n;
        }
        assert_eq!(
            sent.load(Ordering::Relaxed),
            iterations as u64,
            "worker stage must forward everything"
        );
        iterations as f64 / timed.as_secs_f64()
    };

    // Dispatch stage: one reader staging into unconsumed lanes, drained
    // untimed between chunks so queued PDUs never accumulate into a
    // DRAM-bound working set.
    let dispatch_rate = {
        let metrics = Metrics::new();
        let (engine, lanes) = gdp_node::ShardedEngine::start_unconsumed(
            shards,
            batch_cap,
            &metrics,
            Arc::clone(&nids),
            Instant::now(),
        );
        let mut batcher = engine.batcher();
        let mut timed = Duration::ZERO;
        let mut done = 0u32;
        while done < iterations {
            let n = chunk.min(iterations - done);
            let load = prebuilt_load(&dests, pdu_size, n);
            let start = Instant::now();
            for pdu in load.into_iter() {
                batcher.stage(0, pdu);
            }
            batcher.flush();
            timed += start.elapsed();
            done += n;
            for lane in &lanes {
                while lane.try_recv().is_ok() {}
            }
        }
        drop(batcher);
        drop(lanes);
        engine.shutdown();
        iterations as f64 / timed.as_secs_f64()
    };

    let live = shards == 1 || cores > shards;
    let pdus_per_sec = if live {
        // End-to-end through the real engine; per chunk, the clock
        // stops when the last PDU of the chunk leaves the egress.
        let metrics = Metrics::new();
        let sent = Arc::new(AtomicU64::new(0));
        let egress = Arc::new(CountingEgress { sent: Arc::clone(&sent) });
        let engine = gdp_node::ShardedEngine::start(
            shards,
            batch_cap,
            &seed,
            "sharded-live",
            &metrics,
            Arc::clone(&nids),
            egress,
            Instant::now(),
        );
        for install in installs {
            engine.mirror_install(install, 0);
        }
        // Let workers apply the mirrors before load arrives.
        std::thread::sleep(Duration::from_millis(20));
        let mut batcher = engine.batcher();
        let mut timed = Duration::ZERO;
        let mut done = 0u32;
        while done < iterations {
            let n = chunk.min(iterations - done);
            let load = prebuilt_load(&dests, pdu_size, n);
            let expected = (done + n) as u64;
            let deadline = Instant::now() + Duration::from_secs(60);
            let start = Instant::now();
            for pdu in load.into_iter() {
                batcher.stage(0, pdu);
            }
            batcher.flush();
            while sent.load(Ordering::Relaxed) < expected && Instant::now() < deadline {
                std::thread::yield_now();
            }
            timed += start.elapsed();
            done += n;
        }
        let forwarded = sent.load(Ordering::Relaxed);
        drop(batcher);
        engine.shutdown();
        assert_eq!(forwarded, iterations as u64, "live run must forward everything");
        iterations as f64 / timed.as_secs_f64()
    } else {
        // Pipeline projection; see the function docs.
        shards as f64 * dispatch_rate.min(worker_rate)
    };

    ShardedPoint {
        shards,
        pdus_per_sec,
        mode: if live { ShardedMode::Live } else { ShardedMode::Projected },
        dispatch_rate,
        worker_rate,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pdus_cpu_bound_large_pdus_bandwidth_bound() {
        let small = simulated(64, 60);
        let large = simulated(10_240, 60);
        // Small PDUs: rate near the CPU cap (1e6 / PER_PDU_US ≈ 125k/s),
        // throughput far below 1 Gbps.
        assert!(
            small.pdus_per_sec > 80_000.0 && small.pdus_per_sec < 140_000.0,
            "small rate {}",
            small.pdus_per_sec
        );
        assert!(small.throughput_bps < 200_000_000.0);
        // Large PDUs: close to 1 Gbps, far lower PDU rate.
        assert!(large.throughput_bps > 700_000_000.0, "large throughput {}", large.throughput_bps);
        assert!(large.pdus_per_sec < small.pdus_per_sec);
    }

    #[test]
    fn in_process_forwards() {
        let p = in_process(256, 2_000);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }

    #[test]
    fn copying_ablation_forwards_same_pdus() {
        let p = in_process_copying(256, 2_000);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }

    #[test]
    fn cached_verification_is_faster_than_cold() {
        let (cold, cached) = verify_cold_vs_cached(200);
        assert!(cold > 0.0 && cached > 0.0);
        // A digest check must beat three Ed25519 verifications by a wide
        // margin; 5× is a very conservative floor.
        assert!(cached > cold * 5.0, "cold {cold:.0}/s vs cached {cached:.0}/s");
    }

    #[test]
    fn sharded_runs_and_forwards_everything() {
        let p = sharded(64, 4_000, 2);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
        assert!(p.dispatch_rate > 0.0 && p.worker_rate > 0.0);
        // Whichever mode ran, the projection inputs must be sane: the
        // batched dispatch stage must clear the worker stage, otherwise
        // sharding can never pay off.
        assert!(
            p.dispatch_rate > p.worker_rate,
            "dispatch {:.0}/s not above worker {:.0}/s",
            p.dispatch_rate,
            p.worker_rate
        );
    }

    #[test]
    fn sharded_single_shard_is_live() {
        let p = sharded(64, 4_000, 1);
        assert_eq!(p.mode, ShardedMode::Live);
        assert_eq!(p.shards, 1);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }
}

//! Fig 6 reproduction: GDP-router forwarding rate and throughput as a
//! function of PDU size.
//!
//! The paper (§VIII) drives one router with 32 client and 32 server
//! processes and reports ~120k PDU/s for small PDUs, approaching 1 Gbps as
//! PDU size nears 10 kB. We reproduce the *shape* two ways:
//!
//! * [`simulated`] — the same 32×32 topology on the simulator, with the
//!   router's CPU modeled as `8.3 µs + 1 ns/byte` per PDU (calibrated to
//!   the paper's two asymptotes).
//! * [`in_process`] — the real, wall-clock forwarding rate of this
//!   implementation's `Router::handle_pdu` (also exercised by the
//!   Criterion bench `fig6_forwarding`).

use gdp_cert::{PrincipalId, PrincipalKind};
use gdp_net::{LinkSpec, NodeId, SimCtx, SimNet, SimNode};
use gdp_router::{AttachStep, Attacher, Router, SimRouter};
use gdp_wire::{Name, Pdu, PduType};
use std::any::Any;

/// Calibrated fixed CPU cost per forwarded PDU (µs).
pub const PER_PDU_US: u64 = 8;
/// Calibrated per-byte CPU cost (ns).
pub const PER_BYTE_NS: u64 = 7;

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Payload size in bytes.
    pub pdu_size: usize,
    /// Sustained forwarding rate in PDUs per second.
    pub pdus_per_sec: f64,
    /// Sustained goodput in bits per second.
    pub throughput_bps: f64,
}

/// Endpoint that attaches and then either blasts PDUs or counts arrivals.
struct LoadEndpoint {
    attacher: Option<Attacher>,
    router: NodeId,
    peer: Name,
    to_send: u32,
    pdu_size: usize,
    received: u64,
    attached: bool,
}

impl LoadEndpoint {
    fn new(
        attacher: Attacher,
        router: NodeId,
        peer: Name,
        to_send: u32,
        pdu_size: usize,
    ) -> Box<Self> {
        Box::new(LoadEndpoint {
            attacher: Some(attacher),
            router,
            peer,
            to_send,
            pdu_size,
            received: 0,
            attached: false,
        })
    }
}

impl SimNode for LoadEndpoint {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, _from: NodeId, pdu: Pdu) {
        if let Some(attacher) = self.attacher.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(p) => {
                    ctx.send(self.router, p);
                    return;
                }
                AttachStep::Done(_) => {
                    self.attached = true;
                    self.attacher = None;
                    return;
                }
                AttachStep::Failed(r) => panic!("attach failed: {r}"),
                AttachStep::Ignored => {}
            }
        }
        if pdu.pdu_type == PduType::Data {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        match token {
            0 => {
                if let Some(attacher) = self.attacher.as_ref() {
                    ctx.send(self.router, attacher.hello());
                }
            }
            1 => {
                // Blast all PDUs back to back; the sender link serializes.
                for i in 0..self.to_send {
                    let pdu = Pdu::data(Name::ZERO, self.peer, i as u64, vec![0u8; self.pdu_size]);
                    ctx.send(self.router, pdu);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs the simulated 32×32 experiment for one payload size.
pub fn simulated(pdu_size: usize, pdus_per_sender: u32) -> Fig6Point {
    let pairs = 32usize;
    let mut net = SimNet::new(6 + pdu_size as u64);
    let router = Router::from_seed(&[60u8; 32], "fig6 router");
    let router_name = router.name();
    let router_node = net.add_node(SimRouter::with_cpu_cost(router, PER_PDU_US, PER_BYTE_NS));

    // 10 Gbps access links so endpoints never bottleneck the router.
    let link = LinkSpec { latency_us: 50, bandwidth_bps: 10_000_000_000, loss: 0.0 };
    let mut senders = Vec::new();
    for i in 0..pairs {
        let recv_id = PrincipalId::from_seed(
            PrincipalKind::Client,
            &[(200 + i) as u8; 32],
            &format!("recv{i}"),
        );
        let recv_name = recv_id.name();
        let recv_attach = Attacher::new(recv_id, router_name, vec![], 1 << 50);
        let recv_node = net.add_node(LoadEndpoint::new(recv_attach, router_node, Name::ZERO, 0, 0));
        net.connect(recv_node, router_node, link);
        net.inject_timer(recv_node, 0, 0);

        let send_id = PrincipalId::from_seed(
            PrincipalKind::Client,
            &[(100 + i) as u8; 32],
            &format!("send{i}"),
        );
        let send_attach = Attacher::new(send_id, router_name, vec![], 1 << 50);
        let send_node = net.add_node(LoadEndpoint::new(
            send_attach,
            router_node,
            recv_name,
            pdus_per_sender,
            pdu_size,
        ));
        net.connect(send_node, router_node, link);
        net.inject_timer(send_node, 0, 0);
        senders.push((send_node, recv_node));
    }
    net.run_to_quiescence();
    let t0 = net.now();
    for (send_node, _) in &senders {
        net.inject_timer(*send_node, t0 + 1, 1);
    }
    net.run_to_quiescence();
    let elapsed = (net.now() - t0) as f64 / 1e6;

    let mut delivered = 0u64;
    for (_, recv_node) in &senders {
        delivered += net.node_mut::<LoadEndpoint>(*recv_node).received;
    }
    let pdus_per_sec = delivered as f64 / elapsed;
    let throughput_bps = pdus_per_sec * (pdu_size as f64) * 8.0;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps }
}

/// Measures the real wall-clock forwarding rate of `Router::handle_pdu`
/// for one payload size (single thread).
pub fn in_process(pdu_size: usize, iterations: u32) -> Fig6Point {
    let mut router = Router::from_seed(&[61u8; 32], "wall-clock router");
    // Attach one endpoint so the destination resolves in the FIB.
    let recv = PrincipalId::from_seed(PrincipalKind::Client, &[62u8; 32], "sink");
    let recv_name = recv.name();
    let mut attacher = Attacher::new(recv, router.name(), vec![], 1 << 50);
    gdp_router::attach_directly(&mut router, 7, &mut attacher, 0).expect("attach");

    let template = Pdu::data(Name::ZERO, recv_name, 0, vec![0u8; pdu_size]);
    let start = std::time::Instant::now();
    let mut forwarded = 0u64;
    for i in 0..iterations {
        let mut pdu = template.clone();
        pdu.seq = i as u64;
        let out = router.handle_pdu(1, 3, pdu);
        forwarded += out.len() as u64;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let pdus_per_sec = forwarded as f64 / elapsed;
    Fig6Point { pdu_size, pdus_per_sec, throughput_bps: pdus_per_sec * pdu_size as f64 * 8.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pdus_cpu_bound_large_pdus_bandwidth_bound() {
        let small = simulated(64, 60);
        let large = simulated(10_240, 60);
        // Small PDUs: rate near the CPU cap (1e6 / PER_PDU_US ≈ 125k/s),
        // throughput far below 1 Gbps.
        assert!(
            small.pdus_per_sec > 80_000.0 && small.pdus_per_sec < 140_000.0,
            "small rate {}",
            small.pdus_per_sec
        );
        assert!(small.throughput_bps < 200_000_000.0);
        // Large PDUs: close to 1 Gbps, far lower PDU rate.
        assert!(large.throughput_bps > 700_000_000.0, "large throughput {}", large.throughput_bps);
        assert!(large.pdus_per_sec < small.pdus_per_sec);
    }

    #[test]
    fn in_process_forwards() {
        let p = in_process(256, 2_000);
        assert!(p.pdus_per_sec > 10_000.0, "rate {}", p.pdus_per_sec);
    }
}

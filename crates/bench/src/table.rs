//! Minimal aligned-text table printer for benchmark reports.

/// A simple column-aligned table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with 2 decimals.
pub fn secs(micros: u64) -> String {
    format!("{:.2}", micros as f64 / 1e6)
}

/// Formats a rate with thousands separators-ish precision.
pub fn rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".to_string(), "1".to_string()]);
        t.row(&["longer".to_string(), "22".to_string()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn formats() {
        assert_eq!(secs(1_500_000), "1.50");
        assert_eq!(rate(120_000.0), "120.0k");
        assert_eq!(rate(1_200_000_000.0), "1.20G");
    }
}

//! Fig 8 reproduction: the machine-learning case study (§IX).
//!
//! "Read/write times (seconds) ... comparing GDP to other options. We show
//! a 28 MB (left) and a 115 MB (right) model (averaged over 5 runs).
//! Smaller is better." Systems compared: GDP and SSHFS on cloud
//! infrastructure, S3, then GDP and SSHFS on edge infrastructure.
//!
//! Expected shape (paper): on the cloud path the GDP lands between SSHFS
//! and S3; on the edge path everything is orders of magnitude faster.

use crate::table::{secs, Table};
use gdp_caapi::GdpFs;
use gdp_net::SimTime;
use gdp_sim::baselines::BaselineWorld;
use gdp_sim::{workload, GdpWorld, Placement};
use gdp_wire::Name;

/// One measured system/size cell.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Cell {
    /// Virtual seconds to store the model.
    pub write_us: SimTime,
    /// Virtual seconds to load the model.
    pub read_us: SimTime,
}

/// Measures the GDP path (fs CAAPI over the full simulated stack).
pub fn gdp_run(placement: Placement, model_bytes: usize, runs: u32) -> Fig8Cell {
    let mut write_total = 0u64;
    let mut read_total = 0u64;
    for run in 0..runs {
        let world = GdpWorld::new(80 + run as u64, placement);
        let owner = world.owner.clone();
        let mut fs = GdpFs::format(world, owner).expect("fs");
        let model = workload::blob(run as u64, model_bytes);
        let t0 = fs.backend_mut().now();
        fs.write_file("model.pb", &model).expect("write");
        let t1 = fs.backend_mut().now();
        let loaded = fs.read_file("model.pb").expect("read");
        let t2 = fs.backend_mut().now();
        assert_eq!(loaded.len(), model.len());
        write_total += t1 - t0;
        read_total += t2 - t1;
    }
    Fig8Cell { write_us: write_total / runs as u64, read_us: read_total / runs as u64 }
}

/// Measures a baseline (S3-like or SSHFS-like) transfer.
pub fn baseline_run(
    make: impl Fn(u64) -> BaselineWorld,
    model_bytes: usize,
    runs: u32,
) -> Fig8Cell {
    let mut write_total = 0u64;
    let mut read_total = 0u64;
    for run in 0..runs {
        let mut world = make(90 + run as u64);
        let object = Name::from_content(b"model.pb");
        let model = workload::blob(run as u64, model_bytes);
        write_total += world.put(object, &model);
        let (loaded, t) = world.get(object, model.len());
        assert_eq!(loaded.len(), model.len());
        read_total += t;
    }
    Fig8Cell { write_us: write_total / runs as u64, read_us: read_total / runs as u64 }
}

/// All five systems for one model size.
pub fn run_size(model_bytes: usize, runs: u32) -> Vec<(&'static str, Fig8Cell)> {
    vec![
        ("GDP (cloud)", gdp_run(Placement::CloudFromResidential, model_bytes, runs)),
        ("S3", baseline_run(BaselineWorld::object_store_cloud, model_bytes, runs)),
        ("SSHFS (cloud)", baseline_run(BaselineWorld::remote_fs_cloud, model_bytes, runs)),
        ("GDP (edge)", gdp_run(Placement::EdgeLan, model_bytes, runs)),
        ("SSHFS (edge)", baseline_run(BaselineWorld::remote_fs_edge, model_bytes, runs)),
    ]
}

/// Prints the full Fig 8 table for both model sizes.
pub fn report(runs: u32) {
    for (label, size) in
        [("28 MB model", workload::MODEL_SMALL), ("115 MB model", workload::MODEL_LARGE)]
    {
        println!("\nFig 8 — {label} (avg over {runs} runs, virtual seconds; smaller is better)");
        let mut t = Table::new(&["system", "write (s)", "read (s)"]);
        for (name, cell) in run_size(size, runs) {
            t.row(&[name.to_string(), secs(cell.write_us), secs(cell.read_us)]);
        }
        t.print();
    }
    println!(
        "\nshape check: GDP(cloud) between SSHFS(cloud) and S3; edge ≫ cloud.\n\
         (absolute values are simulator-calibrated; see EXPERIMENTS.md)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline shape of Fig 8 on a scaled-down model (2 MB, 1 run) so
    /// the test stays fast; the full sizes run in `report`.
    #[test]
    fn fig8_shape_holds_at_small_scale() {
        let size = 2_000_000;
        let gdp_cloud = gdp_run(Placement::CloudFromResidential, size, 1);
        let s3 = baseline_run(BaselineWorld::object_store_cloud, size, 1);
        let sshfs_cloud = baseline_run(BaselineWorld::remote_fs_cloud, size, 1);
        let gdp_edge = gdp_run(Placement::EdgeLan, size, 1);

        // GDP between SSHFS and S3 on the cloud path (reads and writes).
        assert!(
            sshfs_cloud.read_us < gdp_cloud.read_us && gdp_cloud.read_us < s3.read_us,
            "read ordering: sshfs {} gdp {} s3 {}",
            sshfs_cloud.read_us,
            gdp_cloud.read_us,
            s3.read_us
        );
        assert!(
            sshfs_cloud.write_us < gdp_cloud.write_us && gdp_cloud.write_us < s3.write_us,
            "write ordering: sshfs {} gdp {} s3 {}",
            sshfs_cloud.write_us,
            gdp_cloud.write_us,
            s3.write_us
        );
        // Edge is far faster than cloud (the gap widens with model size;
        // at the full 28/115 MB it is orders of magnitude — see `report`).
        assert!(
            gdp_edge.read_us * 5 < gdp_cloud.read_us,
            "edge {} vs cloud {}",
            gdp_edge.read_us,
            gdp_cloud.read_us
        );
        assert!(gdp_edge.write_us * 10 < gdp_cloud.write_us);
    }
}

//! # gdp-bench
//!
//! Benchmark harness reproducing the paper's evaluation artifacts. The
//! `report` binary regenerates each figure/table as a text series (see
//! DESIGN.md, "Per-experiment index"); Criterion benches in `benches/`
//! measure the real CPU-bound costs.

#![forbid(unsafe_code)]

pub mod ablations;
pub mod fig6;
pub mod fig8;
pub mod overload;
pub mod storebench;
pub mod table;

pub use table::Table;

//! Overload curve: goodput vs offered load through a budgeted
//! DataCapsule-server (DESIGN.md, "Overload & admission").
//!
//! A closed client↔server loop (the production sans-I/O state machines,
//! no fabric) is driven at offered-load multiples of the server's
//! per-tick append budget. Arrivals queue open-loop at `multiplier ×
//! budget` per tick; every queued write is attempted each tick in chain
//! order, so the server's budget gate answers the excess with typed
//! `Nack{Busy}` frames. The shape this measures is the whole point of
//! typed shedding: goodput saturates at the budget and *stays there* —
//! a server without the gate would instead collapse under the
//! verification cost of traffic it cannot commit.
//!
//! Every run self-validates its conservation laws before the caller
//! writes `BENCH_overload.json`: attempts = acked + shed at every
//! point, nothing sheds below capacity, and the saturated goodput never
//! drops below the configured budget.

use gdp_capsule::{MetadataBuilder, PointerStrategy};
use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_client::{ClientEvent, GdpClient};
use gdp_crypto::SigningKey;
use gdp_server::{AckMode, DataCapsuleServer};
use gdp_wire::Pdu;
use std::collections::VecDeque;

const FOREVER: u64 = 1 << 50;

/// Virtual tick length; matches the simulator's maintenance cadence.
pub const TICK_US: u64 = 200_000;

/// One measured point on the goodput curve.
#[derive(Debug, Clone)]
pub struct OverloadPoint {
    /// Offered load as a multiple of the append budget.
    pub multiplier: u64,
    /// Writes that arrived (multiplier × budget × ticks).
    pub offered: u64,
    /// Append attempts sent (arrivals plus budget-refused re-offers).
    pub attempts: u64,
    /// Appends committed and acked.
    pub acked: u64,
    /// Attempts refused with `Nack{Busy}`.
    pub shed: u64,
    /// Arrivals still queued when the window closed.
    pub backlog: u64,
    /// Acked writes per virtual second.
    pub goodput_per_sec: f64,
}

/// A closed loop of the production client and server state machines at
/// one offered-load multiplier.
fn run_point(budget: u64, multiplier: u64, ticks: u64) -> OverloadPoint {
    let owner = SigningKey::from_seed(&[0x51u8; 32]);
    let writer_key = SigningKey::from_seed(&[0x52u8; 32]);
    let sid = PrincipalId::from_seed(PrincipalKind::Server, &[0x53u8; 32], "overload server");
    let meta = MetadataBuilder::new()
        .writer(&writer_key.verifying_key())
        .set_str("description", "overload bench")
        .sign(&owner);
    let capsule = meta.name();
    let mut server = DataCapsuleServer::new(sid.clone());
    let chain = ServingChain::direct(
        AdCert::issue(&owner, capsule, sid.name(), false, Scope::Global, FOREVER),
        sid.principal().clone(),
    );
    server.host(meta.clone(), chain, vec![]).expect("host overload capsule");
    server.set_overload_policy(budget, TICK_US / 4);
    let mut client = GdpClient::from_seed(&[0x54u8; 32], "overload client");
    client.register_writer(&meta, writer_key, PointerStrategy::Chain).expect("register writer");

    // FIFO of unacked writes in chain order; commits are always a queue
    // prefix because the budget admits the first `budget` attempts of
    // each tick and attempts run front-to-back.
    let mut queue: VecDeque<(Pdu, u64)> = VecDeque::new();
    let (mut offered, mut attempts, mut acked, mut shed) = (0u64, 0u64, 0u64, 0u64);
    for tick in 0..ticks {
        let now = tick * TICK_US;
        let _ = server.tick(now);
        for _ in 0..multiplier * budget {
            let (pdu, record) =
                client.append(capsule, b"overload", now, AckMode::Local).expect("signed append");
            queue.push_back((pdu, record.header.seq));
            offered += 1;
        }
        let mut i = 0;
        while i < queue.len() {
            let (pdu, want) = queue[i].clone();
            attempts += 1;
            let (mut got_ack, mut got_nack) = (false, false);
            for reply in server.handle_pdu(now, pdu) {
                for ev in client.handle_pdu(now, reply) {
                    match ev {
                        ClientEvent::AppendAcked { seq, .. } if seq == want => got_ack = true,
                        ClientEvent::Backpressure { .. } => got_nack = true,
                        other => panic!("overload bench: unexpected client event {other:?}"),
                    }
                }
            }
            if got_ack {
                acked += 1;
                queue.remove(i);
            } else {
                assert!(got_nack, "overload bench: attempt neither acked nor Nacked");
                shed += 1;
                i += 1;
            }
        }
    }
    let secs = (ticks * TICK_US) as f64 / 1e6;
    OverloadPoint {
        multiplier,
        offered,
        attempts,
        acked,
        shed,
        backlog: queue.len() as u64,
        goodput_per_sec: acked as f64 / secs,
    }
}

/// Measures the goodput curve and asserts its conservation laws: these
/// are the self-validation gates behind `BENCH_overload.json`.
pub fn curve(budget: u64, multipliers: &[u64], ticks: u64) -> Vec<OverloadPoint> {
    let points: Vec<OverloadPoint> =
        multipliers.iter().map(|&m| run_point(budget, m, ticks)).collect();
    for p in &points {
        assert_eq!(
            p.attempts,
            p.acked + p.shed,
            "overload x{}: attempts leaked past the ack/Nack split",
            p.multiplier
        );
        assert_eq!(
            p.offered,
            p.acked + p.backlog,
            "overload x{}: arrivals neither acked nor queued",
            p.multiplier
        );
        if p.multiplier <= 1 {
            assert_eq!(p.shed, 0, "overload x{}: shed below capacity", p.multiplier);
        } else {
            assert!(p.shed > 0, "overload x{}: overload never shed", p.multiplier);
            // Saturation plateau: the budget keeps being served in full —
            // goodput degrades to the floor, never through it.
            assert_eq!(
                p.acked,
                budget * ticks,
                "overload x{}: goodput collapsed below the budget",
                p.multiplier
            );
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_shape_saturates_at_budget() {
        let points = curve(2, &[1, 2, 4], 6);
        assert_eq!(points.len(), 3);
        // At capacity everything acks; above it goodput stays pinned to
        // the budget while shed grows with the multiplier.
        assert_eq!(points[0].acked, points[0].offered);
        assert_eq!(points[1].acked, points[2].acked);
        assert!(points[2].shed > points[1].shed);
        assert!(points[2].goodput_per_sec > 0.0);
    }
}

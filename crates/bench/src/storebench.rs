//! Storage-engine benchmark: the shared segmented group-commit log vs
//! per-capsule file stores, compared **at equal durability** — every
//! append in the timed region is acked durable (fsynced) before it
//! counts. That is the comparison the engine exists for: `FileStore`
//! with `fsync = always` pays one `fdatasync` per record per file (plus
//! an open/scan/close cycle per append once the capsule count exceeds
//! the fd budget), while the segmented engine batches every capsule's
//! appends into one segment write and one covering fsync.
//!
//! Recovery is measured the same way the engine bounds it: the segmented
//! log replays only the checkpointed tail (asserted via
//! [`RecoveryStats::tail_entries`], not wall-clock), while the file
//! store re-scans its entire log.

use gdp_capsule::{Record, RecordHash, RecordHeader};
use gdp_crypto::{sha256, Signature, SigningKey};
use gdp_store::{
    AppendAck, CapsuleStore, FileStore, FsyncPolicy, RecoveryStats, SegConfig, SegLog,
};
use gdp_wire::{Bytes, Name};
use std::path::Path;
use std::time::Instant;

/// Appends per covering flush in the segmented timed loop — the batch a
/// 5 ms group-commit window collects at the measured rates.
pub const GROUP_SIZE: usize = 64;

/// Open file stores the file engine may keep resident; beyond this the
/// bench models a bounded-fd node (open + append + fsync + close per
/// append), which is what a real deployment at 100k capsules does.
pub const FD_BUDGET: usize = 4096;

/// Workload the perf-smoke store floor is recorded at — and re-measured
/// at, so the comparison is like-for-like.
pub const FLOOR_CAPSULES: usize = 1_000;
/// Appends in the floor measurement.
pub const FLOOR_APPENDS: usize = 5_000;

/// One engine's measured side of an append comparison.
#[derive(Clone, Copy, Debug)]
pub struct EngineSide {
    /// Durably-acked appends per second over the whole timed region.
    pub per_sec: f64,
    /// 99th-percentile append→durable-ack latency (µs).
    pub p99_us: u64,
}

/// Both engines at one capsule count.
#[derive(Clone, Copy, Debug)]
pub struct AppendPoint {
    /// Logical streams the appends round-robin over.
    pub capsules: usize,
    /// Total appends in the timed region.
    pub appends: usize,
    pub file: EngineSide,
    pub seg: EngineSide,
}

impl AppendPoint {
    /// Segmented-over-file speedup on acked appends/s.
    pub fn speedup(&self) -> f64 {
        self.seg.per_sec / self.file.per_sec
    }
}

/// Crash-recovery comparison at one log size.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPoint {
    /// Records in the log before the simulated crash.
    pub records: u64,
    /// Records appended after the last segmented checkpoint.
    pub tail: u64,
    /// File-store reopen time (scans all `records`), µs.
    pub file_us: u64,
    /// Segmented reopen time (replays only `tail`), µs.
    pub seg_us: u64,
    /// What the segmented recovery actually did.
    pub seg_stats: RecoveryStats,
}

/// Pre-signs `total` records round-robin over `capsules` writer chains,
/// so signing cost never pollutes the timed append region. One writer
/// key serves every chain — the store layer never verifies signatures.
fn mk_workload(capsules: usize, total: usize) -> (Vec<Name>, Vec<Record>) {
    let writer = SigningKey::from_seed(&[0xBE; 32]);
    let names: Vec<Name> =
        (0..capsules).map(|i| Name::from_content(format!("bench-cap-{i}").as_bytes())).collect();
    let mut seqs = vec![0u64; capsules];
    let mut prevs: Vec<RecordHash> = names.iter().map(RecordHash::anchor).collect();
    let mut records = Vec::with_capacity(total);
    for i in 0..total {
        let c = i % capsules;
        seqs[c] += 1;
        let r = Record::create(
            &names[c],
            &writer,
            seqs[c],
            0,
            prevs[c],
            vec![],
            format!("store bench payload {i}").into_bytes(),
        );
        prevs[c] = r.hash();
        records.push(r);
    }
    (names, records)
}

fn p99(mut latencies: Vec<u64>) -> u64 {
    latencies.sort_unstable();
    if latencies.is_empty() {
        return 0;
    }
    latencies[(latencies.len() - 1) * 99 / 100]
}

/// File engine, durably acked: `fsync = always`, one log file per
/// capsule. Stores stay open up to [`FD_BUDGET`] capsules; beyond that
/// every append is an open/append/close cycle.
fn bench_file(dir: &Path, names: &[Name], records: &[Record]) -> EngineSide {
    let path_of = |name: &Name| dir.join("file-engine").join(format!("{}.log", name.to_hex()));
    let resident = names.len() <= FD_BUDGET;
    let mut open: Vec<Option<FileStore>> = Vec::new();
    if resident {
        for name in names {
            let s = FileStore::open(path_of(name))
                .and_then(|s| s.with_policy(FsyncPolicy::Always))
                .expect("open file store");
            open.push(Some(s));
        }
    }
    let mut lat = Vec::with_capacity(records.len());
    let start = Instant::now();
    for (i, r) in records.iter().enumerate() {
        let t0 = Instant::now();
        let c = i % names.len();
        if resident {
            let store = open[c].as_mut().expect("resident store");
            assert_eq!(store.append_acked(r).expect("append"), AppendAck::Durable);
        } else {
            let mut store = FileStore::open(path_of(&names[c]))
                .and_then(|s| s.with_policy(FsyncPolicy::Always))
                .expect("open file store");
            assert_eq!(store.append_acked(r).expect("append"), AppendAck::Durable);
        }
        lat.push(t0.elapsed().as_micros() as u64);
    }
    let secs = start.elapsed().as_secs_f64();
    EngineSide { per_sec: records.len() as f64 / secs.max(1e-9), p99_us: p99(lat) }
}

/// Segmented engine, durably acked: appends batch into the shared log
/// and a covering `flush_now` every [`GROUP_SIZE`] appends makes them
/// durable; a record's latency runs from its append to that flush.
fn bench_seg(dir: &Path, names: &[Name], records: &[Record]) -> EngineSide {
    let scope = gdp_obs::Metrics::new().scope("store");
    let cfg = SegConfig { policy: FsyncPolicy::DEFAULT_BATCH, ..SegConfig::default() };
    let log = SegLog::open_with(dir.join("seg-engine"), cfg, &scope).expect("open seg log");
    let mut handles: Vec<_> = names.iter().map(|n| log.handle(*n)).collect();
    let mut lat = Vec::with_capacity(records.len());
    let mut pending: Vec<Instant> = Vec::with_capacity(GROUP_SIZE);
    let mut now_us = 0u64;
    let start = Instant::now();
    for (i, r) in records.iter().enumerate() {
        let c = i % names.len();
        pending.push(Instant::now());
        match handles[c].append_acked(r).expect("append") {
            AppendAck::Pending(_) | AppendAck::Durable => {}
        }
        if pending.len() >= GROUP_SIZE || i == records.len() - 1 {
            now_us += 5_000;
            log.flush_now(now_us).expect("flush");
            for t0 in pending.drain(..) {
                lat.push(t0.elapsed().as_micros() as u64);
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    EngineSide { per_sec: records.len() as f64 / secs.max(1e-9), p99_us: p99(lat) }
}

/// Runs both engines over the same pre-signed workload in fresh
/// subdirectories of `dir`.
pub fn append_comparison(dir: &Path, capsules: usize, appends: usize) -> AppendPoint {
    let (names, records) = mk_workload(capsules, appends);
    let file = bench_file(dir, &names, &records);
    let seg = bench_seg(dir, &names, &records);
    AppendPoint { capsules, appends, file, seg }
}

/// Quick segmented-only re-measurement (the perf-smoke probe).
pub fn seg_append_rate(dir: &Path, capsules: usize, appends: usize) -> f64 {
    let (names, records) = mk_workload(capsules, appends);
    bench_seg(dir, &names, &records).per_sec
}

/// Builds a segmented log of `records` entries with a checkpoint
/// covering all but the last `tail`, plus a file-store log of the same
/// `records` count, then measures both engines' reopen (crash-recovery)
/// time. The segmented bound is asserted structurally: recovery must
/// replay exactly `tail` entries and never fall back to a full scan.
pub fn recovery_comparison(dir: &Path, records: u64, tail: u64) -> RecoveryPoint {
    assert!(tail < records);
    let streams = 16usize;
    let (names, all) = mk_workload(streams, records as usize);

    // Segmented: checkpoint after `records - tail`, then the tail.
    let seg_dir = dir.join(format!("seg-recover-{records}"));
    let scope = gdp_obs::Metrics::new().scope("store");
    let cfg = SegConfig { policy: FsyncPolicy::DEFAULT_BATCH, ..SegConfig::default() };
    {
        let log = SegLog::open_with(&seg_dir, cfg.clone(), &scope).expect("open seg log");
        let mut handles: Vec<_> = names.iter().map(|n| log.handle(*n)).collect();
        let mut now_us = 0u64;
        for (i, r) in all.iter().enumerate() {
            handles[i % streams].append_acked(r).expect("append");
            if i as u64 + 1 == records - tail {
                now_us += 5_000;
                log.checkpoint_now(now_us).expect("checkpoint");
            }
        }
        now_us += 5_000;
        log.flush_now(now_us).expect("final flush");
    }
    let t0 = Instant::now();
    let log = SegLog::open_with(&seg_dir, cfg, &scope).expect("reopen seg log");
    let seg_us = t0.elapsed().as_micros() as u64;
    let seg_stats = log.recovery_stats();
    assert!(!seg_stats.full_scan, "recovery bench: checkpoint was not used");
    assert_eq!(
        seg_stats.tail_entries, tail,
        "recovery bench: replayed tail != appended tail (bounded recovery is broken)"
    );

    // File store: one log holding the same record count; recovery always
    // re-scans everything. The store never validates chaining, so the
    // interleaved workload can be reused as-is.
    let file_path = dir.join(format!("file-recover-{records}.log"));
    {
        let mut store = FileStore::open(&file_path).expect("open file store");
        for r in &all {
            store.append(r).expect("append");
        }
    }
    let t0 = Instant::now();
    let store = FileStore::open(&file_path).expect("reopen file store");
    let file_us = t0.elapsed().as_micros() as u64;
    assert_eq!(store.len() as u64, records);

    RecoveryPoint { records, tail, file_us, seg_us, seg_stats }
}

// ------------------------------------------------------------------ reads

/// Point-read sample cap per read point: strided across the capsule
/// space so neighbouring samples do not share cache blocks at large
/// counts, and small enough that the warm working set (one block per
/// sample) fits [`READ_CACHE_BYTES`].
const READ_SAMPLE: usize = 1_024;

/// Block-cache budget for the cached side of a read comparison: covers
/// the full strided sample (one 64 KiB block each) with headroom.
const READ_CACHE_BYTES: usize = 128 * 1024 * 1024;

/// Workload the perf-smoke read floor is recorded at — and re-measured
/// at, so the comparison is like-for-like.
pub const FLOOR_READ_CAPSULES: usize = 1_000;
/// Records per capsule in the read-floor workload.
pub const FLOOR_READ_RECORDS: usize = 8;

/// Read-path measurement at one capsule count.
#[derive(Clone, Copy, Debug)]
pub struct ReadPoint {
    /// Streams seeded into the log.
    pub capsules: usize,
    /// Records appended per stream.
    pub records_per_capsule: usize,
    /// Capsules in the strided point-read/range sample.
    pub sampled: usize,
    /// Point reads/s with the block cache disabled (every read is its
    /// own block fetch + entry CRC through the fd pool).
    pub uncached_point_per_sec: f64,
    /// Point reads/s on the second pass with the cache enabled.
    pub warm_point_per_sec: f64,
    /// Records/s returned by warm range scans over the sample.
    pub range_records_per_sec: f64,
    /// Fraction of warm range records whose body was a zero-copy slice
    /// of a cached block (block-spanning entries legitimately copy).
    pub zero_copy_fraction: f64,
    /// Sealed-segment `open(2)` calls the cached run performed.
    pub fd_opens: u64,
    /// Pooled fds resident when the run ended.
    pub open_fds: usize,
    /// The pool budget the run was configured with.
    pub max_open_segments: usize,
}

impl ReadPoint {
    /// Warm-over-uncached speedup on point reads/s.
    pub fn speedup(&self) -> f64 {
        self.warm_point_per_sec / self.uncached_point_per_sec
    }
}

/// Segmented config for the read benches. Every stream index stays
/// resident (index eviction scans all streams once over budget, which
/// turns a seeding loop quadratic), auto-compaction is off so nothing
/// perturbs the timed region, and the largest points take bigger
/// segments with a deliberately tiny fd pool so the 1M run proves the
/// budget holds while sealed segments outnumber it.
fn read_cfg(capsules: usize, read_cache_bytes: usize) -> SegConfig {
    let defaults = SegConfig::default();
    let big = capsules >= 250_000;
    SegConfig {
        policy: FsyncPolicy::DEFAULT_BATCH,
        max_resident_streams: capsules + 16,
        compact_min_dead_pct: 0,
        segment_max_bytes: if big { 48 * 1024 * 1024 } else { defaults.segment_max_bytes },
        max_open_segments: if big { 4 } else { defaults.max_open_segments },
        read_cache_bytes,
        ..defaults
    }
}

/// Builds a record without signing it (zeroed signature): the store
/// layer never verifies signatures, and at 1M capsules real ed25519
/// signing would dominate the open-loop seeding. Hashing stays honest,
/// so dedup and the by-hash index behave exactly as with signed records.
pub fn unsigned_record(capsule: &Name, seq: u64, body: Vec<u8>) -> Record {
    let header = RecordHeader {
        seq,
        timestamp_micros: 0,
        prev: RecordHash::anchor(capsule),
        extra: vec![],
        body_hash: sha256(&body),
        body_len: body.len() as u32,
    };
    Record { header, body: Bytes::from_vec(body), signature: Signature([0u8; 64]) }
}

/// Open-loop seeder for the read benches: appends `per_capsule` records
/// for each of `capsules` streams, capsule by capsule (contiguous
/// per-stream layout on disk), never waiting for acks. Durability rides
/// the engine's byte-budget inline flushes plus a periodic `maintain`
/// that also drives rotation; a final rotation seals everything so the
/// read passes exercise the sealed-segment fast lane, and its
/// checkpoint bounds any later reopen. Returns the log and the names.
pub fn seed_capsules(
    dir: &Path,
    cfg: SegConfig,
    capsules: usize,
    per_capsule: usize,
) -> (SegLog, Vec<Name>) {
    let scope = gdp_obs::Metrics::new().scope("store");
    let log = SegLog::open_with(dir, cfg, &scope).expect("open seg log for seeding");
    let names: Vec<Name> =
        (0..capsules).map(|i| Name::from_content(format!("bench-cap-{i}").as_bytes())).collect();
    let mut now_us = 0u64;
    let mut appended = 0usize;
    for name in &names {
        let mut h = log.handle(*name);
        for seq in 1..=per_capsule as u64 {
            let body = format!("read bench payload {appended}").into_bytes();
            h.append(&unsigned_record(name, seq, body)).expect("seed append");
            appended += 1;
            if appended.is_multiple_of(4096) {
                now_us += 5_000;
                log.maintain(now_us).expect("seed maintain");
            }
        }
    }
    now_us += 5_000;
    log.rotate_now(now_us).expect("seal for reads");
    (log, names)
}

/// Strided sample of up to [`READ_SAMPLE`] capsules: with the seeder's
/// capsule-contiguous layout, striding keeps large-count samples from
/// sharing blocks, so the uncached side is not accidentally amortized.
fn sample_names(names: &[Name]) -> Vec<Name> {
    let k = names.len().min(READ_SAMPLE);
    let step = (names.len() / k).max(1);
    (0..k).map(|i| names[i * step]).collect()
}

/// Times `reps` passes of one point read per sampled capsule.
fn point_pass(log: &SegLog, sample: &[Name], seq: u64, reps: usize) -> f64 {
    let handles: Vec<_> = sample.iter().map(|n| log.handle(*n)).collect();
    let start = Instant::now();
    for _ in 0..reps {
        for h in &handles {
            let r = h.get_by_seq(seq).expect("point read").expect("sampled record exists");
            std::hint::black_box(&r);
        }
    }
    (reps * sample.len()) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Seeds one log, then measures the sealed-read path both ways:
/// uncached point reads on the seeding log (cache disabled), then warm
/// point reads and a warm range scan on a cache-enabled reopen (the
/// reopen is checkpoint-bounded, not a full scan, even at 1M capsules).
/// Structural contracts are asserted inline: warm range records must
/// come back as zero-copy slices of cached blocks (≥95%; only
/// block-spanning entries copy) and the pooled-fd budget must hold.
pub fn read_comparison(dir: &Path, capsules: usize, per_capsule: usize) -> ReadPoint {
    let seq = per_capsule as u64;
    let (sample, uncached_point_per_sec) = {
        let (log, names) = seed_capsules(dir, read_cfg(capsules, 0), capsules, per_capsule);
        let sample = sample_names(&names);
        let reps = (20_000 / sample.len()).max(2);
        let rate = point_pass(&log, &sample, seq, reps);
        (sample, rate)
    };

    let cfg = read_cfg(capsules, READ_CACHE_BYTES);
    let max_open_segments = cfg.max_open_segments;
    let scope = gdp_obs::Metrics::new().scope("store");
    let log = SegLog::open_with(dir, cfg, &scope).expect("reopen seg log with cache");
    point_pass(&log, &sample, seq, 1); // fill
    let reps = (100_000 / sample.len()).max(4);
    let warm_point_per_sec = point_pass(&log, &sample, seq, reps);

    let handles: Vec<_> = sample.iter().map(|n| log.handle(*n)).collect();
    for h in &handles {
        h.range(1, seq).expect("range fill");
    }
    let (mut zero_copy, mut total) = (0usize, 0usize);
    let range_reps = (100_000 / (sample.len() * per_capsule)).max(2);
    let start = Instant::now();
    for _ in 0..range_reps {
        for h in &handles {
            for r in h.range(1, seq).expect("range read") {
                total += 1;
                if r.body.ref_count() > 1 {
                    zero_copy += 1;
                }
            }
        }
    }
    let range_records_per_sec = total as f64 / start.elapsed().as_secs_f64().max(1e-9);
    let zero_copy_fraction = zero_copy as f64 / total.max(1) as f64;
    assert!(
        zero_copy_fraction >= 0.95,
        "read bench: only {:.1}% of warm range records were zero-copy slices of cached blocks",
        zero_copy_fraction * 100.0
    );
    assert!(
        log.open_fds() <= max_open_segments,
        "read bench: {} pooled fds exceed the max_open_segments budget of {}",
        log.open_fds(),
        max_open_segments
    );
    ReadPoint {
        capsules,
        records_per_capsule: per_capsule,
        sampled: sample.len(),
        uncached_point_per_sec,
        warm_point_per_sec,
        range_records_per_sec,
        zero_copy_fraction,
        fd_opens: log.fd_opens(),
        open_fds: log.open_fds(),
        max_open_segments,
    }
}

/// Warm point-read rate at the floor workload (the perf-smoke probe):
/// seeds cache-enabled, seals, fills with one pass, times the rest.
pub fn seg_read_rate(dir: &Path, capsules: usize, per_capsule: usize) -> f64 {
    let (log, names) =
        seed_capsules(dir, read_cfg(capsules, READ_CACHE_BYTES), capsules, per_capsule);
    let sample = sample_names(&names);
    let seq = per_capsule as u64;
    point_pass(&log, &sample, seq, 1); // fill
    let reps = (100_000 / sample.len()).max(4);
    point_pass(&log, &sample, seq, reps)
}

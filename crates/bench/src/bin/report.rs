//! Regenerates the paper's figures and tables as text series. The two
//! figure experiments also emit machine-readable `BENCH_fig6.json` /
//! `BENCH_fig8.json` in the working directory (self-validated before
//! writing; `scripts/verify.sh` re-checks them).
//!
//! Usage:
//! ```text
//! cargo run --release -p gdp-bench --bin report -- <experiment>
//!   fig6                router forwarding rate / throughput vs PDU size
//!                       (+ data-path ablations and the perf-smoke floor)
//!   perf-smoke          re-measure 64 B forwarding; fail if >30% below
//!                       the floor recorded in BENCH_fig6.json
//!   store               storage engines at equal durability: segmented
//!                       group-commit log vs per-capsule files, appends/s
//!                       and p99 ack latency at 1 / 10k / 100k capsules,
//!                       plus bounded crash recovery (BENCH_store.json)
//!   overload            goodput vs offered load through a budgeted
//!                       server: typed-Nack shedding saturates goodput
//!                       at the append budget (BENCH_overload.json)
//!   overload-smoke      re-measure the saturated 4x point; fail if
//!                       goodput drops below the recorded floor
//!   fig8                case-study read/write times (28 MB and 115 MB)
//!   fig8-quick          same, 4 MB model (fast smoke run)
//!   table1              goal → enabling feature → demonstration test
//!   ablation-hashptr    A1: hash-pointer strategies
//!   ablation-durability A2: durability modes
//!   ablation-session    A3: signature vs HMAC responses
//!   ablation-anycast    A4: locality win of a nearby replica
//!   ablation-batch      A5: read flow-control window
//!   all                 everything above
//! ```

use gdp_bench::table::{rate, secs, Table};
use gdp_bench::{ablations, fig6, fig8, overload, storebench};
use gdp_obs::json;
use gdp_sim::workload;

/// Validates and writes one figure's JSON artifact, announcing it so the
/// CI step (and a human skimming the output) can see it landed.
fn write_bench_json(path: &str, doc: String) {
    json::validate(&doc).unwrap_or_else(|e| panic!("{path}: generated invalid JSON: {e}"));
    std::fs::write(path, &doc).unwrap_or_else(|e| panic!("{path}: write failed: {e}"));
    println!("\nwrote {path}");
}

fn run_fig6() {
    println!("Fig 6 — forwarding rate and throughput vs PDU size");
    println!(
        "(simulated 32×32 through one router; CPU model {} µs + {} ns/B per PDU)\n",
        fig6::PER_PDU_US,
        fig6::PER_BYTE_NS
    );
    let mut simulated = Vec::new();
    let mut t = Table::new(&["PDU bytes", "PDUs/s", "throughput (bps)"]);
    for size in gdp_sim::workload::fig6_pdu_sizes() {
        let p = fig6::simulated(size, 60);
        t.row(&[size.to_string(), rate(p.pdus_per_sec), rate(p.throughput_bps)]);
        simulated.push(format!(
            "{{\"pdu_bytes\":{},\"pdus_per_sec\":{:.3},\"throughput_bps\":{:.3}}}",
            size, p.pdus_per_sec, p.throughput_bps
        ));
    }
    t.print();
    println!("\nwall-clock forwarding rate of this implementation (single thread):");
    let mut in_process = Vec::new();
    let mut t = Table::new(&["PDU bytes", "PDUs/s"]);
    for size in [64usize, 1024, 10240] {
        let p = fig6::in_process(size, 20_000);
        t.row(&[size.to_string(), rate(p.pdus_per_sec)]);
        in_process
            .push(format!("{{\"pdu_bytes\":{},\"pdus_per_sec\":{:.3}}}", size, p.pdus_per_sec));
    }
    t.print();

    // Data-path ablations: what each fast-path layer is worth.
    println!("\nablations (64 B payloads):");
    let copying = fig6::in_process_copying(64, 200_000);
    let zero_copy = fig6::in_process(64, 200_000);
    // The pinned smoke floor is the *minimum* of three runs: the smoke
    // gate compares its best-of-three against 0.7× this value, and on a
    // busy single-core runner a single-sample floor can land a full
    // noise-band above a later re-measurement and flake the gate.
    let floor_64b = (0..2)
        .map(|_| fig6::in_process(64, 200_000).pdus_per_sec)
        .fold(zero_copy.pdus_per_sec, f64::min);
    let (verify_cold, verify_cached) = fig6::verify_cold_vs_cached(2_000);
    let shard_points: Vec<fig6::ShardedPoint> =
        [1usize, 2, 4].iter().map(|&n| fig6::sharded(64, 200_000, n)).collect();
    let mut t = Table::new(&["ablation", "PDUs/s or ops/s"]);
    t.row(&["copying data plane (allocate per PDU)".into(), rate(copying.pdus_per_sec)]);
    t.row(&["zero-copy data plane (shared payload)".into(), rate(zero_copy.pdus_per_sec)]);
    t.row(&["route verify, cold (full chain)".into(), rate(verify_cold)]);
    t.row(&["route verify, cached (digest hit)".into(), rate(verify_cached)]);
    for p in &shard_points {
        t.row(&[
            format!("sharded forwarding, {} shard(s) [{}]", p.shards, p.mode.as_str()),
            rate(p.pdus_per_sec),
        ]);
    }
    t.print();
    let single = shard_points[0].pdus_per_sec;
    let quad = shard_points.last().expect("shard points").pdus_per_sec;
    println!(
        "\nsharded scaling: 4 shards = {:.1}x single shard (stages: dispatch {} /s, \
         worker {} /s, {} core(s))",
        quad / single,
        rate(shard_points.last().expect("shard points").dispatch_rate),
        rate(shard_points.last().expect("shard points").worker_rate),
        shard_points[0].cores,
    );
    // The regression this figure gates: batched handoff must keep the
    // dispatch stage out of the way, so 4 shards clears 3x single-shard.
    assert!(
        quad >= 3.0 * single,
        "sharded scaling regressed: 4 shards = {:.2}x single shard (need >= 3x)",
        quad / single
    );

    println!("\nshape: PDU rate ≈ flat (CPU-bound) for small PDUs; throughput rises with");
    println!("PDU size and saturates near 1 Gbps around 10 kB — matching the paper.");
    let sharded_json: Vec<String> = shard_points
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\":{},\"pdus_per_sec\":{:.3},\"mode\":\"{}\",\
                 \"dispatch_rate\":{:.3},\"worker_rate\":{:.3}}}",
                p.shards,
                p.pdus_per_sec,
                p.mode.as_str(),
                p.dispatch_rate,
                p.worker_rate
            )
        })
        .collect();
    write_bench_json(
        "BENCH_fig6.json",
        format!(
            "{{\"figure\":\"fig6\",\"cpu_model\":{{\"per_pdu_us\":{},\"per_byte_ns\":{}}},\
             \"simulated\":[{}],\"in_process\":[{}],\
             \"ablation\":{{\"pdu_bytes\":64,\
             \"copying_pdus_per_sec\":{:.3},\"zero_copy_pdus_per_sec\":{:.3},\
             \"verify_cold_per_sec\":{:.3},\"verify_cached_per_sec\":{:.3},\
             \"sharded_cores\":{},\"sharded\":[{}]}},\
             \"perf_floor\":{{\"pdu_bytes\":64,\"pdus_per_sec\":{:.3},\
             \"sharded\":{{\"shards\":4,\"pdus_per_sec\":{:.3},\"min_speedup\":2.5}}}}}}",
            fig6::PER_PDU_US,
            fig6::PER_BYTE_NS,
            simulated.join(","),
            in_process.join(","),
            copying.pdus_per_sec,
            zero_copy.pdus_per_sec,
            verify_cold,
            verify_cached,
            shard_points[0].cores,
            sharded_json.join(","),
            floor_64b,
            quad,
        ),
    );
}

/// Overload curve: the production client/server state machines in a
/// closed loop, offered 1x / 2x / 4x / 8x the server's per-tick append
/// budget. The conservation laws (attempts = acked + shed, goodput
/// saturates at the budget, nothing sheds below capacity) are asserted
/// inside `overload::curve` before the JSON is written.
fn run_overload() {
    const BUDGET: u64 = 4;
    const TICKS: u64 = 50;
    println!("Overload — goodput vs offered load (budget {BUDGET} appends/tick, {TICKS} ticks)");
    let points = overload::curve(BUDGET, &[1, 2, 4, 8], TICKS);
    let mut t = Table::new(&["offered", "arrivals", "attempts", "acked", "shed", "goodput/s"]);
    let mut points_json = Vec::new();
    for p in &points {
        t.row(&[
            format!("{}x", p.multiplier),
            p.offered.to_string(),
            p.attempts.to_string(),
            p.acked.to_string(),
            p.shed.to_string(),
            rate(p.goodput_per_sec),
        ]);
        points_json.push(format!(
            "{{\"multiplier\":{},\"offered\":{},\"attempts\":{},\"acked\":{},\
             \"shed\":{},\"backlog\":{},\"goodput_per_sec\":{:.3}}}",
            p.multiplier, p.offered, p.attempts, p.acked, p.shed, p.backlog, p.goodput_per_sec
        ));
    }
    t.print();
    println!("\nshape: goodput tracks offered load to the budget, then saturates there —");
    println!("typed Nacks shed the excess before any verification or storage work.");
    let saturated = points.iter().filter(|p| p.multiplier > 1).map(|p| p.goodput_per_sec);
    let floor = saturated.fold(f64::INFINITY, f64::min);
    write_bench_json(
        "BENCH_overload.json",
        format!(
            "{{\"figure\":\"overload\",\"budget_per_tick\":{BUDGET},\"tick_us\":{},\
             \"ticks\":{TICKS},\"points\":[{}],\
             \"overload_floor\":{{\"goodput_per_sec\":{floor:.3}}}}}",
            overload::TICK_US,
            points_json.join(","),
        ),
    );
}

/// CI overload smoke: re-runs the saturated (4x) point and fails when
/// its goodput drops below the floor recorded by the last full
/// `report overload` run (the curve's own conservation asserts run on
/// every invocation, so a broken shedding path fails loudly here too).
fn run_overload_smoke() {
    let doc = match std::fs::read_to_string("BENCH_overload.json") {
        Ok(d) => d,
        Err(e) => {
            eprintln!(
                "overload-smoke: BENCH_overload.json not readable ({e}); run `report overload` first"
            );
            std::process::exit(2);
        }
    };
    let floor = json::extract_number(
        &doc[doc.find("\"overload_floor\"").unwrap_or(0)..],
        "goodput_per_sec",
    )
    .unwrap_or_else(|| {
        eprintln!(
            "overload-smoke: no overload_floor in BENCH_overload.json; run `report overload` first"
        );
        std::process::exit(2);
    });
    const BUDGET: u64 = 4;
    const TICKS: u64 = 50;
    let point = overload::curve(BUDGET, &[4], TICKS).remove(0);
    println!(
        "overload-smoke: 4x offered load goodput {:.1}/s (floor {floor:.1}/s), {} shed",
        point.goodput_per_sec, point.shed
    );
    if point.goodput_per_sec < floor {
        eprintln!(
            "overload-smoke: FAIL — saturated goodput {:.1}/s fell below the recorded floor {floor:.1}/s",
            point.goodput_per_sec
        );
        std::process::exit(1);
    }
    println!("overload-smoke: OK");
}

/// CI perf smoke: re-measures the 64 B zero-copy forwarding rate and
/// fails (exit 1) when it regresses more than 30% below the floor
/// recorded in `BENCH_fig6.json` by the last full `fig6` run.
fn run_perf_smoke() {
    let doc = match std::fs::read_to_string("BENCH_fig6.json") {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf-smoke: BENCH_fig6.json not readable ({e}); run `report fig6` first");
            std::process::exit(2);
        }
    };
    let floor =
        json::extract_number(&doc[doc.find("\"perf_floor\"").unwrap_or(0)..], "pdus_per_sec")
            .unwrap_or_else(|| {
                eprintln!("perf-smoke: no perf_floor in BENCH_fig6.json; run `report fig6` first");
                std::process::exit(2);
            });
    // Best of three: the smoke gate must not flake on scheduler noise.
    let measured =
        (0..3).map(|_| fig6::in_process(64, 200_000).pdus_per_sec).fold(0.0f64, f64::max);
    let threshold = floor * 0.7;
    println!(
        "perf-smoke: 64 B forwarding {measured:.0} PDUs/s (floor {floor:.0}, threshold {threshold:.0})"
    );
    if measured < threshold {
        eprintln!(
            "perf-smoke: FAIL — 64 B forwarding regressed >30% below the recorded floor \
             ({measured:.0} < {threshold:.0} PDUs/s)"
        );
        std::process::exit(1);
    }

    // Sharded floor: re-measure the 1- and 4-shard ablation points and
    // hold two lines — relative scaling (4 shards must still clear
    // min_speedup over a single shard, the batched-handoff contract) and
    // the absolute 4-shard rate against the pinned floor (catches a
    // dispatch-stage regression that degrades both points together and
    // would slip past a pure ratio).
    let floor_tail = &doc[doc.find("\"perf_floor\"").unwrap_or(0)..];
    let sharded_tail = &floor_tail[floor_tail.find("\"sharded\"").unwrap_or(0)..];
    let (sharded_floor, min_speedup) = match (
        json::extract_number(sharded_tail, "pdus_per_sec"),
        json::extract_number(sharded_tail, "min_speedup"),
    ) {
        (Some(f), Some(m)) => (f, m),
        _ => {
            eprintln!(
                "perf-smoke: no perf_floor.sharded in BENCH_fig6.json; run `report fig6` first"
            );
            std::process::exit(2);
        }
    };
    // Best of three *paired* runs: each run measures both points under
    // the same conditions, so the ratio is robust to scheduler noise.
    let (speedup, quad) = (0..3)
        .map(|_| {
            let single = fig6::sharded(64, 200_000, 1).pdus_per_sec;
            let quad = fig6::sharded(64, 200_000, 4).pdus_per_sec;
            (quad / single, quad)
        })
        .fold((0.0f64, 0.0f64), |(bs, bq), (s, q)| (bs.max(s), bq.max(q)));
    let threshold = sharded_floor * 0.7;
    println!(
        "perf-smoke: sharded forwarding 4 shards = {speedup:.1}x single shard, \
         {quad:.0} PDUs/s (floor {sharded_floor:.0}, threshold {threshold:.0}, \
         min speedup {min_speedup:.1}x)"
    );
    if speedup < min_speedup {
        eprintln!(
            "perf-smoke: FAIL — sharded scaling regressed: 4 shards = {speedup:.2}x single \
             shard (need >= {min_speedup:.1}x)"
        );
        std::process::exit(1);
    }
    if quad < threshold {
        eprintln!(
            "perf-smoke: FAIL — 4-shard forwarding regressed >30% below the recorded floor \
             ({quad:.0} < {threshold:.0} PDUs/s)"
        );
        std::process::exit(1);
    }

    // Store floor: re-measure segmented durable appends at the same
    // workload the floor in BENCH_store.json was recorded at.
    let doc = match std::fs::read_to_string("BENCH_store.json") {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf-smoke: BENCH_store.json not readable ({e}); run `report store` first");
            std::process::exit(2);
        }
    };
    let floor =
        json::extract_number(&doc[doc.find("\"store_floor\"").unwrap_or(0)..], "appends_per_sec")
            .unwrap_or_else(|| {
                eprintln!(
                    "perf-smoke: no store_floor in BENCH_store.json; run `report store` first"
                );
                std::process::exit(2);
            });
    let dir = std::env::temp_dir().join(format!("gdp-perf-smoke-store-{}", std::process::id()));
    let measured = (0..3)
        .map(|i| {
            let _ = std::fs::remove_dir_all(&dir);
            let r = storebench::seg_append_rate(
                &dir,
                storebench::FLOOR_CAPSULES,
                storebench::FLOOR_APPENDS,
            );
            if i == 2 {
                let _ = std::fs::remove_dir_all(&dir);
            }
            r
        })
        .fold(0.0f64, f64::max);
    let threshold = floor * 0.7;
    println!(
        "perf-smoke: segmented store {measured:.0} appends/s (floor {floor:.0}, threshold {threshold:.0})"
    );
    if measured < threshold {
        eprintln!(
            "perf-smoke: FAIL — segmented durable appends regressed >30% below the recorded \
             floor ({measured:.0} < {threshold:.0} appends/s)"
        );
        std::process::exit(1);
    }

    // Read floor: re-measure warm sealed-segment point reads at the
    // workload the read floor in BENCH_store.json was recorded at — the
    // block-cache fast lane must not silently rot either.
    let floor = json::extract_number(
        &doc[doc.find("\"read_floor\"").unwrap_or(0)..],
        "point_reads_per_sec",
    )
    .unwrap_or_else(|| {
        eprintln!("perf-smoke: no read_floor in BENCH_store.json; run `report store` first");
        std::process::exit(2);
    });
    let dir = std::env::temp_dir().join(format!("gdp-perf-smoke-read-{}", std::process::id()));
    let measured = (0..3)
        .map(|i| {
            let _ = std::fs::remove_dir_all(&dir);
            let r = storebench::seg_read_rate(
                &dir,
                storebench::FLOOR_READ_CAPSULES,
                storebench::FLOOR_READ_RECORDS,
            );
            if i == 2 {
                let _ = std::fs::remove_dir_all(&dir);
            }
            r
        })
        .fold(0.0f64, f64::max);
    let threshold = floor * 0.7;
    println!(
        "perf-smoke: warm store reads {measured:.0} reads/s (floor {floor:.0}, threshold {threshold:.0})"
    );
    if measured < threshold {
        eprintln!(
            "perf-smoke: FAIL — warm sealed-segment point reads regressed >30% below the \
             recorded floor ({measured:.0} < {threshold:.0} reads/s)"
        );
        std::process::exit(1);
    }
    println!("perf-smoke: OK");
}

/// Storage-engine comparison at equal durability (every append acked
/// durable before it counts), across capsule counts, plus the bounded
/// crash-recovery series and the sealed-segment read series (1k → 1M
/// capsules). Emits `BENCH_store.json` with the contracts asserted
/// before writing: a build where the segmented engine is not ≥10× the
/// file engine at 10k+ capsules, where recovery replays more than the
/// checkpoint tail, where warm point reads are not ≥5× uncached at 10k+
/// capsules, where warm range records are not zero-copy, or where the
/// 1M run exceeds its pooled-fd budget, fails here.
fn run_store() {
    let dir = std::env::temp_dir().join(format!("gdp-report-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");

    println!("Storage engines — durably-acked appends/s and p99 ack latency");
    println!(
        "(file = one log + fsync per capsule per append, ≤{} resident fds;\n\
         \x20segmented = shared log, one fsync per {}-append group commit)\n",
        storebench::FD_BUDGET,
        storebench::GROUP_SIZE
    );
    let mut t = Table::new(&[
        "capsules",
        "appends",
        "file app/s",
        "file p99 µs",
        "seg app/s",
        "seg p99 µs",
        "speedup",
    ]);
    let mut points_json = Vec::new();
    let mut floor_assert_ok = true;
    for (capsules, appends) in [(1usize, 2_000usize), (10_000, 10_000), (100_000, 10_000)] {
        let p =
            storebench::append_comparison(&dir.join(format!("ap-{capsules}")), capsules, appends);
        t.row(&[
            capsules.to_string(),
            appends.to_string(),
            rate(p.file.per_sec),
            p.file.p99_us.to_string(),
            rate(p.seg.per_sec),
            p.seg.p99_us.to_string(),
            format!("{:.1}x", p.speedup()),
        ]);
        if capsules >= 10_000 && p.speedup() < 10.0 {
            floor_assert_ok = false;
        }
        points_json.push(format!(
            "{{\"capsules\":{},\"appends\":{},\"file_per_sec\":{:.3},\"file_p99_us\":{},\
             \"seg_per_sec\":{:.3},\"seg_p99_us\":{},\"speedup\":{:.3}}}",
            p.capsules,
            p.appends,
            p.file.per_sec,
            p.file.p99_us,
            p.seg.per_sec,
            p.seg.p99_us,
            p.speedup()
        ));
    }
    t.print();
    assert!(
        floor_assert_ok,
        "store bench: segmented engine is <10x the file engine at 10k+ capsules"
    );

    println!("\ncrash recovery — reopen time vs log size (tail = entries past checkpoint):");
    let mut t = Table::new(&["records", "tail", "file reopen µs", "seg reopen µs", "seg replayed"]);
    let mut recovery_json = Vec::new();
    for (records, tail) in [(4_000u64, 256u64), (16_000, 256)] {
        // recovery_comparison asserts seg replayed exactly `tail` entries
        // with no full scan — the bounded-recovery contract.
        let p = storebench::recovery_comparison(&dir, records, tail);
        t.row(&[
            p.records.to_string(),
            p.tail.to_string(),
            p.file_us.to_string(),
            p.seg_us.to_string(),
            p.seg_stats.tail_entries.to_string(),
        ]);
        recovery_json.push(format!(
            "{{\"records\":{},\"tail\":{},\"file_us\":{},\"seg_us\":{},\
             \"seg_tail_entries\":{},\"seg_full_scan\":{}}}",
            p.records, p.tail, p.file_us, p.seg_us, p.seg_stats.tail_entries, p.seg_stats.full_scan
        ));
    }
    t.print();
    println!(
        "\nshape: the file store re-scans every record on reopen; the segmented log\n\
         replays exactly the checkpointed tail (asserted above) and stays well\n\
         below the full re-scan."
    );

    println!(
        "\nread path — sealed-segment reads over a strided capsule sample\n\
         (uncached = block cache disabled, one block fetch + CRC per read;\n\
         \x20warm = repeat pass through the CRC-verified block cache):"
    );
    let mut t = Table::new(&[
        "capsules",
        "rec/cap",
        "uncached pt/s",
        "warm pt/s",
        "speedup",
        "range rec/s",
        "zero-copy",
        "fd opens",
        "open fds",
    ]);
    let mut read_json = Vec::new();
    let mut read_assert_ok = true;
    for (capsules, per_capsule) in [(1_000usize, 8usize), (10_000, 8), (100_000, 2), (1_000_000, 1)]
    {
        // read_comparison asserts the structural contracts inline: warm
        // range records are zero-copy slices of cached blocks and the
        // pooled-fd budget holds (at 1M the pool is smaller than the
        // sealed-segment count on purpose).
        let p =
            storebench::read_comparison(&dir.join(format!("rd-{capsules}")), capsules, per_capsule);
        t.row(&[
            p.capsules.to_string(),
            p.records_per_capsule.to_string(),
            rate(p.uncached_point_per_sec),
            rate(p.warm_point_per_sec),
            format!("{:.1}x", p.speedup()),
            rate(p.range_records_per_sec),
            format!("{:.1}%", p.zero_copy_fraction * 100.0),
            p.fd_opens.to_string(),
            format!("{}/{}", p.open_fds, p.max_open_segments),
        ]);
        if capsules >= 10_000 && p.speedup() < 5.0 {
            read_assert_ok = false;
        }
        read_json.push(format!(
            "{{\"capsules\":{},\"records_per_capsule\":{},\"sampled\":{},\
             \"uncached_point_per_sec\":{:.3},\"warm_point_per_sec\":{:.3},\"speedup\":{:.3},\
             \"range_records_per_sec\":{:.3},\"zero_copy_fraction\":{:.4},\
             \"fd_opens\":{},\"open_fds\":{},\"max_open_segments\":{}}}",
            p.capsules,
            p.records_per_capsule,
            p.sampled,
            p.uncached_point_per_sec,
            p.warm_point_per_sec,
            p.speedup(),
            p.range_records_per_sec,
            p.zero_copy_fraction,
            p.fd_opens,
            p.open_fds,
            p.max_open_segments
        ));
    }
    t.print();
    assert!(read_assert_ok, "store bench: warm point reads are <5x uncached at 10k+ capsules");

    let floor = storebench::seg_append_rate(
        &dir.join("floor"),
        storebench::FLOOR_CAPSULES,
        storebench::FLOOR_APPENDS,
    );
    let read_floor = storebench::seg_read_rate(
        &dir.join("read-floor"),
        storebench::FLOOR_READ_CAPSULES,
        storebench::FLOOR_READ_RECORDS,
    );
    write_bench_json(
        "BENCH_store.json",
        format!(
            "{{\"figure\":\"store\",\"group_size\":{},\"fd_budget\":{},\
             \"append_points\":[{}],\"recovery\":[{}],\"read_points\":[{}],\
             \"store_floor\":{{\"capsules\":{},\"appends\":{},\"appends_per_sec\":{:.3}}},\
             \"read_floor\":{{\"capsules\":{},\"records_per_capsule\":{},\
             \"point_reads_per_sec\":{:.3}}}}}",
            storebench::GROUP_SIZE,
            storebench::FD_BUDGET,
            points_json.join(","),
            recovery_json.join(","),
            read_json.join(","),
            storebench::FLOOR_CAPSULES,
            storebench::FLOOR_APPENDS,
            floor,
            storebench::FLOOR_READ_CAPSULES,
            storebench::FLOOR_READ_RECORDS,
            read_floor
        ),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Prints the Fig 8 tables for the given model sizes and emits
/// `BENCH_fig8.json` (the quick smoke variant writes the same artifact,
/// tagged so a dashboard never mistakes it for the full run).
fn run_fig8(variant: &str, runs: u32, sizes: &[(&str, usize)]) {
    let mut size_docs = Vec::new();
    for (label, size) in sizes {
        println!("\nFig 8 — {label} (avg over {runs} runs, virtual seconds; smaller is better)");
        let mut systems = Vec::new();
        let mut t = Table::new(&["system", "write (s)", "read (s)"]);
        for (name, cell) in fig8::run_size(*size, runs) {
            t.row(&[name.to_string(), secs(cell.write_us), secs(cell.read_us)]);
            systems.push(format!(
                "{{\"system\":\"{}\",\"write_us\":{},\"read_us\":{}}}",
                json::escape(name),
                cell.write_us,
                cell.read_us
            ));
        }
        t.print();
        size_docs.push(format!(
            "{{\"label\":\"{}\",\"model_bytes\":{},\"systems\":[{}]}}",
            json::escape(label),
            size,
            systems.join(",")
        ));
    }
    if variant == "full" {
        println!(
            "\nshape check: GDP(cloud) between SSHFS(cloud) and S3; edge ≫ cloud.\n\
             (absolute values are simulator-calibrated; see EXPERIMENTS.md)"
        );
    }
    write_bench_json(
        "BENCH_fig8.json",
        format!(
            "{{\"figure\":\"fig8\",\"variant\":\"{variant}\",\"runs\":{runs},\"sizes\":[{}]}}",
            size_docs.join(",")
        ),
    );
}

const FIG8_FULL: &[(&str, usize)] =
    &[("28 MB model", workload::MODEL_SMALL), ("115 MB model", workload::MODEL_LARGE)];

fn run_table1() {
    println!("Table I — how the Global Data Plane meets the platform requirements");
    println!("(each row names the demonstrating test in tests/table1_goals.rs)\n");
    let mut t = Table::new(&["goal", "enabling feature", "demonstrated by"]);
    let rows: &[(&str, &str, &str)] = &[
        (
            "Homogeneous interface",
            "DataCapsule API + CAAPIs (fs/kv/timeseries)",
            "homogeneous_interface",
        ),
        ("Federated architecture", "flat name as trust anchor, no PKI", "federated_no_pki"),
        ("Locality", "hierarchical routing domains + anycast", "locality_anycast"),
        (
            "Secure storage",
            "capsule = authenticated data structure",
            "secure_storage_untrusted_server",
        ),
        (
            "Administrative boundaries",
            "explicit AdCert delegations per capsule",
            "administrative_delegation",
        ),
        (
            "Secure routing",
            "secure advertisements + AdCert/RtCert chains",
            "secure_routing_no_squatting",
        ),
        ("Publish-subscribe", "subscribe as a native capsule access mode", "native_pubsub"),
        (
            "Incremental deployment",
            "overlay PDUs over host links (simulated IP)",
            "overlay_incremental",
        ),
    ];
    for (goal, feature, test) in rows {
        t.row(&[goal.to_string(), feature.to_string(), test.to_string()]);
    }
    t.print();
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "fig6" => run_fig6(),
        "store" => run_store(),
        "perf-smoke" => run_perf_smoke(),
        "overload" => run_overload(),
        "overload-smoke" => run_overload_smoke(),
        "fig8" => run_fig8("full", 5, FIG8_FULL),
        "fig8-quick" => run_fig8("quick", 2, &[("4 MB model", 4_000_000)]),
        "table1" => run_table1(),
        "ablation-hashptr" => ablations::hashptr(4096),
        "ablation-durability" => ablations::durability(),
        "ablation-session" => ablations::session(&[1, 10, 100, 1000]),
        "ablation-anycast" => ablations::anycast(),
        "ablation-batch" => ablations::read_batch(),
        "all" => {
            run_fig6();
            run_store();
            run_overload();
            run_fig8("full", 5, FIG8_FULL);
            run_table1();
            ablations::hashptr(4096);
            ablations::durability();
            ablations::session(&[1, 10, 100, 1000]);
            ablations::anycast();
            ablations::read_batch();
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("known: fig6 store perf-smoke overload overload-smoke fig8 fig8-quick table1 ablation-hashptr ablation-durability ablation-session ablation-anycast all");
            std::process::exit(2);
        }
    }
}

//! Regenerates the paper's figures and tables as text series.
//!
//! Usage:
//! ```text
//! cargo run --release -p gdp-bench --bin report -- <experiment>
//!   fig6                router forwarding rate / throughput vs PDU size
//!   fig8                case-study read/write times (28 MB and 115 MB)
//!   fig8-quick          same, 4 MB model (fast smoke run)
//!   table1              goal → enabling feature → demonstration test
//!   ablation-hashptr    A1: hash-pointer strategies
//!   ablation-durability A2: durability modes
//!   ablation-session    A3: signature vs HMAC responses
//!   ablation-anycast    A4: locality win of a nearby replica
//!   ablation-batch      A5: read flow-control window
//!   all                 everything above
//! ```

use gdp_bench::table::{rate, Table};
use gdp_bench::{ablations, fig6, fig8};

fn run_fig6() {
    println!("Fig 6 — forwarding rate and throughput vs PDU size");
    println!(
        "(simulated 32×32 through one router; CPU model {} µs + {} ns/B per PDU)\n",
        fig6::PER_PDU_US,
        fig6::PER_BYTE_NS
    );
    let mut t = Table::new(&["PDU bytes", "PDUs/s", "throughput (bps)"]);
    for size in gdp_sim::workload::fig6_pdu_sizes() {
        let p = fig6::simulated(size, 60);
        t.row(&[size.to_string(), rate(p.pdus_per_sec), rate(p.throughput_bps)]);
    }
    t.print();
    println!("\nwall-clock forwarding rate of this implementation (single thread):");
    let mut t = Table::new(&["PDU bytes", "PDUs/s"]);
    for size in [64usize, 1024, 10240] {
        let p = fig6::in_process(size, 20_000);
        t.row(&[size.to_string(), rate(p.pdus_per_sec)]);
    }
    t.print();
    println!("\nshape: PDU rate ≈ flat (CPU-bound) for small PDUs; throughput rises with");
    println!("PDU size and saturates near 1 Gbps around 10 kB — matching the paper.");
}

fn run_table1() {
    println!("Table I — how the Global Data Plane meets the platform requirements");
    println!("(each row names the demonstrating test in tests/table1_goals.rs)\n");
    let mut t = Table::new(&["goal", "enabling feature", "demonstrated by"]);
    let rows: &[(&str, &str, &str)] = &[
        (
            "Homogeneous interface",
            "DataCapsule API + CAAPIs (fs/kv/timeseries)",
            "homogeneous_interface",
        ),
        ("Federated architecture", "flat name as trust anchor, no PKI", "federated_no_pki"),
        ("Locality", "hierarchical routing domains + anycast", "locality_anycast"),
        (
            "Secure storage",
            "capsule = authenticated data structure",
            "secure_storage_untrusted_server",
        ),
        (
            "Administrative boundaries",
            "explicit AdCert delegations per capsule",
            "administrative_delegation",
        ),
        (
            "Secure routing",
            "secure advertisements + AdCert/RtCert chains",
            "secure_routing_no_squatting",
        ),
        ("Publish-subscribe", "subscribe as a native capsule access mode", "native_pubsub"),
        (
            "Incremental deployment",
            "overlay PDUs over host links (simulated IP)",
            "overlay_incremental",
        ),
    ];
    for (goal, feature, test) in rows {
        t.row(&[goal.to_string(), feature.to_string(), test.to_string()]);
    }
    t.print();
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "fig6" => run_fig6(),
        "fig8" => fig8::report(5),
        "fig8-quick" => {
            println!("Fig 8 (quick) — 4 MB model, 2 runs");
            let mut t = Table::new(&["system", "write (s)", "read (s)"]);
            for (name, cell) in fig8::run_size(4_000_000, 2) {
                t.row(&[
                    name.to_string(),
                    gdp_bench::table::secs(cell.write_us),
                    gdp_bench::table::secs(cell.read_us),
                ]);
            }
            t.print();
        }
        "table1" => run_table1(),
        "ablation-hashptr" => ablations::hashptr(4096),
        "ablation-durability" => ablations::durability(),
        "ablation-session" => ablations::session(&[1, 10, 100, 1000]),
        "ablation-anycast" => ablations::anycast(),
        "ablation-batch" => ablations::read_batch(),
        "all" => {
            run_fig6();
            fig8::report(5);
            run_table1();
            ablations::hashptr(4096);
            ablations::durability();
            ablations::session(&[1, 10, 100, 1000]);
            ablations::anycast();
            ablations::read_batch();
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("known: fig6 fig8 fig8-quick table1 ablation-hashptr ablation-durability ablation-session ablation-anycast all");
            std::process::exit(2);
        }
    }
}

//! Deterministic chaos testing: the production router / storage / client
//! runtimes on the seeded `simnet` fabric, under seed-derived fault
//! schedules (drops, jitter, duplication, partitions, crash/restart),
//! with the four cluster invariants checked after every run
//! (`gdp_sim::check_invariants`).
//!
//! Every failure message leads with `GDP_SIM_SEED=<n>`; replay it with
//!
//! ```text
//! GDP_SIM_SEED=<n> cargo test -p gdp-sim --test chaos -- seed_sweep
//! ```
//!
//! Sweep width defaults to 100 seeds; `GDP_SIM_SEEDS=N` widens it for
//! soak runs.

use gdp_cert::{PrincipalId, PrincipalKind};
use gdp_router::{AttachStep, Attacher};
use gdp_server::{AckMode, ReadTarget};
use gdp_sim::{check_invariants, FaultSpec, SimCluster, StoreEngine, FOREVER};
use gdp_wire::{Name, Pdu, PduType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One virtual second, in fabric microseconds.
const S: u64 = 1_000_000;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique scratch dir per run: two runs of the same seed must
/// never see each other's file stores (that would break replay).
fn fresh_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gdp-chaos-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Everything a run exposes for determinism comparison.
#[derive(Debug, PartialEq, Eq)]
struct RunResult {
    digest: [u8; 32],
    events: u64,
    acked: Vec<u64>,
    partitions: u32,
    crashes: u32,
}

/// Seed parity picks the storage engine, so the sweep exercises both the
/// per-capsule file stores (even seeds) and the shared segmented
/// group-commit log with its deferred acks (odd seeds) under the same
/// fault schedules.
fn engine_for(seed: u64) -> StoreEngine {
    if seed % 2 == 1 {
        StoreEngine::Segmented
    } else {
        StoreEngine::File
    }
}

fn run_scenario(seed: u64) -> RunResult {
    run_scenario_with(seed, engine_for(seed))
}

fn run_scenario_with(seed: u64, engine: StoreEngine) -> RunResult {
    let dir = fresh_dir();
    let result = run_scenario_in(seed, &dir, engine);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// One full seeded chaos run: derive a fault model and workload from the
/// seed, drive appends/reads while disturbing at most one replica at a
/// time, then heal + restart everything and check invariants.
fn run_scenario_in(seed: u64, dir: &Path, engine: StoreEngine) -> RunResult {
    let mut wl = StdRng::seed_from_u64(seed ^ 0x5745_4154);
    let faults = FaultSpec {
        latency_us: wl.gen_range(1_000..5_000),
        jitter_us: wl.gen_range(0..20_000),
        drop: wl.gen_range(0.0..0.12),
        duplicate: wl.gen_range(0.0..0.05),
    };
    let mut c = SimCluster::new_with_engine(seed, faults, dir, engine);
    assert!(c.attach_client(60 * S), "GDP_SIM_SEED={seed}: client attach timed out");
    if wl.gen_bool(0.5) {
        // Sessions are optional (responses fall back to the signed-chain
        // path); exercise the handshake on half the seeds.
        let _ = c.client_session(30 * S);
    }

    let mut partitions = 0u32;
    let mut crashes = 0u32;
    // `Some((victim, was_crash))` while one replica is disturbed. Only
    // one replica is ever down at a time so appends can always ack.
    let mut disturbed: Option<(usize, bool)> = None;

    let n_appends = wl.gen_range(10..20);
    for i in 0..n_appends {
        if disturbed.is_none() && wl.gen_bool(0.35) {
            let victim = wl.gen_range(0..2usize);
            if wl.gen_bool(0.5) {
                c.crash_storage(victim);
                crashes += 1;
                disturbed = Some((victim, true));
            } else {
                c.partition_storage(victim);
                partitions += 1;
                disturbed = Some((victim, false));
            }
            // Let the fault sink in (possibly mid-detection).
            c.run_for(wl.gen_range(0..3 * S));
        }

        // While a replica is down, a replication quorum is unreachable —
        // use Local durability, like an operator would.
        let ack = if disturbed.is_some() {
            AckMode::Local
        } else {
            match wl.gen_range(0..3u8) {
                0 => AckMode::Local,
                1 => AckMode::Quorum(1),
                _ => AckMode::All,
            }
        };
        let seq = c.client_append(format!("chaos {i}").as_bytes(), ack, 120 * S);
        let seq = seq.unwrap_or_else(|| {
            panic!("GDP_SIM_SEED={seed}: append {i} never acked within 120 virtual seconds")
        });

        if wl.gen_bool(0.4) {
            let target = match wl.gen_range(0..3u8) {
                0 => ReadTarget::Latest,
                1 => ReadTarget::One(wl.gen_range(1..=seq)),
                _ => ReadTarget::Range(1, seq),
            };
            // Reads may time out while a replica is mid-failover; honest
            // rejections (stale/partial state) are retried internally and
            // anything dishonest trips invariant 4 at the end.
            let _ = c.client_read(target, 30 * S);
        }

        if let Some((victim, was_crash)) = disturbed {
            if wl.gen_bool(0.45) {
                if was_crash {
                    c.restart_storage(victim);
                } else {
                    c.heal_storage(victim);
                }
                disturbed = None;
            }
        }
        c.run_for(wl.gen_range(100_000..S));
    }

    // Finale: full recovery, then enough quiet time for re-attach and
    // anti-entropy to converge the replicas.
    if let Some((victim, was_crash)) = disturbed.take() {
        if was_crash {
            c.restart_storage(victim);
        } else {
            c.heal_storage(victim);
        }
    }
    c.net.heal_all();
    c.run_for(40 * S);

    check_invariants(&c);
    RunResult {
        digest: c.net.trace_digest(),
        events: c.net.trace_events(),
        acked: c.acked().keys().copied().collect(),
        partitions,
        crashes,
    }
}

/// Acceptance criterion: the same seed must replay byte-identically —
/// same fabric trace digest, same event count, same set of acked seqs —
/// across two runs in fresh scratch dirs.
#[test]
fn same_seed_identical_trace() {
    let a = run_scenario(42);
    let b = run_scenario(42);
    assert_eq!(a, b, "GDP_SIM_SEED=42 diverged between two runs: replay is broken");
    assert!(a.events > 0, "scenario produced no fabric traffic");
}

/// Different seeds must explore different schedules (sanity check that
/// the seed actually drives the run).
#[test]
fn different_seeds_diverge() {
    let a = run_scenario(7);
    let b = run_scenario(8);
    assert_ne!(a.digest, b.digest, "seeds 7 and 8 produced identical traces");
}

/// The sweep: every seed must satisfy all four invariants. Defaults to
/// 100 seeds (the acceptance floor); `GDP_SIM_SEEDS=N` widens the sweep,
/// `GDP_SIM_SEED=n` replays exactly one failing seed.
#[test]
fn seed_sweep() {
    if let Ok(one) = std::env::var("GDP_SIM_SEED") {
        let seed: u64 = one.parse().expect("GDP_SIM_SEED must be a u64");
        let r = run_scenario(seed);
        eprintln!(
            "GDP_SIM_SEED={seed}: ok ({} events, {} acked, {} partitions, {} crashes)",
            r.events,
            r.acked.len(),
            r.partitions,
            r.crashes
        );
        return;
    }
    let n: u64 = std::env::var("GDP_SIM_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(100);
    let (mut partitions, mut crashes) = (0u64, 0u64);
    for seed in 0..n {
        let r = run_scenario(seed);
        partitions += u64::from(r.partitions);
        crashes += u64::from(r.crashes);
    }
    // The sweep must actually have exercised the interesting faults.
    assert!(partitions > 0, "sweep of {n} seeds never partitioned a replica");
    assert!(crashes > 0, "sweep of {n} seeds never crashed a replica");
}

/// Regression pin: seed 4 failed during development. Its schedule
/// crashes replica 1 and restarts it *before* the transport's 1.5 s
/// down-detection window elapses; the stale Down then fired after the
/// replica had already re-attached, silently withdrawing its fresh
/// routes (the replica's attach was Done, so nothing ever re-advertised).
/// When the schedule later crashed replica 0, the capsule had no routes
/// at all and append 6 black-holed past its 120-virtual-second deadline.
/// Fixed by cancelling not-yet-fired detections when the link recovers
/// first — the semantics of a real dial-retry pool. Pinned so the
/// crash → fast-restart → stale-detection → second-crash interleaving is
/// exercised on every run even if the sweep default shrinks.
#[test]
fn pinned_stale_down_detection() {
    let r = run_scenario_with(4, StoreEngine::File);
    assert!(r.crashes >= 2, "seed 4's schedule changed — repin this regression seed");
}

/// Regression pin: seed 12 failed during development. The fabric dropped
/// a `SessionAccept`, leaving the handshake half-established: the server
/// held a flow key the client never learned, MAC'd every response with
/// it, and the client — whose pending-request entries were consumed even
/// by responses that failed verification — could never match a retried
/// append's ack again. Fixed by (a) consuming pending state only when a
/// response authenticates (client), and (b) retrying the handshake and
/// re-keying on "MAC response without session" (driver).
#[test]
fn pinned_half_established_session() {
    let r = run_scenario_with(12, StoreEngine::File);
    assert!(!r.acked.is_empty(), "seed 12's schedule changed — repin this regression seed");
}

/// Regression pin: seed 36 failed during development. A fabric-duplicated
/// `SessionInit` made the server re-key (fresh ephemeral per init); the
/// client only processes the first `SessionAccept`, so client and server
/// permanently disagreed on the flow key and every MAC'd response failed
/// verification. Fixed by (a) answering duplicate inits idempotently —
/// the same client ephemeral reproduces the same server ephemeral, key,
/// and accept — and (b) naming the responding server in `Mac` responses
/// so a key for a *different* replica (anycast routing) degrades to the
/// recoverable no-session path instead of looking like corruption.
#[test]
fn pinned_duplicate_session_init_rekey() {
    let r = run_scenario_with(36, StoreEngine::File);
    assert!(!r.acked.is_empty(), "seed 36's schedule changed — repin this regression seed");
}

/// Regression pin: seed 160 livelocked during development (a wall-clock
/// "hang" that was really an attach storm). The router kept exactly one
/// outstanding challenge per neighbor — overwritten by every Hello,
/// consumed by every Attach — and the node re-Helloed *immediately* on
/// rejection. Once retries put two handshake cycles in flight, each
/// cycle's proof consumed or mismatched the other's challenge, so both
/// rejected, both re-Helloed, and the pair chased each other forever
/// (~29k Hellos before the run was killed). Fixed by (a) keeping a small
/// *set* of outstanding challenges per neighbor, accepting a proof of any
/// of them and consuming none on failure (router), and (b) deferring the
/// post-rejection re-Hello to the periodic attach-retry tick instead of
/// sending it inline (node runtime + sim client driver).
#[test]
fn pinned_attach_storm_livelock() {
    let r = run_scenario_with(160, StoreEngine::File);
    assert!(!r.acked.is_empty(), "seed 160's schedule changed — repin this regression seed");
}

/// Regression pin: seed 747 failed during development (surfaced by a
/// 1000-seed soak). After the client re-keyed a session — anycast had
/// bounced it between replicas — responses MAC'd under the *previous*
/// flow key were still in flight; they named the right server, so the
/// client verified them against its new key and reported "response MAC
/// invalid", a hard invariant-4 failure, for what was really benign
/// epoch skew. Fixed by naming the key epoch (first 8 bytes of the
/// establishing client ephemeral) in `Mac` responses: an epoch the
/// client no longer holds degrades to the recoverable
/// "MAC response without session" path instead of reading as tampering.
#[test]
fn pinned_rekey_epoch_skew() {
    let r = run_scenario_with(747, StoreEngine::File);
    assert!(!r.acked.is_empty(), "seed 747's schedule changed — repin this regression seed");
}

/// Scripted (non-random) crash/restart durability check: acked writes
/// must survive a replica crash because the file store is durable and
/// recovery replays it.
#[test]
fn crash_restart_preserves_acked_writes() {
    let seed = 0xD00D;
    let dir = fresh_dir();
    let mut c = SimCluster::new(seed, FaultSpec::reliable(), &dir);
    assert!(c.attach_client(30 * S));

    for i in 0..5 {
        c.client_append(format!("pre-crash {i}").as_bytes(), AckMode::Quorum(1), 60 * S)
            .expect("append before crash");
    }
    // Crash replica 0: it holds the acked records only on disk now.
    c.crash_storage(0);
    c.run_for(5 * S);
    // The survivor keeps serving appends.
    c.client_append(b"during outage", AckMode::Local, 60 * S).expect("append during outage");
    // Restart through the production boot path (FileStore recovery).
    c.restart_storage(0);
    c.run_for(20 * S);

    check_invariants(&c);
    assert_eq!(c.acked().len(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scripted partition-during-replication: a partition opens between the
/// router and one replica immediately after a Quorum append is issued,
/// so Replicate/ReplicateAck traffic is cut mid-exchange. The append
/// must still ack eventually (failover to Local-capable retry is NOT
/// allowed to lose it) and both replicas must converge after heal.
#[test]
fn partition_during_replication_converges() {
    let seed = 0xFEED;
    let dir = fresh_dir();
    let mut c = SimCluster::new(seed, FaultSpec::reliable(), &dir);
    assert!(c.attach_client(30 * S));

    c.client_append(b"stable", AckMode::Quorum(1), 60 * S).expect("baseline append");

    // Cut replica 1 off, then immediately append with Local durability:
    // the serving replica's replication fan-out toward its peer dies in
    // flight, leaving replica 1 behind until anti-entropy heals it.
    c.partition_storage(1);
    c.client_append(b"during partition", AckMode::Local, 60 * S).expect("append into partition");
    c.run_for(5 * S);
    c.heal_storage(1);
    c.run_for(30 * S);

    check_invariants(&c);
    assert_eq!(c.acked().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-layer metric accounting on a fault-free fabric: every acked
/// write is countable at every layer it crossed, and none of the failure
/// counters moved. This is the observability contract the dashboards
/// (and `scripts/verify.sh`'s smoke step) rely on.
#[test]
fn fault_free_metric_accounting() {
    let seed = 0x0B5;
    let dir = fresh_dir();
    let mut c = SimCluster::new(seed, FaultSpec::reliable(), &dir);
    assert!(c.attach_client(30 * S));

    const N: u64 = 6;
    for i in 0..N {
        c.client_append(format!("obs {i}").as_bytes(), AckMode::Local, 60 * S)
            .expect("fault-free append");
    }
    let reads = 3u64;
    for _ in 0..reads {
        c.client_read(ReadTarget::Latest, 30 * S).expect("fault-free read");
    }
    // Quiet time so replication fan-out completes before counting.
    c.run_for(10 * S);
    check_invariants(&c);

    // Client layer: every append acked, nothing timed out or retried,
    // nothing failed verification.
    let cm = c.client_metrics();
    assert_eq!(cm.counter_value("client", "acked_writes"), N);
    assert_eq!(cm.counter_value("client", "reads_ok"), reads);
    assert_eq!(cm.counter_value("client", "requests_timed_out"), 0);
    assert_eq!(cm.counter_value("client", "requests_retried"), 0);
    assert_eq!(cm.counter_value("client", "verify_failures"), 0);

    // Server layer: exactly N client appends committed across the two
    // replicas, each fanned out to the other replica once; no rejects.
    let committed: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "appends_committed")).sum();
    let replicated_in: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "replicated_in")).sum();
    assert_eq!(committed, N, "GDP_SIM_SEED={seed}: committed appends != acked appends");
    assert_eq!(replicated_in, N, "GDP_SIM_SEED={seed}: replication fan-out incomplete");
    assert!(cm.counter_value("client", "acked_writes") <= committed);
    for i in 1..=2 {
        let nm = c.node_metrics(i);
        assert_eq!(nm.counter_value("server", "appends_rejected"), 0);
        assert_eq!(nm.counter_value("server", "verify_failures"), 0);
        assert_eq!(nm.counter_value("server", "durability_timeouts"), 0);
        // Store layer: every committed record hit the log; recovery never
        // had to truncate and no CRC ever failed.
        assert!(nm.counter_value("store", "entries_appended") > 0);
        assert_eq!(nm.counter_value("store", "recovery_truncations"), 0);
        assert_eq!(nm.counter_value("store", "crc_failures"), 0);
    }
    let served: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "reads_served")).sum();
    assert_eq!(served, reads);

    // Router layer: every data PDU the router handled found a route (the
    // client and both replicas are attached neighbors, so deliveries are
    // local hops), and the fabric confirms nothing was lost in flight.
    let rm = c.node_metrics(0);
    assert_eq!(rm.counter_value("router", "pdus_no_route"), 0);
    let hops = rm.counter_value("router", "pdus_delivered_local")
        + rm.counter_value("router", "pdus_forwarded");
    assert!(hops >= 2 * (N + reads), "too few routed hops: {hops}");
    let stats = c.net.stats();
    assert_eq!(stats.dropped, 0, "reliable fabric dropped traffic");
    assert_eq!(stats.duplicated, 0, "reliable fabric duplicated traffic");
    let _ = std::fs::remove_dir_all(&dir);
}

/// On a lossy fabric the failure path must be *visible*: dropped frames
/// imply driver retries, and the counters prove the retry machinery ran
/// rather than the run merely getting lucky.
#[test]
fn lossy_fabric_shows_retries() {
    let seed = 0x10_55;
    let dir = fresh_dir();
    let faults = FaultSpec { latency_us: 2_000, jitter_us: 5_000, drop: 0.35, duplicate: 0.0 };
    let mut c = SimCluster::new(seed, faults, &dir);
    assert!(c.attach_client(120 * S), "GDP_SIM_SEED={seed}: attach timed out");

    for i in 0..3 {
        c.client_append(format!("lossy {i}").as_bytes(), AckMode::Local, 300 * S)
            .unwrap_or_else(|| panic!("GDP_SIM_SEED={seed}: append {i} never acked"));
    }
    // Quiet time: anti-entropy must converge the lagging replica before
    // the durability invariant is checked.
    c.run_for(30 * S);
    check_invariants(&c);

    let dropped = c.net.stats().dropped;
    assert!(dropped > 0, "GDP_SIM_SEED={seed}: 35% drop rate dropped nothing");
    assert!(
        c.client_metrics().counter_value("client", "requests_retried") > 0,
        "GDP_SIM_SEED={seed}: {dropped} drops but the client never counted a retry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drop-heavy coverage for the pending-request deadline sweep: with the
/// request timeout tightened below the driver's retry slice, lost
/// responses must surface as `ClientEvent::Timeout` (counted in
/// `requests_timed_out`) instead of leaking pending entries forever.
#[test]
fn timeout_sweep_fires_under_loss() {
    let seed = 0x71_3E;
    let dir = fresh_dir();
    let faults = FaultSpec { latency_us: 2_000, jitter_us: 5_000, drop: 0.35, duplicate: 0.0 };
    let mut c = SimCluster::new(seed, faults, &dir);
    assert!(c.attach_client(120 * S), "GDP_SIM_SEED={seed}: attach timed out");
    // Expire pending requests after 1.5 virtual seconds — inside the
    // driver's 2 s per-attempt slice, so a lost request times out before
    // the retry re-issues it.
    c.client_mut().set_request_timeout(1_500_000);

    for i in 0..4 {
        c.client_append(format!("sweep {i}").as_bytes(), AckMode::Local, 300 * S)
            .unwrap_or_else(|| panic!("GDP_SIM_SEED={seed}: append {i} never acked"));
    }
    c.run_for(30 * S);
    check_invariants(&c);

    assert!(c.net.stats().dropped > 0, "GDP_SIM_SEED={seed}: drop rate dropped nothing");
    assert!(
        c.client_metrics().counter_value("client", "requests_timed_out") > 0,
        "GDP_SIM_SEED={seed}: drops never produced a swept timeout"
    );
    // The sweep must not leak: after the run settles, nothing old is
    // still pending (settle longer than the request timeout).
    c.run_for(5 * S);
    assert_eq!(c.client_mut().pending_len(), 0, "pending entries leaked past the sweep");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Determinism must hold under the segmented engine too: group-commit
/// flushes, deferred acks, rotation, and checkpoints are all driven by
/// virtual time, so the same seed must replay byte-identically.
#[test]
fn same_seed_identical_trace_segmented() {
    let a = run_scenario_with(43, StoreEngine::Segmented);
    let b = run_scenario_with(43, StoreEngine::Segmented);
    assert_eq!(a, b, "GDP_SIM_SEED=43 diverged under the segmented engine: replay is broken");
    assert!(a.events > 0, "scenario produced no fabric traffic");
}

/// Scripted crash/restart durability under the segmented engine: every
/// *acked* append must survive a replica crash. With the group-commit
/// default (`batch(5)`), the server defers acks until the covering fsync,
/// so an ack reaching the client proves the record was on disk — the
/// crash then exercises checkpointed tail replay on the shared log
/// instead of per-capsule file recovery.
#[test]
fn crash_restart_preserves_acked_writes_segmented() {
    let seed = 0x5E6D;
    let dir = fresh_dir();
    let mut c =
        SimCluster::new_with_engine(seed, FaultSpec::reliable(), &dir, StoreEngine::Segmented);
    assert!(c.attach_client(30 * S));

    for i in 0..5 {
        c.client_append(format!("pre-crash {i}").as_bytes(), AckMode::Quorum(1), 60 * S)
            .expect("append before crash");
    }
    c.crash_storage(0);
    c.run_for(5 * S);
    c.client_append(b"during outage", AckMode::Local, 60 * S).expect("append during outage");
    c.restart_storage(0);
    c.run_for(20 * S);

    check_invariants(&c);
    assert_eq!(c.acked().len(), 6);
    // The deferred-ack path actually ran: at least one ack waited for its
    // covering fsync on each serving replica.
    let deferred: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "acks_deferred")).sum();
    assert!(deferred > 0, "GDP_SIM_SEED={seed}: group-commit never deferred an ack");
    // Restart replay plus replica catch-up drive real store reads (the
    // chaos nodes run a deliberately tiny block cache, so this sweep
    // exercises eviction + refill): hit/miss accounting must conserve.
    for i in 1..=2 {
        let nm = c.node_metrics(i);
        assert_eq!(
            nm.counter_value("store", "read_cache_hits")
                + nm.counter_value("store", "read_cache_misses"),
            nm.counter_value("store", "reads_served_from_store"),
            "GDP_SIM_SEED={seed}: read-cache accounting broke across crash/restart"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-write chaos on the shared log: crash a replica, append garbage to
/// its active segment (a write the crash cut short), restart. Recovery
/// must truncate exactly the torn tail, keep every acked record, and the
/// cluster must converge — the simulated twin of the power-cut-mid-write
/// failure the paper's durability contract is about.
#[test]
fn torn_segment_tail_recovers_on_restart() {
    let seed = 0x7EA4;
    let dir = fresh_dir();
    let mut c =
        SimCluster::new_with_engine(seed, FaultSpec::reliable(), &dir, StoreEngine::Segmented);
    assert!(c.attach_client(30 * S));

    for i in 0..4 {
        c.client_append(format!("durable {i}").as_bytes(), AckMode::Quorum(1), 60 * S)
            .expect("append before crash");
    }
    c.crash_storage(0);
    c.run_for(3 * S);
    // Three torn shapes in one blob: recovery stops at the first invalid
    // frame, so one garbage append covers them all.
    c.tear_storage_tail(0, &[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03]);
    c.restart_storage(0);
    c.run_for(20 * S);

    check_invariants(&c);
    assert_eq!(c.acked().len(), 4);
    let nm = c.node_metrics(1);
    assert!(
        nm.counter_value("store", "recovery_truncations") >= 1,
        "GDP_SIM_SEED={seed}: the torn tail was never truncated"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-free metric accounting for the segmented engine: the group-commit
/// observability contract. Every acked write crossed one deferred-ack
/// cycle, fsyncs were batched (not per-append), and no corruption or
/// full-scan recovery ever happened on a clean run.
#[test]
fn fault_free_metric_accounting_segmented() {
    let seed = 0x0B6;
    let dir = fresh_dir();
    let mut c =
        SimCluster::new_with_engine(seed, FaultSpec::reliable(), &dir, StoreEngine::Segmented);
    assert!(c.attach_client(30 * S));

    const N: u64 = 6;
    for i in 0..N {
        c.client_append(format!("obs {i}").as_bytes(), AckMode::Local, 60 * S)
            .expect("fault-free append");
    }
    c.run_for(10 * S);
    check_invariants(&c);

    assert_eq!(c.client_metrics().counter_value("client", "acked_writes"), N);
    for i in 1..=2 {
        let nm = c.node_metrics(i);
        // Group commit ran and covered the appends with batched fsyncs.
        assert!(nm.counter_value("store", "entries_appended") > 0);
        assert!(nm.counter_value("store", "group_commits") > 0);
        assert!(
            nm.counter_value("store", "fsyncs") <= nm.counter_value("store", "entries_appended"),
            "GDP_SIM_SEED={seed}: more fsyncs than entries — batching never engaged"
        );
        // Clean run: no corruption, no torn tails, no full-scan recovery.
        assert_eq!(nm.counter_value("store", "crc_failures"), 0);
        assert_eq!(nm.counter_value("store", "recovery_truncations"), 0);
        assert_eq!(nm.counter_value("store", "recovery_full_scans"), 0);
        // Read-path conservation: every read the store served is exactly
        // one block-cache hit or one miss — no double counting, no leak.
        assert_eq!(
            nm.counter_value("store", "read_cache_hits")
                + nm.counter_value("store", "read_cache_misses"),
            nm.counter_value("store", "reads_served_from_store"),
            "GDP_SIM_SEED={seed}: read-cache hit/miss accounting does not conserve reads"
        );
        // Every deferred ack was eventually released.
        let deferred = nm.counter_value("server", "acks_deferred");
        let released = nm.counter_value("server", "acks_released");
        assert_eq!(deferred, released, "GDP_SIM_SEED={seed}: acks parked forever");
    }
    let deferred: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "acks_deferred")).sum();
    assert!(deferred > 0, "GDP_SIM_SEED={seed}: batch policy never deferred an ack");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- overload & hostile-load scenarios (DESIGN.md, "Overload &
// admission") ----------------------------------------------------------

/// Flash crowd: a burst of writers piles onto one capsule (the cluster
/// hosts exactly one — the crowd's target) while every replica is armed
/// with a 1-append-per-tick budget. The servers must shed the excess as
/// *typed* `Nack{Busy}` frames — never silent drops — the client must
/// honor the advertised backoff, and once the burst drains every write
/// must still be acked: shedding degrades goodput, it never loses it.
#[test]
fn flash_crowd_sheds_typed_nacks_and_recovers() {
    let seed = 0xF1A5;
    let dir = fresh_dir();
    let mut c = SimCluster::new(seed, FaultSpec::reliable(), &dir);
    assert!(c.attach_client(30 * S), "GDP_SIM_SEED={seed}: attach timed out");
    c.set_storage_overload_policy(1, 100_000);

    // Zipf-flavored burst: rank-weighted body sizes (the head of the
    // popularity curve writes big, the tail writes small), seed-derived
    // jitter so the byte pattern differs per seed but replays exactly.
    let mut rng = StdRng::seed_from_u64(seed);
    const CROWD: usize = 12;
    for rank in 1..=CROWD {
        let size = (512 / rank).max(8) + rng.gen_range(0..8usize);
        let body = vec![b'a' + (rank as u8 % 26); size];
        c.client_append(&body, AckMode::Local, 120 * S).unwrap_or_else(|| {
            panic!("GDP_SIM_SEED={seed}: flash-crowd append rank {rank} never acked")
        });
    }

    // The budget actually bit, and every shed frame is accounted: each
    // one surfaced to the client as exactly one typed Nack (conservation
    // between the server's shed counter and the client's nack counter).
    let shed: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "appends_shed")).sum();
    assert!(shed > 0, "GDP_SIM_SEED={seed}: 1-append/tick budget never shed under the burst");
    let nacks = c.client_metrics().counter_value("client", "nacks_received");
    assert_eq!(shed, nacks, "GDP_SIM_SEED={seed}: shed frames lost instead of Nacked");
    // Goodput survived: every write in the crowd was eventually acked,
    // and committed exactly once (retries stayed idempotent).
    assert_eq!(c.client_metrics().counter_value("client", "acked_writes"), CROWD as u64);
    let committed: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "appends_committed")).sum();
    assert_eq!(committed, CROWD as u64, "GDP_SIM_SEED={seed}: shed/retry broke idempotence");

    // Disarm, let replication fan-out drain, and hold the cluster to the
    // full invariant suite: shedding must not have forked or lost data.
    c.set_storage_overload_policy(0, 0);
    c.run_for(15 * S);
    check_invariants(&c);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drives a hostile peer's (genuine) attach handshake from its own
/// fabric endpoint, returning the captured `Attach` PDU — the artifact a
/// compromised peer would replay to re-assert a stale advertisement.
fn hostile_attach(
    c: &mut SimCluster,
    ep: &gdp_sim::SimEndpoint,
    attacher: &mut Attacher,
    seed: u64,
) -> Pdu {
    let router = c.router_addr();
    let _ = ep.send(router, attacher.hello());
    let mut captured = None;
    for _ in 0..100 {
        c.run_for(50_000);
        while let Ok(Some((_, pdu))) = ep.try_recv() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(attach) => {
                    captured = Some(attach.clone());
                    let _ = ep.send(router, attach);
                }
                AttachStep::Done(_) => {
                    return captured
                        .unwrap_or_else(|| panic!("GDP_SIM_SEED={seed}: attach without challenge"))
                }
                AttachStep::Failed(reason) => {
                    panic!("GDP_SIM_SEED={seed}: hostile attach failed: {reason}")
                }
                AttachStep::Ignored => {}
            }
        }
    }
    panic!("GDP_SIM_SEED={seed}: hostile attach never completed");
}

/// Byzantine flood: a compromised peer with a real identity attaches,
/// then floods the router with 4x the honest append load across three
/// frame classes — undecodable control traffic, undecodable data, data
/// addressed to names that exist nowhere — plus replays of its own
/// captured `Attach` (stale-advertisement re-assertion). Every hostile
/// frame must land in exactly one failure counter (nothing vanishes
/// unaccounted), every honest append must still ack while the flood
/// runs, and after a mid-flood partition the router must re-converge
/// routes and keep serving end-to-end.
#[test]
fn byzantine_flood_is_accounted_and_survived() {
    let seed = 0xB12A;
    let dir = fresh_dir();
    let mut c = SimCluster::new(seed, FaultSpec::reliable(), &dir);
    assert!(c.attach_client(30 * S), "GDP_SIM_SEED={seed}: attach timed out");

    // The compromised peer: real keys, real handshake — the threat model
    // is an *insider* gone hostile, not a spoofer the crypto stops cold.
    let mallory = PrincipalId::from_seed(PrincipalKind::Client, &[0x66; 32], "mallory");
    let mallory_name = mallory.name();
    let ep = c.hostile_endpoint();
    let router = c.router_addr();
    let mut attacher = Attacher::new(mallory, c.router_name(), Vec::new(), FOREVER);
    let replay = hostile_attach(&mut c, &ep, &mut attacher, seed);

    // The flood generator: one hostile frame per call, rotating classes,
    // with a running tally per class so accounting assertions below can
    // be exact.
    struct Flood {
        ep: gdp_sim::SimEndpoint,
        router: gdp_sim::SimAddr,
        mallory: Name,
        router_name: Name,
        capsule: Name,
        nowhere: Name,
        replay: Pdu,
        seq: u64,
        n_ctrl: u64,
        n_undec: u64,
        n_noroute: u64,
        n_replay: u64,
    }
    impl Flood {
        fn send(&mut self, class: usize) {
            self.seq += 1;
            match class {
                // Undecodable control plane: garbage Advertise / Announce
                // payloads -> router `ctrl_undecodable`.
                0 => {
                    let pdu_type = if self.seq.is_multiple_of(2) {
                        PduType::Advertise
                    } else {
                        PduType::RouterControl
                    };
                    let pdu = Pdu {
                        pdu_type,
                        src: self.mallory,
                        dst: self.router_name,
                        seq: self.seq,
                        payload: vec![0xFF, 0xFF, 0xFF].into(),
                    };
                    let _ = self.ep.send(self.router, pdu);
                    self.n_ctrl += 1;
                }
                // Undecodable data: routes fine (the capsule exists), fails
                // DataMsg decode at a replica -> server
                // `requests_undecodable` (the BadRequest reply routes back
                // to mallory's inbox).
                1 => {
                    let pdu = Pdu::data(self.mallory, self.capsule, self.seq, vec![0xEE]);
                    let _ = self.ep.send(self.router, pdu);
                    self.n_undec += 1;
                }
                // Routable nonsense: data for a name no one ever advertised
                // -> router `pdus_no_route`.
                2 => {
                    let pdu = Pdu::data(self.mallory, self.nowhere, self.seq, vec![0xEE]);
                    let _ = self.ep.send(self.router, pdu);
                    self.n_noroute += 1;
                }
                // Replayed advertisement: the captured Attach re-sent. Its
                // challenge was consumed by the genuine handshake, so every
                // replay -> router `adverts_rejected`.
                _ => {
                    let _ = self.ep.send(self.router, self.replay.clone());
                    self.n_replay += 1;
                }
            }
        }
    }
    let mut flood = Flood {
        ep,
        router,
        mallory: mallory_name,
        router_name: c.router_name(),
        capsule: c.capsule(),
        nowhere: Name::from_content(b"byzantine: no such capsule anywhere"),
        replay,
        seq: 1_000,
        n_ctrl: 0,
        n_undec: 0,
        n_noroute: 0,
        n_replay: 0,
    };

    // Phase A — 4x overload: four hostile frames around every honest
    // append. Goodput must hold end-to-end THROUGHOUT the flood: each
    // append is required to ack before the next salvo.
    const HONEST: u64 = 6;
    for i in 0..HONEST {
        for k in 0..4u64 {
            flood.send(((i * 4 + k) % 4) as usize);
        }
        c.client_append(format!("honest {i}").as_bytes(), AckMode::Local, 60 * S)
            .unwrap_or_else(|| panic!("GDP_SIM_SEED={seed}: honest append {i} starved by flood"));
    }
    c.run_for(5 * S);

    // Exact accounting: every shed hostile frame is in exactly one
    // failure counter, and honest traffic contributed to none of them.
    let rm = c.node_metrics(0);
    assert_eq!(
        rm.counter_value("router", "ctrl_undecodable"),
        flood.n_ctrl,
        "GDP_SIM_SEED={seed}: undecodable control frames not all accounted"
    );
    assert_eq!(
        rm.counter_value("router", "pdus_no_route"),
        flood.n_noroute,
        "GDP_SIM_SEED={seed}: unroutable flood frames not all accounted"
    );
    assert_eq!(
        rm.counter_value("router", "adverts_rejected"),
        flood.n_replay,
        "GDP_SIM_SEED={seed}: replayed advertisements not all rejected"
    );
    let undecodable: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "requests_undecodable")).sum();
    assert_eq!(
        undecodable, flood.n_undec,
        "GDP_SIM_SEED={seed}: undecodable data frames not all accounted"
    );
    assert_eq!(c.client_metrics().counter_value("client", "acked_writes"), HONEST);

    // Phase B — route convergence under continued fire: partition one
    // replica, wait out down-detection so its routes are withdrawn, keep
    // flooding (decode-failure classes only: no-route counts are noisy
    // while replication retries chase the withdrawn replica), and demand
    // the survivor still serves acked writes.
    c.partition_storage(0);
    c.run_for(2 * S);
    for i in 0..2u64 {
        for k in 0..4 {
            flood.send(if k % 2 == 0 { 1 } else { 3 });
        }
        c.client_append(format!("degraded {i}").as_bytes(), AckMode::Local, 60 * S).unwrap_or_else(
            || panic!("GDP_SIM_SEED={seed}: append {i} failed on the surviving replica"),
        );
    }
    c.heal_storage(0);
    c.run_for(30 * S);

    // Decode-failure accounting stays exact across both phases; no_route
    // may only have grown (replication toward the partitioned replica).
    let rm = c.node_metrics(0);
    assert_eq!(rm.counter_value("router", "ctrl_undecodable"), flood.n_ctrl);
    assert_eq!(rm.counter_value("router", "adverts_rejected"), flood.n_replay);
    assert!(rm.counter_value("router", "pdus_no_route") >= flood.n_noroute);
    let undecodable: u64 =
        (1..=2).map(|i| c.node_metrics(i).counter_value("server", "requests_undecodable")).sum();
    assert_eq!(undecodable, flood.n_undec);
    assert_eq!(
        c.client_metrics().counter_value("client", "acked_writes"),
        HONEST + 2,
        "GDP_SIM_SEED={seed}: goodput did not survive the flood"
    );
    assert!(
        c.storage_attached(0),
        "GDP_SIM_SEED={seed}: partitioned replica never re-attached after heal"
    );
    check_invariants(&c);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Workload generators for benchmarks and examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random blob of `len` bytes (model weights, video
/// frames, …). Same seed → same bytes, so cross-system comparisons move
/// identical data.
pub fn blob(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u8; len];
    rng.fill(&mut out[..]);
    out
}

/// The paper's two case-study model sizes (§IX): 28 MB and 115 MB.
pub const MODEL_SMALL: usize = 28 * 1_000_000;
/// The larger model.
pub const MODEL_LARGE: usize = 115 * 1_000_000;

/// A synthetic sensor trace: `n` samples at `period_micros`, sinusoidal
/// with seeded noise.
pub fn sensor_trace(seed: u64, n: usize, period_micros: u64) -> Vec<(u64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let t = i as u64 * period_micros;
            let v = 21.0 + 3.0 * ((i as f64) * 0.01).sin() + rng.gen_range(-0.25..0.25);
            (t, v)
        })
        .collect()
}

/// Payload-size sweep used by the Fig 6 reproduction: 64 B … 16 KiB in
/// powers of two (the paper sweeps PDU size up to ~10 kB).
pub fn fig6_pdu_sizes() -> Vec<usize> {
    (6..=14).map(|k| 1usize << k).collect()
}

/// A synthetic robot "episode" record for the case study: joint states +
/// camera digest, roughly 4 KiB.
pub fn robot_episode(seed: u64, step: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ step);
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&step.to_be_bytes());
    for _ in 0..16 {
        out.extend_from_slice(&rng.gen::<f64>().to_be_bytes());
    }
    let mut frame = vec![0u8; 3960];
    rng.fill(&mut frame[..]);
    out.extend_from_slice(&frame);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic() {
        assert_eq!(blob(1, 1000), blob(1, 1000));
        assert_ne!(blob(1, 1000), blob(2, 1000));
    }

    #[test]
    fn sensor_trace_monotone_time() {
        let trace = sensor_trace(3, 100, 1000);
        assert_eq!(trace.len(), 100);
        for w in trace.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn pdu_sizes_cover_paper_range() {
        let sizes = fig6_pdu_sizes();
        assert_eq!(*sizes.first().unwrap(), 64);
        assert_eq!(*sizes.last().unwrap(), 16384);
    }

    #[test]
    fn episodes_sized_right() {
        let e = robot_episode(7, 3);
        assert!(e.len() > 4000 && e.len() < 4200);
    }
}

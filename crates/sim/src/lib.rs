//! # gdp-sim
//!
//! Scenario assembly and evaluation support: complete simulated GDP
//! deployments ([`world::GdpWorld`]) that CAAPIs run over unmodified, the
//! S3-like / SSHFS-like baseline models for the paper's case study
//! ([`baselines`]), and deterministic workload generators ([`workload`]).
//!
//! Deterministic chaos testing lives in [`cluster`] + [`check`]: the
//! *production* node runtimes (router, DataCapsule servers with
//! file-backed stores, verifying client) on the seeded
//! `gdp_net::simnet` fabric, with fault injection and post-recovery
//! invariant checks (see `tests/chaos.rs` and DESIGN.md, "Simulation
//! architecture").

#![forbid(unsafe_code)]

pub mod baselines;
pub mod check;
pub mod cluster;
pub mod workload;
pub mod world;

pub use baselines::{BaselineWorld, BlobServer};
pub use check::check_invariants;
pub use cluster::SimCluster;
pub use gdp_net::simnet::{FaultSpec, SimAddr, SimEndpoint, SimNetError, SimStats};
pub use gdp_node::StoreEngine;
pub use world::{GdpWorld, Placement, FOREVER};

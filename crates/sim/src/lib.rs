//! # gdp-sim
//!
//! Scenario assembly and evaluation support: complete simulated GDP
//! deployments ([`world::GdpWorld`]) that CAAPIs run over unmodified, the
//! S3-like / SSHFS-like baseline models for the paper's case study
//! ([`baselines`]), and deterministic workload generators ([`workload`]).

pub mod baselines;
pub mod workload;
pub mod world;

pub use baselines::{BaselineWorld, BlobServer};
pub use world::{GdpWorld, Placement, FOREVER};

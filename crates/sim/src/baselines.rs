//! Baseline systems for the Fig 8 case study.
//!
//! The paper compares the GDP against Amazon S3 and SSHFS (§IX). Neither
//! is available here, so we model their *client-observable transfer
//! behaviour* on the same simulated links (DESIGN.md, "Substitutions"):
//!
//! * **ObjectStore** (S3-like, via [`BaselineWorld::object_store_cloud`]) —
//!   whole objects moved in sequential
//!   multipart requests with a large per-request overhead, matching the
//!   paper's note that "TensorFlow's S3 implementation for loading data is
//!   not particularly efficient".
//! * **RemoteFs** (SSHFS-like, via [`BaselineWorld::remote_fs_cloud`]) —
//!   small fixed-size blocks with a bounded
//!   pipeline window; efficient in the common case, chatty per block.
//!
//! Both are plain `SimNode` servers speaking an ad-hoc request/response
//! protocol over the same PDU fabric, so bandwidth-delay effects are
//! identical across systems; only protocol behaviour differs.

use gdp_net::{NodeId, SimCtx, SimNet, SimNode, SimTime, MILLI};
use gdp_wire::{Name, Pdu, PduType};
use std::any::Any;
use std::collections::HashMap;

/// S3-like part size (8 MiB).
pub const OBJECT_PART: usize = 8 * 1024 * 1024;
/// SSHFS-like block size (64 KiB).
pub const FS_BLOCK: usize = 64 * 1024;
/// SSHFS pipeline window (outstanding block requests).
pub const FS_WINDOW: usize = 8;
/// Modeled per-request processing overhead of the object store
/// (auth/index/slow client), per part, on reads.
pub const OBJECT_PART_OVERHEAD: SimTime = 120 * MILLI;
/// Upload overhead factor for the object store (multipart init/commit and
/// the inefficient TF S3 writer): puts cost this multiple of the read
/// overhead.
pub const OBJECT_PUT_FACTOR: SimTime = 3;
/// Modeled per-block server overhead of the remote fs.
pub const FS_BLOCK_OVERHEAD: SimTime = 300; // µs

// Ad-hoc opcodes carried in the first payload byte.
const OP_PUT_PART: u8 = 1;
const OP_PUT_ACK: u8 = 2;
const OP_GET_PART: u8 = 3;
const OP_GET_RESP: u8 = 4;
const OP_SIZE: u8 = 5;
const OP_SIZE_RESP: u8 = 6;

fn req(src: Name, dst: Name, seq: u64, op: u8, body: Vec<u8>) -> Pdu {
    let mut payload = Vec::with_capacity(body.len() + 1);
    payload.push(op);
    payload.extend_from_slice(&body);
    Pdu { pdu_type: PduType::Data, src, dst, seq, payload: payload.into() }
}

/// A blob server node (used for both baselines; behaviour differences are
/// in the *client* access patterns plus the per-request overhead).
pub struct BlobServer {
    /// The server's name (clients address it directly; no GDP routing).
    pub name: Name,
    /// Per-request modeled processing overhead.
    pub request_overhead: SimTime,
    /// Multiplier applied to `request_overhead` for PUT requests.
    pub put_factor: SimTime,
    objects: HashMap<(Name, u64), Vec<u8>>, // (object, part index) → bytes
    sizes: HashMap<Name, u64>,
    busy_until: SimTime,
}

impl BlobServer {
    /// Creates a server node.
    pub fn new(name: Name, request_overhead: SimTime) -> Box<BlobServer> {
        Box::new(BlobServer {
            name,
            request_overhead,
            put_factor: 1,
            objects: HashMap::new(),
            sizes: HashMap::new(),
            busy_until: 0,
        })
    }

    fn delay(&mut self, now: SimTime, factor: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + self.request_overhead * factor;
        self.busy_until = done;
        done - now
    }
}

impl SimNode for BlobServer {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, from: NodeId, pdu: Pdu) {
        if pdu.payload.is_empty() {
            return;
        }
        let op = pdu.payload[0];
        let body = &pdu.payload[1..];
        let factor = if op == OP_PUT_PART { self.put_factor } else { 1 };
        let delay = self.delay(ctx.now, factor);
        match op {
            OP_PUT_PART => {
                // body = object name (32) + part index (8) + total size (8) + bytes
                if body.len() < 48 {
                    return;
                }
                let object = Name(body[..32].try_into().unwrap());
                let part = u64::from_be_bytes(body[32..40].try_into().unwrap());
                let total = u64::from_be_bytes(body[40..48].try_into().unwrap());
                self.objects.insert((object, part), body[48..].to_vec());
                self.sizes.insert(object, total);
                let ack = req(self.name, pdu.src, pdu.seq, OP_PUT_ACK, Vec::new());
                ctx.send_delayed(from, ack, delay);
            }
            OP_GET_PART => {
                if body.len() < 40 {
                    return;
                }
                let object = Name(body[..32].try_into().unwrap());
                let part = u64::from_be_bytes(body[32..40].try_into().unwrap());
                let bytes = self.objects.get(&(object, part)).cloned().unwrap_or_default();
                let resp = req(self.name, pdu.src, pdu.seq, OP_GET_RESP, bytes);
                ctx.send_delayed(from, resp, delay);
            }
            OP_SIZE => {
                if body.len() < 32 {
                    return;
                }
                let object = Name(body[..32].try_into().unwrap());
                let size = self.sizes.get(&object).copied().unwrap_or(0);
                let resp =
                    req(self.name, pdu.src, pdu.seq, OP_SIZE_RESP, size.to_be_bytes().to_vec());
                ctx.send_delayed(from, resp, delay);
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A recording client node: collects responses for the driver.
struct BaselineClient {
    responses: Vec<Pdu>,
}

impl SimNode for BaselineClient {
    fn on_pdu(&mut self, _ctx: &mut SimCtx<'_>, _from: NodeId, pdu: Pdu) {
        self.responses.push(pdu);
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Synchronous driver for a baseline deployment: client ↔ server over the
/// given links, with configurable chunking and pipelining.
pub struct BaselineWorld {
    /// The simulator.
    pub net: SimNet,
    client_node: NodeId,
    /// The blob-server node id.
    pub server_node: NodeId,
    client_name: Name,
    server_name: Name,
    /// Transfer chunk size.
    pub chunk: usize,
    /// Outstanding-request window (1 = strict request/response).
    pub window: usize,
    next_seq: u64,
}

impl BaselineWorld {
    /// Builds a client↔server pair with explicit directed links.
    pub fn new(
        seed: u64,
        up: gdp_net::LinkSpec,
        down: gdp_net::LinkSpec,
        request_overhead: SimTime,
        chunk: usize,
        window: usize,
    ) -> BaselineWorld {
        let mut net = SimNet::new(seed);
        let client_name = Name::from_content(b"baseline client");
        let server_name = Name::from_content(b"baseline server");
        let client_node = net.add_node(Box::new(BaselineClient { responses: Vec::new() }));
        let server_node = net.add_node(BlobServer::new(server_name, request_overhead));
        net.connect_directed(client_node, server_node, up);
        net.connect_directed(server_node, client_node, down);
        BaselineWorld {
            net,
            client_node,
            server_node,
            client_name,
            server_name,
            chunk,
            window,
            next_seq: 1,
        }
    }

    /// S3-like deployment over a residential link: big parts, strict
    /// sequential requests, heavy per-request overhead (heavier on PUT:
    /// multipart init/commit).
    pub fn object_store_cloud(seed: u64) -> BaselineWorld {
        let mut w = BaselineWorld::new(
            seed,
            gdp_net::LinkSpec::residential_up(),
            gdp_net::LinkSpec::residential_down(),
            OBJECT_PART_OVERHEAD,
            OBJECT_PART,
            1,
        );
        w.net.node_mut::<BlobServer>(w.server_node).put_factor = OBJECT_PUT_FACTOR;
        w
    }

    /// SSHFS-like deployment over a residential link: small blocks,
    /// pipeline window, tiny overhead.
    pub fn remote_fs_cloud(seed: u64) -> BaselineWorld {
        BaselineWorld::new(
            seed,
            gdp_net::LinkSpec::residential_up(),
            gdp_net::LinkSpec::residential_down(),
            FS_BLOCK_OVERHEAD,
            FS_BLOCK,
            FS_WINDOW,
        )
    }

    /// SSHFS-like deployment on an edge LAN.
    pub fn remote_fs_edge(seed: u64) -> BaselineWorld {
        BaselineWorld::new(
            seed,
            gdp_net::LinkSpec::lan(),
            gdp_net::LinkSpec::lan(),
            FS_BLOCK_OVERHEAD,
            FS_BLOCK,
            FS_WINDOW,
        )
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    fn take_responses(&mut self) -> Vec<Pdu> {
        std::mem::take(&mut self.net.node_mut::<BaselineClient>(self.client_node).responses)
    }

    fn run_until_responses(&mut self, n: usize) -> Vec<Pdu> {
        loop {
            let have = self.net.node_mut::<BaselineClient>(self.client_node).responses.len();
            if have >= n || !self.net.step() {
                return self.take_responses();
            }
        }
    }

    /// Uploads an object, honoring chunk size and window. Returns elapsed
    /// virtual µs.
    pub fn put(&mut self, object: Name, bytes: &[u8]) -> SimTime {
        let t0 = self.net.now();
        let total = bytes.len() as u64;
        let parts: Vec<&[u8]> =
            if bytes.is_empty() { vec![&[][..]] } else { bytes.chunks(self.chunk).collect() };
        let mut sent = 0usize;
        let mut acked = 0usize;
        while acked < parts.len() {
            while sent < parts.len() && sent - acked < self.window {
                let mut body = Vec::with_capacity(48 + parts[sent].len());
                body.extend_from_slice(&object.0);
                body.extend_from_slice(&(sent as u64).to_be_bytes());
                body.extend_from_slice(&total.to_be_bytes());
                body.extend_from_slice(parts[sent]);
                let pdu = req(self.client_name, self.server_name, self.next_seq, OP_PUT_PART, body);
                self.next_seq += 1;
                self.net.inject(self.client_node, self.server_node, pdu);
                sent += 1;
            }
            let got = self.run_until_responses(1);
            if got.is_empty() {
                break; // network drained without an ack — avoid hanging
            }
            acked += got.len();
        }
        self.net.now() - t0
    }

    /// Downloads an object of known size. Returns (bytes, elapsed µs).
    pub fn get(&mut self, object: Name, size: usize) -> (Vec<u8>, SimTime) {
        let t0 = self.net.now();
        let nparts = if size == 0 { 1 } else { size.div_ceil(self.chunk) };
        let mut out = vec![Vec::new(); nparts];
        let mut requested = 0usize;
        let mut received = 0usize;
        let mut seq_to_part: HashMap<u64, usize> = HashMap::new();
        while received < nparts {
            while requested < nparts && requested - received < self.window {
                let mut body = Vec::with_capacity(40);
                body.extend_from_slice(&object.0);
                body.extend_from_slice(&(requested as u64).to_be_bytes());
                let pdu = req(self.client_name, self.server_name, self.next_seq, OP_GET_PART, body);
                seq_to_part.insert(self.next_seq, requested);
                self.next_seq += 1;
                self.net.inject(self.client_node, self.server_node, pdu);
                requested += 1;
            }
            let got = self.run_until_responses(1);
            if got.is_empty() {
                break; // network drained without a response
            }
            for resp in got {
                if resp.payload.first() == Some(&OP_GET_RESP) {
                    if let Some(part) = seq_to_part.remove(&resp.seq) {
                        out[part] = resp.payload[1..].to_vec();
                        received += 1;
                    }
                }
            }
        }
        (out.concat(), self.net.now() - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut w = BaselineWorld::remote_fs_edge(1);
        let obj = Name::from_content(b"blob");
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let put_time = w.put(obj, &data);
        assert!(put_time > 0);
        let (back, get_time) = w.get(obj, data.len());
        assert_eq!(back, data);
        assert!(get_time > 0);
    }

    #[test]
    fn empty_object() {
        let mut w = BaselineWorld::remote_fs_edge(2);
        let obj = Name::from_content(b"empty");
        w.put(obj, b"");
        let (back, _) = w.get(obj, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn windowed_transfer_faster_than_sequential() {
        let data = vec![7u8; 2_000_000];
        let obj = Name::from_content(b"o");
        let mut seq = BaselineWorld::new(
            3,
            gdp_net::LinkSpec::residential_up(),
            gdp_net::LinkSpec::residential_down(),
            1000,
            FS_BLOCK,
            1,
        );
        seq.put(obj, &data);
        let (_, t_seq) = seq.get(obj, data.len());
        let mut win = BaselineWorld::new(
            3,
            gdp_net::LinkSpec::residential_up(),
            gdp_net::LinkSpec::residential_down(),
            1000,
            FS_BLOCK,
            8,
        );
        win.put(obj, &data);
        let (_, t_win) = win.get(obj, data.len());
        assert!(t_win < t_seq, "windowed {t_win} vs sequential {t_seq}");
    }

    #[test]
    fn object_store_slower_than_remote_fs_on_read() {
        // The calibrated Fig 8 ordering on the cloud path (reads are
        // download-bound at 100 Mbps; S3's per-part overhead dominates).
        let data = vec![1u8; 28_000_000];
        let obj = Name::from_content(b"model");
        let mut s3 = BaselineWorld::object_store_cloud(4);
        s3.put(obj, &data);
        let (_, t_s3) = s3.get(obj, data.len());
        let mut fs = BaselineWorld::remote_fs_cloud(4);
        fs.put(obj, &data);
        let (_, t_fs) = fs.get(obj, data.len());
        assert!(t_s3 > t_fs, "s3 {t_s3} fs {t_fs}");
    }
}

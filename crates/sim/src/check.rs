//! Cluster invariant checks for seeded chaos runs.
//!
//! Called after a scenario has healed every partition, restarted every
//! crashed replica, and run long enough for anti-entropy to converge.
//! Every assertion message leads with `GDP_SIM_SEED=<n>` so a failing
//! sweep seed can be replayed exactly (see README, "Reproducing a
//! failure").

use crate::cluster::SimCluster;
use gdp_capsule::RecordHash;
use std::collections::BTreeMap;

/// Asserts the four chaos invariants on a recovered cluster:
///
/// 1. **Single-writer append-only consistency** — no replica holds more
///    than one record at any seq, and every held record is the one the
///    writer actually signed (no forks past the committed hash chain).
/// 2. **Acked-write durability** — every append the client saw
///    acknowledged survives on *every* replica (so it survived crashes,
///    partitions, and restarts).
/// 3. **Replica convergence** — after partitions heal, the replicas'
///    seq→hash maps are identical.
/// 4. **Read verifiability** — the client never accepted an unverifiable
///    response, and never saw a verification failure beyond the
///    honest-degradation whitelist (stale/partial state it correctly
///    rejected and retried).
pub fn check_invariants(cluster: &SimCluster) {
    let seed = cluster.seed();
    let replicas = cluster.storage_capsules();

    // 1. Fork-freedom against the writer's ground-truth chain.
    for (label, cap) in &replicas {
        for seq in 1..=cap.latest_seq() {
            let recs = cap.get_by_seq(seq);
            assert!(
                recs.len() <= 1,
                // gdp-lint: allow(SK01) -- GDP_SIM_SEED is the chaos-reproduction handle, deliberately printed so failures can be replayed; it is an RNG seed, not key material
                "GDP_SIM_SEED={seed}: invariant 1 (fork-freedom): replica {label} \
                 holds {} distinct records at seq {seq}",
                recs.len()
            );
            if let Some(r) = recs.first() {
                let expect = cluster.written_hash(seq).unwrap_or_else(|| {
                    panic!(
                        // gdp-lint: allow(SK01) -- GDP_SIM_SEED is the chaos-reproduction handle, deliberately printed so failures can be replayed; it is an RNG seed, not key material
                        "GDP_SIM_SEED={seed}: invariant 1: replica {label} holds seq {seq} \
                         which the writer never signed"
                    )
                });
                assert_eq!(
                    r.hash(),
                    expect,
                    // gdp-lint: allow(SK01) -- GDP_SIM_SEED is the chaos-reproduction handle, deliberately printed so failures can be replayed; it is an RNG seed, not key material
                    "GDP_SIM_SEED={seed}: invariant 1: replica {label} seq {seq} \
                     diverges from the writer chain"
                );
            }
        }
    }

    // 2. No acked write may be lost — and after convergence, every
    // replica must hold it.
    for (seq, hash) in cluster.acked() {
        for (label, cap) in &replicas {
            assert!(
                cap.get(hash).is_some(),
                // gdp-lint: allow(SK01) -- GDP_SIM_SEED is the chaos-reproduction handle, deliberately printed so failures can be replayed; it is an RNG seed, not key material
                "GDP_SIM_SEED={seed}: invariant 2 (durability): acked append seq {seq} \
                 missing from replica {label} after recovery"
            );
        }
    }

    // 3. Convergence: identical seq→hash maps across replicas.
    let views: Vec<(String, BTreeMap<u64, RecordHash>)> = replicas
        .iter()
        .map(|(label, cap)| {
            let map = cap.iter().map(|r| (r.header.seq, r.hash())).collect();
            (label.clone(), map)
        })
        .collect();
    for pair in views.windows(2) {
        let (la, a) = &pair[0];
        let (lb, b) = &pair[1];
        assert_eq!(
            a, b,
            // gdp-lint: allow(SK01) -- GDP_SIM_SEED is the chaos-reproduction handle, deliberately printed so failures can be replayed; it is an RNG seed, not key material
            "GDP_SIM_SEED={seed}: invariant 3 (convergence): replicas {la} and {lb} \
             disagree after heal + anti-entropy"
        );
    }

    // 4. Every read the client accepted verified; nothing outside the
    // honest-degradation whitelist ever fired.
    let hard = cluster.hard_verification_failures();
    assert!(
        hard.is_empty(),
        // gdp-lint: allow(SK01) -- GDP_SIM_SEED is the chaos-reproduction handle, deliberately printed so failures can be replayed; it is an RNG seed, not key material
        "GDP_SIM_SEED={seed}: invariant 4 (verifiability): hard verification failures: {hard:?}"
    );
}

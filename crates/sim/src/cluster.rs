//! A full GDP cluster — real router, real DataCapsule servers with
//! file-backed stores, real verifying client — running on the
//! deterministic [`SimNet`] fabric from `gdp_net::simnet`.
//!
//! This is the chassis for seeded chaos testing: the *production*
//! [`NodeRuntime`] cores (the same code the TCP daemon runs) are driven
//! by a single-threaded discrete-event scheduler, so every run is a pure
//! function of the run seed. Faults (drops, jitter, duplication,
//! partitions, crash/restart with durable-store survival) are injected
//! through the fabric and through scheduled peer-down notifications that
//! mirror what the TCP connection pool would report.
//!
//! Cluster identities are fixed constants — only the fault schedule and
//! workload vary with the seed — so a failing seed reproduces exactly.

use gdp_capsule::{CapsuleMetadata, DataCapsule, MetadataBuilder, PointerStrategy};
use gdp_cert::{AdCert, Scope, ServingChain};
use gdp_client::{ClientEvent, GdpClient, VerifiedRead};
use gdp_crypto::SigningKey;
use gdp_net::simnet::{FaultSpec, SimAddr, SimEndpoint, SimNet};
use gdp_node::runtime::FOREVER;
use gdp_node::{HostSpec, NodeConfig, NodeRuntime, Role, StoreEngine};
use gdp_obs::Metrics;
use gdp_router::{AttachStep, Attacher};
use gdp_server::{AckMode, ReadTarget};
use gdp_wire::{Name, Pdu};
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

/// Virtual maintenance-tick cadence (µs) — matches the TCP daemon's
/// 200 ms `TICK_INTERVAL`.
pub const TICK_US: u64 = 200_000;

/// How long (µs) after a crash/partition the transport "notices" and
/// reports the peer down — mirrors the TCP pool's dial-retry window.
pub const DETECT_US: u64 = 1_500_000;

/// Verification-failure reasons that indicate an *honest* degradation
/// correctly detected (and rejected) by the client, not a protocol
/// violation: stale or partial replica state during convergence, and
/// responses MAC'd under a half-established session whose `SessionAccept`
/// the fabric lost (the client re-keys and retries). Anything outside
/// this list is a hard failure for the chaos invariants.
pub const HONEST_FAILURES: [&str; 4] = [
    "stale replica state",
    "range not contiguous",
    "range does not chain",
    "MAC response without session",
];

/// Storage node count (two replicas of one capsule).
const STORAGE: usize = 2;

/// Fabric addresses: router, storage 0, storage 1, client.
const ROUTER: usize = 0;
const CLIENT: usize = STORAGE + 1;

/// A deterministic in-sim GDP cluster: 1 router, 2 storage replicas of
/// one capsule, 1 verifying writer/reader client.
pub struct SimCluster {
    /// The fabric (world control: partitions, crashes, trace digest).
    pub net: SimNet,
    endpoints: Vec<SimEndpoint>,
    /// `None` while the node is crashed. Index: 0 = router, 1..=2 = storage.
    runtimes: Vec<Option<NodeRuntime<SimAddr>>>,
    cfgs: Vec<NodeConfig>,
    /// Per-node shared metric registries (same index as `runtimes`).
    /// Survive crash/restart, so counters accumulate across reboots.
    node_metrics: Vec<Metrics>,
    /// The client's registry (scope `client`).
    client_metrics: Metrics,
    seed: u64,
    client: GdpClient,
    client_attach: Option<Attacher>,
    client_attached: bool,
    last_hello: u64,
    client_events: VecDeque<ClientEvent>,
    metadata: CapsuleMetadata,
    capsule: Name,
    router_name: Name,
    next_tick: u64,
    /// Scheduled `(fire_at, node_index, dead_peer)` peer-down reports.
    pending_downs: Vec<(u64, usize, SimAddr)>,
    /// Writer-chain ground truth: every record ever signed, by seq.
    records: Vec<gdp_capsule::Record>,
    /// Acked appends: seq → record hash (the durability contract).
    acked: BTreeMap<u64, gdp_capsule::RecordHash>,
    /// Every VerificationFailed reason the client ever reported.
    verification_failures: Vec<&'static str>,
}

impl SimCluster {
    /// Builds the cluster on a fresh fabric. `seed` drives every fault
    /// and RNG decision; `data_root` holds the replicas' file stores
    /// (durable across [`SimCluster::crash_storage`] /
    /// [`SimCluster::restart_storage`]).
    pub fn new(seed: u64, faults: FaultSpec, data_root: &Path) -> SimCluster {
        SimCluster::new_with_engine(seed, faults, data_root, StoreEngine::File)
    }

    /// [`SimCluster::new`] with an explicit storage engine: `File` keeps
    /// the per-capsule log files; `Segmented` mounts both replicas on the
    /// shared group-commit log (acks then gate on the covering fsync, so
    /// this exercises the deferred-ack path end to end).
    pub fn new_with_engine(
        seed: u64,
        faults: FaultSpec,
        data_root: &Path,
        engine: StoreEngine,
    ) -> SimCluster {
        let net = SimNet::with_faults(seed, faults);
        let endpoints: Vec<SimEndpoint> = (0..STORAGE + 2).map(|_| net.endpoint()).collect();

        // Fixed identity plan (constant across seeds).
        let router_seed = [10u8; 32];
        let router_name = gdp_router::Router::from_seed(&router_seed, "sim-r").name();
        let owner = SigningKey::from_seed(&[31u8; 32]);
        let writer_key = SigningKey::from_seed(&[32u8; 32]);
        let metadata = MetadataBuilder::new()
            .writer(&writer_key.verifying_key())
            .set_str("description", "chaos capsule")
            .sign(&owner);
        let capsule = metadata.name();

        // Per-storage identities and serving chains (owner-issued).
        let storage_seed = |i: usize| {
            let mut s = [0u8; 32];
            s.fill(21 + i as u8);
            s
        };
        let identity = |i: usize| {
            let mut s = storage_seed(i);
            s[0] ^= 0x5a; // the server-half seed domain (see build_cores)
            gdp_cert::PrincipalId::from_seed(
                gdp_cert::PrincipalKind::Server,
                &s,
                &format!("sim-s{i}"),
            )
        };
        let ids: Vec<_> = (0..STORAGE).map(identity).collect();

        let mut cfgs = vec![NodeConfig {
            role: Role::Router,
            listen: "127.0.0.1:0".parse().unwrap(),
            seed: router_seed,
            label: "sim-r".into(),
            peers: vec![],
            router: None,
            data_dir: None,
            store_engine: StoreEngine::File,
            fsync: None,
            read_cache_bytes: None,
            max_open_segments: None,
            stats_path: None,
            hosts: vec![],
            shards: 1,
            shard_batch: 64,
            admission_rate: 0,
            admission_burst: 64,
        }];
        for i in 0..STORAGE {
            let me = &ids[i];
            let others =
                (0..STORAGE).filter(|j| *j != i).map(|j| ids[j].name()).collect::<Vec<_>>();
            cfgs.push(NodeConfig {
                role: Role::Storage,
                listen: "127.0.0.1:0".parse().unwrap(),
                seed: storage_seed(i),
                label: format!("sim-s{i}"),
                peers: vec![],
                router: Some(router_name),
                data_dir: Some(data_root.join(format!("s{i}"))),
                store_engine: engine,
                fsync: None,
                // Segmented chaos nodes run a deliberately tiny block
                // cache and fd pool: constant eviction/refill and fd
                // churn under faults is exactly the stress we want.
                read_cache_bytes: (engine == StoreEngine::Segmented).then_some(4096),
                max_open_segments: (engine == StoreEngine::Segmented).then_some(4),
                stats_path: None,
                shards: 1,
                shard_batch: 64,
                admission_rate: 0,
                admission_burst: 64,
                hosts: vec![HostSpec {
                    metadata: metadata.clone(),
                    chain: ServingChain::direct(
                        AdCert::issue(&owner, capsule, me.name(), false, Scope::Global, FOREVER),
                        me.principal().clone(),
                    ),
                    peers: others,
                }],
            });
        }

        let node_metrics: Vec<Metrics> = cfgs.iter().map(|_| Metrics::new()).collect();
        let mut runtimes = Vec::new();
        for (i, cfg) in cfgs.iter().enumerate() {
            let uplink = (cfg.role == Role::Storage).then_some(ROUTER);
            let mut rt = NodeRuntime::from_config_with_obs(cfg, uplink, &node_metrics[i])
                .expect("sim node cores");
            rt.set_rng_seed(seed ^ (0x4e4f_4445 + i as u64));
            runtimes.push(Some(rt));
        }

        let client_metrics = Metrics::new();
        let mut client =
            GdpClient::from_seed_with_obs(&[41u8; 32], "sim-cli", &client_metrics.scope("client"));
        client.set_rng_seed(seed ^ 0x434c_4945);
        client.track_capsule(&metadata).expect("track");
        client.register_writer(&metadata, writer_key, PointerStrategy::Chain).expect("writer");

        let mut cluster = SimCluster {
            net,
            endpoints,
            runtimes,
            cfgs,
            node_metrics,
            client_metrics,
            seed,
            client,
            client_attach: None,
            client_attached: false,
            last_hello: 0,
            client_events: VecDeque::new(),
            metadata,
            capsule,
            router_name,
            next_tick: TICK_US,
            pending_downs: Vec::new(),
            records: Vec::new(),
            acked: BTreeMap::new(),
            verification_failures: Vec::new(),
        };
        for i in 0..cluster.runtimes.len() {
            let now = cluster.net.now();
            let out = cluster.runtimes[i].as_mut().unwrap().start(now);
            cluster.transmit(i, out);
        }
        cluster
    }

    /// The chaos capsule's name.
    pub fn capsule(&self) -> Name {
        self.capsule
    }

    /// The capsule metadata (for external tracking).
    pub fn metadata(&self) -> &CapsuleMetadata {
        &self.metadata
    }

    /// The run seed (for failure messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared metric registry of node `idx` (0 = router,
    /// 1..=2 = storage). Registries survive crash/restart, so counters
    /// accumulate across a node's whole simulated lifetime.
    pub fn node_metrics(&self, idx: usize) -> &Metrics {
        &self.node_metrics[idx]
    }

    /// The client-side metric registry (scope `client`).
    pub fn client_metrics(&self) -> &Metrics {
        &self.client_metrics
    }

    /// Mutable access to the client core, e.g. to tighten the pending
    /// request timeout before a drop-heavy run.
    pub fn client_mut(&mut self) -> &mut GdpClient {
        &mut self.client
    }

    /// Ground-truth hash of the writer's record at `seq` (1-based), if
    /// the writer ever signed one.
    pub fn written_hash(&self, seq: u64) -> Option<gdp_capsule::RecordHash> {
        self.records.get(seq as usize - 1).map(|r| r.hash())
    }

    /// Every append the client saw acked: seq → record hash.
    pub fn acked(&self) -> &BTreeMap<u64, gdp_capsule::RecordHash> {
        &self.acked
    }

    /// Verification failures outside the honest-degradation whitelist.
    pub fn hard_verification_failures(&self) -> Vec<&'static str> {
        self.verification_failures
            .iter()
            .copied()
            .filter(|r| !HONEST_FAILURES.contains(r))
            .collect()
    }

    /// The live storage replicas' views of the chaos capsule, labelled.
    /// Panics if a replica is crashed (check only after full recovery)
    /// or does not host the capsule.
    pub fn storage_capsules(&self) -> Vec<(String, &DataCapsule)> {
        (0..STORAGE)
            .map(|i| {
                let rt = self.runtimes[1 + i].as_ref().unwrap_or_else(|| {
                    // gdp-lint: allow(SK01) -- the sim seed is the chaos-reproduction handle, deliberately printed so a failure can be replayed; it is an RNG seed, not key material
                    panic!("GDP_SIM_SEED={}: storage {i} still crashed at check time", self.seed)
                });
                let cap = rt
                    .server()
                    .and_then(|s| s.capsule(&self.capsule))
                    .unwrap_or_else(|| panic!("storage {i} does not host the chaos capsule"));
                (format!("s{i}"), cap)
            })
            .collect()
    }

    fn storage_addr(&self, i: usize) -> SimAddr {
        self.endpoints[1 + i].addr
    }

    fn transmit(&mut self, from_idx: usize, out: Vec<(SimAddr, Pdu)>) {
        for (to, pdu) in out {
            // A send can only fail if the sender itself is crashed (we
            // never address unknown endpoints); drop mirrors real loss.
            let _ = self.endpoints[from_idx].send(to, pdu);
        }
    }

    /// Drains every live endpoint's inbox in fixed order, feeding the
    /// runtimes / client. Returns true if anything was processed.
    fn drain(&mut self) -> bool {
        let mut progressed = false;
        for idx in 0..self.endpoints.len() {
            // try_recv errors mean the endpoint is crashed — same as empty.
            while let Ok(Some(msg)) = self.endpoints[idx].try_recv() {
                progressed = true;
                let now = self.net.now();
                let (from, pdu) = msg;
                // Replay aid: GDP_SIM_DEBUG2=1 narrates every delivered
                // message (node index, sender, type, seq) — one level below
                // GDP_SIM_DEBUG's client-event narration. This is how the
                // seed-160 attach storm was localized.
                if std::env::var("GDP_SIM_DEBUG2").is_ok() {
                    eprintln!(
                        "[sim-drain] idx={idx} from={from} type={:?} seq={} len={}",
                        pdu.pdu_type,
                        pdu.seq,
                        pdu.payload.len()
                    );
                }
                if idx == CLIENT {
                    self.client_pdu(now, pdu);
                } else if let Some(rt) = self.runtimes[idx].as_mut() {
                    let out = rt.on_pdu(now, from, pdu);
                    self.transmit(idx, out);
                }
            }
        }
        progressed
    }

    fn client_pdu(&mut self, now: u64, pdu: Pdu) {
        // The attach handshake claims matching PDUs first, like the node.
        if !self.client_attached {
            if let Some(attacher) = self.client_attach.as_mut() {
                match attacher.on_pdu(&pdu) {
                    AttachStep::Send(reply) => {
                        let _ = self.endpoints[CLIENT].send(ROUTER, reply);
                        return;
                    }
                    AttachStep::Done(_) => {
                        self.client_attached = true;
                        return;
                    }
                    AttachStep::Failed(_) => {
                        // Re-arm but let the 300ms tick retry send the next
                        // Hello: immediate re-Hello on rejection feeds an
                        // attach storm (see chaos seed 160).
                        self.client_attach = Some(Attacher::new(
                            self.client.principal_id().clone(),
                            self.router_name,
                            Vec::new(),
                            FOREVER,
                        ));
                        self.last_hello = now;
                        return;
                    }
                    AttachStep::Ignored => {}
                }
            }
        }
        for ev in self.client.handle_pdu(now, pdu) {
            // Replay aid: GDP_SIM_DEBUG=1 narrates every client event with
            // its virtual timestamp (stderr only — never affects the run).
            if std::env::var("GDP_SIM_DEBUG").is_ok() {
                eprintln!("[sim-client] now={now} {ev:?}");
            }
            if let ClientEvent::VerificationFailed { reason, .. } = &ev {
                self.verification_failures.push(reason);
            }
            self.client_events.push_back(ev);
        }
    }

    fn start_client_attach(&mut self, now: u64) {
        let attacher = Attacher::new(
            self.client.principal_id().clone(),
            self.router_name,
            Vec::new(),
            FOREVER,
        );
        let _ = self.endpoints[CLIENT].send(ROUTER, attacher.hello());
        self.client_attach = Some(attacher);
        self.last_hello = now;
    }

    fn fire_due_downs(&mut self, now: u64) -> bool {
        let Some(pos) = self.pending_downs.iter().position(|d| d.0 <= now) else {
            return false;
        };
        let (_, node, peer) = self.pending_downs.remove(pos);
        if let Some(rt) = self.runtimes[node].as_mut() {
            let out = rt.on_peer_down(now, peer);
            self.transmit(node, out);
        }
        true
    }

    fn tick_all(&mut self, now: u64) {
        for idx in 0..self.runtimes.len() {
            if let Some(rt) = self.runtimes[idx].as_mut() {
                let out = rt.tick(now);
                self.transmit(idx, out);
            }
        }
        // Client deadline sweep: expire pending requests whose responses
        // were lost, exactly like the live driver's wait loop does.
        for ev in self.client.sweep_timeouts(now) {
            if std::env::var("GDP_SIM_DEBUG").is_ok() {
                eprintln!("[sim-client] now={now} {ev:?}");
            }
            self.client_events.push_back(ev);
        }
        // Client attach retry (mirrors ClusterClient's 300ms re-Hello,
        // rounded to the tick cadence).
        if !self.client_attached
            && self.client_attach.is_some()
            && now.saturating_sub(self.last_hello) >= 300_000
        {
            self.last_hello = now;
            if let Some(attacher) = self.client_attach.as_ref() {
                let _ = self.endpoints[CLIENT].send(ROUTER, attacher.hello());
            }
        }
    }

    /// One scheduler quantum: drain inboxes, or fire a due peer-down, or
    /// tick, or advance virtual time toward the next interesting instant.
    /// Returns false once `target` is reached with nothing left due.
    fn step(&mut self, target: u64) -> bool {
        if self.drain() {
            return true;
        }
        let now = self.net.now();
        if self.fire_due_downs(now) {
            return true;
        }
        if now >= self.next_tick {
            self.tick_all(now);
            self.next_tick = now - (now % TICK_US) + TICK_US;
            return true;
        }
        if now >= target {
            return false;
        }
        let mut next = target.min(self.next_tick);
        if let Some(at) = self.net.next_event_at() {
            next = next.min(at.max(now + 1));
        }
        for d in &self.pending_downs {
            next = next.min(d.0.max(now + 1));
        }
        self.net.advance_to(next.max(now + 1));
        true
    }

    /// Runs the world until virtual time `target`.
    pub fn run_until(&mut self, target: u64) {
        while self.step(target) {}
    }

    /// Runs the world for `dt` more microseconds.
    pub fn run_for(&mut self, dt: u64) {
        let t = self.net.now() + dt;
        self.run_until(t);
    }

    /// Pumps the world until the predicate accepts a client event or the
    /// virtual deadline passes.
    fn pump_until(&mut self, deadline: u64, mut pred: impl FnMut(&ClientEvent) -> bool) -> bool {
        loop {
            while let Some(ev) = self.client_events.pop_front() {
                if pred(&ev) {
                    return true;
                }
            }
            if !self.step(deadline) {
                return false;
            }
        }
    }

    // ---- client driver -------------------------------------------------

    /// Attaches the client to the router (secure-advertisement handshake),
    /// pumping up to `window_us` of virtual time.
    pub fn attach_client(&mut self, window_us: u64) -> bool {
        let now = self.net.now();
        self.start_client_attach(now);
        let deadline = now + window_us;
        while !self.client_attached {
            if !self.step(deadline) {
                return false;
            }
        }
        true
    }

    /// Establishes an encrypted session flow with a serving replica,
    /// retrying the handshake (a fresh `SessionInit` per attempt) until
    /// the window closes. Retrying matters: a lost `SessionAccept` leaves
    /// the handshake half-established — the server holds a flow key the
    /// client never learned, so it MACs every response with a key the
    /// client cannot verify (found by seed 12 of the chaos sweep).
    pub fn client_session(&mut self, window_us: u64) -> bool {
        let deadline = self.net.now() + window_us;
        loop {
            let pdu = self.client.session_init(self.capsule);
            let _ = self.endpoints[CLIENT].send(ROUTER, pdu);
            let slice = (self.net.now() + 2_000_000).min(deadline);
            if self.pump_until(slice, |ev| matches!(ev, ClientEvent::SessionReady { .. })) {
                return true;
            }
            if self.net.now() >= deadline {
                return false;
            }
        }
    }

    /// If any verification failure since `seen` was a MAC the client had
    /// no session key for, re-key: send a fresh `SessionInit`, replacing
    /// the server's stale flow. This is the recovery a real client driver
    /// performs when a half-established session poisons responses.
    fn rekey_if_poisoned(&mut self, seen: usize) {
        if self.verification_failures[seen..].contains(&"MAC response without session") {
            let pdu = self.client.session_init(self.capsule);
            let _ = self.endpoints[CLIENT].send(ROUTER, pdu);
        }
    }

    /// Appends a signed record and pumps until the durability mode is
    /// acknowledged, retrying the same signed record (appends are
    /// idempotent server-side) for up to `window_us` of virtual time.
    /// Returns the seq on ack; the record stays in the writer chain — and
    /// out of [`SimCluster::acked`] — when the window closes unacked.
    pub fn client_append(&mut self, body: &[u8], ack: AckMode, window_us: u64) -> Option<u64> {
        let (mut pdu, record) =
            self.client.append(self.capsule, body, 0, ack).expect("writer registered");
        let want = record.header.seq;
        let hash = record.hash();
        self.records.push(record.clone());
        let deadline = self.net.now() + window_us;
        loop {
            // Honor an armed Nack backoff before (re-)issuing: retrying
            // straight into an overloaded server is the storm the typed
            // Nack exists to prevent (events queued while waiting are
            // still examined by the next pump).
            let not_before = self.client.retry_not_before(&self.capsule);
            if self.net.now() < not_before {
                self.run_until(not_before.min(deadline));
            }
            let _ = self.endpoints[CLIENT].send(ROUTER, pdu);
            // Per-attempt slice: short enough that a request lost to a
            // mid-failover route retries well before the outer deadline.
            let slice = (self.net.now() + 2_000_000).min(deadline);
            let seen = self.verification_failures.len();
            let acked = self.pump_until(
                slice,
                |ev| matches!(ev, ClientEvent::AppendAcked { seq, .. } if *seq == want),
            );
            if acked {
                self.acked.insert(want, hash);
                return Some(want);
            }
            if self.net.now() >= deadline {
                return None;
            }
            self.rekey_if_poisoned(seen);
            // Retry under a fresh request seq: the deadline sweep may have
            // expired the previous attempt's pending entry, and responses
            // to a swept seq are ignored. Appends stay idempotent
            // server-side (same signed record).
            self.client.mark_retry();
            pdu = self.client.append_record(self.capsule, record.clone(), ack);
        }
    }

    /// Issues a verified read, retrying for up to `window_us` of virtual
    /// time. Only responses that pass client-side verification are
    /// returned; honest-degradation rejections are retried.
    pub fn client_read(&mut self, target: ReadTarget, window_us: u64) -> Option<VerifiedRead> {
        let deadline = self.net.now() + window_us;
        loop {
            let not_before = self.client.retry_not_before(&self.capsule);
            if self.net.now() < not_before {
                self.run_until(not_before.min(deadline));
            }
            let pdu = self.client.read(self.capsule, target);
            let _ = self.endpoints[CLIENT].send(ROUTER, pdu);
            let slice = (self.net.now() + 2_000_000).min(deadline);
            let seen = self.verification_failures.len();
            let mut got = None;
            let ok = self.pump_until(slice, |ev| match ev {
                ClientEvent::ReadOk { result, .. } => {
                    got = Some(result.clone());
                    true
                }
                // Errors and unreachables end the slice early → retry.
                ClientEvent::Unreachable { .. } | ClientEvent::ServerError { .. } => true,
                _ => false,
            });
            if ok {
                if let Some(r) = got {
                    return Some(r);
                }
            }
            if self.net.now() >= deadline {
                return None;
            }
            self.rekey_if_poisoned(seen);
            self.client.mark_retry();
            // Mirrors the live driver's 50ms pause between retries, so an
            // unroutable capsule doesn't hot-loop request/Error cycles.
            self.run_for(50_000);
        }
    }

    // ---- overload & hostile peers --------------------------------------

    /// The router's identity name (hostile peers need it to forge
    /// plausible control traffic).
    pub fn router_name(&self) -> Name {
        self.router_name
    }

    /// The router's fabric address (where attached traffic enters).
    pub fn router_addr(&self) -> SimAddr {
        self.endpoints[ROUTER].addr
    }

    /// Allocates a fresh fabric endpoint outside the cluster — the
    /// injection point for a compromised peer. Whatever it sends rides
    /// the same seeded fabric (latency, drops) as honest traffic;
    /// responses the cluster addresses back to it queue in its inbox for
    /// the test to inspect or ignore.
    pub fn hostile_endpoint(&mut self) -> SimEndpoint {
        self.net.endpoint()
    }

    /// Arms load shedding on every live storage server: at most `budget`
    /// appends per maintenance tick, excess answered with
    /// `Nack{Busy, retry_after_us}`.
    pub fn set_storage_overload_policy(&mut self, budget: u64, retry_after_us: u64) {
        for i in 0..STORAGE {
            if let Some(rt) = self.runtimes[1 + i].as_mut() {
                if let Some(server) = rt.server_mut() {
                    server.set_overload_policy(budget, retry_after_us);
                }
            }
        }
    }

    // ---- fault injection -----------------------------------------------

    /// Crashes storage `i` (0-based): its process state evaporates, its
    /// file store survives on disk. The router "notices" after the
    /// transport detection delay, withdrawing the replica's routes.
    pub fn crash_storage(&mut self, i: usize) {
        let addr = self.storage_addr(i);
        self.net.crash(addr);
        self.runtimes[1 + i] = None;
        self.pending_downs.push((self.net.now() + DETECT_US, ROUTER, addr));
    }

    /// Cancels not-yet-fired down detections involving storage `i`. A
    /// transport whose peer recovers before the dial-retry budget runs
    /// out never reports Down — without this, a stale detection fires
    /// *after* the replica re-attached and silently withdraws its fresh
    /// routes (found by seed 4 of the chaos sweep; see
    /// `pinned_stale_down_detection` in tests/chaos.rs).
    fn cancel_downs(&mut self, i: usize) {
        let addr = self.storage_addr(i);
        self.pending_downs
            .retain(|&(_, node, peer)| !(node == ROUTER && peer == addr) && node != 1 + i);
    }

    /// Restarts a crashed storage node through the production boot path:
    /// cores rebuilt from config, file store re-opened (torn-tail
    /// recovery + record replay), then a fresh network attach.
    pub fn restart_storage(&mut self, i: usize) {
        let addr = self.storage_addr(i);
        assert!(self.runtimes[1 + i].is_none(), "restart of a running node");
        self.cancel_downs(i);
        self.net.restart(addr);
        // Same registry as before the crash: the node's counters span its
        // whole lifetime, reboots included.
        let mut rt = NodeRuntime::from_config_with_obs(
            &self.cfgs[1 + i],
            Some(ROUTER),
            &self.node_metrics[1 + i],
        )
        .expect("rebuild crashed node");
        // A fresh seed domain per boot: a restarted process has new RNG
        // state, but still fully derived from the run seed.
        rt.set_rng_seed(self.seed ^ (0x4245_4254 + i as u64) ^ self.net.now());
        let now = self.net.now();
        let out = rt.start(now);
        self.runtimes[1 + i] = Some(rt);
        self.transmit(1 + i, out);
    }

    /// Torn-write fault: appends `garbage` to the tail of storage `i`'s
    /// active on-disk log — the shared log's highest-id segment under the
    /// segmented engine, the capsule's log file under the file engine —
    /// simulating a partially persisted write that the crash cut short.
    /// Only meaningful while the node is crashed (the store is closed);
    /// recovery on restart must truncate the torn tail and keep every
    /// acked record. Returns the file that was damaged.
    pub fn tear_storage_tail(&mut self, i: usize, garbage: &[u8]) -> std::path::PathBuf {
        assert!(self.storage_crashed(i), "tear_storage_tail on a running node");
        let cfg = &self.cfgs[1 + i];
        let data_dir = cfg.data_dir.as_ref().expect("sim storage nodes have a data_dir");
        let target = match cfg.store_engine {
            StoreEngine::Segmented => {
                let seg_dir = data_dir.join("seglog");
                std::fs::read_dir(&seg_dir)
                    .expect("seglog dir exists after first boot")
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().map(|x| x == "seg").unwrap_or(false))
                    .max()
                    .expect("seglog has at least one segment")
            }
            StoreEngine::File => data_dir.join(format!("{}.log", self.capsule.to_hex())),
        };
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&target)
            .expect("open crashed node's log for tearing");
        f.write_all(garbage).expect("tear write");
        f.sync_all().expect("tear fsync");
        target
    }

    /// True if storage `i` is currently crashed.
    pub fn storage_crashed(&self, i: usize) -> bool {
        self.runtimes[1 + i].is_none()
    }

    /// True once storage `i`'s network attach has completed.
    pub fn storage_attached(&self, i: usize) -> bool {
        self.runtimes[1 + i].as_ref().map(|rt| rt.is_attached()).unwrap_or(false)
    }

    /// Partitions storage `i` from the router (both directions). Both
    /// sides "notice" after the detection delay: the router withdraws the
    /// replica's routes; the replica restarts its attach handshake.
    pub fn partition_storage(&mut self, i: usize) {
        let addr = self.storage_addr(i);
        self.net.partition(ROUTER, addr);
        let at = self.net.now() + DETECT_US;
        self.pending_downs.push((at, ROUTER, addr));
        self.pending_downs.push((at, 1 + i, ROUTER));
    }

    /// Heals the router↔storage-`i` partition. The replica's pending
    /// attach retries (tick cadence) re-establish its advertisements.
    /// Detections that have not fired yet are cancelled: the link is
    /// back before the transport's retry budget ran out.
    pub fn heal_storage(&mut self, i: usize) {
        let addr = self.storage_addr(i);
        self.cancel_downs(i);
        self.net.heal(ROUTER, addr);
    }
}

//! Scenario builder: assembles complete GDP deployments on the simulator
//! and drives them synchronously.
//!
//! A [`GdpWorld`] owns a `SimNet` with routers, DataCapsule-servers, and
//! one client, and exposes blocking operations (create capsule, append,
//! read, …) that inject a request and run the simulator until the answer
//! arrives. It implements `gdp_caapi::CapsuleAccess`, so every CAAPI —
//! including the Fig 8 filesystem — runs unmodified over the full
//! client → router → server network stack.

use gdp_caapi::{CaapiError, CapsuleAccess};
use gdp_capsule::{CapsuleMetadata, PointerStrategy, Record};
use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_client::{ClientEvent, GdpClient, SimClient, VerifiedRead};
use gdp_crypto::SigningKey;
use gdp_net::{LinkSpec, NodeId, SimNet, SimTime, MILLI};
use gdp_router::{Router, SimRouter};
use gdp_server::{AckMode, DataCapsuleServer, DataMsg, ReadTarget, SimServer};
use gdp_wire::{Name, Pdu, PduType, Wire};

/// Expiry used for all credentials in simulated worlds.
pub const FOREVER: u64 = 1 << 50;

/// Modeled DataCapsule-server CPU per handled request (µs): dominated by
/// the Ed25519 record verification (~170 µs measured by
/// `cargo bench -p gdp-bench --bench ablation_session`).
pub const SERVER_CPU_US: u64 = 200;

/// Which physical deployment to model (paper §IX).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Client on a residential link (100 Mbps down / 10 Mbps up, 10 ms) to
    /// a cloud region; server inside the region on a LAN.
    CloudFromResidential,
    /// Client and server on the same edge LAN (1 Gbps, 200 µs).
    EdgeLan,
}

/// A fully assembled simulated deployment with one driving client.
pub struct GdpWorld {
    /// The simulator (public for advanced scenarios and assertions).
    pub net: SimNet,
    /// Router nodes, in creation order (index 0 = the client's router).
    pub routers: Vec<(NodeId, Name)>,
    /// Server nodes with their principals.
    pub servers: Vec<(NodeId, PrincipalId)>,
    /// The client node.
    pub client_node: NodeId,
    /// Capsule owner key used for delegations.
    pub owner: SigningKey,
    /// Maximum virtual time to wait for any single response.
    pub op_timeout: SimTime,
    /// How many records a network `read_range` fetches per request
    /// (flow-control batch; ablation knob).
    pub read_batch: u64,
    /// Durability mode used for CAAPI appends.
    pub ack_mode: AckMode,
}

impl GdpWorld {
    /// Builds the single-domain world for `placement`.
    pub fn new(seed: u64, placement: Placement) -> GdpWorld {
        let mut net = SimNet::new(seed);
        let router = Router::from_seed(&[100u8; 32], "domain");
        let router_name = router.name();
        let router_node = net.add_node(SimRouter::new(router));

        let server_id = PrincipalId::from_seed(PrincipalKind::Server, &[101u8; 32], "server");
        let server = DataCapsuleServer::new(server_id.clone());
        let server_node = net.add_node(SimServer::new(server, router_node, router_name, FOREVER));
        net.node_mut::<SimServer>(server_node).cpu_cost_us = SERVER_CPU_US;
        net.connect(server_node, router_node, LinkSpec::lan());
        net.inject_timer(server_node, 0, gdp_server::ATTACH_TIMER);

        let client = GdpClient::from_seed(&[102u8; 32], "client");
        let client_node = net.add_node(SimClient::new(client, router_node, router_name, FOREVER));
        match placement {
            Placement::CloudFromResidential => {
                net.connect_directed(client_node, router_node, LinkSpec::residential_up());
                net.connect_directed(router_node, client_node, LinkSpec::residential_down());
            }
            Placement::EdgeLan => {
                net.connect(client_node, router_node, LinkSpec::lan());
            }
        }
        net.inject_timer(client_node, 0, gdp_client::simnode::ATTACH_TIMER);
        net.run_to_quiescence();

        GdpWorld {
            net,
            routers: vec![(router_node, router_name)],
            servers: vec![(server_node, server_id)],
            client_node,
            owner: SigningKey::from_seed(&[99u8; 32]),
            op_timeout: 600 * 1000 * MILLI, // 10 virtual minutes
            read_batch: 16,
            ack_mode: AckMode::Local,
        }
    }

    /// A two-domain hierarchy (root + two leaf domains) with one server in
    /// each leaf and the client in domain 2. Used by locality/ablation
    /// studies.
    pub fn hierarchy(seed: u64) -> GdpWorld {
        let mut net = SimNet::new(seed);
        let root = Router::from_seed(&[110u8; 32], "root");
        let d1 = Router::from_seed(&[111u8; 32], "d1");
        let d2 = Router::from_seed(&[112u8; 32], "d2");
        let (root_name, d1_name, d2_name) = (root.name(), d1.name(), d2.name());
        let root_node = net.add_node(SimRouter::new(root));
        let d1_node = net.add_node(SimRouter::new(d1));
        let d2_node = net.add_node(SimRouter::new(d2));
        net.connect(root_node, d1_node, LinkSpec::wan());
        net.connect(root_node, d2_node, LinkSpec::wan());
        net.node_mut::<SimRouter>(d1_node).router.set_parent(root_node);
        net.node_mut::<SimRouter>(d2_node).router.set_parent(root_node);

        let s1_id = PrincipalId::from_seed(PrincipalKind::Server, &[113u8; 32], "srv-d1");
        let s2_id = PrincipalId::from_seed(PrincipalKind::Server, &[114u8; 32], "srv-d2");
        let s1 = DataCapsuleServer::new(s1_id.clone());
        let s2 = DataCapsuleServer::new(s2_id.clone());
        let s1_node = net.add_node(SimServer::new(s1, d1_node, d1_name, FOREVER));
        let s2_node = net.add_node(SimServer::new(s2, d2_node, d2_name, FOREVER));
        net.node_mut::<SimServer>(s1_node).cpu_cost_us = SERVER_CPU_US;
        net.node_mut::<SimServer>(s2_node).cpu_cost_us = SERVER_CPU_US;
        net.connect(s1_node, d1_node, LinkSpec::lan());
        net.connect(s2_node, d2_node, LinkSpec::lan());
        net.inject_timer(s1_node, 0, gdp_server::ATTACH_TIMER);
        net.inject_timer(s2_node, 0, gdp_server::ATTACH_TIMER);

        let client = GdpClient::from_seed(&[115u8; 32], "client");
        let client_node = net.add_node(SimClient::new(client, d2_node, d2_name, FOREVER));
        net.connect(client_node, d2_node, LinkSpec::lan());
        net.inject_timer(client_node, 0, gdp_client::simnode::ATTACH_TIMER);
        net.run_to_quiescence();

        GdpWorld {
            net,
            routers: vec![(d2_node, d2_name), (root_node, root_name), (d1_node, d1_name)],
            servers: vec![(s1_node, s1_id), (s2_node, s2_id)],
            client_node,
            owner: SigningKey::from_seed(&[99u8; 32]),
            op_timeout: 600 * 1000 * MILLI,
            read_batch: 16,
            ack_mode: AckMode::Local,
        }
    }

    /// Current virtual time (µs).
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    fn client_router(&mut self) -> NodeId {
        self.net.node_mut::<SimClient>(self.client_node).router
    }

    /// Injects a request PDU from the client and runs until events appear
    /// or the op times out. Returns the collected events.
    pub fn drive(&mut self, pdu: Pdu) -> Vec<ClientEvent> {
        let router = self.client_router();
        self.net.inject(self.client_node, router, pdu);
        let deadline = self.net.now() + self.op_timeout;
        loop {
            let has_events = !self.net.node_mut::<SimClient>(self.client_node).events.is_empty();
            if has_events {
                break;
            }
            if self.net.now() >= deadline {
                break;
            }
            if !self.net.step() {
                break;
            }
        }
        // Drain any trailing deliveries that are already enqueued at the
        // same timestamp (e.g. replicate acks following a quorum ack).
        self.net.node_mut::<SimClient>(self.client_node).take_events()
    }

    /// Access to the client state machine.
    pub fn client_mut(&mut self) -> &mut GdpClient {
        &mut self.net.node_mut::<SimClient>(self.client_node).client
    }

    /// Provisions `metadata` on every server (Host + delegation), waits for
    /// the re-advertisements, and registers the client writer.
    pub fn provision_capsule(
        &mut self,
        metadata: &CapsuleMetadata,
        writer: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<Name, CaapiError> {
        let capsule = metadata.name();
        self.client_mut()
            .register_writer(metadata, writer, strategy)
            .map_err(|e| CaapiError::Transport(e.to_string()))?;
        let server_names: Vec<Name> = self.servers.iter().map(|(_, id)| id.name()).collect();
        for (i, (_, server_id)) in self.servers.clone().iter().enumerate() {
            let chain = ServingChain::direct(
                AdCert::issue(
                    &self.owner,
                    capsule,
                    server_id.name(),
                    false,
                    Scope::Global,
                    FOREVER,
                ),
                server_id.principal().clone(),
            );
            let peers: Vec<Name> =
                server_names.iter().filter(|n| **n != server_id.name()).copied().collect();
            let msg = DataMsg::Host { metadata: metadata.clone(), chain, peers };
            let pdu = Pdu {
                pdu_type: PduType::Data,
                src: self.client_name(),
                dst: server_id.name(),
                seq: 1_000_000 + i as u64,
                payload: msg.to_wire().into(),
            };
            let router = self.client_router();
            self.net.inject(self.client_node, router, pdu);
        }
        self.net.run_to_quiescence();
        // Drop HostAck noise.
        let _ = self.net.node_mut::<SimClient>(self.client_node).take_events();
        Ok(capsule)
    }

    /// The client's flat name.
    pub fn client_name(&mut self) -> Name {
        self.net.node_mut::<SimClient>(self.client_node).client.name()
    }

    /// Establishes an HMAC flow with the capsule's serving replica.
    pub fn establish_session(&mut self, capsule: Name) -> Result<(), CaapiError> {
        let pdu = self.client_mut().session_init(capsule);
        let events = self.drive(pdu);
        if events.iter().any(|e| matches!(e, ClientEvent::SessionReady { .. })) {
            Ok(())
        } else {
            Err(CaapiError::Transport(format!("session failed: {events:?}")))
        }
    }
}

impl CapsuleAccess for GdpWorld {
    fn create_capsule(
        &mut self,
        metadata: CapsuleMetadata,
        writer: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<Name, CaapiError> {
        self.provision_capsule(&metadata, writer, strategy)
    }

    fn append(&mut self, capsule: &Name, body: &[u8]) -> Result<u64, CaapiError> {
        let ts = self.net.now();
        let ack_mode = self.ack_mode;
        let (pdu, record) = self
            .client_mut()
            .append(*capsule, body, ts, ack_mode)
            .map_err(|e| CaapiError::Transport(e.to_string()))?;
        let want_seq = record.header.seq;
        let events = self.drive(pdu);
        for e in &events {
            if let ClientEvent::AppendAcked { seq, .. } = e {
                if *seq == want_seq {
                    return Ok(*seq);
                }
            }
        }
        Err(CaapiError::Transport(format!("append not acked: {events:?}")))
    }

    fn append_batch(&mut self, capsule: &Name, bodies: &[Vec<u8>]) -> Result<u64, CaapiError> {
        // Pipelined: sign and inject all records back to back, then wait
        // for every ack. The sender link serializes transmissions; no
        // artificial per-record round trip.
        let ack_mode = self.ack_mode;
        let mut want: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let router = self.client_router();
        let mut last_seq = 0;
        for body in bodies {
            let ts = self.net.now();
            let (pdu, record) = self
                .client_mut()
                .append(*capsule, body, ts, ack_mode)
                .map_err(|e| CaapiError::Transport(e.to_string()))?;
            want.insert(record.header.seq);
            last_seq = last_seq.max(record.header.seq);
            self.net.inject(self.client_node, router, pdu);
        }
        let deadline = self.net.now() + self.op_timeout;
        while !want.is_empty() {
            let events = self.net.node_mut::<SimClient>(self.client_node).take_events();
            for e in events {
                if let ClientEvent::AppendAcked { seq, .. } = e {
                    want.remove(&seq);
                }
            }
            if want.is_empty() {
                break;
            }
            if self.net.now() >= deadline || !self.net.step() {
                break;
            }
        }
        if want.is_empty() {
            Ok(last_seq)
        } else {
            Err(CaapiError::Transport(format!("{} appends not acked", want.len())))
        }
    }

    fn read(&mut self, capsule: &Name, seq: u64) -> Result<Record, CaapiError> {
        let pdu = self.client_mut().read(*capsule, ReadTarget::One(seq));
        let events = self.drive(pdu);
        for e in events {
            match e {
                ClientEvent::ReadOk { result: VerifiedRead::Record(r), .. } => return Ok(r),
                ClientEvent::ServerError { code, detail, .. } => {
                    return Err(CaapiError::NotFound(format!("{code:?}: {detail}")))
                }
                _ => {}
            }
        }
        Err(CaapiError::Transport("no read response".into()))
    }

    fn read_range(
        &mut self,
        capsule: &Name,
        from: u64,
        to: u64,
    ) -> Result<Vec<Record>, CaapiError> {
        let mut out = Vec::new();
        let mut cursor = from;
        // Batched fetch: models client flow control (one request per batch
        // round trip), the knob the Fig 8 study sweeps.
        while cursor <= to {
            let hi = (cursor + self.read_batch - 1).min(to);
            let pdu = self.client_mut().read(*capsule, ReadTarget::Range(cursor, hi));
            let events = self.drive(pdu);
            let mut got = false;
            for e in events {
                match e {
                    ClientEvent::ReadOk { result: VerifiedRead::Records(rs), .. } => {
                        out.extend(rs);
                        got = true;
                    }
                    ClientEvent::ServerError { code, detail, .. } => {
                        return Err(CaapiError::NotFound(format!("{code:?}: {detail}")))
                    }
                    _ => {}
                }
            }
            if !got {
                return Err(CaapiError::Transport("range read failed".into()));
            }
            cursor = hi + 1;
        }
        Ok(out)
    }

    fn latest(&mut self, capsule: &Name) -> Result<Option<Record>, CaapiError> {
        let pdu = self.client_mut().read(*capsule, ReadTarget::Latest);
        let events = self.drive(pdu);
        for e in events {
            match e {
                ClientEvent::ReadOk { result: VerifiedRead::Latest(r, _), .. } => {
                    return Ok(Some(r))
                }
                ClientEvent::ServerError { code: gdp_server::ErrorCode::Empty, .. } => {
                    return Ok(None)
                }
                ClientEvent::ServerError { code, detail, .. } => {
                    return Err(CaapiError::NotFound(format!("{code:?}: {detail}")))
                }
                _ => {}
            }
        }
        Err(CaapiError::Transport("no latest response".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_capsule::MetadataBuilder;

    fn spec(owner: &SigningKey) -> (CapsuleMetadata, SigningKey) {
        let writer = SigningKey::from_seed(&[7u8; 32]);
        let meta = MetadataBuilder::new()
            .writer(&writer.verifying_key())
            .set_str("description", "world test")
            .sign(owner);
        (meta, writer)
    }

    #[test]
    fn edge_world_basic_ops() {
        let mut world = GdpWorld::new(3, Placement::EdgeLan);
        let owner = world.owner.clone();
        let (meta, writer) = spec(&owner);
        let capsule = world.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        assert_eq!(world.append(&capsule, b"first").unwrap(), 1);
        assert_eq!(world.append(&capsule, b"second").unwrap(), 2);
        assert_eq!(world.read(&capsule, 1).unwrap().body, b"first");
        assert_eq!(world.latest(&capsule).unwrap().unwrap().header.seq, 2);
        let range = world.read_range(&capsule, 1, 2).unwrap();
        assert_eq!(range.len(), 2);
    }

    #[test]
    fn cloud_world_is_slower_than_edge() {
        let body = vec![0u8; 500_000];
        let run = |placement| {
            let mut world = GdpWorld::new(3, placement);
            let owner = world.owner.clone();
            let (meta, writer) = spec(&owner);
            let capsule = world.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
            let t0 = world.now();
            world.append(&capsule, &body).unwrap();
            world.now() - t0
        };
        let edge = run(Placement::EdgeLan);
        let cloud = run(Placement::CloudFromResidential);
        // 500 KB upload at 10 Mbps ≈ 400 ms vs ≈ 4 ms at 1 Gbps.
        assert!(cloud > 20 * edge, "cloud {cloud} edge {edge}");
    }

    #[test]
    fn session_over_world() {
        let mut world = GdpWorld::new(4, Placement::EdgeLan);
        let owner = world.owner.clone();
        let (meta, writer) = spec(&owner);
        let capsule = world.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        world.establish_session(capsule).unwrap();
        // HMAC-authenticated appends still work.
        assert_eq!(world.append(&capsule, b"with hmac").unwrap(), 1);
    }

    #[test]
    fn hierarchy_replicates_to_both_domains() {
        let mut world = GdpWorld::hierarchy(5);
        let owner = world.owner.clone();
        let (meta, writer) = spec(&owner);
        let capsule = world.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        world.append(&capsule, b"replicated").unwrap();
        world.net.run_to_quiescence();
        for (node, _) in world.servers.clone() {
            let len = world.net.node_mut::<SimServer>(node).server.capsule(&capsule).unwrap().len();
            assert_eq!(len, 1, "both replicas must hold the record");
        }
    }
}

//! Full-stack integration: client ↔ router hierarchy ↔ replicated
//! DataCapsule-servers, all on the deterministic simulator.

use gdp_capsule::{MetadataBuilder, PointerStrategy};
use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_client::{ClientEvent, GdpClient, SimClient, VerifiedRead};
use gdp_crypto::SigningKey;
use gdp_net::{LinkSpec, NodeId, SimNet};
use gdp_router::{Router, SimRouter};
use gdp_server::{AckMode, DataCapsuleServer, ReadTarget, SimServer};
use gdp_wire::Name;

const FOREVER: u64 = 1 << 50;

fn owner() -> SigningKey {
    SigningKey::from_seed(&[1u8; 32])
}
fn writer_key() -> SigningKey {
    SigningKey::from_seed(&[2u8; 32])
}

struct World {
    net: SimNet,
    capsule: Name,
    client_node: NodeId,
    srv1_node: NodeId,
    srv2_node: NodeId,
    metadata: gdp_capsule::CapsuleMetadata,
}

/// Two domains under a root; capsule replicated on one server per domain;
/// the writer-client lives in domain 2.
fn build_world(ack_ticks: bool) -> World {
    let mut net = SimNet::new(11);
    let root_r = Router::from_seed(&[10u8; 32], "root");
    let r1 = Router::from_seed(&[11u8; 32], "d1");
    let r2 = Router::from_seed(&[12u8; 32], "d2");
    let (r1_name, r2_name) = (r1.name(), r2.name());
    let root_node = net.add_node(SimRouter::new(root_r));
    let r1_node = net.add_node(SimRouter::new(r1));
    let r2_node = net.add_node(SimRouter::new(r2));
    net.connect(root_node, r1_node, LinkSpec::wan());
    net.connect(root_node, r2_node, LinkSpec::wan());
    net.node_mut::<SimRouter>(r1_node).router.set_parent(root_node);
    net.node_mut::<SimRouter>(r2_node).router.set_parent(root_node);

    let metadata = MetadataBuilder::new()
        .writer(&writer_key().verifying_key())
        .set_str("description", "e2e capsule")
        .sign(&owner());
    let capsule = metadata.name();

    let s1_id = PrincipalId::from_seed(PrincipalKind::Server, &[20u8; 32], "srv-1");
    let s2_id = PrincipalId::from_seed(PrincipalKind::Server, &[21u8; 32], "srv-2");
    let mut srv1 = DataCapsuleServer::new(s1_id.clone());
    let mut srv2 = DataCapsuleServer::new(s2_id.clone());
    let chain_for = |id: &PrincipalId| {
        ServingChain::direct(
            AdCert::issue(&owner(), capsule, id.name(), false, Scope::Global, FOREVER),
            id.principal().clone(),
        )
    };
    srv1.host(metadata.clone(), chain_for(&s1_id), vec![s2_id.name()]).unwrap();
    srv2.host(metadata.clone(), chain_for(&s2_id), vec![s1_id.name()]).unwrap();

    let mut sim_srv1 = SimServer::new(srv1, 0, r1_name, FOREVER);
    let mut sim_srv2 = SimServer::new(srv2, 0, r2_name, FOREVER);
    if ack_ticks {
        sim_srv1 = sim_srv1.with_tick(500_000);
        sim_srv2 = sim_srv2.with_tick(500_000);
    }
    let srv1_node = net.add_node(sim_srv1);
    let srv2_node = net.add_node(sim_srv2);
    net.node_mut::<SimServer>(srv1_node).router = r1_node;
    net.node_mut::<SimServer>(srv2_node).router = r2_node;
    net.connect(srv1_node, r1_node, LinkSpec::lan());
    net.connect(srv2_node, r2_node, LinkSpec::lan());
    net.inject_timer(srv1_node, 0, gdp_server::ATTACH_TIMER);
    net.inject_timer(srv2_node, 0, gdp_server::ATTACH_TIMER);
    if ack_ticks {
        net.inject_timer(srv1_node, 500_000, gdp_server::TICK_TIMER);
        net.inject_timer(srv2_node, 500_000, gdp_server::TICK_TIMER);
    }

    let mut client = GdpClient::from_seed(&[30u8; 32], "writer-client");
    client.register_writer(&metadata, writer_key(), PointerStrategy::SkipList).unwrap();
    let client_node = net.add_node(SimClient::new(client, 0, r2_name, FOREVER));
    net.node_mut::<SimClient>(client_node).router = r2_node;
    net.connect(client_node, r2_node, LinkSpec::lan());
    net.inject_timer(client_node, 0, gdp_client::simnode::ATTACH_TIMER);

    if ack_ticks {
        // Tick timers re-arm forever; run bounded instead of to quiescence.
        net.run_until(400_000);
    } else {
        net.run_to_quiescence();
    }
    assert!(net.node_mut::<SimServer>(srv1_node).attached);
    assert!(net.node_mut::<SimServer>(srv2_node).attached);
    assert!(net.node_mut::<SimClient>(client_node).attached);

    World { net, capsule, client_node, srv1_node, srv2_node, metadata }
}

fn send_request(world: &mut World, pdu: gdp_wire::Pdu) {
    let router = world.net.node_mut::<SimClient>(world.client_node).router;
    world.net.inject(world.client_node, router, pdu);
    world.net.run_until(world.net.now() + 2_000_000);
}

#[test]
fn append_replicates_and_reads_verify() {
    let mut world = build_world(false);
    let capsule = world.capsule;

    // Append three records with quorum-1 durability.
    for i in 0..3u64 {
        let (pdu, _) = world
            .net
            .node_mut::<SimClient>(world.client_node)
            .client
            .append(capsule, format!("entry {i}").as_bytes(), i, AckMode::Quorum(1))
            .unwrap();
        send_request(&mut world, pdu);
    }
    let events = world.net.node_mut::<SimClient>(world.client_node).take_events();
    let acks: Vec<_> =
        events.iter().filter(|e| matches!(e, ClientEvent::AppendAcked { .. })).collect();
    assert_eq!(acks.len(), 3, "events: {events:?}");
    if let ClientEvent::AppendAcked { replicas, .. } = acks[2] {
        assert!(*replicas >= 2, "quorum ack must report ≥2 replicas");
    }

    // Both replicas hold all three records (leaderless replication).
    for node in [world.srv1_node, world.srv2_node] {
        let server = &world.net.node_mut::<SimServer>(node).server;
        let c = server.capsule(&capsule).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.is_contiguous());
    }

    // Read latest and a membership proof; both verify client-side.
    let pdu =
        world.net.node_mut::<SimClient>(world.client_node).client.read(capsule, ReadTarget::Latest);
    send_request(&mut world, pdu);
    let pdu = world
        .net
        .node_mut::<SimClient>(world.client_node)
        .client
        .read(capsule, ReadTarget::ProofOf(1));
    send_request(&mut world, pdu);

    let events = world.net.node_mut::<SimClient>(world.client_node).take_events();
    let mut saw_latest = false;
    let mut saw_proof = false;
    for e in &events {
        match e {
            ClientEvent::ReadOk { result: VerifiedRead::Latest(r, hb), .. } => {
                assert_eq!(r.header.seq, 3);
                assert_eq!(hb.seq, 3);
                saw_latest = true;
            }
            ClientEvent::ReadOk { result: VerifiedRead::Proven(r), .. } => {
                assert_eq!(r.header.seq, 1);
                assert_eq!(r.body, b"entry 0");
                saw_proof = true;
            }
            ClientEvent::VerificationFailed { reason, .. } => {
                panic!("unexpected verification failure: {reason}");
            }
            _ => {}
        }
    }
    assert!(saw_latest && saw_proof, "events: {events:?}");
}

#[test]
fn session_upgrade_to_hmac() {
    let mut world = build_world(false);
    let capsule = world.capsule;

    let pdu = world.net.node_mut::<SimClient>(world.client_node).client.session_init(capsule);
    send_request(&mut world, pdu);
    let events = world.net.node_mut::<SimClient>(world.client_node).take_events();
    assert!(
        events.iter().any(|e| matches!(e, ClientEvent::SessionReady { .. })),
        "events: {events:?}"
    );
    assert!(world.net.node_mut::<SimClient>(world.client_node).client.has_session(&capsule));

    // Subsequent appends are HMAC-authenticated and still verify.
    let (pdu, _) = world
        .net
        .node_mut::<SimClient>(world.client_node)
        .client
        .append(capsule, b"after session", 1, AckMode::Local)
        .unwrap();
    send_request(&mut world, pdu);
    let events = world.net.node_mut::<SimClient>(world.client_node).take_events();
    assert!(
        events.iter().any(|e| matches!(e, ClientEvent::AppendAcked { .. })),
        "events: {events:?}"
    );
}

#[test]
fn subscription_delivers_live_events() {
    let mut world = build_world(false);
    let capsule = world.capsule;

    // A second client (reader) in domain 1 subscribes.
    let r1_node = 1usize; // from build order: root=0, r1=1, r2=2
    let r1_name = world.net.node_mut::<SimRouter>(r1_node).router.name();
    let mut reader = GdpClient::from_seed(&[31u8; 32], "reader");
    reader.track_capsule(&world.metadata).unwrap();
    let reader_node = world.net.add_node(SimClient::new(reader, r1_node, r1_name, FOREVER));
    world.net.node_mut::<SimClient>(reader_node).router = r1_node;
    world.net.connect(reader_node, r1_node, LinkSpec::lan());
    world.net.inject_timer(reader_node, world.net.now() + 1, gdp_client::simnode::ATTACH_TIMER);
    world.net.run_to_quiescence();

    let sub_pdu = world.net.node_mut::<SimClient>(reader_node).client.subscribe(capsule, 0);
    world.net.inject(reader_node, r1_node, sub_pdu);
    world.net.run_to_quiescence();

    // Writer appends; the reader (subscribed at the domain-1 replica) must
    // get the event after replication.
    let (pdu, _) = world
        .net
        .node_mut::<SimClient>(world.client_node)
        .client
        .append(capsule, b"published!", 7, AckMode::Local)
        .unwrap();
    send_request(&mut world, pdu);

    let events = world.net.node_mut::<SimClient>(reader_node).take_events();
    let sub_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            ClientEvent::SubEvent { record, .. } => Some(record.body.clone()),
            _ => None,
        })
        .collect();
    assert!(sub_events.iter().any(|b| b == b"published!"), "reader events: {events:?}");
}

#[test]
fn anti_entropy_heals_partition() {
    let mut world = build_world(true);
    let capsule = world.capsule;

    // Partition server 1's domain from the root.
    world.net.set_link_up(0, 1, false); // root ↔ r1

    for i in 0..4u64 {
        let (pdu, _) = world
            .net
            .node_mut::<SimClient>(world.client_node)
            .client
            .append(capsule, format!("during partition {i}").as_bytes(), i, AckMode::Local)
            .unwrap();
        send_request(&mut world, pdu);
    }
    // Server 2 has the records; server 1 does not.
    assert_eq!(
        world.net.node_mut::<SimServer>(world.srv2_node).server.capsule(&capsule).unwrap().len(),
        4
    );
    assert_eq!(
        world.net.node_mut::<SimServer>(world.srv1_node).server.capsule(&capsule).unwrap().len(),
        0
    );

    // Heal the partition; anti-entropy ticks must catch server 1 up.
    world.net.set_link_up(0, 1, true);
    let deadline = world.net.now() + 5_000_000;
    // Keep ticking until the sync happens (ticks self-reschedule).
    world.net.run_until(deadline);
    assert_eq!(
        world.net.node_mut::<SimServer>(world.srv1_node).server.capsule(&capsule).unwrap().len(),
        4,
        "anti-entropy should heal the lagging replica"
    );
}

//! Simulator adapter for a [`GdpClient`]: attaches to a router, queues
//! requests, and collects events for test/bench inspection.

use crate::client::{ClientEvent, GdpClient};
use gdp_net::{NodeId, SimCtx, SimNode};
use gdp_router::{AttachStep, Attacher};
use gdp_wire::Pdu;
use std::any::Any;

/// Timer token: start the attach handshake.
pub const ATTACH_TIMER: u64 = 0xC0;
/// Timer token: flush queued requests (used by scripted scenarios).
pub const FLUSH_TIMER: u64 = 0xC1;

/// A [`GdpClient`] bound to a simulator node.
pub struct SimClient {
    /// The wrapped client.
    pub client: GdpClient,
    /// Neighbor id of this client's GDP-router.
    pub router: NodeId,
    attacher: Option<Attacher>,
    /// Set once the router accepted the client's advertisement.
    pub attached: bool,
    /// Requests queued until attach completes (then sent in order).
    pub outbox: Vec<Pdu>,
    /// Everything `handle_pdu` produced, in arrival order.
    pub events: Vec<ClientEvent>,
}

impl SimClient {
    /// Wraps a client that will attach to `router` using `router_name`.
    pub fn new(
        client: GdpClient,
        router: NodeId,
        router_name: gdp_wire::Name,
        expires: u64,
    ) -> Box<SimClient> {
        let attacher =
            Attacher::new(client.principal_id().clone(), router_name, Vec::new(), expires);
        Box::new(SimClient {
            client,
            router,
            attacher: Some(attacher),
            attached: false,
            outbox: Vec::new(),
            events: Vec::new(),
        })
    }

    /// Queues a request PDU (sent once attached, or immediately on the
    /// next event-loop turn when already attached via a flush timer).
    pub fn enqueue(&mut self, pdu: Pdu) {
        self.outbox.push(pdu);
    }

    /// Takes all collected events.
    pub fn take_events(&mut self) -> Vec<ClientEvent> {
        std::mem::take(&mut self.events)
    }
}

impl SimNode for SimClient {
    fn on_pdu(&mut self, ctx: &mut SimCtx<'_>, _from: NodeId, pdu: Pdu) {
        if let Some(attacher) = self.attacher.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(p) => {
                    ctx.send(self.router, p);
                    return;
                }
                AttachStep::Done(_) => {
                    self.attached = true;
                    self.attacher = None;
                    for queued in self.outbox.drain(..) {
                        ctx.send(self.router, queued);
                    }
                    return;
                }
                AttachStep::Failed(reason) => panic!("client attach failed: {reason}"),
                AttachStep::Ignored => {}
            }
        }
        let events = self.client.handle_pdu(ctx.now, pdu);
        self.events.extend(events);
    }

    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        match token {
            ATTACH_TIMER => {
                if let Some(attacher) = self.attacher.as_ref() {
                    ctx.send(self.router, attacher.hello());
                }
            }
            FLUSH_TIMER if self.attached => {
                for queued in self.outbox.drain(..) {
                    ctx.send(self.router, queued);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

//! The GDP client: writers, readers, and subscribers.
//!
//! Clients are where trust decisions happen: "Clients use digital
//! signatures and encryption as the fundamental tools to enable trust in
//! data rather than in infrastructure" (paper §V). Every response is
//! authenticated (signature or flow-key HMAC) and every record/proof is
//! re-verified against the capsule's writer key before the application
//! sees it. Stale replicas are detected by heartbeat monotonicity,
//! yielding the sequential-consistency reader semantics of §VI-C.
//!
//! Like the server, the client is sans-I/O: methods build request PDUs and
//! `handle_pdu` turns responses into [`ClientEvent`]s.

use gdp_capsule::{CapsuleMetadata, CapsuleWriter, Heartbeat, PointerStrategy, Record};
use gdp_cert::{Principal, PrincipalId, PrincipalKind};
use gdp_crypto::x25519::EphemeralKeyPair;
use gdp_crypto::{ct, hkdf, SigningKey, VerifyingKey};
use gdp_obs::{Counter, Scope};
use gdp_server::proto::{
    append_ack_body, event_body, mac_response, read_result_body, response_transcript,
    session_transcript, AckMode, DataMsg, ErrorCode, NackCode, ReadResult, ReadTarget,
    ResponseAuth,
};
use gdp_wire::{Name, Pdu, PduType, Wire};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Default lifetime of a pending request before
/// [`GdpClient::sweep_timeouts`] expires it (µs).
pub const DEFAULT_REQUEST_TIMEOUT_US: u64 = 10_000_000;

/// A verified read result delivered to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifiedRead {
    /// One verified record.
    Record(Record),
    /// A verified contiguous run, oldest first.
    Records(Vec<Record>),
    /// The newest record plus its heartbeat.
    Latest(Record, Heartbeat),
    /// A record proven against a heartbeat (by membership proof).
    Proven(Record),
    /// A bare heartbeat (freshness answer).
    Heartbeat(Heartbeat),
}

/// Events produced by [`GdpClient::handle_pdu`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// A flow key is established with a delegated server.
    SessionReady {
        /// The capsule the session is for.
        capsule: Name,
        /// The server's name.
        server: Name,
    },
    /// An append was acknowledged durable.
    AppendAcked {
        /// The capsule.
        capsule: Name,
        /// Sequence number of the acked record.
        seq: u64,
        /// Replica count reported by the server.
        replicas: u32,
    },
    /// A verified read result.
    ReadOk {
        /// The capsule.
        capsule: Name,
        /// Request seq this answers.
        request_seq: u64,
        /// The verified payload.
        result: VerifiedRead,
    },
    /// A verified subscription event (pub-sub delivery).
    SubEvent {
        /// The capsule.
        capsule: Name,
        /// The new record.
        record: Record,
    },
    /// The server reported an error.
    ServerError {
        /// The capsule.
        capsule: Name,
        /// Error code.
        code: ErrorCode,
        /// Detail string (untrusted).
        detail: String,
    },
    /// A response failed client-side verification and was dropped. The
    /// detection the threat model promises: "a client can detect such
    /// deviations" (§IV-C).
    VerificationFailed {
        /// The capsule.
        capsule: Name,
        /// Why.
        reason: &'static str,
    },
    /// The network reported the destination unreachable.
    Unreachable {
        /// The name that could not be routed.
        name: Name,
    },
    /// The server shed the request with `Nack{Busy}`. The client armed
    /// its per-capsule backoff; drivers must not re-issue requests for
    /// this capsule before `not_before` (see
    /// [`GdpClient::retry_not_before`]). The pending entry survives — a
    /// Nack is unauthenticated and must never cancel a request.
    Backpressure {
        /// The capsule whose request was shed.
        capsule: Name,
        /// Request seq the Nack answered.
        request_seq: u64,
        /// Earliest µs timestamp at which a retry may be issued
        /// (`now + retry_after + jitter`).
        not_before: u64,
    },
    /// A pending request expired without an authenticated response (the
    /// response was lost, or never sent). The pending entry is dropped;
    /// callers should re-issue — [`GdpClient::append_record`] re-wraps an
    /// already-signed record for exactly this case.
    Timeout {
        /// The capsule the request addressed.
        capsule: Name,
        /// Request seq that expired.
        request_seq: u64,
        /// What kind of request it was.
        kind: RequestKind,
    },
}

/// The kind of an outstanding request (reported by [`ClientEvent::Timeout`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// A read, subscribe, or metadata push.
    Read,
    /// An append.
    Append,
    /// A session-establishment handshake.
    Session,
}

struct TrackedCapsule {
    metadata: CapsuleMetadata,
    writer_key: VerifyingKey,
    owner_key: VerifyingKey,
    /// Highest verified seq observed (stale-replica detection).
    latest_seen: u64,
}

struct Flow {
    eph: EphemeralKeyPair,
    key: Option<[u8; 32]>,
    /// The server the key was agreed with (set together with `key`).
    /// Requests are anycast by capsule name, so a *different* delegated
    /// replica may answer a later request; its MACs are not verifiable
    /// under this key and must be treated as "no session", not corruption.
    server: Option<Name>,
}

struct Pending {
    capsule: Name,
    kind: RequestKind,
    /// Stamped by the first [`GdpClient::sweep_timeouts`] call after
    /// issuance (the sans-I/O request builders take no clock); expiry is
    /// measured from that stamp.
    issued_at: Option<u64>,
}

/// Cached per-client metric handles (see DESIGN.md, "Observability").
#[derive(Clone, Debug)]
struct ClientObs {
    requests_issued: Counter,
    acked_writes: Counter,
    reads_ok: Counter,
    sessions_ready: Counter,
    sub_events: Counter,
    requests_timed_out: Counter,
    requests_retried: Counter,
    verify_failures: Counter,
    server_errors: Counter,
    unreachable: Counter,
    nacks_received: Counter,
}

impl ClientObs {
    fn new(scope: &Scope) -> ClientObs {
        ClientObs {
            requests_issued: scope.counter("requests_issued"),
            acked_writes: scope.counter("acked_writes"),
            reads_ok: scope.counter("reads_ok"),
            sessions_ready: scope.counter("sessions_ready"),
            sub_events: scope.counter("sub_events"),
            requests_timed_out: scope.counter("requests_timed_out"),
            requests_retried: scope.counter("requests_retried"),
            verify_failures: scope.counter("verify_failures"),
            server_errors: scope.counter("server_errors"),
            unreachable: scope.counter("unreachable"),
            nacks_received: scope.counter("nacks_received"),
        }
    }
}

/// The client endpoint.
pub struct GdpClient {
    id: PrincipalId,
    next_seq: u64,
    /// Ordered so [`GdpClient::capsule_for_event`] resolution never
    /// depends on map iteration order (deterministic replay).
    capsules: BTreeMap<Name, TrackedCapsule>,
    flows: HashMap<Name, Flow>,
    writers: HashMap<Name, CapsuleWriter>,
    /// Ordered so [`GdpClient::sweep_timeouts`] expires deterministically.
    pending: BTreeMap<u64, Pending>,
    /// Per-capsule Nack backoff: earliest µs timestamp a retry may be
    /// issued. Ordered for deterministic replay.
    backoff: BTreeMap<Name, u64>,
    /// Pending-request lifetime before the sweep expires it (µs).
    request_timeout: u64,
    obs: ClientObs,
    /// Session-ephemeral-key generator. Entropy-seeded by default;
    /// [`GdpClient::set_rng_seed`] makes handshakes replayable.
    rng: StdRng,
}

impl GdpClient {
    /// Creates a client with the given identity (private metric registry).
    pub fn new(id: PrincipalId) -> GdpClient {
        GdpClient::new_with_obs(id, &gdp_obs::Metrics::new().scope("client"))
    }

    /// Creates a client registering its metrics under `scope`.
    pub fn new_with_obs(id: PrincipalId, scope: &Scope) -> GdpClient {
        assert_eq!(id.principal().kind, PrincipalKind::Client);
        GdpClient {
            id,
            next_seq: 1,
            capsules: BTreeMap::new(),
            flows: HashMap::new(),
            writers: HashMap::new(),
            pending: BTreeMap::new(),
            backoff: BTreeMap::new(),
            request_timeout: DEFAULT_REQUEST_TIMEOUT_US,
            obs: ClientObs::new(scope),
            rng: StdRng::from_entropy(),
        }
    }

    /// Replaces the ephemeral-key generator with a deterministic one, so
    /// simulated runs replay bit-for-bit. Never call this in production:
    /// session keys become a function of the seed.
    pub fn set_rng_seed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Convenience constructor.
    pub fn from_seed(seed: &[u8; 32], label: &str) -> GdpClient {
        GdpClient::new(PrincipalId::from_seed(PrincipalKind::Client, seed, label))
    }

    /// Convenience constructor with an explicit metric scope.
    pub fn from_seed_with_obs(seed: &[u8; 32], label: &str, scope: &Scope) -> GdpClient {
        GdpClient::new_with_obs(PrincipalId::from_seed(PrincipalKind::Client, seed, label), scope)
    }

    /// Overrides the pending-request timeout (µs).
    pub fn set_request_timeout(&mut self, us: u64) {
        self.request_timeout = us;
    }

    /// Number of requests awaiting a response.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Counts a driver-level retry (re-send of an already-issued request)
    /// in the client's `requests_retried` metric.
    pub fn mark_retry(&self) {
        self.obs.requests_retried.inc();
    }

    /// Earliest µs timestamp at which a retry for `capsule` may be issued
    /// (0 when no Nack backoff is armed). Retry drivers must consult this
    /// before re-sending — re-issuing straight into an overloaded server
    /// is the retry storm the Nack exists to prevent.
    pub fn retry_not_before(&self, capsule: &Name) -> u64 {
        self.backoff.get(capsule).copied().unwrap_or(0)
    }

    /// True once `now` has passed the capsule's Nack backoff.
    pub fn retry_ready(&self, capsule: &Name, now: u64) -> bool {
        now >= self.retry_not_before(capsule)
    }

    /// Deadline sweep: expires pending requests older than the request
    /// timeout, yielding a [`ClientEvent::Timeout`] per casualty. Requests
    /// not yet stamped are stamped with `now` (the builders take no
    /// clock), so expiry is measured between consecutive sweeps. Call this
    /// from the same loop that pumps `handle_pdu` — without it, a response
    /// lost in transit leaks the pending entry forever.
    pub fn sweep_timeouts(&mut self, now: u64) -> Vec<ClientEvent> {
        let mut expired = Vec::new();
        for (&seq, p) in self.pending.iter_mut() {
            match p.issued_at {
                None => p.issued_at = Some(now),
                Some(t) if now.saturating_sub(t) >= self.request_timeout => expired.push(seq),
                Some(_) => {}
            }
        }
        let mut events = Vec::new();
        for seq in expired {
            let p = self.pending.remove(&seq).expect("expired seq is pending");
            self.obs.requests_timed_out.inc();
            events.push(ClientEvent::Timeout {
                capsule: p.capsule,
                request_seq: seq,
                kind: p.kind,
            });
        }
        events
    }

    /// The client's flat name (where responses are routed).
    pub fn name(&self) -> Name {
        self.id.name()
    }

    /// The client's principal id (for attach handshakes).
    pub fn principal_id(&self) -> &PrincipalId {
        &self.id
    }

    /// Registers a capsule the client will talk to. The metadata is the
    /// trust anchor: its hash must equal the capsule name, and it carries
    /// the writer/owner keys used for all verification.
    pub fn track_capsule(&mut self, metadata: &CapsuleMetadata) -> Result<(), &'static str> {
        metadata.verify().map_err(|_| "metadata signature invalid")?;
        let writer_key = metadata.writer_key().map_err(|_| "no writer key")?;
        let owner_key = metadata.owner_key().map_err(|_| "no owner key")?;
        self.capsules.insert(
            metadata.name(),
            TrackedCapsule { metadata: metadata.clone(), writer_key, owner_key, latest_seen: 0 },
        );
        Ok(())
    }

    /// Attaches writer state for a capsule (this client is the single
    /// writer). `key` must match the metadata's writer key.
    pub fn register_writer(
        &mut self,
        metadata: &CapsuleMetadata,
        key: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<(), &'static str> {
        self.track_capsule(metadata)?;
        let writer = CapsuleWriter::new(metadata, key, strategy)
            .map_err(|_| "key is not the declared writer")?;
        self.writers.insert(metadata.name(), writer);
        Ok(())
    }

    /// Direct access to a registered writer (e.g. to resume after crash).
    pub fn writer_mut(&mut self, capsule: &Name) -> Option<&mut CapsuleWriter> {
        self.writers.get_mut(capsule)
    }

    fn fresh_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn request(&mut self, capsule: Name, kind: RequestKind, msg: &DataMsg) -> Pdu {
        let seq = self.fresh_seq();
        self.pending.insert(seq, Pending { capsule, kind, issued_at: None });
        self.obs.requests_issued.inc();
        Pdu {
            pdu_type: PduType::Data,
            src: self.name(),
            dst: capsule,
            seq,
            payload: msg.to_wire().into(),
        }
    }

    /// Builds a session-establishment request for a capsule.
    pub fn session_init(&mut self, capsule: Name) -> Pdu {
        let eph = EphemeralKeyPair::generate(&mut self.rng);
        let client_eph = *eph.public();
        self.flows.insert(capsule, Flow { eph, key: None, server: None });
        self.request(capsule, RequestKind::Session, &DataMsg::SessionInit { client_eph })
    }

    /// True once a flow key exists for the capsule.
    pub fn has_session(&self, capsule: &Name) -> bool {
        self.flows.get(capsule).map(|f| f.key.is_some()).unwrap_or(false)
    }

    /// Builds an append request: signs a new record via the registered
    /// writer and wraps it with the durability mode.
    pub fn append(
        &mut self,
        capsule: Name,
        body: &[u8],
        timestamp_micros: u64,
        ack_mode: AckMode,
    ) -> Result<(Pdu, Record), &'static str> {
        let writer = self.writers.get_mut(&capsule).ok_or("no writer registered")?;
        let record = writer.append(body, timestamp_micros).map_err(|_| "append failed")?;
        let pdu = self.request(
            capsule,
            RequestKind::Append,
            &DataMsg::Append { record: record.clone(), ack_mode },
        );
        Ok((pdu, record))
    }

    /// Re-wraps an already-signed record in a fresh append request — the
    /// re-issue path after a [`ClientEvent::Timeout`] (appends are
    /// idempotent server-side, so re-sending a signed record is safe).
    pub fn append_record(&mut self, capsule: Name, record: Record, ack_mode: AckMode) -> Pdu {
        self.obs.requests_retried.inc();
        self.request(capsule, RequestKind::Append, &DataMsg::Append { record, ack_mode })
    }

    /// Builds a read request.
    pub fn read(&mut self, capsule: Name, target: ReadTarget) -> Pdu {
        self.request(capsule, RequestKind::Read, &DataMsg::Read { target })
    }

    /// Builds a subscribe request.
    pub fn subscribe(&mut self, capsule: Name, from_seq: u64) -> Pdu {
        self.request(capsule, RequestKind::Read, &DataMsg::Subscribe { from_seq })
    }

    /// Builds the metadata-push used when creating a capsule on a server.
    pub fn put_metadata(&mut self, capsule: Name) -> Option<Pdu> {
        let meta = self.capsules.get(&capsule)?.metadata.clone();
        Some(self.request(capsule, RequestKind::Read, &DataMsg::PutMetadata { metadata: meta }))
    }

    // ---- response handling ------------------------------------------------

    /// Verifies a response's authentication against the transcript.
    fn check_auth(
        &self,
        capsule: &Name,
        request_seq: u64,
        body: &[u8],
        auth: &ResponseAuth,
        now: u64,
    ) -> Result<(), &'static str> {
        match auth {
            ResponseAuth::Signed { server, chain, signature } => {
                let tracked = self.capsules.get(capsule).ok_or("untracked capsule")?;
                chain.verify(&tracked.owner_key, now).map_err(|_| "serving chain invalid")?;
                if chain.server().name() != server.name() {
                    return Err("chain does not end at responder");
                }
                if chain.adcert.capsule != *capsule {
                    return Err("chain is for a different capsule");
                }
                let transcript = response_transcript(capsule, request_seq, body);
                if server.verify(&transcript, signature) {
                    Ok(())
                } else {
                    Err("response signature invalid")
                }
            }
            ResponseAuth::Mac { server, epoch, tag } => {
                // The key must exist, belong to the responding replica
                // (anycast routing may hand the request to a different
                // delegated server than the session peer), *and* be the
                // same key epoch: after a re-key, responses MAC'd under
                // the previous key can still be in flight, and a key the
                // client no longer holds is a disagreement to recover
                // from, not evidence of tampering.
                let flow = self
                    .flows
                    .get(capsule)
                    .filter(|f| f.server == Some(*server))
                    .filter(|f| f.eph.public()[..8] == epoch[..])
                    .and_then(|f| f.key.as_ref())
                    .ok_or("MAC response without session")?;
                let expect = mac_response(flow, capsule, request_seq, body);
                if ct::eq(&expect, tag) {
                    Ok(())
                } else {
                    Err("response MAC invalid")
                }
            }
        }
    }

    fn verify_read(
        &mut self,
        capsule: &Name,
        result: ReadResult,
    ) -> Result<VerifiedRead, &'static str> {
        let tracked = self.capsules.get_mut(capsule).ok_or("untracked capsule")?;
        let wk = tracked.writer_key;
        match result {
            ReadResult::Record(r) => {
                r.verify(capsule, &wk).map_err(|_| "record verification failed")?;
                Ok(VerifiedRead::Record(r))
            }
            ReadResult::Records(rs) => {
                for r in &rs {
                    r.verify(capsule, &wk).map_err(|_| "record verification failed")?;
                }
                // A range answer must be strictly contiguous and chained:
                // anything else lets a malicious server reorder or omit
                // records while each record still verifies individually.
                for w in rs.windows(2) {
                    if w[1].header.seq != w[0].header.seq + 1 {
                        return Err("range not contiguous");
                    }
                    if w[1].header.prev != w[0].hash() {
                        return Err("range does not chain");
                    }
                }
                Ok(VerifiedRead::Records(rs))
            }
            ReadResult::Latest(r, hb) => {
                r.verify(capsule, &wk).map_err(|_| "record verification failed")?;
                hb.verify(&wk).map_err(|_| "heartbeat invalid")?;
                if hb.head != r.hash() || hb.seq != r.header.seq {
                    return Err("heartbeat does not match record");
                }
                if hb.seq < tracked.latest_seen {
                    // A replica served state older than what we've already
                    // verified: sequential consistency says discard (§VI-C).
                    return Err("stale replica state");
                }
                tracked.latest_seen = hb.seq;
                Ok(VerifiedRead::Latest(r, hb))
            }
            ReadResult::Proof(p) => {
                let record = p.verify(capsule, &wk).map_err(|_| "membership proof invalid")?;
                tracked.latest_seen = tracked.latest_seen.max(p.heartbeat.seq);
                Ok(VerifiedRead::Proven(record))
            }
            ReadResult::RangeProofResult(p) => {
                let records = p.verify(capsule, &wk).map_err(|_| "range proof invalid")?;
                Ok(VerifiedRead::Records(records))
            }
            ReadResult::HeartbeatOnly(hb) => {
                hb.verify(&wk).map_err(|_| "heartbeat invalid")?;
                if hb.seq < tracked.latest_seen {
                    return Err("stale replica state");
                }
                tracked.latest_seen = hb.seq;
                Ok(VerifiedRead::Heartbeat(hb))
            }
        }
    }

    /// Processes an inbound PDU, yielding zero or more events.
    pub fn handle_pdu(&mut self, now: u64, pdu: Pdu) -> Vec<ClientEvent> {
        if pdu.pdu_type == PduType::Error {
            // Router-generated unreachable notice; payload = the dest name.
            let name = pdu.payload.as_slice().try_into().map(Name).unwrap_or(Name::ZERO);
            self.obs.unreachable.inc();
            return vec![ClientEvent::Unreachable { name }];
        }
        if pdu.pdu_type != PduType::Data {
            return Vec::new();
        }
        let Ok(msg) = DataMsg::from_wire(&pdu.payload) else {
            return Vec::new();
        };
        match msg {
            DataMsg::SessionAccept { server_eph, client_eph, server, chain, signature } => self
                .on_session_accept(now, pdu.seq, server_eph, client_eph, server, chain, signature),
            DataMsg::AppendAck { seq, hash, replicas, auth } => {
                // The pending entry is consumed only once a response
                // *authenticates*: an unverifiable (or forged) ack must not
                // cancel the request, or a retransmit's genuine ack would be
                // ignored forever afterwards.
                let Some(capsule) = self.pending.get(&pdu.seq).map(|p| p.capsule) else {
                    return Vec::new();
                };
                let body = append_ack_body(seq, &hash, replicas);
                match self.check_auth(&capsule, pdu.seq, &body, &auth, now) {
                    Ok(()) => {
                        self.pending.remove(&pdu.seq);
                        self.obs.acked_writes.inc();
                        vec![ClientEvent::AppendAcked { capsule, seq, replicas }]
                    }
                    Err(reason) => {
                        self.obs.verify_failures.inc();
                        vec![ClientEvent::VerificationFailed { capsule, reason }]
                    }
                }
            }
            DataMsg::ReadResp { result, auth } => {
                let Some(capsule) = self.pending.get(&pdu.seq).map(|p| p.capsule) else {
                    return Vec::new();
                };
                let body = read_result_body(&result);
                if let Err(reason) = self.check_auth(&capsule, pdu.seq, &body, &auth, now) {
                    self.obs.verify_failures.inc();
                    return vec![ClientEvent::VerificationFailed { capsule, reason }];
                }
                self.pending.remove(&pdu.seq);
                match self.verify_read(&capsule, result) {
                    Ok(result) => {
                        self.obs.reads_ok.inc();
                        vec![ClientEvent::ReadOk { capsule, request_seq: pdu.seq, result }]
                    }
                    Err(reason) => {
                        self.obs.verify_failures.inc();
                        vec![ClientEvent::VerificationFailed { capsule, reason }]
                    }
                }
            }
            DataMsg::Event { record, auth } => {
                // Events carry request_seq 0 by convention.
                let capsule = match self.capsule_for_event(&record) {
                    Some(c) => c,
                    None => return Vec::new(),
                };
                let body = event_body(&record);
                if let Err(reason) = self.check_auth(&capsule, 0, &body, &auth, now) {
                    self.obs.verify_failures.inc();
                    return vec![ClientEvent::VerificationFailed { capsule, reason }];
                }
                let tracked = self.capsules.get_mut(&capsule).unwrap();
                if record.verify(&capsule, &tracked.writer_key).is_err() {
                    self.obs.verify_failures.inc();
                    return vec![ClientEvent::VerificationFailed {
                        capsule,
                        reason: "event record invalid",
                    }];
                }
                tracked.latest_seen = tracked.latest_seen.max(record.header.seq);
                self.obs.sub_events.inc();
                vec![ClientEvent::SubEvent { capsule, record }]
            }
            DataMsg::ErrResp { code, detail } => {
                // Error responses are unauthenticated, so they also must not
                // cancel the pending request (spoofable).
                let capsule = self.pending.get(&pdu.seq).map(|p| p.capsule).unwrap_or(Name::ZERO);
                self.obs.server_errors.inc();
                vec![ClientEvent::ServerError { capsule, code, detail }]
            }
            DataMsg::Nack { code: NackCode::Busy, retry_after_us } => {
                // Unauthenticated, like ErrResp: never consumes the pending
                // request. It only arms the per-capsule backoff, so the
                // worst a spoofed Nack can do is delay one retry. Jitter is
                // drawn from the client's seeded rng — deterministic under
                // simulation, decorrelated across real clients, so a flash
                // crowd doesn't retry in lockstep when the hint expires.
                let Some(capsule) = self.pending.get(&pdu.seq).map(|p| p.capsule) else {
                    return Vec::new();
                };
                self.obs.nacks_received.inc();
                let jitter = self.rng.gen_range(0..=retry_after_us / 2);
                let not_before = now.saturating_add(retry_after_us).saturating_add(jitter);
                let slot = self.backoff.entry(capsule).or_insert(0);
                *slot = (*slot).max(not_before);
                vec![ClientEvent::Backpressure { capsule, request_seq: pdu.seq, not_before: *slot }]
            }
            // Request-plane messages: clients never receive these; a
            // correct server does not send them. Named explicitly -- not
            // `_` -- so a future DataMsg variant forces a decision here
            // instead of being silently dropped.
            DataMsg::SessionInit { .. }
            | DataMsg::PutMetadata { .. }
            | DataMsg::Host { .. }
            | DataMsg::HostAck { .. }
            | DataMsg::Append { .. }
            | DataMsg::Read { .. }
            | DataMsg::Subscribe { .. }
            | DataMsg::Replicate { .. }
            | DataMsg::ReplicateAck { .. }
            | DataMsg::SyncRequest { .. }
            | DataMsg::SyncResponse { .. } => Vec::new(),
        }
    }

    fn capsule_for_event(&self, record: &Record) -> Option<Name> {
        // Events don't carry the capsule name explicitly; identify the
        // capsule by which tracked writer key verifies the record.
        self.capsules
            .iter()
            .find(|(name, t)| record.verify(name, &t.writer_key).is_ok())
            .map(|(name, _)| *name)
    }

    fn on_session_accept(
        &mut self,
        now: u64,
        request_seq: u64,
        server_eph: [u8; 32],
        client_eph: [u8; 32],
        server: Principal,
        chain: gdp_cert::ServingChain,
        signature: gdp_crypto::Signature,
    ) -> Vec<ClientEvent> {
        let Some(capsule) = self.pending.get(&request_seq).map(|p| p.capsule) else {
            return Vec::new();
        };
        let Some(tracked) = self.capsules.get(&capsule) else {
            return Vec::new();
        };
        // The chain proves the responder is a delegated server for this
        // capsule; the signature binds the DH to that identity (anti-MITM).
        if chain.verify(&tracked.owner_key, now).is_err()
            || chain.server().name() != server.name()
            || chain.adcert.capsule != capsule
        {
            self.obs.verify_failures.inc();
            return vec![ClientEvent::VerificationFailed {
                capsule,
                reason: "session chain invalid",
            }];
        }
        let transcript = session_transcript(&capsule, &client_eph, &server_eph);
        if !server.verify(&transcript, &signature) {
            self.obs.verify_failures.inc();
            return vec![ClientEvent::VerificationFailed {
                capsule,
                reason: "session signature invalid",
            }];
        }
        let Some(flow) = self.flows.get_mut(&capsule) else {
            return Vec::new();
        };
        if *flow.eph.public() != client_eph {
            self.obs.verify_failures.inc();
            return vec![ClientEvent::VerificationFailed {
                capsule,
                reason: "session echoes wrong ephemeral",
            }];
        }
        let Some(shared) = flow.eph.diffie_hellman(&server_eph) else {
            self.obs.verify_failures.inc();
            return vec![ClientEvent::VerificationFailed {
                capsule,
                reason: "degenerate server ephemeral",
            }];
        };
        flow.key = Some(hkdf::derive_key32(capsule.as_bytes(), &shared, b"gdp/flow-key/v1"));
        flow.server = Some(server.name());
        self.pending.remove(&request_seq);
        self.obs.sessions_ready.inc();
        vec![ClientEvent::SessionReady { capsule, server: server.name() }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_capsule::MetadataBuilder;
    use gdp_cert::{AdCert, Scope, ServingChain};
    use gdp_server::{AckMode, DataCapsuleServer, ReadTarget};

    const FOREVER: u64 = 1 << 50;

    fn owner() -> SigningKey {
        SigningKey::from_seed(&[1u8; 32])
    }
    fn wkey() -> SigningKey {
        SigningKey::from_seed(&[2u8; 32])
    }

    /// Client + server wired back to back (every client request PDU is fed
    /// straight into the server; responses straight back).
    struct Loop {
        client: GdpClient,
        server: DataCapsuleServer,
        capsule: Name,
    }

    fn looped() -> Loop {
        let sid = gdp_cert::PrincipalId::from_seed(
            gdp_cert::PrincipalKind::Server,
            &[3u8; 32],
            "loop server",
        );
        let mut server = DataCapsuleServer::new(sid.clone());
        let meta = MetadataBuilder::new()
            .writer(&wkey().verifying_key())
            .set_str("description", "loopback")
            .sign(&owner());
        let chain = ServingChain::direct(
            AdCert::issue(&owner(), meta.name(), sid.name(), false, Scope::Global, FOREVER),
            sid.principal().clone(),
        );
        server.host(meta.clone(), chain, vec![]).unwrap();
        let mut client = GdpClient::from_seed(&[4u8; 32], "loop client");
        client.register_writer(&meta, wkey(), PointerStrategy::Chain).unwrap();
        Loop { client, server, capsule: meta.name() }
    }

    impl Loop {
        fn roundtrip(&mut self, pdu: Pdu) -> Vec<ClientEvent> {
            let mut events = Vec::new();
            for resp in self.server.handle_pdu(0, pdu) {
                events.extend(self.client.handle_pdu(0, resp));
            }
            events
        }
    }

    /// Regression: a `Nack{Busy}` must arm a jittered backoff instead of
    /// letting the driver retry immediately (the pre-backoff client had no
    /// retry gate at all, so `retry_ready` right after a Nack was the
    /// hot-loop bug this pins). The Nack must also never consume the
    /// pending request — it is unauthenticated, exactly like `ErrResp`.
    #[test]
    fn nack_arms_jittered_backoff_without_cancelling_pending() {
        const RETRY_AFTER: u64 = 50_000;
        let run = |seed: u64| {
            let mut l = looped();
            l.client.set_rng_seed(seed);
            // Budget of 1 per tick: the first append lands, the second is
            // shed with a Nack by the real server code path.
            l.server.set_overload_policy(1, RETRY_AFTER);
            let (pdu, _) = l.client.append(l.capsule, b"first", 0, AckMode::Local).unwrap();
            let events = l.roundtrip(pdu);
            assert!(matches!(events[0], ClientEvent::AppendAcked { .. }), "{events:?}");
            let (pdu, _) = l.client.append(l.capsule, b"second", 1, AckMode::Local).unwrap();
            let before = l.client.pending_len();
            let events = l.roundtrip(pdu);
            let ClientEvent::Backpressure { capsule, not_before, .. } = events[0] else {
                panic!("shed append must surface Backpressure, got {events:?}");
            };
            assert_eq!(capsule, l.capsule);
            // Pending survives: an unauthenticated Nack cancels nothing.
            assert_eq!(l.client.pending_len(), before);
            // The hot-loop gate: not ready now (handle_pdu ran at now=0),
            // not ready an instant before the deadline, ready at it.
            assert!(!l.client.retry_ready(&l.capsule, 0), "immediate retry must be gated");
            assert!(!l.client.retry_ready(&l.capsule, not_before - 1));
            assert!(l.client.retry_ready(&l.capsule, not_before));
            // Backoff = retry_after + jitter in [0, retry_after/2].
            assert!(
                (RETRY_AFTER..=RETRY_AFTER + RETRY_AFTER / 2).contains(&not_before),
                "not_before {not_before} outside the jitter window"
            );
            not_before
        };
        // Jitter is seeded: same seed replays identically, different seeds
        // decorrelate (so a flash crowd does not retry in lockstep).
        assert_eq!(run(7), run(7), "same seed must replay the same backoff");
        let spread: std::collections::BTreeSet<u64> = (0..8).map(run).collect();
        assert!(spread.len() > 1, "jitter must vary across seeds: {spread:?}");
    }

    #[test]
    fn append_read_subscribe_loop() {
        let mut l = looped();
        // Appends with signed-response auth (no session yet).
        for i in 0..3u64 {
            let (pdu, _) =
                l.client.append(l.capsule, format!("v{i}").as_bytes(), i, AckMode::Local).unwrap();
            let events = l.roundtrip(pdu);
            assert!(matches!(events[0], ClientEvent::AppendAcked { .. }), "{events:?}");
        }
        // Reads of every target verify.
        let pdu = l.client.read(l.capsule, ReadTarget::Range(1, 3));
        let events = l.roundtrip(pdu);
        match &events[0] {
            ClientEvent::ReadOk { result: VerifiedRead::Records(rs), .. } => {
                assert_eq!(rs.len(), 3)
            }
            other => panic!("{other:?}"),
        }
        let pdu = l.client.read(l.capsule, ReadTarget::ProofOf(2));
        let events = l.roundtrip(pdu);
        assert!(matches!(events[0], ClientEvent::ReadOk { result: VerifiedRead::Proven(_), .. }));
        let pdu = l.client.read(l.capsule, ReadTarget::HeartbeatOnly);
        let events = l.roundtrip(pdu);
        assert!(matches!(
            events[0],
            ClientEvent::ReadOk { result: VerifiedRead::Heartbeat(_), .. }
        ));
    }

    #[test]
    fn session_end_to_end_loop() {
        let mut l = looped();
        let pdu = l.client.session_init(l.capsule);
        let events = l.roundtrip(pdu);
        assert!(matches!(events[0], ClientEvent::SessionReady { .. }), "{events:?}");
        assert!(l.client.has_session(&l.capsule));
        // Post-session responses are MAC'd and still verify.
        let (pdu, _) = l.client.append(l.capsule, b"hmac path", 9, AckMode::Local).unwrap();
        let events = l.roundtrip(pdu);
        assert!(matches!(events[0], ClientEvent::AppendAcked { .. }), "{events:?}");
    }

    #[test]
    fn server_error_surfaces() {
        let mut l = looped();
        let pdu = l.client.read(l.capsule, ReadTarget::One(42));
        let events = l.roundtrip(pdu);
        assert!(matches!(
            events[0],
            ClientEvent::ServerError { code: gdp_server::ErrorCode::NotFound, .. }
        ));
    }

    #[test]
    fn subscription_events_verify_in_client() {
        let mut l = looped();
        let sub = l.client.subscribe(l.capsule, 0);
        // No records yet: subscribing returns nothing.
        assert!(l.roundtrip(sub).is_empty());
        // New appends trigger Event PDUs to the subscriber (same client).
        let (pdu, _) = l.client.append(l.capsule, b"published", 1, AckMode::Local).unwrap();
        let events = l.roundtrip(pdu);
        let got_event = events.iter().any(
            |e| matches!(e, ClientEvent::SubEvent { record, .. } if record.body == b"published"),
        );
        assert!(got_event, "{events:?}");
    }

    #[test]
    fn unknown_response_seq_ignored() {
        let mut l = looped();
        let (pdu, _) = l.client.append(l.capsule, b"x", 0, AckMode::Local).unwrap();
        let mut responses = l.server.handle_pdu(0, pdu);
        let mut resp = responses.remove(0);
        resp.seq = 9999; // response to a request we never made
        assert!(l.client.handle_pdu(0, resp).is_empty());
    }

    #[test]
    fn error_pdu_reports_unreachable() {
        let mut l = looped();
        let ghost = Name::from_content(b"ghost");
        let err = Pdu {
            pdu_type: PduType::Error,
            src: Name::from_content(b"router"),
            dst: l.client.name(),
            seq: 1,
            payload: ghost.0.to_vec().into(),
        };
        let events = l.client.handle_pdu(0, err);
        assert_eq!(events, vec![ClientEvent::Unreachable { name: ghost }]);
    }

    /// Regression (client timeouts): a request whose response is lost must
    /// not leak pending state forever — the deadline sweep expires it,
    /// surfaces a [`ClientEvent::Timeout`], and counts it. A late response
    /// to the expired seq is then ignored, and re-issuing the same signed
    /// record through [`GdpClient::append_record`] still acks.
    #[test]
    fn pending_requests_expire_and_can_be_reissued() {
        let metrics = gdp_obs::Metrics::new();
        let sid = gdp_cert::PrincipalId::from_seed(
            gdp_cert::PrincipalKind::Server,
            &[3u8; 32],
            "loop server",
        );
        let mut server = DataCapsuleServer::new(sid.clone());
        let meta = MetadataBuilder::new().writer(&wkey().verifying_key()).sign(&owner());
        let chain = ServingChain::direct(
            AdCert::issue(&owner(), meta.name(), sid.name(), false, Scope::Global, FOREVER),
            sid.principal().clone(),
        );
        server.host(meta.clone(), chain, vec![]).unwrap();
        let mut client = GdpClient::from_seed_with_obs(&[4u8; 32], "c", &metrics.scope("client"));
        client.register_writer(&meta, wkey(), PointerStrategy::Chain).unwrap();
        let capsule = meta.name();

        let (pdu, record) = client.append(capsule, b"lost in transit", 0, AckMode::Local).unwrap();
        let lost_seq = pdu.seq;
        assert_eq!(client.pending_len(), 1);

        // First sweep stamps; one timeout later the request expires.
        assert!(client.sweep_timeouts(1_000).is_empty());
        assert!(client.sweep_timeouts(1_000 + DEFAULT_REQUEST_TIMEOUT_US - 1).is_empty());
        let events = client.sweep_timeouts(1_000 + DEFAULT_REQUEST_TIMEOUT_US);
        assert_eq!(
            events,
            vec![ClientEvent::Timeout {
                capsule,
                request_seq: lost_seq,
                kind: RequestKind::Append
            }]
        );
        assert_eq!(client.pending_len(), 0);
        assert_eq!(metrics.counter_value("client", "requests_timed_out"), 1);

        // The "lost" response finally arrives: no pending entry, ignored.
        for resp in server.handle_pdu(0, pdu) {
            assert!(client.handle_pdu(0, resp).is_empty());
        }

        // Re-issue the already-signed record under a fresh request seq.
        let retry = client.append_record(capsule, record, AckMode::Local);
        assert_ne!(retry.seq, lost_seq);
        let mut acked = false;
        for resp in server.handle_pdu(0, retry) {
            for ev in client.handle_pdu(0, resp) {
                acked |= matches!(ev, ClientEvent::AppendAcked { .. });
            }
        }
        assert!(acked);
        assert_eq!(metrics.counter_value("client", "requests_retried"), 1);
        assert_eq!(metrics.counter_value("client", "acked_writes"), 1);
        assert_eq!(metrics.counter_value("client", "requests_issued"), 2);
    }

    #[test]
    fn untracked_capsule_cannot_be_written() {
        let mut client = GdpClient::from_seed(&[5u8; 32], "c");
        let ghost = Name::from_content(b"ghost");
        assert!(client.append(ghost, b"x", 0, AckMode::Local).is_err());
        // Registering with the wrong key also fails.
        let meta = MetadataBuilder::new().writer(&wkey().verifying_key()).sign(&owner());
        let not_writer = SigningKey::from_seed(&[66u8; 32]);
        assert!(client.register_writer(&meta, not_writer, PointerStrategy::Chain).is_err());
    }
}

//! # gdp-client
//!
//! The verifying GDP client: single-writer appends with durability modes,
//! reads with end-to-end proof verification, pub-sub subscriptions, and
//! flow-key sessions — everything the paper's threat model (§IV-C) demands
//! a client check so that "trust lives in data rather than in
//! infrastructure" (§V).

#![forbid(unsafe_code)]

pub mod client;
pub mod simnode;

pub use client::{ClientEvent, GdpClient, RequestKind, VerifiedRead, DEFAULT_REQUEST_TIMEOUT_US};
pub use simnode::SimClient;

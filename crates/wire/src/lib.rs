//! # gdp-wire
//!
//! The wire layer of the Global Data Plane: flat 256-bit [`Name`]s (the
//! single namespace shared by DataCapsules, servers, routers, and
//! organizations), a deterministic binary [`codec`], and the routable
//! [`Pdu`] envelope.
//!
//! Everything that is ever hashed or signed in the GDP is first encoded with
//! this codec, so determinism here is a correctness requirement, not an
//! optimization.

#![forbid(unsafe_code)]

pub mod bytes;
pub mod codec;
pub mod fasthash;
pub mod frame;
pub mod name;
pub mod pdu;

pub use bytes::Bytes;
pub use codec::{DecodeError, Decoder, Encoder, Wire};
pub use fasthash::{FastMap, FastSet};
pub use frame::{
    decode_frame, decode_frame_shared, encode_frame, encode_frame_into, FrameError, FrameReader,
    FRAME_PREFIX, MAX_FRAME,
};
pub use name::{Name, NAME_LEN};
pub use pdu::{Pdu, PduType, HEADER_LEN, MAX_PAYLOAD};

//! Cheaply-cloneable, refcounted, immutable byte buffer.
//!
//! The forwarding fast path receives a frame once, decodes it, and sends
//! the payload onward — possibly to several neighbors. With `Vec<u8>`
//! payloads every hop deep-copies; with [`Bytes`] a clone is an atomic
//! refcount bump and a forwarded payload is a view into the original read
//! buffer. Slicing ([`Bytes::slice`]) shares the same allocation, so the
//! TCP ingest path can freeze one socket read and hand out zero-copy
//! payload windows for every PDU inside it.
//!
//! Trade-off, by design: a small payload sliced from a large read batch
//! keeps the whole batch alive until the last PDU referencing it drops.
//! Read batches are bounded (one socket buffer), so the pinned memory is
//! bounded too; see DESIGN.md "Data-path performance".

use std::sync::Arc;

/// An immutable, refcounted byte buffer. Cloning and slicing are O(1) and
/// never copy the underlying bytes.
#[derive(Clone)]
pub struct Bytes {
    /// `None` encodes the empty buffer without touching an allocation.
    data: Option<Arc<Vec<u8>>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// The empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes { data: None, off: 0, len: 0 }
    }

    /// Takes ownership of a `Vec` without copying it.
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        let len = v.len();
        Bytes { data: Some(Arc::new(v)), off: 0, len }
    }

    /// Copies a slice into a fresh buffer (the one unavoidable copy when
    /// the source is borrowed).
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.off..self.off + self.len],
            None => &[],
        }
    }

    /// A zero-copy sub-window sharing this buffer's allocation.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= self.len, "Bytes::slice out of bounds");
        if start == end {
            return Bytes::new();
        }
        Bytes { data: self.data.clone(), off: self.off + start, len: end - start }
    }

    /// Copies out to an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Number of strong references to the underlying allocation (1 for
    /// unshared; 0 for the empty buffer). Test/diagnostic aid.
    pub fn ref_count(&self) -> usize {
        self.data.as_ref().map_or(0, Arc::strong_count)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

// Equality and hashing are content-based: two buffers with the same bytes
// compare equal regardless of how the storage is shared or offset.
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        // If we hold the only reference and span the whole allocation the
        // Vec can be recovered without copying.
        match b.data {
            Some(arc) if b.off == 0 => match Arc::try_unwrap(arc) {
                Ok(mut v) => {
                    v.truncate(b.len);
                    v
                }
                Err(arc) => arc[b.off..b.off + b.len].to_vec(),
            },
            Some(arc) => arc[b.off..b.off + b.len].to_vec(),
            None => Vec::new(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from_vec(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from_vec((0..100).collect());
        let s = a.slice(10, 20);
        assert_eq!(s.len(), 10);
        assert_eq!(s.as_slice(), &a.as_slice()[10..20]);
        assert_eq!(s.as_slice().as_ptr(), a.as_slice()[10..].as_ptr());
        // Nested slices re-base correctly.
        let s2 = s.slice(2, 5);
        assert_eq!(s2.as_slice(), &a.as_slice()[12..15]);
    }

    #[test]
    fn empty_has_no_allocation() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e.ref_count(), 0);
        assert_eq!(Bytes::from_vec(Vec::new()).ref_count(), 0);
        let z = Bytes::from_vec(vec![1]).slice(1, 1);
        assert!(z.is_empty());
    }

    #[test]
    fn equality_is_content_based() {
        let a = Bytes::from_vec(vec![9, 9, 5, 6, 9]);
        assert_eq!(a.slice(2, 4), Bytes::from_vec(vec![5, 6]));
        assert_eq!(a.slice(2, 4), vec![5u8, 6]);
        assert_eq!(a.slice(2, 4), [5u8, 6]);
        assert_ne!(a.slice(0, 2), a.slice(2, 4));
    }

    #[test]
    fn into_vec_recovers_unique_allocation() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = Bytes::from_vec(v);
        let back: Vec<u8> = b.into();
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(back.as_ptr(), ptr);
    }

    #[test]
    fn out_of_bounds_slice_panics() {
        let a = Bytes::from_vec(vec![1, 2, 3]);
        assert!(std::panic::catch_unwind(|| a.slice(1, 5)).is_err());
    }
}

//! Fast non-cryptographic hashing for hot-path maps.
//!
//! The default `HashMap` hasher (SipHash-1-3) is keyed and DoS-resistant
//! but costs tens of nanoseconds per 32-byte [`Name`](crate::Name) — a
//! large slice of the per-PDU forwarding budget. GDP names are SHA-256
//! outputs, i.e. already uniformly distributed by a cryptographic hash an
//! attacker cannot steer collisions through without breaking SHA-256
//! itself, so the FIB/GLookup maps only need cheap *mixing*, not keyed
//! resistance. [`FastHasher`] folds input words with a Fibonacci-style
//! multiply (the splitmix64 constant) and is several times faster.
//!
//! Do **not** use this for maps keyed by attacker-chosen non-hashed bytes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x9E37_79B9_7F4A_7C15; // 2^64 / φ, splitmix64 increment

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// Multiply-fold hasher for uniformly-distributed keys (names, small ints).
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // xor-fold then a full-width multiply; the high bits of the
        // product diffuse into the low bits via the final rotate.
        let x = (self.state ^ word).wrapping_mul(SEED);
        self.state = x.rotate_left(29);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One more multiply so short inputs still fill the high bits
        // HashMap uses for its control bytes.
        self.state.wrapping_mul(SEED)
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.mix(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            // Length tag keeps "ab" and "ab\0" distinct.
            tail[7] = tail[7].wrapping_add(bytes.len() as u8);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FastHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn distinct_names_hash_differently() {
        let a = Name::from_content(b"a");
        let b = Name::from_content(b"b");
        assert_ne!(hash_of(&a.0), hash_of(&b.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"hello world"), hash_of(b"hello world"));
    }

    #[test]
    fn length_extension_distinct() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn map_works_with_name_keys() {
        let mut m: FastMap<Name, u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert(Name::from_content(&i.to_be_bytes()), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&Name::from_content(&i.to_be_bytes())], i);
        }
    }

    #[test]
    fn low_bit_spread() {
        // HashMap indexes with the low bits; 4096 hashed names must not
        // pile into a few buckets.
        let mut buckets = [0u32; 64];
        for i in 0..4096u32 {
            let n = Name::from_content(&i.to_le_bytes());
            buckets[(hash_of(&n.0) & 63) as usize] += 1;
        }
        let max = buckets.iter().max().unwrap();
        assert!(*max < 4096 / 64 * 3, "skewed buckets: max {max}");
    }
}

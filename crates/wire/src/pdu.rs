//! Protocol Data Units.
//!
//! GDP-routers "route PDUs in the flat namespace network" (paper §VIII).
//! A PDU carries a source and destination flat name, a type tag that lets
//! routers handle control traffic (advertisements, lookups) without parsing
//! payloads, and an opaque payload interpreted by the endpoints.

use crate::bytes::Bytes;
use crate::codec::{DecodeError, Decoder, Encoder, Wire};
use crate::name::Name;

/// Magic bytes at the start of every PDU.
pub const MAGIC: u16 = 0x47D0; // "GD"-ish, versioned separately
/// Wire format version understood by this implementation.
pub const VERSION: u8 = 1;
/// Fixed header size: magic(2) + version(1) + type(1) + src(32) + dst(32) +
/// seq(8) + payload_len(4).
pub const HEADER_LEN: usize = 2 + 1 + 1 + 32 + 32 + 8 + 4;
/// Maximum payload a single PDU may carry (16 MiB).
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// PDU type tag: the router-visible class of a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PduType {
    /// Client/server data-plane traffic (append, read, subscribe, acks).
    Data = 0,
    /// Secure advertisement control traffic (certs, challenges).
    Advertise = 1,
    /// GLookupService queries and responses.
    Lookup = 2,
    /// Router-to-router control (FIB sync, domain gossip).
    RouterControl = 3,
    /// Terminal error notification (e.g. no route to destination).
    Error = 4,
}

impl PduType {
    /// Parses from the wire tag.
    pub fn from_u8(v: u8) -> Option<PduType> {
        Some(match v {
            0 => PduType::Data,
            1 => PduType::Advertise,
            2 => PduType::Lookup,
            3 => PduType::RouterControl,
            4 => PduType::Error,
            _ => return None,
        })
    }
}

/// A protocol data unit: the routable message envelope of the GDP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pdu {
    /// Router-visible message class.
    pub pdu_type: PduType,
    /// Source flat name (a client, server, or router identity).
    pub src: Name,
    /// Destination flat name (a DataCapsule, server, or router).
    pub dst: Name,
    /// Sender-assigned sequence number, echoed in replies for matching.
    pub seq: u64,
    /// Opaque payload interpreted by the endpoint. Refcounted: cloning a
    /// PDU (fan-out forwarding) shares the payload storage instead of
    /// copying it.
    pub payload: Bytes,
}

impl Pdu {
    /// Builds a data-plane PDU.
    pub fn data(src: Name, dst: Name, seq: u64, payload: impl Into<Bytes>) -> Pdu {
        Pdu { pdu_type: PduType::Data, src, dst, seq, payload: payload.into() }
    }

    /// Total encoded size.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Zero-copy decode from a shared buffer starting at `at`.
    ///
    /// The returned PDU's payload is a refcounted window into `buf` — no
    /// bytes are copied. Returns the PDU and the offset one past its
    /// encoding. This is the transport ingest path; [`Wire::decode`]
    /// remains for callers holding only a borrowed slice.
    pub fn decode_shared(buf: &Bytes, at: usize) -> Result<(Pdu, usize), DecodeError> {
        let mut dec = Decoder::new(&buf.as_slice()[at..]);
        let (pdu_type, src, dst, seq, len) = decode_header(&mut dec)?;
        let body = at + dec.position();
        if dec.remaining() < len {
            return Err(DecodeError::UnexpectedEnd);
        }
        let payload = buf.slice(body, body + len);
        Ok((Pdu { pdu_type, src, dst, seq, payload }, body + len))
    }
}

/// Decodes the fixed header, returning the parsed fields and the declared
/// payload length (validated against [`MAX_PAYLOAD`] but not yet taken).
fn decode_header(dec: &mut Decoder<'_>) -> Result<(PduType, Name, Name, u64, usize), DecodeError> {
    let magic = dec.u16()?;
    if magic != MAGIC {
        return Err(DecodeError::BadTag(magic as u64));
    }
    let version = dec.u8()?;
    if version != VERSION {
        return Err(DecodeError::Invalid("unsupported PDU version"));
    }
    let pdu_type = PduType::from_u8(dec.u8()?).ok_or(DecodeError::Invalid("unknown PDU type"))?;
    let src = dec.name()?;
    let dst = dec.name()?;
    let seq = dec.u64()?;
    let len = dec.u32()? as usize;
    if len > MAX_PAYLOAD {
        return Err(DecodeError::BadLength(len as u64));
    }
    Ok((pdu_type, src, dst, seq, len))
}

impl Wire for Pdu {
    fn encode(&self, enc: &mut Encoder) {
        debug_assert!(self.payload.len() <= MAX_PAYLOAD);
        enc.u16(MAGIC);
        enc.u8(VERSION);
        enc.u8(self.pdu_type as u8);
        enc.name(&self.src);
        enc.name(&self.dst);
        enc.u64(self.seq);
        enc.u32(self.payload.len() as u32);
        enc.raw(&self.payload);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Pdu, DecodeError> {
        let (pdu_type, src, dst, seq, len) = decode_header(dec)?;
        // The one copy on this path: the input is a borrowed slice, so the
        // payload must be materialized. Transports decode via
        // `decode_shared` instead and skip even this.
        let payload = Bytes::copy_from_slice(dec.raw(len)?);
        Ok(Pdu { pdu_type, src, dst, seq, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pdu {
        Pdu {
            pdu_type: PduType::Data,
            src: Name::from_content(b"src"),
            dst: Name::from_content(b"dst"),
            seq: 42,
            payload: b"hello capsule".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let pdu = sample();
        let bytes = pdu.to_wire();
        assert_eq!(bytes.len(), pdu.wire_len());
        assert_eq!(Pdu::from_wire(&bytes).unwrap(), pdu);
    }

    #[test]
    fn empty_payload_ok() {
        let mut pdu = sample();
        pdu.payload = Bytes::new();
        assert_eq!(Pdu::from_wire(&pdu.to_wire()).unwrap(), pdu);
    }

    #[test]
    fn decode_shared_borrows_payload() {
        let pdu = sample();
        let buf = Bytes::from_vec(pdu.to_wire());
        let (got, consumed) = Pdu::decode_shared(&buf, 0).unwrap();
        assert_eq!(got, pdu);
        assert_eq!(consumed, pdu.wire_len());
        // The payload is a window into the shared buffer, not a copy.
        assert_eq!(got.payload.as_slice().as_ptr(), buf.as_slice()[HEADER_LEN..].as_ptr());
    }

    #[test]
    fn decode_shared_rejects_truncation() {
        let buf = Bytes::from_vec(sample().to_wire());
        let short = buf.slice(0, buf.len() - 1);
        assert!(Pdu::decode_shared(&short, 0).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_wire();
        bytes[0] ^= 0xff;
        assert!(Pdu::from_wire(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_wire();
        bytes[2] = 99;
        assert!(Pdu::from_wire(&bytes).is_err());
    }

    #[test]
    fn bad_type_rejected() {
        let mut bytes = sample().to_wire();
        bytes[3] = 200;
        assert!(Pdu::from_wire(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = sample().to_wire();
        assert!(Pdu::from_wire(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = sample().to_wire();
        // Header ends at HEADER_LEN; the payload length field is its last 4 bytes.
        let len_off = HEADER_LEN - 4;
        bytes[len_off..len_off + 4].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_be_bytes());
        assert!(Pdu::from_wire(&bytes).is_err());
    }

    #[test]
    fn all_types_roundtrip() {
        for t in [
            PduType::Data,
            PduType::Advertise,
            PduType::Lookup,
            PduType::RouterControl,
            PduType::Error,
        ] {
            let mut pdu = sample();
            pdu.pdu_type = t;
            assert_eq!(Pdu::from_wire(&pdu.to_wire()).unwrap().pdu_type, t);
        }
    }
}

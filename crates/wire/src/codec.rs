//! Deterministic binary codec.
//!
//! All GDP on-wire and on-disk structures (records, metadata, certificates,
//! PDUs) use this hand-rolled, versioned, length-checked encoding. It is
//! deterministic — the same value always encodes to the same bytes — which
//! matters because names and signatures are computed over encodings.

use crate::name::Name;

/// Errors produced while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input or a sanity cap.
    BadLength(u64),
    /// An enum discriminant or magic value was not recognized.
    BadTag(u64),
    /// A varint was not minimally encoded or overflowed 64 bits.
    BadVarint,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
    /// Structured validation failed (caller-supplied context).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength(n) => write!(f, "bad length prefix: {n}"),
            DecodeError::BadTag(t) => write!(f, "unrecognized tag: {t}"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    /// Wraps an existing vector, appending after its current contents.
    /// Lets a caller reuse one scratch allocation across encodes:
    /// `Encoder::from_vec(mem::take(&mut scratch))` … `scratch = enc.finish()`.
    pub fn from_vec(buf: Vec<u8>) -> Encoder {
        Encoder { buf }
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes an LEB128-style varint (canonical: no redundant
    /// continuation bytes).
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
        self
    }

    /// Writes raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Writes varint-length-prefixed bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.varint(bytes.len() as u64);
        self.raw(bytes)
    }

    /// Writes a varint-length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Writes a flat name (32 raw bytes).
    pub fn name(&mut self, n: &Name) -> &mut Self {
        self.raw(&n.0)
    }

    /// Writes a bool as one byte.
    pub fn boolean(&mut self, b: bool) -> &mut Self {
        self.u8(b as u8)
    }

    /// Writes `Some(x)` as 1 followed by `f`, `None` as 0.
    pub fn option<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) -> &mut Self {
        match v {
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
            None => {
                self.u8(0);
            }
        }
        self
    }

    /// Writes a varint count followed by each element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.varint(items.len() as u64);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// Bounds-checked decoder over a byte slice.
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
    /// Cap on any single length prefix, guarding against allocation bombs.
    max_len: u64,
}

/// Default cap on a single length-prefixed field (64 MiB).
pub const DEFAULT_MAX_LEN: u64 = 64 * 1024 * 1024;

impl<'a> Decoder<'a> {
    /// Creates a decoder over `input`.
    pub fn new(input: &'a [u8]) -> Decoder<'a> {
        Decoder { input, pos: 0, max_len: DEFAULT_MAX_LEN }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Absolute offset of the read cursor from the start of the input.
    /// Zero-copy decoders use this to map borrowed slices back to
    /// positions in a shared buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Errors unless the input was fully consumed.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a canonical varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::BadVarint);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                // Canonicality: the final byte must be non-zero unless the
                // whole value is a single zero byte.
                if byte == 0 && shift != 0 {
                    return Err(DecodeError::BadVarint);
                }
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::BadVarint);
            }
        }
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Reads varint-length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.varint()?;
        if len > self.max_len || len > self.remaining() as u64 {
            return Err(DecodeError::BadLength(len));
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::Invalid("utf-8"))
    }

    /// Reads a flat name.
    pub fn name(&mut self) -> Result<Name, DecodeError> {
        Ok(Name(self.array::<32>()?))
    }

    /// Reads a bool byte (must be 0 or 1).
    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t as u64)),
        }
    }

    /// Reads an option written by [`Encoder::option`].
    pub fn option<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(DecodeError::BadTag(t as u64)),
        }
    }

    /// Reads a sequence written by [`Encoder::seq`].
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            // Each element takes at least one byte; anything bigger lies.
            return Err(DecodeError::BadLength(n));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types with a canonical GDP wire encoding.
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self`.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes a value.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Encodes to a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decodes from a complete byte slice, requiring full consumption.
    fn from_wire(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut e = Encoder::new();
        e.u8(7).u16(0xabcd).u32(0xdeadbeef).u64(u64::MAX).boolean(true);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xabcd);
        assert_eq!(d.u32().unwrap(), 0xdeadbeef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert!(d.boolean().unwrap());
        d.expect_end().unwrap();
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.varint(v);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            assert_eq!(d.varint().unwrap(), v);
            d.expect_end().unwrap();
        }
    }

    #[test]
    fn varint_rejects_noncanonical() {
        // 0x80 0x00 is a redundant encoding of zero.
        let mut d = Decoder::new(&[0x80, 0x00]);
        assert_eq!(d.varint(), Err(DecodeError::BadVarint));
    }

    #[test]
    fn varint_rejects_overflow() {
        let buf = [0xffu8; 10];
        let mut d = Decoder::new(&buf);
        assert!(d.varint().is_err());
    }

    #[test]
    fn bytes_and_strings() {
        let mut e = Encoder::new();
        e.bytes(b"payload").string("héllo");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.bytes().unwrap(), b"payload");
        assert_eq!(d.string().unwrap(), "héllo");
    }

    #[test]
    fn length_prefix_cannot_exceed_input() {
        let mut e = Encoder::new();
        e.varint(1000); // claims 1000 bytes follow
        e.raw(b"tiny");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert!(matches!(d.bytes(), Err(DecodeError::BadLength(1000))));
    }

    #[test]
    fn option_and_seq() {
        let mut e = Encoder::new();
        e.option(&Some(42u64), |e, v| {
            e.u64(*v);
        });
        e.option(&None::<u64>, |e, v| {
            e.u64(*v);
        });
        e.seq(&[1u8, 2, 3], |e, v| {
            e.u8(*v);
        });
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.option(|d| d.u64()).unwrap(), Some(42));
        assert_eq!(d.option(|d| d.u64()).unwrap(), None);
        assert_eq!(d.seq(|d| d.u8()).unwrap(), vec![1, 2, 3]);
        d.expect_end().unwrap();
    }

    #[test]
    fn seq_rejects_absurd_count() {
        let mut e = Encoder::new();
        e.varint(u32::MAX as u64);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert!(d.seq(|d| d.u8()).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut d = Decoder::new(&[1, 2, 3]);
        let _ = d.u8().unwrap();
        assert_eq!(d.expect_end(), Err(DecodeError::TrailingBytes(2)));
    }

    #[test]
    fn names_roundtrip() {
        let n = Name::from_content(b"x");
        let mut e = Encoder::new();
        e.name(&n);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.name().unwrap(), n);
    }
}

//! Flat 256-bit names.
//!
//! Every addressable entity in the GDP — DataCapsules, DataCapsule-servers,
//! GDP-routers, organizations, clients — lives in one flat name space
//! (paper §IV-B: "these names/identities for various addressable entities
//! are all part of the same flat name-space, which is also their address in
//! the underlying GDP network"). A name is the SHA-256 hash of the entity's
//! signed metadata, which makes it a self-certifying trust anchor.

use gdp_crypto::{hex, sha256};

/// Length of a flat name in bytes.
pub const NAME_LEN: usize = 32;

/// A 256-bit flat name: address and cryptographic trust anchor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(pub [u8; NAME_LEN]);

impl Name {
    /// The all-zero name, used as a broadcast/unspecified address.
    pub const ZERO: Name = Name([0u8; NAME_LEN]);

    /// Derives a name by hashing `bytes` (typically signed metadata).
    pub fn from_content(bytes: &[u8]) -> Name {
        Name(sha256(bytes))
    }

    /// Derives a name from a domain-separation tag plus content, so that
    /// different entity kinds can never collide even on identical metadata.
    pub fn from_tagged_content(tag: &str, bytes: &[u8]) -> Name {
        let mut h = gdp_crypto::Sha256::new();
        h.update(&(tag.len() as u32).to_be_bytes());
        h.update(tag.as_bytes());
        h.update(bytes);
        Name(h.finalize())
    }

    /// Parses from a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Name> {
        hex::decode_array::<NAME_LEN>(s).map(Name)
    }

    /// Full lowercase hex representation.
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Short printable prefix (first 8 hex chars), for logs.
    pub fn short(&self) -> String {
        hex::encode(&self.0[..4])
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; NAME_LEN] {
        &self.0
    }

    /// True if this is the all-zero name.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; NAME_LEN]
    }

    /// XOR-distance metric between names. The GLookupService and anycast
    /// tie-breaking use this to pick deterministic winners; a DHT-backed
    /// GLookupService (paper §VII) would use the same metric.
    pub fn xor_distance(&self, other: &Name) -> [u8; NAME_LEN] {
        let mut out = [0u8; NAME_LEN];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        out
    }
}

impl std::fmt::Debug for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Name({})", self.short())
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_addressing_is_deterministic() {
        assert_eq!(Name::from_content(b"meta"), Name::from_content(b"meta"));
        assert_ne!(Name::from_content(b"meta"), Name::from_content(b"meta2"));
    }

    #[test]
    fn tags_separate_domains() {
        assert_ne!(
            Name::from_tagged_content("capsule", b"x"),
            Name::from_tagged_content("server", b"x")
        );
    }

    #[test]
    fn hex_roundtrip() {
        let n = Name::from_content(b"hello");
        assert_eq!(Name::from_hex(&n.to_hex()), Some(n));
        assert!(Name::from_hex("abc").is_none());
    }

    #[test]
    fn zero_name() {
        assert!(Name::ZERO.is_zero());
        assert!(!Name::from_content(b"x").is_zero());
    }

    #[test]
    fn xor_distance_properties() {
        let a = Name::from_content(b"a");
        let b = Name::from_content(b"b");
        assert_eq!(a.xor_distance(&a), [0u8; 32]);
        assert_eq!(a.xor_distance(&b), b.xor_distance(&a));
    }

    #[test]
    fn ordering_is_total() {
        let mut names: Vec<Name> = (0u8..10).map(|i| Name::from_content(&[i])).collect();
        names.sort();
        for w in names.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

//! Stream framing for PDUs.
//!
//! Byte-stream transports (TCP) need to know where one PDU ends and the
//! next begins, and they must bound how much a hostile or broken peer can
//! make them buffer. A frame is a 4-byte big-endian length prefix followed
//! by exactly that many bytes of [`Pdu`] wire encoding.
//!
//! The decode path here is hardened by construction:
//!
//! * the declared length is validated against [`MAX_FRAME`] (or a caller
//!   cap) **before** any allocation, so an attacker cannot force an
//!   unbounded buffer with a forged prefix;
//! * short reads surface as [`FrameError::Incomplete`] ("feed me more
//!   bytes"), cleanly distinguished from corruption — no panics, no
//!   misparses;
//! * a frame whose body fails PDU decoding yields a typed
//!   [`FrameError::Malformed`] carrying the inner [`DecodeError`].

use crate::codec::{DecodeError, Wire};
use crate::pdu::{Pdu, HEADER_LEN, MAX_PAYLOAD};

/// Size of the length prefix.
pub const FRAME_PREFIX: usize = 4;

/// Hard cap on a frame body: one maximal PDU.
pub const MAX_FRAME: usize = HEADER_LEN + MAX_PAYLOAD;

/// Errors from the framing layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The declared frame length exceeds the configured cap. The
    /// connection should be dropped; resynchronization is not possible.
    Oversized {
        /// Length the prefix declared.
        declared: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// A zero-length frame (a PDU is never empty).
    Empty,
    /// The frame body did not decode as a PDU.
    Malformed(DecodeError),
    /// More bytes are needed to complete the current frame. Only returned
    /// by the one-shot [`decode_frame`]; [`FrameReader`] buffers instead.
    Incomplete {
        /// Total bytes needed (prefix + declared body length), when known.
        needed: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Malformed(e) => write!(f, "malformed frame body: {e}"),
            FrameError::Incomplete { needed } => {
                write!(f, "incomplete frame: need {needed} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// Encodes one PDU as a length-prefixed frame.
pub fn encode_frame(pdu: &Pdu) -> Vec<u8> {
    let body_len = pdu.wire_len();
    debug_assert!(body_len <= MAX_FRAME);
    let mut enc = crate::codec::Encoder::with_capacity(FRAME_PREFIX + body_len);
    enc.u32(body_len as u32);
    pdu.encode(&mut enc);
    enc.finish()
}

/// One-shot decode of a frame from the start of `input`.
///
/// Returns the PDU and the total bytes consumed. [`FrameError::Incomplete`]
/// means the caller should read more; every other error is terminal for
/// the stream.
pub fn decode_frame(input: &[u8], max_frame: usize) -> Result<(Pdu, usize), FrameError> {
    if input.len() < FRAME_PREFIX {
        return Err(FrameError::Incomplete { needed: FRAME_PREFIX });
    }
    let declared = u32::from_be_bytes(input[..FRAME_PREFIX].try_into().unwrap()) as usize;
    if declared == 0 {
        return Err(FrameError::Empty);
    }
    if declared > max_frame {
        return Err(FrameError::Oversized { declared: declared as u64, max: max_frame });
    }
    let total = FRAME_PREFIX + declared;
    if input.len() < total {
        return Err(FrameError::Incomplete { needed: total });
    }
    let pdu = Pdu::from_wire(&input[FRAME_PREFIX..total]).map_err(FrameError::Malformed)?;
    Ok((pdu, total))
}

/// Incremental frame decoder for byte streams.
///
/// Feed arbitrary chunks with [`push`](FrameReader::push), then drain
/// complete PDUs with [`next_frame`](FrameReader::next_frame). Memory is
/// bounded: the internal buffer never grows beyond one maximal frame plus
/// one read chunk, and a forged length prefix is rejected before any
/// buffering commitment.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    pos: usize,
    max_frame: usize,
    poisoned: bool,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with the default [`MAX_FRAME`] cap.
    pub fn new() -> FrameReader {
        FrameReader::with_max_frame(MAX_FRAME)
    }

    /// A reader with a custom frame cap (tighter for constrained nodes).
    pub fn with_max_frame(max_frame: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), pos: 0, max_frame, poisoned: false }
    }

    /// Appends raw bytes read from the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact consumed prefix before growing.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > self.max_frame) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete PDU, if one is buffered.
    ///
    /// `Ok(None)` means "no complete frame yet". An `Err` poisons the
    /// reader — framing errors are not recoverable on a byte stream, so
    /// every subsequent call returns the same class of error and the
    /// connection must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Pdu>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Malformed(DecodeError::Invalid("poisoned frame stream")));
        }
        match decode_frame(&self.buf[self.pos..], self.max_frame) {
            Ok((pdu, consumed)) => {
                self.pos += consumed;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                Ok(Some(pdu))
            }
            Err(FrameError::Incomplete { .. }) => Ok(None),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;

    fn pdu(seq: u64, payload: Vec<u8>) -> Pdu {
        Pdu::data(Name::from_content(b"src"), Name::from_content(b"dst"), seq, payload)
    }

    #[test]
    fn roundtrip_single() {
        let p = pdu(7, b"hello".to_vec());
        let bytes = encode_frame(&p);
        let (got, consumed) = decode_frame(&bytes, MAX_FRAME).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, p);
    }

    #[test]
    fn incomplete_then_complete() {
        let p = pdu(1, vec![0xAB; 100]);
        let bytes = encode_frame(&p);
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut], MAX_FRAME),
                Err(FrameError::Incomplete { .. })
            ));
        }
        assert!(decode_frame(&bytes, MAX_FRAME).is_ok());
    }

    #[test]
    fn oversized_rejected_before_buffering() {
        let mut bytes = encode_frame(&pdu(1, vec![1, 2, 3]));
        bytes[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME),
            Err(FrameError::Oversized { declared, .. }) if declared == u32::MAX as u64
        ));
    }

    #[test]
    fn zero_length_rejected() {
        assert_eq!(decode_frame(&[0, 0, 0, 0, 9], MAX_FRAME), Err(FrameError::Empty));
    }

    #[test]
    fn malformed_body_typed_error() {
        let mut bytes = encode_frame(&pdu(1, b"x".to_vec()));
        bytes[4] ^= 0xFF; // corrupt the PDU magic inside the frame
        assert!(matches!(decode_frame(&bytes, MAX_FRAME), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn reader_reassembles_byte_by_byte() {
        let pdus: Vec<Pdu> = (0..5).map(|i| pdu(i, vec![i as u8; (i * 100) as usize])).collect();
        let mut stream = Vec::new();
        for p in &pdus {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in stream {
            reader.push(&[b]);
            while let Some(p) = reader.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, pdus);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reader_poisons_on_garbage() {
        let mut reader = FrameReader::new();
        let mut bytes = encode_frame(&pdu(1, b"ok".to_vec()));
        bytes[5] ^= 0xFF; // corrupt version byte
        reader.push(&bytes);
        assert!(reader.next_frame().is_err());
        // Even after pushing a valid frame the reader stays dead: framing
        // desync is unrecoverable.
        reader.push(&encode_frame(&pdu(2, b"later".to_vec())));
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn reader_enforces_custom_cap() {
        let p = pdu(1, vec![0u8; 4096]);
        let mut reader = FrameReader::with_max_frame(1024);
        reader.push(&encode_frame(&p));
        assert!(matches!(reader.next_frame(), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn reader_interleaves_push_and_drain() {
        let mut reader = FrameReader::new();
        let a = pdu(1, vec![1; 10]);
        let b = pdu(2, vec![2; 2000]);
        let mut stream = encode_frame(&a);
        stream.extend_from_slice(&encode_frame(&b));
        let (first, rest) = stream.split_at(encode_frame(&a).len() + 3);
        reader.push(first);
        assert_eq!(reader.next_frame().unwrap(), Some(a));
        assert_eq!(reader.next_frame().unwrap(), None);
        reader.push(rest);
        assert_eq!(reader.next_frame().unwrap(), Some(b));
    }
}

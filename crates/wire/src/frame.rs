//! Stream framing for PDUs.
//!
//! Byte-stream transports (TCP) need to know where one PDU ends and the
//! next begins, and they must bound how much a hostile or broken peer can
//! make them buffer. A frame is a 4-byte big-endian length prefix followed
//! by exactly that many bytes of [`Pdu`] wire encoding.
//!
//! The decode path here is hardened by construction:
//!
//! * the declared length is validated against [`MAX_FRAME`] (or a caller
//!   cap) **before** any allocation, so an attacker cannot force an
//!   unbounded buffer with a forged prefix;
//! * short reads surface as [`FrameError::Incomplete`] ("feed me more
//!   bytes"), cleanly distinguished from corruption — no panics, no
//!   misparses;
//! * a frame whose body fails PDU decoding yields a typed
//!   [`FrameError::Malformed`] carrying the inner [`DecodeError`].

use crate::bytes::Bytes;
use crate::codec::{DecodeError, Wire};
use crate::pdu::{Pdu, HEADER_LEN, MAX_PAYLOAD};

/// Size of the length prefix.
pub const FRAME_PREFIX: usize = 4;

/// Hard cap on a frame body: one maximal PDU.
pub const MAX_FRAME: usize = HEADER_LEN + MAX_PAYLOAD;

/// Errors from the framing layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The declared frame length exceeds the configured cap. The
    /// connection should be dropped; resynchronization is not possible.
    Oversized {
        /// Length the prefix declared.
        declared: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// A zero-length frame (a PDU is never empty).
    Empty,
    /// The frame body did not decode as a PDU.
    Malformed(DecodeError),
    /// More bytes are needed to complete the current frame. Only returned
    /// by the one-shot [`decode_frame`]; [`FrameReader`] buffers instead.
    Incomplete {
        /// Total bytes needed (prefix + declared body length), when known.
        needed: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Malformed(e) => write!(f, "malformed frame body: {e}"),
            FrameError::Incomplete { needed } => {
                write!(f, "incomplete frame: need {needed} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// Encodes one PDU as a length-prefixed frame.
pub fn encode_frame(pdu: &Pdu) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_PREFIX + pdu.wire_len());
    encode_frame_into(pdu, &mut out);
    out
}

/// Appends one PDU's frame to `out`, reusing its allocation.
///
/// The egress batching path encodes many queued PDUs into one scratch
/// buffer and issues a single `write`; after the first few calls the
/// scratch is warm and encoding allocates nothing.
pub fn encode_frame_into(pdu: &Pdu, out: &mut Vec<u8>) {
    let body_len = pdu.wire_len();
    debug_assert!(body_len <= MAX_FRAME);
    out.reserve(FRAME_PREFIX + body_len);
    let mut enc = crate::codec::Encoder::from_vec(std::mem::take(out));
    enc.u32(body_len as u32);
    pdu.encode(&mut enc);
    *out = enc.finish();
}

/// One-shot decode of a frame from the start of `input`.
///
/// Returns the PDU and the total bytes consumed. [`FrameError::Incomplete`]
/// means the caller should read more; every other error is terminal for
/// the stream.
pub fn decode_frame(input: &[u8], max_frame: usize) -> Result<(Pdu, usize), FrameError> {
    if input.len() < FRAME_PREFIX {
        return Err(FrameError::Incomplete { needed: FRAME_PREFIX });
    }
    let declared = u32::from_be_bytes(input[..FRAME_PREFIX].try_into().unwrap()) as usize;
    if declared == 0 {
        return Err(FrameError::Empty);
    }
    if declared > max_frame {
        return Err(FrameError::Oversized { declared: declared as u64, max: max_frame });
    }
    let total = FRAME_PREFIX + declared;
    if input.len() < total {
        return Err(FrameError::Incomplete { needed: total });
    }
    let pdu = Pdu::from_wire(&input[FRAME_PREFIX..total]).map_err(FrameError::Malformed)?;
    Ok((pdu, total))
}

/// Zero-copy variant of [`decode_frame`]: decodes the frame starting at
/// `at` in a shared buffer, returning a PDU whose payload is a refcounted
/// window into `input` and the offset one past the frame.
pub fn decode_frame_shared(
    input: &Bytes,
    at: usize,
    max_frame: usize,
) -> Result<(Pdu, usize), FrameError> {
    let avail = input.len() - at;
    if avail < FRAME_PREFIX {
        return Err(FrameError::Incomplete { needed: FRAME_PREFIX });
    }
    let bytes = input.as_slice();
    let declared = u32::from_be_bytes(bytes[at..at + FRAME_PREFIX].try_into().unwrap()) as usize;
    if declared == 0 {
        return Err(FrameError::Empty);
    }
    if declared > max_frame {
        return Err(FrameError::Oversized { declared: declared as u64, max: max_frame });
    }
    let total = FRAME_PREFIX + declared;
    if avail < total {
        return Err(FrameError::Incomplete { needed: total });
    }
    // Bound the decode to this frame's body (an O(1) window, not a copy)
    // so a lying PDU header can never read into the next frame, and apply
    // the same no-trailing-bytes strictness as the copying path.
    let body = input.slice(at + FRAME_PREFIX, at + total);
    let (pdu, end) = Pdu::decode_shared(&body, 0).map_err(FrameError::Malformed)?;
    if end != declared {
        return Err(FrameError::Malformed(DecodeError::TrailingBytes(declared - end)));
    }
    Ok((pdu, at + total))
}

/// Incremental frame decoder for byte streams, zero-copy on the hot path.
///
/// Feed arbitrary chunks with [`push`](FrameReader::push), then drain
/// complete PDUs with [`next_frame`](FrameReader::next_frame). Pushed
/// bytes are copied **once** into a staging tail; when decoding catches
/// up the tail is *moved* (not copied) into a frozen, refcounted
/// [`Bytes`] block and every PDU decoded from it borrows its payload from
/// that block. Only a frame that straddles a freeze boundary pays a
/// second copy, so the amortized cost is one copy per byte off the
/// socket and zero after.
///
/// Memory is bounded: the buffers never grow beyond one maximal frame
/// plus one read chunk, and a forged length prefix is rejected before any
/// buffering commitment.
#[derive(Debug)]
pub struct FrameReader {
    /// Immutable block frames are decoded from, shared with the payloads
    /// of PDUs already handed out.
    frozen: Bytes,
    /// Read cursor into `frozen`.
    fpos: usize,
    /// Staging buffer for bytes pushed since the last freeze.
    tail: Vec<u8>,
    max_frame: usize,
    poisoned: bool,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with the default [`MAX_FRAME`] cap.
    pub fn new() -> FrameReader {
        FrameReader::with_max_frame(MAX_FRAME)
    }

    /// A reader with a custom frame cap (tighter for constrained nodes).
    pub fn with_max_frame(max_frame: usize) -> FrameReader {
        FrameReader { frozen: Bytes::new(), fpos: 0, tail: Vec::new(), max_frame, poisoned: false }
    }

    /// Appends raw bytes read from the stream (the one copy).
    pub fn push(&mut self, chunk: &[u8]) {
        self.tail.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet decoded.
    pub fn buffered(&self) -> usize {
        (self.frozen.len() - self.fpos) + self.tail.len()
    }

    /// Makes all buffered bytes visible to the decoder as one frozen
    /// block. If the frozen block is fully drained this is a move of the
    /// tail; otherwise the frozen remainder and tail are merged (the only
    /// place a buffered byte can be copied a second time — it happens at
    /// most once per byte, when a frame straddles a freeze boundary).
    fn freeze(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        if self.fpos == self.frozen.len() {
            self.frozen = Bytes::from_vec(std::mem::take(&mut self.tail));
        } else {
            let rest = &self.frozen.as_slice()[self.fpos..];
            let mut merged = Vec::with_capacity(rest.len() + self.tail.len());
            merged.extend_from_slice(rest);
            merged.append(&mut self.tail);
            self.frozen = Bytes::from_vec(merged);
        }
        self.fpos = 0;
    }

    /// Extracts the next complete PDU, if one is buffered. Its payload
    /// aliases the reader's frozen block — no copy.
    ///
    /// `Ok(None)` means "no complete frame yet". An `Err` poisons the
    /// reader — framing errors are not recoverable on a byte stream, so
    /// every subsequent call returns the same class of error and the
    /// connection must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Pdu>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Malformed(DecodeError::Invalid("poisoned frame stream")));
        }
        loop {
            match decode_frame_shared(&self.frozen, self.fpos, self.max_frame) {
                Ok((pdu, end)) => {
                    self.fpos = end;
                    if self.fpos == self.frozen.len() && !self.frozen.is_empty() {
                        // Fully drained: drop our reference so the block's
                        // lifetime is governed by outstanding payloads only.
                        self.frozen = Bytes::new();
                        self.fpos = 0;
                    }
                    return Ok(Some(pdu));
                }
                Err(FrameError::Incomplete { .. }) => {
                    if self.tail.is_empty() {
                        return Ok(None);
                    }
                    self.freeze(); // more bytes are staged — retry with them
                }
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::Name;

    fn pdu(seq: u64, payload: Vec<u8>) -> Pdu {
        Pdu::data(Name::from_content(b"src"), Name::from_content(b"dst"), seq, payload)
    }

    #[test]
    fn roundtrip_single() {
        let p = pdu(7, b"hello".to_vec());
        let bytes = encode_frame(&p);
        let (got, consumed) = decode_frame(&bytes, MAX_FRAME).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, p);
    }

    #[test]
    fn incomplete_then_complete() {
        let p = pdu(1, vec![0xAB; 100]);
        let bytes = encode_frame(&p);
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut], MAX_FRAME),
                Err(FrameError::Incomplete { .. })
            ));
        }
        assert!(decode_frame(&bytes, MAX_FRAME).is_ok());
    }

    #[test]
    fn oversized_rejected_before_buffering() {
        let mut bytes = encode_frame(&pdu(1, vec![1, 2, 3]));
        bytes[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_frame(&bytes, MAX_FRAME),
            Err(FrameError::Oversized { declared, .. }) if declared == u32::MAX as u64
        ));
    }

    #[test]
    fn zero_length_rejected() {
        assert_eq!(decode_frame(&[0, 0, 0, 0, 9], MAX_FRAME), Err(FrameError::Empty));
    }

    #[test]
    fn malformed_body_typed_error() {
        let mut bytes = encode_frame(&pdu(1, b"x".to_vec()));
        bytes[4] ^= 0xFF; // corrupt the PDU magic inside the frame
        assert!(matches!(decode_frame(&bytes, MAX_FRAME), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn reader_reassembles_byte_by_byte() {
        let pdus: Vec<Pdu> = (0..5).map(|i| pdu(i, vec![i as u8; (i * 100) as usize])).collect();
        let mut stream = Vec::new();
        for p in &pdus {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in stream {
            reader.push(&[b]);
            while let Some(p) = reader.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, pdus);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reader_poisons_on_garbage() {
        let mut reader = FrameReader::new();
        let mut bytes = encode_frame(&pdu(1, b"ok".to_vec()));
        bytes[5] ^= 0xFF; // corrupt version byte
        reader.push(&bytes);
        assert!(reader.next_frame().is_err());
        // Even after pushing a valid frame the reader stays dead: framing
        // desync is unrecoverable.
        reader.push(&encode_frame(&pdu(2, b"later".to_vec())));
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn reader_enforces_custom_cap() {
        let p = pdu(1, vec![0u8; 4096]);
        let mut reader = FrameReader::with_max_frame(1024);
        reader.push(&encode_frame(&p));
        assert!(matches!(reader.next_frame(), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn reader_interleaves_push_and_drain() {
        let mut reader = FrameReader::new();
        let a = pdu(1, vec![1; 10]);
        let b = pdu(2, vec![2; 2000]);
        let mut stream = encode_frame(&a);
        stream.extend_from_slice(&encode_frame(&b));
        let (first, rest) = stream.split_at(encode_frame(&a).len() + 3);
        reader.push(first);
        assert_eq!(reader.next_frame().unwrap(), Some(a));
        assert_eq!(reader.next_frame().unwrap(), None);
        reader.push(rest);
        assert_eq!(reader.next_frame().unwrap(), Some(b));
    }
}

//! Frame-decode corpus: a checked-in set of hostile byte sequences —
//! malformed, truncated, oversized, bit-rotted — pushed through both the
//! one-shot [`decode_frame`] and the streaming [`FrameReader`]. The
//! contract under attack input is strict: a typed [`FrameError`], never a
//! panic, never unbounded buffering; and every *valid* frame must
//! round-trip bit-exactly.

use gdp_wire::{
    decode_frame, encode_frame, FrameError, FrameReader, Name, Pdu, PduType, FRAME_PREFIX,
    HEADER_LEN, MAX_FRAME,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pdu(t: PduType, seq: u64, payload: Vec<u8>) -> Pdu {
    Pdu {
        pdu_type: t,
        src: Name::from_content(b"alpha"),
        dst: Name::from_content(b"beta"),
        seq,
        payload: payload.into(),
    }
}

/// A representative spread of valid PDUs: every type tag, empty and
/// non-trivial payloads, boundary sequence numbers.
fn valid_corpus() -> Vec<Pdu> {
    vec![
        pdu(PduType::Data, 0, Vec::new()),
        pdu(PduType::Data, 1, b"hello capsule".to_vec()),
        pdu(PduType::Advertise, u64::MAX, vec![0xAB; 1000]),
        pdu(PduType::Lookup, 7, vec![0; 1]),
        pdu(PduType::RouterControl, 1 << 40, (0..=255u8).collect()),
        pdu(PduType::Error, 2, vec![0xFF; 32]),
    ]
}

/// A corpus entry: (label, hostile bytes, expected-error-class check).
type HostileEntry = (&'static str, Vec<u8>, fn(&FrameError) -> bool);

/// Checked-in adversarial inputs with the error class each must produce.
fn hostile_corpus() -> Vec<HostileEntry> {
    let valid = encode_frame(&pdu(PduType::Data, 9, b"seed".to_vec()));
    let mut corpus: Vec<HostileEntry> = Vec::new();

    // Zero-length frame.
    corpus.push(("zero-length", vec![0, 0, 0, 0, 1, 2, 3], |e| matches!(e, FrameError::Empty)));

    // Length prefix claiming 4 GiB: must be rejected before any buffering.
    corpus.push((
        "oversized-4gib",
        {
            let mut b = valid.clone();
            b[..4].copy_from_slice(&u32::MAX.to_be_bytes());
            b
        },
        |e| matches!(e, FrameError::Oversized { .. }),
    ));

    // Length prefix exactly one past the cap.
    corpus.push((
        "oversized-by-one",
        {
            let mut b = vec![0u8; FRAME_PREFIX];
            b[..4].copy_from_slice(&((MAX_FRAME + 1) as u32).to_be_bytes());
            b
        },
        |e| matches!(e, FrameError::Oversized { .. }),
    ));

    // Bad magic in the PDU body.
    corpus.push((
        "bad-magic",
        {
            let mut b = valid.clone();
            b[4] ^= 0xFF;
            b
        },
        |e| matches!(e, FrameError::Malformed(_)),
    ));

    // Unsupported PDU version.
    corpus.push((
        "bad-version",
        {
            let mut b = valid.clone();
            b[6] = 0x7F;
            b
        },
        |e| matches!(e, FrameError::Malformed(_)),
    ));

    // Unknown PDU type tag.
    corpus.push((
        "bad-type",
        {
            let mut b = valid.clone();
            b[7] = 0xEE;
            b
        },
        |e| matches!(e, FrameError::Malformed(_)),
    ));

    // Inner payload length pointing past the frame body (header lies).
    corpus.push((
        "inner-length-overrun",
        {
            let mut b = valid.clone();
            let len_off = FRAME_PREFIX + HEADER_LEN - 4;
            b[len_off..len_off + 4].copy_from_slice(&0xFFFF_u32.to_be_bytes());
            b
        },
        |e| matches!(e, FrameError::Malformed(_)),
    ));

    // Frame body shorter than a PDU header.
    corpus.push((
        "body-shorter-than-header",
        {
            let mut b = vec![0u8; FRAME_PREFIX + 3];
            b[..4].copy_from_slice(&3u32.to_be_bytes());
            b[4..].copy_from_slice(&[0x47, 0xD0, 0x01]);
            b
        },
        |e| matches!(e, FrameError::Malformed(_)),
    ));

    // Trailing garbage after a correctly-declared body: the *frame* is
    // consistent but the PDU decoder must reject unconsumed bytes or the
    // payload-length mismatch.
    corpus.push((
        "declared-too-long",
        {
            let mut b = valid.clone();
            let declared = (valid.len() - FRAME_PREFIX + 5) as u32;
            b[..4].copy_from_slice(&declared.to_be_bytes());
            b.extend_from_slice(&[9, 9, 9, 9, 9]);
            b
        },
        |e| matches!(e, FrameError::Malformed(_)),
    ));

    corpus
}

#[test]
fn valid_frames_round_trip_exactly() {
    for p in valid_corpus() {
        let bytes = encode_frame(&p);
        let (got, consumed) = decode_frame(&bytes, MAX_FRAME)
            .unwrap_or_else(|e| panic!("valid frame rejected ({:?}): {e}", p.pdu_type));
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, p, "frame round-trip altered the PDU");
    }
}

#[test]
fn hostile_corpus_yields_typed_errors() {
    for (label, bytes, check) in hostile_corpus() {
        match decode_frame(&bytes, MAX_FRAME) {
            Err(e) => assert!(check(&e), "corpus entry {label}: wrong error class: {e}"),
            Ok((p, _)) => panic!("corpus entry {label}: hostile bytes decoded as {:?}", p.pdu_type),
        }
    }
}

/// The streaming reader must poison itself on the first hostile frame and
/// stay dead — resynchronizing on a corrupt byte stream is unsound.
#[test]
fn reader_poisons_on_every_hostile_entry() {
    for (label, bytes, _) in hostile_corpus() {
        let mut r = FrameReader::new();
        // A valid frame first: corruption mid-stream, not at start.
        r.push(&encode_frame(&pdu(PduType::Data, 1, b"ok".to_vec())));
        r.push(&bytes);
        assert!(r.next_frame().unwrap().is_some(), "{label}: leading valid frame lost");
        assert!(r.next_frame().is_err(), "{label}: hostile frame not rejected");
        r.push(&encode_frame(&pdu(PduType::Data, 2, b"late".to_vec())));
        assert!(r.next_frame().is_err(), "{label}: reader recovered from poison");
    }
}

/// Every truncation point of every valid frame is `Incomplete` (one-shot)
/// and `Ok(None)` (reader) — never a panic, never a misparse.
#[test]
fn every_truncation_point_is_incomplete() {
    for p in valid_corpus() {
        let bytes = encode_frame(&p);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut], MAX_FRAME) {
                Err(FrameError::Incomplete { needed }) => {
                    assert!(needed > cut, "needed must exceed what was offered")
                }
                other => {
                    let _ = other.map(|(p, _)| p.seq); // normalize for message
                    panic!("truncated frame (cut {cut}) was not Incomplete")
                }
            }
            let mut r = FrameReader::new();
            r.push(&bytes[..cut]);
            assert!(matches!(r.next_frame(), Ok(None)), "reader misparse at cut {cut}");
        }
    }
}

/// Seeded random byte-flips over valid frames: any single-byte mutation
/// either still decodes (flips inside the opaque payload or names produce
/// a *different but well-formed* PDU — acceptable; integrity is the
/// crypto layer's job) or fails with a typed error. Never a panic, and
/// the consumed length never exceeds the input.
#[test]
fn random_bit_rot_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x46524D45);
    let frames: Vec<Vec<u8>> = valid_corpus().iter().map(encode_frame).collect();
    for _ in 0..2_000 {
        let f = &frames[rng.gen_range(0..frames.len())];
        let mut b = f.clone();
        let flips = rng.gen_range(1..4);
        for _ in 0..flips {
            let pos = rng.gen_range(0..b.len());
            b[pos] ^= 1u8 << rng.gen_range(0..8u8);
        }
        // A typed Err is fine; a decode must never over-consume.
        if let Ok((_, consumed)) = decode_frame(&b, MAX_FRAME) {
            assert!(consumed <= b.len());
        }
    }
}

/// Seeded pure-garbage streams through the reader: bounded buffering and
/// typed errors only. (The reader may legitimately sit in `Ok(None)`
/// waiting for more bytes of a large-but-legal declared frame.)
#[test]
fn random_garbage_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x47415242);
    for _ in 0..200 {
        let mut r = FrameReader::new();
        let len = rng.gen_range(1..512);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        for chunk in garbage.chunks(rng.gen_range(1..32)) {
            r.push(chunk);
            match r.next_frame() {
                Ok(_) | Err(_) => {}
            }
        }
        assert!(r.buffered() <= MAX_FRAME + 512, "reader buffered unboundedly");
    }
}

//! Property tests for the wire codec: determinism, roundtrips, and
//! robustness against arbitrary input (never panic, never misparse).

use gdp_wire::{Decoder, Encoder, Name, Pdu, PduType, Wire};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut e = Encoder::new();
        e.varint(v);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.varint().unwrap(), v);
        d.expect_end().unwrap();
        // Canonical length: 1 byte per 7 bits.
        let expect_len = if v == 0 { 1 } else { (64 - v.leading_zeros() as usize).div_ceil(7) };
        prop_assert_eq!(buf.len(), expect_len);
    }

    #[test]
    fn bytes_and_strings_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512), s in ".{0,64}") {
        let mut e = Encoder::new();
        e.bytes(&data).string(&s);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.bytes().unwrap(), &data[..]);
        prop_assert_eq!(d.string().unwrap(), s);
        d.expect_end().unwrap();
    }

    #[test]
    fn pdu_roundtrips(
        t in 0u8..5,
        src in any::<[u8; 32]>(),
        dst in any::<[u8; 32]>(),
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let pdu = Pdu {
            pdu_type: PduType::from_u8(t).unwrap(),
            src: Name(src),
            dst: Name(dst),
            seq,
            payload: payload.into(),
        };
        prop_assert_eq!(Pdu::from_wire(&pdu.to_wire()).unwrap(), pdu);
    }

    /// Arbitrary bytes never panic the decoder — they either parse or
    /// produce an error.
    #[test]
    fn decoder_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Pdu::from_wire(&junk);
        let mut d = Decoder::new(&junk);
        let _ = d.varint();
        let _ = d.bytes();
        let _ = d.string();
        let _ = d.seq(|d| d.u64());
    }

    /// Truncating a valid encoding always fails cleanly.
    #[test]
    fn truncation_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let pdu = Pdu::data(Name::from_content(b"a"), Name::from_content(b"b"), 7, payload);
        let bytes = pdu.to_wire();
        let cut = 1 + ((bytes.len() - 2) as f64 * cut_frac) as usize;
        prop_assert!(Pdu::from_wire(&bytes[..cut]).is_err());
    }

    /// Encoding is deterministic: same value, same bytes.
    #[test]
    fn encoding_deterministic(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let pdu = Pdu::data(Name::from_content(b"x"), Name::from_content(b"y"), 1, payload);
        prop_assert_eq!(pdu.to_wire(), pdu.to_wire());
    }
}

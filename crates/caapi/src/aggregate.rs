//! Aggregation service: the paper's second multi-writer pattern.
//!
//! Paper §V-A: multiple writers can be accommodated "(b) by creating an
//! aggregation service that subscribes to multiple single-writer
//! DataCapsules and combines them based on some application-level logic."
//!
//! [`Aggregator`] incrementally pulls new records from N source capsules
//! and merges them into one output capsule in timestamp order, tagging
//! each merged record with its source. The output is itself an ordinary
//! single-writer capsule — composability of services.

use crate::backend::{CaapiError, CapsuleAccess};
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};
use std::collections::HashMap;

/// A merged record in the output capsule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedRecord {
    /// The source capsule the record came from.
    pub source: Name,
    /// The source record's sequence number.
    pub source_seq: u64,
    /// The source record's writer timestamp.
    pub timestamp_micros: u64,
    /// The source record's body.
    pub body: Vec<u8>,
}

impl Wire for MergedRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.name(&self.source);
        enc.varint(self.source_seq);
        enc.varint(self.timestamp_micros);
        enc.bytes(&self.body);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MergedRecord {
            source: dec.name()?,
            source_seq: dec.varint()?,
            timestamp_micros: dec.varint()?,
            body: dec.bytes()?.to_vec(),
        })
    }
}

/// Merges several single-writer capsules into one output capsule.
pub struct Aggregator<B: CapsuleAccess> {
    backend: B,
    sources: Vec<Name>,
    output: Name,
    cursors: HashMap<Name, u64>,
}

impl<B: CapsuleAccess> Aggregator<B> {
    /// Creates an aggregator from `sources` into `output` (an existing
    /// capsule whose writer the backend controls).
    pub fn new(backend: B, sources: Vec<Name>, output: Name) -> Aggregator<B> {
        let cursors = sources.iter().map(|s| (*s, 0u64)).collect();
        Aggregator { backend, sources, output, cursors }
    }

    /// The output capsule.
    pub fn output(&self) -> Name {
        self.output
    }

    /// Access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Pulls everything new from every source, merges by writer timestamp
    /// (ties broken by source name then seq for determinism), and appends
    /// to the output. Returns how many records were merged.
    pub fn run_once(&mut self) -> Result<usize, CaapiError> {
        let mut batch: Vec<MergedRecord> = Vec::new();
        for source in self.sources.clone() {
            let cursor = self.cursors[&source];
            let latest = self.backend.latest_seq(&source)?;
            if latest > cursor {
                for r in self.backend.read_range(&source, cursor + 1, latest)? {
                    batch.push(MergedRecord {
                        source,
                        source_seq: r.header.seq,
                        timestamp_micros: r.header.timestamp_micros,
                        body: r.body.to_vec(),
                    });
                }
                self.cursors.insert(source, latest);
            }
        }
        batch.sort_by(|a, b| {
            (a.timestamp_micros, a.source, a.source_seq).cmp(&(
                b.timestamp_micros,
                b.source,
                b.source_seq,
            ))
        });
        let n = batch.len();
        for m in batch {
            self.backend.append(&self.output, &m.to_wire())?;
        }
        Ok(n)
    }

    /// Reads back the merged stream.
    pub fn merged(&mut self) -> Result<Vec<MergedRecord>, CaapiError> {
        let latest = self.backend.latest_seq(&self.output)?;
        if latest == 0 {
            return Ok(Vec::new());
        }
        self.backend
            .read_range(&self.output, 1, latest)?
            .iter()
            .map(|r| {
                MergedRecord::from_wire(&r.body)
                    .map_err(|_| CaapiError::Format("bad merged record".into()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{new_capsule_spec, LocalBackend};
    use gdp_capsule::PointerStrategy;
    use gdp_crypto::SigningKey;

    #[test]
    fn merges_in_timestamp_order() {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let mut backend = LocalBackend::new();
        // Two sensors with their own capsules. LocalBackend assigns
        // timestamps = per-capsule append counter, so interleave manually
        // with known counters.
        let (m1, w1) = new_capsule_spec(&owner, "sensor-1");
        let s1 = backend.create_capsule(m1, w1, PointerStrategy::Chain).unwrap();
        let (m2, w2) = new_capsule_spec(&owner, "sensor-2");
        let s2 = backend.create_capsule(m2, w2, PointerStrategy::Chain).unwrap();
        let (mo, wo) = new_capsule_spec(&owner, "merged");
        let out = backend.create_capsule(mo, wo, PointerStrategy::Chain).unwrap();

        backend.append(&s1, b"s1-a").unwrap(); // ts 1
        backend.append(&s2, b"s2-a").unwrap(); // ts 1
        backend.append(&s1, b"s1-b").unwrap(); // ts 2
        backend.append(&s2, b"s2-b").unwrap(); // ts 2

        let mut agg = Aggregator::new(backend, vec![s1, s2], out);
        assert_eq!(agg.run_once().unwrap(), 4);
        let merged = agg.merged().unwrap();
        assert_eq!(merged.len(), 4);
        // Sorted by (ts, source, seq): both ts-1 records first.
        assert_eq!(merged[0].timestamp_micros, 1);
        assert_eq!(merged[1].timestamp_micros, 1);
        assert_eq!(merged[2].timestamp_micros, 2);
        assert_eq!(merged[3].timestamp_micros, 2);
        // Deterministic tie-break: same source order within equal ts.
        assert_eq!(merged[0].source, merged[2].source);
    }

    #[test]
    fn incremental_runs_pick_up_new_data() {
        let owner = SigningKey::from_seed(&[2u8; 32]);
        let mut backend = LocalBackend::new();
        let (m1, w1) = new_capsule_spec(&owner, "src");
        let s1 = backend.create_capsule(m1, w1, PointerStrategy::Chain).unwrap();
        let (mo, wo) = new_capsule_spec(&owner, "out");
        let out = backend.create_capsule(mo, wo, PointerStrategy::Chain).unwrap();
        backend.append(&s1, b"one").unwrap();

        let mut agg = Aggregator::new(backend, vec![s1], out);
        assert_eq!(agg.run_once().unwrap(), 1);
        assert_eq!(agg.run_once().unwrap(), 0); // nothing new
        agg.backend_mut().append(&s1, b"two").unwrap();
        assert_eq!(agg.run_once().unwrap(), 1);
        let merged = agg.merged().unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[1].body, b"two");
    }
}

//! Filesystem CAAPI.
//!
//! The structure the paper's TensorFlow plugin used (§IX): "this CAAPI
//! maintains a top-level directory in a single DataCapsule. Each filename
//! is represented as its own DataCapsule; the top-level directory merely
//! maps filenames to DataCapsule-names."
//!
//! Files are chunked into records; the final record of every write is a
//! manifest carrying the file length and chunk count, so a reader can
//! reassemble and validate. Directory entries are append-only operations
//! (Create / Remove); the current listing is a replay of the log — giving
//! the filesystem a complete, provenance-carrying history for free.

use crate::backend::{new_capsule_spec, CaapiError, CapsuleAccess};
use gdp_capsule::PointerStrategy;
use gdp_crypto::SigningKey;
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};
use std::collections::BTreeMap;

/// Chunk size for file contents (256 KiB keeps records well under the PDU
/// payload cap while amortizing per-record overhead).
pub const CHUNK_SIZE: usize = 256 * 1024;

/// A directory-log operation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum DirOp {
    /// Bind `path` to a file capsule.
    Create { path: String, capsule: Name },
    /// Unbind `path`.
    Remove { path: String },
}

impl Wire for DirOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            DirOp::Create { path, capsule } => {
                enc.u8(0);
                enc.string(path);
                enc.name(capsule);
            }
            DirOp::Remove { path } => {
                enc.u8(1);
                enc.string(path);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.u8()? {
            0 => DirOp::Create { path: dec.string()?, capsule: dec.name()? },
            1 => DirOp::Remove { path: dec.string()? },
            t => return Err(DecodeError::BadTag(t as u64)),
        })
    }
}

/// Per-write manifest: the last record of a file version.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Manifest {
    /// Total file length in bytes.
    len: u64,
    /// Number of chunk records in this version.
    chunks: u32,
}

const MANIFEST_MAGIC: u8 = 0xF1;
const CHUNK_MAGIC: u8 = 0xF0;

impl Manifest {
    fn to_body(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u8(MANIFEST_MAGIC);
        enc.varint(self.len);
        enc.u32(self.chunks);
        enc.finish()
    }

    fn from_body(body: &[u8]) -> Option<Manifest> {
        let mut dec = Decoder::new(body);
        if dec.u8().ok()? != MANIFEST_MAGIC {
            return None;
        }
        let len = dec.varint().ok()?;
        let chunks = dec.u32().ok()?;
        dec.expect_end().ok()?;
        Some(Manifest { len, chunks })
    }
}

/// A GDP-backed filesystem.
pub struct GdpFs<B: CapsuleAccess> {
    backend: B,
    owner: SigningKey,
    directory: Name,
    /// Local view of the directory (replayed from the log).
    entries: BTreeMap<String, Name>,
    /// Next directory seq to replay.
    dir_cursor: u64,
}

impl<B: CapsuleAccess> GdpFs<B> {
    /// Creates a new filesystem with a fresh directory capsule.
    pub fn format(mut backend: B, owner: SigningKey) -> Result<GdpFs<B>, CaapiError> {
        let (meta, writer) = new_capsule_spec(&owner, "gdpfs directory");
        let directory =
            backend.create_capsule(meta, writer, PointerStrategy::Checkpoint { interval: 64 })?;
        Ok(GdpFs { backend, owner, directory, entries: BTreeMap::new(), dir_cursor: 0 })
    }

    /// The directory capsule's name (share it to mount the same fs).
    pub fn directory(&self) -> Name {
        self.directory
    }

    /// Access to the underlying backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Replays any directory records appended since the last call (e.g. by
    /// another mount of the same filesystem).
    pub fn refresh(&mut self) -> Result<(), CaapiError> {
        let latest = self.backend.latest_seq(&self.directory)?;
        if latest <= self.dir_cursor {
            return Ok(());
        }
        let records = self.backend.read_range(&self.directory, self.dir_cursor + 1, latest)?;
        for r in records {
            match DirOp::from_wire(&r.body) {
                Ok(DirOp::Create { path, capsule }) => {
                    self.entries.insert(path, capsule);
                }
                Ok(DirOp::Remove { path }) => {
                    self.entries.remove(&path);
                }
                Err(_) => return Err(CaapiError::Format("bad directory record".into())),
            }
        }
        self.dir_cursor = latest;
        Ok(())
    }

    /// Lists all paths, sorted.
    pub fn list(&mut self) -> Result<Vec<String>, CaapiError> {
        self.refresh()?;
        Ok(self.entries.keys().cloned().collect())
    }

    /// True if `path` exists.
    pub fn exists(&mut self, path: &str) -> Result<bool, CaapiError> {
        self.refresh()?;
        Ok(self.entries.contains_key(path))
    }

    /// The capsule backing `path`.
    pub fn file_capsule(&mut self, path: &str) -> Result<Name, CaapiError> {
        self.refresh()?;
        self.entries.get(path).copied().ok_or_else(|| CaapiError::NotFound(path.to_string()))
    }

    /// Writes a complete file (creating it if needed). Returns the number
    /// of records appended.
    pub fn write_file(&mut self, path: &str, contents: &[u8]) -> Result<u64, CaapiError> {
        self.refresh()?;
        let capsule = match self.entries.get(path) {
            Some(c) => *c,
            None => {
                let (meta, writer) = new_capsule_spec(&self.owner, &format!("file:{path}"));
                // Checkpoint pointers let readers validate any chunk against
                // the closest manifest (paper §V: filesystem strategy).
                let capsule = self.backend.create_capsule(
                    meta,
                    writer,
                    PointerStrategy::Checkpoint { interval: 32 },
                )?;
                let op = DirOp::Create { path: path.to_string(), capsule };
                self.backend.append(&self.directory, &op.to_wire())?;
                self.entries.insert(path.to_string(), capsule);
                self.dir_cursor += 1;
                capsule
            }
        };
        let bodies: Vec<Vec<u8>> = contents
            .chunks(CHUNK_SIZE.max(1))
            .map(|chunk| {
                let mut body = Vec::with_capacity(chunk.len() + 1);
                body.push(CHUNK_MAGIC);
                body.extend_from_slice(chunk);
                body
            })
            .collect();
        let chunks = bodies.len() as u32;
        if !bodies.is_empty() {
            self.backend.append_batch(&capsule, &bodies)?;
        }
        let manifest = Manifest { len: contents.len() as u64, chunks };
        self.backend.append(&capsule, &manifest.to_body())?;
        Ok(chunks as u64 + 1)
    }

    /// Reads the newest version of a file.
    pub fn read_file(&mut self, path: &str) -> Result<Vec<u8>, CaapiError> {
        let capsule = self.file_capsule(path)?;
        let latest = self
            .backend
            .latest(&capsule)?
            .ok_or_else(|| CaapiError::NotFound(format!("{path}: empty capsule")))?;
        let manifest = Manifest::from_body(&latest.body)
            .ok_or_else(|| CaapiError::Format(format!("{path}: newest record not a manifest")))?;
        let last_seq = latest.header.seq;
        if manifest.chunks == 0 {
            return Ok(Vec::new());
        }
        let first_chunk = last_seq - manifest.chunks as u64;
        let records = self.backend.read_range(&capsule, first_chunk, last_seq - 1)?;
        if records.len() != manifest.chunks as usize {
            return Err(CaapiError::Format(format!(
                "{path}: expected {} chunks, got {}",
                manifest.chunks,
                records.len()
            )));
        }
        let mut out = Vec::with_capacity(manifest.len as usize);
        for r in records {
            if r.body.first() != Some(&CHUNK_MAGIC) {
                return Err(CaapiError::Format(format!("{path}: bad chunk record")));
            }
            out.extend_from_slice(&r.body[1..]);
        }
        if out.len() as u64 != manifest.len {
            return Err(CaapiError::Format(format!(
                "{path}: length mismatch ({} vs {})",
                out.len(),
                manifest.len
            )));
        }
        Ok(out)
    }

    /// Removes a path (the file capsule and its history remain — removal is
    /// a directory operation, preserving provenance).
    pub fn remove(&mut self, path: &str) -> Result<(), CaapiError> {
        self.refresh()?;
        if !self.entries.contains_key(path) {
            return Err(CaapiError::NotFound(path.to_string()));
        }
        let op = DirOp::Remove { path: path.to_string() };
        self.backend.append(&self.directory, &op.to_wire())?;
        self.entries.remove(path);
        self.dir_cursor += 1;
        Ok(())
    }

    /// Reads an old version: the version whose manifest is at `manifest_seq`.
    pub fn read_file_at(&mut self, path: &str, manifest_seq: u64) -> Result<Vec<u8>, CaapiError> {
        let capsule = self.file_capsule(path)?;
        let manifest_rec = self.backend.read(&capsule, manifest_seq)?;
        let manifest = Manifest::from_body(&manifest_rec.body).ok_or_else(|| {
            CaapiError::Format(format!("{path}: seq {manifest_seq} not a manifest"))
        })?;
        if manifest.chunks == 0 {
            return Ok(Vec::new());
        }
        let first = manifest_seq - manifest.chunks as u64;
        let records = self.backend.read_range(&capsule, first, manifest_seq - 1)?;
        let mut out = Vec::new();
        for r in records {
            out.extend_from_slice(&r.body[1..]);
        }
        Ok(out)
    }

    /// Sequence numbers of all manifests for `path` (its version history).
    pub fn versions(&mut self, path: &str) -> Result<Vec<u64>, CaapiError> {
        let capsule = self.file_capsule(path)?;
        let latest = self.backend.latest_seq(&capsule)?;
        if latest == 0 {
            return Ok(Vec::new());
        }
        let records = self.backend.read_range(&capsule, 1, latest)?;
        Ok(records
            .iter()
            .filter(|r| Manifest::from_body(&r.body).is_some())
            .map(|r| r.header.seq)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;

    fn fs() -> GdpFs<LocalBackend> {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        GdpFs::format(LocalBackend::new(), owner).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = fs();
        fs.write_file("model.bin", b"weights here").unwrap();
        assert_eq!(fs.read_file("model.bin").unwrap(), b"weights here");
        assert!(fs.exists("model.bin").unwrap());
        assert!(!fs.exists("other").unwrap());
    }

    #[test]
    fn multi_chunk_file() {
        let mut fs = fs();
        let big: Vec<u8> = (0..(CHUNK_SIZE * 2 + 1234)).map(|i| (i % 251) as u8).collect();
        let records = fs.write_file("big.dat", &big).unwrap();
        assert_eq!(records, 4); // 3 chunks + manifest
        assert_eq!(fs.read_file("big.dat").unwrap(), big);
    }

    #[test]
    fn empty_file() {
        let mut fs = fs();
        fs.write_file("empty", b"").unwrap();
        assert_eq!(fs.read_file("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_keeps_versions() {
        let mut fs = fs();
        fs.write_file("cfg", b"v1").unwrap();
        fs.write_file("cfg", b"version two").unwrap();
        assert_eq!(fs.read_file("cfg").unwrap(), b"version two");
        let versions = fs.versions("cfg").unwrap();
        assert_eq!(versions.len(), 2);
        // Time shift: the old version is still readable.
        assert_eq!(fs.read_file_at("cfg", versions[0]).unwrap(), b"v1");
    }

    #[test]
    fn list_and_remove() {
        let mut fs = fs();
        fs.write_file("a", b"1").unwrap();
        fs.write_file("b", b"2").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        fs.remove("a").unwrap();
        assert_eq!(fs.list().unwrap(), vec!["b".to_string()]);
        assert!(fs.read_file("a").is_err());
        assert!(matches!(fs.remove("a"), Err(CaapiError::NotFound(_))));
    }

    #[test]
    fn second_mount_sees_changes() {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let mut fs = GdpFs::format(LocalBackend::new(), owner).unwrap();
        fs.write_file("shared", b"hello").unwrap();
        // Simulate a second mount by resetting the cursor/view.
        fs.entries.clear();
        fs.dir_cursor = 0;
        assert_eq!(fs.list().unwrap(), vec!["shared".to_string()]);
        assert_eq!(fs.read_file("shared").unwrap(), b"hello");
    }
}

//! Topic/stream CAAPI with durable consumer offsets.
//!
//! The paper cites Kafka as the exemplar of append-only log design (§V-A
//! \\[20\\]) and positions DataCapsules as natively supporting "real-time
//! communication with a pub-sub paradigm and secure replays at a later time
//! (a time-shift property)" (§V). This CAAPI provides that shape: a topic
//! is a capsule of messages; each consumer group tracks its position in its
//! *own* capsule (offsets are just another append-only log), so consumption
//! state inherits the same integrity and provenance as the data.

use crate::backend::{new_capsule_spec, CaapiError, CapsuleAccess};
use gdp_capsule::PointerStrategy;
use gdp_crypto::SigningKey;
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};
use std::collections::HashMap;

/// A message as stored in the topic capsule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Optional partition/routing key.
    pub key: Vec<u8>,
    /// Payload.
    pub value: Vec<u8>,
}

impl Wire for Message {
    fn encode(&self, enc: &mut Encoder) {
        enc.bytes(&self.key);
        enc.bytes(&self.value);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Message { key: dec.bytes()?.to_vec(), value: dec.bytes()?.to_vec() })
    }
}

/// Offset-log entry: group `group` has consumed through `offset`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct OffsetCommit {
    offset: u64,
}

impl Wire for OffsetCommit {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.offset);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(OffsetCommit { offset: dec.varint()? })
    }
}

/// A topic: one message capsule plus one offset capsule per consumer group.
pub struct GdpStream<B: CapsuleAccess> {
    backend: B,
    owner: SigningKey,
    topic: Name,
    /// group name → offsets capsule.
    groups: HashMap<String, Name>,
}

impl<B: CapsuleAccess> GdpStream<B> {
    /// Creates a new topic.
    pub fn create(
        mut backend: B,
        owner: SigningKey,
        label: &str,
    ) -> Result<GdpStream<B>, CaapiError> {
        let (meta, writer) = new_capsule_spec(&owner, &format!("topic:{label}"));
        let topic = backend.create_capsule(meta, writer, PointerStrategy::SkipList)?;
        Ok(GdpStream { backend, owner, topic, groups: HashMap::new() })
    }

    /// The topic capsule name.
    pub fn topic(&self) -> Name {
        self.topic
    }

    /// Access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Publishes one message; returns its offset (= record seq).
    pub fn publish(&mut self, message: &Message) -> Result<u64, CaapiError> {
        self.backend.append(&self.topic, &message.to_wire())
    }

    /// Publishes a batch (pipelined on network backends).
    pub fn publish_batch(&mut self, messages: &[Message]) -> Result<u64, CaapiError> {
        let bodies: Vec<Vec<u8>> = messages.iter().map(|m| m.to_wire()).collect();
        self.backend.append_batch(&self.topic, &bodies)
    }

    /// Highest committed offset in the topic.
    pub fn high_watermark(&mut self) -> Result<u64, CaapiError> {
        self.backend.latest_seq(&self.topic)
    }

    fn group_capsule(&mut self, group: &str) -> Result<Name, CaapiError> {
        if let Some(n) = self.groups.get(group) {
            return Ok(*n);
        }
        let (meta, writer) =
            new_capsule_spec(&self.owner, &format!("offsets:{group}:{}", self.topic));
        let name = self.backend.create_capsule(meta, writer, PointerStrategy::Chain)?;
        self.groups.insert(group.to_string(), name);
        Ok(name)
    }

    /// The committed offset for a group (0 = nothing consumed).
    pub fn committed_offset(&mut self, group: &str) -> Result<u64, CaapiError> {
        let capsule = self.group_capsule(group)?;
        match self.backend.latest(&capsule)? {
            Some(r) => OffsetCommit::from_wire(&r.body)
                .map(|c| c.offset)
                .map_err(|_| CaapiError::Format("bad offset record".into())),
            None => Ok(0),
        }
    }

    /// Commits a group's offset (must not regress).
    pub fn commit_offset(&mut self, group: &str, offset: u64) -> Result<(), CaapiError> {
        let current = self.committed_offset(group)?;
        if offset < current {
            return Err(CaapiError::Conflict(format!(
                "offset {offset} regresses below committed {current}"
            )));
        }
        let capsule = self.group_capsule(group)?;
        self.backend.append(&capsule, &OffsetCommit { offset }.to_wire())?;
        Ok(())
    }

    /// Fetches up to `max` messages after the group's committed offset,
    /// WITHOUT committing (at-least-once delivery: commit after
    /// processing).
    pub fn poll(&mut self, group: &str, max: u64) -> Result<Vec<(u64, Message)>, CaapiError> {
        let from = self.committed_offset(group)? + 1;
        let hw = self.high_watermark()?;
        if from > hw {
            return Ok(Vec::new());
        }
        let to = (from + max - 1).min(hw);
        let records = self.backend.read_range(&self.topic, from, to)?;
        records
            .into_iter()
            .map(|r| {
                let m = Message::from_wire(&r.body)
                    .map_err(|_| CaapiError::Format("bad message record".into()))?;
                Ok((r.header.seq, m))
            })
            .collect()
    }

    /// Replays from an arbitrary historical offset regardless of commits —
    /// the paper's time-shift property.
    pub fn replay(
        &mut self,
        from_offset: u64,
        max: u64,
    ) -> Result<Vec<(u64, Message)>, CaapiError> {
        let hw = self.high_watermark()?;
        if from_offset > hw || from_offset == 0 {
            return Ok(Vec::new());
        }
        let to = (from_offset + max - 1).min(hw);
        self.backend
            .read_range(&self.topic, from_offset, to)?
            .into_iter()
            .map(|r| {
                let m = Message::from_wire(&r.body)
                    .map_err(|_| CaapiError::Format("bad message record".into()))?;
                Ok((r.header.seq, m))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;

    fn stream() -> GdpStream<LocalBackend> {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        GdpStream::create(LocalBackend::new(), owner, "events").unwrap()
    }

    fn msg(v: &str) -> Message {
        Message { key: Vec::new(), value: v.as_bytes().to_vec() }
    }

    #[test]
    fn publish_poll_commit_cycle() {
        let mut s = stream();
        for i in 0..10 {
            s.publish(&msg(&format!("m{i}"))).unwrap();
        }
        assert_eq!(s.high_watermark().unwrap(), 10);

        // First poll: everything from the start.
        let batch = s.poll("workers", 4).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].1.value, b"m0");
        // Without a commit, poll repeats (at-least-once).
        assert_eq!(s.poll("workers", 4).unwrap()[0].1.value, b"m0");
        // Commit, then poll advances.
        s.commit_offset("workers", 4).unwrap();
        let batch = s.poll("workers", 4).unwrap();
        assert_eq!(batch[0].1.value, b"m4");
    }

    #[test]
    fn independent_consumer_groups() {
        let mut s = stream();
        s.publish_batch(&[msg("a"), msg("b"), msg("c")]).unwrap();
        s.commit_offset("fast", 3).unwrap();
        assert!(s.poll("fast", 10).unwrap().is_empty());
        // The slow group still sees everything.
        assert_eq!(s.poll("slow", 10).unwrap().len(), 3);
        assert_eq!(s.committed_offset("slow").unwrap(), 0);
    }

    #[test]
    fn offsets_cannot_regress() {
        let mut s = stream();
        s.publish_batch(&[msg("a"), msg("b")]).unwrap();
        s.commit_offset("g", 2).unwrap();
        assert!(matches!(s.commit_offset("g", 1), Err(CaapiError::Conflict(_))));
        // Re-committing the same offset is fine (idempotent consumers).
        s.commit_offset("g", 2).unwrap();
    }

    #[test]
    fn replay_ignores_commits() {
        let mut s = stream();
        for i in 0..6 {
            s.publish(&msg(&format!("m{i}"))).unwrap();
        }
        s.commit_offset("g", 6).unwrap();
        // Time-shift: full history still replayable.
        let all = s.replay(1, 100).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(all[5].1.value, b"m5");
        let middle = s.replay(3, 2).unwrap();
        assert_eq!(middle.len(), 2);
        assert_eq!(middle[0].0, 3);
    }

    #[test]
    fn keys_roundtrip() {
        let mut s = stream();
        let m = Message { key: b"robot-7".to_vec(), value: b"pose".to_vec() };
        s.publish(&m).unwrap();
        let got = s.poll("g", 1).unwrap();
        assert_eq!(got[0].1, m);
    }

    #[test]
    fn empty_topic_behaviour() {
        let mut s = stream();
        assert_eq!(s.high_watermark().unwrap(), 0);
        assert!(s.poll("g", 5).unwrap().is_empty());
        assert!(s.replay(1, 5).unwrap().is_empty());
        assert_eq!(s.committed_offset("g").unwrap(), 0);
    }
}

//! Multi-writer support via a Paxos-backed commit service.
//!
//! Paper §V-A: "Multiple writers can be accommodated ... by using a
//! distributed commit service \\[Paxos\\] that accepts updates from multiple
//! writers, serializes them, and appends them to a DataCapsule ... such a
//! distributed commit service is the single writer, and represents a
//! separation of write decisions from durability responsibilities."
//!
//! This module implements single-decree Paxos per log slot (prepare /
//! promise / accept), and a [`CommitService`] that owns the capsule's
//! writer key: client submissions are serialized by Paxos agreement among
//! acceptors, then the chosen value of each slot is appended in order.

use crate::backend::{CaapiError, CapsuleAccess};
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};
use std::collections::HashMap;

/// A Paxos ballot: (round, proposer id), ordered lexicographically.
pub type Ballot = (u64, u64);

/// A submission from one of the multiple writers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Submission {
    /// Identifies the submitting writer (application-level).
    pub writer_id: u64,
    /// Opaque operation bytes.
    pub op: Vec<u8>,
}

impl Wire for Submission {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.writer_id);
        enc.bytes(&self.op);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Submission { writer_id: dec.varint()?, op: dec.bytes()?.to_vec() })
    }
}

/// Acceptor response to a prepare.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Promise {
    /// Whether the prepare was accepted (ballot high enough).
    pub ok: bool,
    /// The highest-ballot value already accepted for the slot, if any.
    pub accepted: Option<(Ballot, Vec<u8>)>,
}

/// One Paxos acceptor. Persistent in spirit; in-memory here (a real
/// deployment would back `promised`/`accepted` with a DataCapsule).
#[derive(Clone, Debug, Default)]
pub struct Acceptor {
    promised: HashMap<u64, Ballot>,
    accepted: HashMap<u64, (Ballot, Vec<u8>)>,
    /// Simulated crash: a down acceptor ignores all messages.
    pub down: bool,
}

impl Acceptor {
    /// Creates a fresh acceptor.
    pub fn new() -> Acceptor {
        Acceptor::default()
    }

    /// Phase 1: prepare(slot, ballot).
    pub fn prepare(&mut self, slot: u64, ballot: Ballot) -> Option<Promise> {
        if self.down {
            return None;
        }
        let promised = self.promised.entry(slot).or_insert((0, 0));
        if ballot >= *promised {
            *promised = ballot;
            Some(Promise { ok: true, accepted: self.accepted.get(&slot).cloned() })
        } else {
            Some(Promise { ok: false, accepted: None })
        }
    }

    /// Phase 2: accept(slot, ballot, value). Returns true when accepted.
    pub fn accept(&mut self, slot: u64, ballot: Ballot, value: &[u8]) -> Option<bool> {
        if self.down {
            return None;
        }
        let promised = self.promised.entry(slot).or_insert((0, 0));
        if ballot >= *promised {
            *promised = ballot;
            self.accepted.insert(slot, (ballot, value.to_vec()));
            Some(true)
        } else {
            Some(false)
        }
    }

    /// The accepted value for a slot (test introspection).
    pub fn accepted_value(&self, slot: u64) -> Option<&[u8]> {
        self.accepted.get(&slot).map(|(_, v)| v.as_slice())
    }
}

/// A Paxos proposer.
#[derive(Clone, Debug)]
pub struct Proposer {
    /// Unique proposer id (ballot tiebreaker).
    pub id: u64,
    round: u64,
}

/// Proposal errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PaxosError {
    /// Fewer than a majority of acceptors responded.
    NoQuorum,
    /// Lost the ballot race too many times.
    Contention,
}

impl Proposer {
    /// Creates a proposer.
    pub fn new(id: u64) -> Proposer {
        Proposer { id, round: 0 }
    }

    /// Runs Paxos for `slot`, proposing `value`. Returns the *chosen*
    /// value — which may be a previously accepted value from a competing
    /// proposer (the classic safety rule).
    pub fn propose(
        &mut self,
        acceptors: &mut [Acceptor],
        slot: u64,
        value: &[u8],
    ) -> Result<Vec<u8>, PaxosError> {
        let majority = acceptors.len() / 2 + 1;
        for _attempt in 0..16 {
            self.round += 1;
            let ballot: Ballot = (self.round, self.id);
            // Phase 1.
            let mut promises = Vec::new();
            for a in acceptors.iter_mut() {
                if let Some(p) = a.prepare(slot, ballot) {
                    promises.push(p);
                }
            }
            if promises.len() < majority {
                return Err(PaxosError::NoQuorum);
            }
            let granted = promises.iter().filter(|p| p.ok).count();
            if granted < majority {
                // Someone holds a higher ballot; bump round and retry.
                continue;
            }
            // Safety: adopt the highest-ballot already-accepted value.
            let adopted: Vec<u8> = promises
                .iter()
                .filter_map(|p| p.accepted.as_ref())
                .max_by_key(|(b, _)| *b)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| value.to_vec());
            // Phase 2.
            let mut acks = 0usize;
            let mut responded = 0usize;
            for a in acceptors.iter_mut() {
                match a.accept(slot, ballot, &adopted) {
                    Some(true) => {
                        acks += 1;
                        responded += 1;
                    }
                    Some(false) => responded += 1,
                    None => {}
                }
            }
            if responded < majority {
                return Err(PaxosError::NoQuorum);
            }
            if acks >= majority {
                return Ok(adopted);
            }
        }
        Err(PaxosError::Contention)
    }
}

/// The commit service: the capsule's single writer, fed by many
/// application writers through Paxos-ordered slots.
pub struct CommitService<B: CapsuleAccess> {
    backend: B,
    capsule: Name,
    proposer: Proposer,
    next_slot: u64,
}

impl<B: CapsuleAccess> CommitService<B> {
    /// Wraps an existing capsule (created via
    /// [`CapsuleAccess::create_capsule`]) as the commit target.
    pub fn new(backend: B, capsule: Name, proposer_id: u64) -> CommitService<B> {
        CommitService { backend, capsule, proposer: Proposer::new(proposer_id), next_slot: 1 }
    }

    /// The capsule receiving committed operations.
    pub fn capsule(&self) -> Name {
        self.capsule
    }

    /// Access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Commits one submission: agree on the next slot's value with the
    /// acceptors, then append the chosen value. Returns (slot, seq,
    /// chosen) — `chosen` may differ from `submission` under contention;
    /// callers must then resubmit.
    pub fn commit(
        &mut self,
        acceptors: &mut [Acceptor],
        submission: &Submission,
    ) -> Result<(u64, u64, Submission), CaapiError> {
        let slot = self.next_slot;
        let chosen_bytes = self
            .proposer
            .propose(acceptors, slot, &submission.to_wire())
            .map_err(|e| CaapiError::Transport(format!("paxos: {e:?}")))?;
        let chosen = Submission::from_wire(&chosen_bytes)
            .map_err(|_| CaapiError::Format("bad chosen value".into()))?;
        let seq = self.backend.append(&self.capsule, &chosen_bytes)?;
        self.next_slot += 1;
        Ok((slot, seq, chosen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{new_capsule_spec, LocalBackend};
    use gdp_capsule::PointerStrategy;
    use gdp_crypto::SigningKey;

    fn acceptors(n: usize) -> Vec<Acceptor> {
        (0..n).map(|_| Acceptor::new()).collect()
    }

    #[test]
    fn single_proposer_chooses_own_value() {
        let mut accs = acceptors(3);
        let mut p = Proposer::new(1);
        let chosen = p.propose(&mut accs, 1, b"hello").unwrap();
        assert_eq!(chosen, b"hello");
        // All live acceptors converge.
        for a in &accs {
            assert_eq!(a.accepted_value(1), Some(b"hello".as_slice()));
        }
    }

    #[test]
    fn second_proposer_adopts_chosen_value() {
        let mut accs = acceptors(3);
        let mut p1 = Proposer::new(1);
        let mut p2 = Proposer::new(2);
        let first = p1.propose(&mut accs, 1, b"from p1").unwrap();
        assert_eq!(first, b"from p1");
        // p2 proposes a different value for the same slot: safety demands
        // it learns and re-proposes p1's value.
        let second = p2.propose(&mut accs, 1, b"from p2").unwrap();
        assert_eq!(second, b"from p1");
    }

    #[test]
    fn survives_minority_failure() {
        let mut accs = acceptors(5);
        accs[0].down = true;
        accs[3].down = true;
        let mut p = Proposer::new(1);
        assert_eq!(p.propose(&mut accs, 1, b"v").unwrap(), b"v");
    }

    #[test]
    fn fails_without_quorum() {
        let mut accs = acceptors(3);
        accs[0].down = true;
        accs[1].down = true;
        let mut p = Proposer::new(1);
        assert_eq!(p.propose(&mut accs, 1, b"v"), Err(PaxosError::NoQuorum));
    }

    #[test]
    fn stale_ballot_rejected_then_retried() {
        let mut accs = acceptors(3);
        let mut p_low = Proposer::new(1);
        let mut p_high = Proposer::new(2);
        // p_high runs many rounds first, raising the promised ballot.
        for _ in 0..5 {
            let _ = p_high.propose(&mut accs, 2, b"x");
        }
        // p_low still succeeds for slot 2 by retrying with higher rounds,
        // but must adopt the already-chosen value.
        let chosen = p_low.propose(&mut accs, 2, b"y").unwrap();
        assert_eq!(chosen, b"x");
    }

    #[test]
    fn commit_service_orders_multi_writer_ops() {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let mut backend = LocalBackend::new();
        let (meta, writer) = new_capsule_spec(&owner, "multi-writer log");
        let capsule = backend.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        let mut svc = CommitService::new(backend, capsule, 1);
        let mut accs = acceptors(3);

        // Three application writers interleave.
        for (writer_id, op) in [(10u64, "a"), (20, "b"), (10, "c"), (30, "d")] {
            let sub = Submission { writer_id, op: op.as_bytes().to_vec() };
            let (_, _, chosen) = svc.commit(&mut accs, &sub).unwrap();
            assert_eq!(chosen, sub);
        }
        // The capsule holds all four ops in commit order.
        let b = svc.backend_mut();
        let records = b.read_range(&capsule, 1, 4).unwrap();
        let ops: Vec<String> = records
            .iter()
            .map(|r| {
                let s = Submission::from_wire(&r.body).unwrap();
                String::from_utf8(s.op).unwrap()
            })
            .collect();
        assert_eq!(ops, vec!["a", "b", "c", "d"]);
    }
}

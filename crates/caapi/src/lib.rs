//! # gdp-caapi
//!
//! Common Access APIs: richer interfaces layered on DataCapsules
//! (paper §V-B). "Because DataCapsule serves as the ground truth, the
//! benefit of integrity, confidentiality, and access control are easily
//! carried over to such interfaces."
//!
//! * [`fs`] — the TensorFlow-plugin-style filesystem (directory capsule +
//!   one capsule per file, chunked, versioned).
//! * [`kv`] — mutable key-value store over an op log with checkpoints.
//! * [`timeseries`] — sensor-style series with range queries and
//!   aggregation.
//! * [`commit`] — multi-writer support via a Paxos commit service
//!   (§V-A option (a)).
//! * [`aggregate`] — multi-writer support via subscription merge
//!   (§V-A option (b)).
//!
//! All CAAPIs run over any [`CapsuleAccess`] backend: in-process capsules
//! or the full simulated network stack (`gdp-sim`'s `SyncClient`).

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod backend;
pub mod commit;
pub mod encrypted;
pub mod fs;
pub mod kv;
pub mod stream;
pub mod timeseries;

pub use aggregate::{Aggregator, MergedRecord};
pub use backend::{new_capsule_spec, CaapiError, CapsuleAccess, LocalBackend};
pub use commit::{Acceptor, CommitService, PaxosError, Proposer, Submission};
pub use encrypted::EncryptedBackend;
pub use fs::GdpFs;
pub use kv::GdpKv;
pub use stream::{GdpStream, Message};
pub use timeseries::{Aggregates, GdpTimeSeries, Sample};

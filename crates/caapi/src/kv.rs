//! Key-value store CAAPI.
//!
//! "DataCapsules are sufficient to implement any convenient, mutable data
//! storage repository" (paper §V-B). The KV store is a log of Put/Delete
//! operations with periodic checkpoint records (a full state snapshot), so
//! a fresh reader recovers in O(checkpoint + tail) instead of O(history).

use crate::backend::{new_capsule_spec, CaapiError, CapsuleAccess};
use gdp_capsule::PointerStrategy;
use gdp_crypto::SigningKey;
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};
use std::collections::BTreeMap;

/// One KV log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
enum KvOp {
    /// Set `key` to `value`.
    Put { key: String, value: Vec<u8> },
    /// Remove `key`.
    Delete { key: String },
    /// Full-state snapshot (sorted pairs).
    Checkpoint { pairs: Vec<(String, Vec<u8>)> },
}

impl Wire for KvOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            KvOp::Put { key, value } => {
                enc.u8(0);
                enc.string(key);
                enc.bytes(value);
            }
            KvOp::Delete { key } => {
                enc.u8(1);
                enc.string(key);
            }
            KvOp::Checkpoint { pairs } => {
                enc.u8(2);
                enc.seq(pairs, |e, (k, v)| {
                    e.string(k);
                    e.bytes(v);
                });
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.u8()? {
            0 => KvOp::Put { key: dec.string()?, value: dec.bytes()?.to_vec() },
            1 => KvOp::Delete { key: dec.string()? },
            2 => KvOp::Checkpoint {
                pairs: dec.seq(|d| {
                    let k = d.string()?;
                    let v = d.bytes()?.to_vec();
                    Ok((k, v))
                })?,
            },
            t => return Err(DecodeError::BadTag(t as u64)),
        })
    }
}

/// A capsule-backed key-value store.
pub struct GdpKv<B: CapsuleAccess> {
    backend: B,
    capsule: Name,
    state: BTreeMap<String, Vec<u8>>,
    cursor: u64,
    ops_since_checkpoint: u64,
    /// Write a checkpoint record after this many mutations.
    pub checkpoint_interval: u64,
}

impl<B: CapsuleAccess> GdpKv<B> {
    /// Creates a fresh store.
    pub fn create(mut backend: B, owner: &SigningKey) -> Result<GdpKv<B>, CaapiError> {
        let (meta, writer) = new_capsule_spec(owner, "gdp-kv");
        let capsule =
            backend.create_capsule(meta, writer, PointerStrategy::Checkpoint { interval: 32 })?;
        Ok(GdpKv {
            backend,
            capsule,
            state: BTreeMap::new(),
            cursor: 0,
            ops_since_checkpoint: 0,
            checkpoint_interval: 64,
        })
    }

    /// The backing capsule name.
    pub fn capsule(&self) -> Name {
        self.capsule
    }

    /// Replays new log records into the local state. A recovery from
    /// scratch scans backward for the latest checkpoint first.
    pub fn refresh(&mut self) -> Result<(), CaapiError> {
        let latest = self.backend.latest_seq(&self.capsule)?;
        if latest <= self.cursor {
            return Ok(());
        }
        let mut start = self.cursor + 1;
        if self.cursor == 0 && latest > 0 {
            // Fresh recovery: find the newest checkpoint by scanning
            // backward; stop at the first one.
            let records = self.backend.read_range(&self.capsule, 1, latest)?;
            let mut checkpoint_at = None;
            for r in records.iter().rev() {
                if let Ok(KvOp::Checkpoint { pairs }) = KvOp::from_wire(&r.body) {
                    self.state = pairs.into_iter().collect();
                    checkpoint_at = Some(r.header.seq);
                    break;
                }
            }
            if let Some(cp) = checkpoint_at {
                start = cp + 1;
            }
        }
        if start <= latest {
            for r in self.backend.read_range(&self.capsule, start, latest)? {
                match KvOp::from_wire(&r.body) {
                    Ok(KvOp::Put { key, value }) => {
                        self.state.insert(key, value);
                    }
                    Ok(KvOp::Delete { key }) => {
                        self.state.remove(&key);
                    }
                    Ok(KvOp::Checkpoint { pairs }) => {
                        self.state = pairs.into_iter().collect();
                    }
                    Err(_) => return Err(CaapiError::Format("bad kv record".into())),
                }
            }
        }
        self.cursor = latest;
        Ok(())
    }

    fn mutate(&mut self, op: KvOp) -> Result<(), CaapiError> {
        self.backend.append(&self.capsule, &op.to_wire())?;
        self.cursor += 1;
        self.ops_since_checkpoint += 1;
        if self.ops_since_checkpoint >= self.checkpoint_interval {
            let pairs: Vec<(String, Vec<u8>)> =
                self.state.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            self.backend.append(&self.capsule, &KvOp::Checkpoint { pairs }.to_wire())?;
            self.cursor += 1;
            self.ops_since_checkpoint = 0;
        }
        Ok(())
    }

    /// Sets a key.
    pub fn put(&mut self, key: &str, value: &[u8]) -> Result<(), CaapiError> {
        self.refresh()?;
        self.state.insert(key.to_string(), value.to_vec());
        self.mutate(KvOp::Put { key: key.to_string(), value: value.to_vec() })
    }

    /// Reads a key.
    pub fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, CaapiError> {
        self.refresh()?;
        Ok(self.state.get(key).cloned())
    }

    /// Deletes a key (no-op if absent).
    pub fn delete(&mut self, key: &str) -> Result<(), CaapiError> {
        self.refresh()?;
        self.state.remove(key);
        self.mutate(KvOp::Delete { key: key.to_string() })
    }

    /// All keys, sorted.
    pub fn keys(&mut self) -> Result<Vec<String>, CaapiError> {
        self.refresh()?;
        Ok(self.state.keys().cloned().collect())
    }

    /// Number of live keys.
    pub fn len(&mut self) -> Result<usize, CaapiError> {
        self.refresh()?;
        Ok(self.state.len())
    }

    /// True when no keys exist.
    pub fn is_empty(&mut self) -> Result<bool, CaapiError> {
        Ok(self.len()? == 0)
    }

    /// Drops local state and replays from the log (crash-recovery path).
    pub fn recover(&mut self) -> Result<(), CaapiError> {
        self.state.clear();
        self.cursor = 0;
        self.refresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;

    fn kv() -> GdpKv<LocalBackend> {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        GdpKv::create(LocalBackend::new(), &owner).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let mut kv = kv();
        kv.put("alpha", b"1").unwrap();
        kv.put("beta", b"2").unwrap();
        assert_eq!(kv.get("alpha").unwrap(), Some(b"1".to_vec()));
        kv.put("alpha", b"updated").unwrap();
        assert_eq!(kv.get("alpha").unwrap(), Some(b"updated".to_vec()));
        kv.delete("alpha").unwrap();
        assert_eq!(kv.get("alpha").unwrap(), None);
        assert_eq!(kv.keys().unwrap(), vec!["beta".to_string()]);
    }

    #[test]
    fn recovery_replays_log() {
        let mut kv = kv();
        for i in 0..20 {
            kv.put(&format!("k{i}"), format!("v{i}").as_bytes()).unwrap();
        }
        kv.delete("k3").unwrap();
        kv.recover().unwrap();
        assert_eq!(kv.len().unwrap(), 19);
        assert_eq!(kv.get("k7").unwrap(), Some(b"v7".to_vec()));
        assert_eq!(kv.get("k3").unwrap(), None);
    }

    #[test]
    fn checkpoints_bound_recovery() {
        let mut kv = kv();
        kv.checkpoint_interval = 10;
        for i in 0..35 {
            kv.put(&format!("k{}", i % 5), &[i as u8]).unwrap();
        }
        // 35 mutations with interval 10 → at least 3 checkpoints in the log.
        kv.recover().unwrap();
        assert_eq!(kv.len().unwrap(), 5);
        assert_eq!(kv.get("k4").unwrap(), Some(vec![34u8]));
    }

    #[test]
    fn empty_store() {
        let mut kv = kv();
        assert!(kv.is_empty().unwrap());
        assert_eq!(kv.get("nope").unwrap(), None);
    }
}

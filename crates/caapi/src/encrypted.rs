//! Transparent end-to-end encryption for any backend.
//!
//! "Read access control is maintained by selective sharing of decryption
//! keys" (paper §V) and "encryption provides the final level of defense in
//! the case when the entire infrastructure is compromised" (§V fn. 7).
//! [`EncryptedBackend`] wraps any [`CapsuleAccess`] and seals every body
//! with the capsule's [`ReadKey`] before it leaves the client, opening on
//! the way back — so every CAAPI (filesystem, KV, time series) becomes
//! confidential without changing a line.

use crate::backend::{CaapiError, CapsuleAccess};
use gdp_capsule::{CapsuleMetadata, PointerStrategy, ReadKey, Record};
use gdp_crypto::SigningKey;
use gdp_wire::Name;
use std::collections::HashMap;

/// A backend decorator sealing/opening bodies with per-capsule read keys.
pub struct EncryptedBackend<B: CapsuleAccess> {
    inner: B,
    keys: HashMap<Name, ReadKey>,
}

impl<B: CapsuleAccess> EncryptedBackend<B> {
    /// Wraps `inner`; capsules created through this wrapper get fresh
    /// random read keys.
    pub fn new(inner: B) -> EncryptedBackend<B> {
        EncryptedBackend { inner, keys: HashMap::new() }
    }

    /// Grants this client the read key for an existing capsule (the
    /// "selective sharing" step, done out of band by the owner).
    pub fn grant(&mut self, capsule: Name, key: ReadKey) {
        self.keys.insert(capsule, key);
    }

    /// Exports a capsule's read key for sharing with another reader.
    pub fn read_key(&self, capsule: &Name) -> Option<&ReadKey> {
        self.keys.get(capsule)
    }

    /// Access to the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    fn key_for(&self, capsule: &Name) -> Result<&ReadKey, CaapiError> {
        self.keys
            .get(capsule)
            .ok_or_else(|| CaapiError::Conflict(format!("no read key for {capsule}")))
    }

    fn open_record(&self, capsule: &Name, mut record: Record) -> Result<Record, CaapiError> {
        let key = self.key_for(capsule)?;
        record.body = key
            .open(capsule, record.header.seq, &record.body)
            .map_err(|_| CaapiError::Format("body decryption failed".into()))?
            .into();
        Ok(record)
    }
}

impl<B: CapsuleAccess> CapsuleAccess for EncryptedBackend<B> {
    fn create_capsule(
        &mut self,
        metadata: CapsuleMetadata,
        writer: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<Name, CaapiError> {
        let name = self.inner.create_capsule(metadata, writer, strategy)?;
        self.keys.insert(name, ReadKey::generate());
        Ok(name)
    }

    fn append(&mut self, capsule: &Name, body: &[u8]) -> Result<u64, CaapiError> {
        // Seal against the sequence number the record will occupy.
        let next = self.inner.latest_seq(capsule)? + 1;
        let sealed = self.key_for(capsule)?.seal(capsule, next, body);
        self.inner.append(capsule, &sealed)
    }

    fn append_batch(&mut self, capsule: &Name, bodies: &[Vec<u8>]) -> Result<u64, CaapiError> {
        let mut next = self.inner.latest_seq(capsule)? + 1;
        let key = self.key_for(capsule)?;
        let sealed: Vec<Vec<u8>> = bodies
            .iter()
            .map(|b| {
                let s = key.seal(capsule, next, b);
                next += 1;
                s
            })
            .collect();
        self.inner.append_batch(capsule, &sealed)
    }

    fn read(&mut self, capsule: &Name, seq: u64) -> Result<Record, CaapiError> {
        let record = self.inner.read(capsule, seq)?;
        self.open_record(capsule, record)
    }

    fn read_range(
        &mut self,
        capsule: &Name,
        from: u64,
        to: u64,
    ) -> Result<Vec<Record>, CaapiError> {
        self.inner
            .read_range(capsule, from, to)?
            .into_iter()
            .map(|r| self.open_record(capsule, r))
            .collect()
    }

    fn latest(&mut self, capsule: &Name) -> Result<Option<Record>, CaapiError> {
        match self.inner.latest(capsule)? {
            Some(r) => Ok(Some(self.open_record(capsule, r)?)),
            None => Ok(None),
        }
    }

    fn latest_seq(&mut self, capsule: &Name) -> Result<u64, CaapiError> {
        self.inner.latest_seq(capsule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{new_capsule_spec, LocalBackend};
    use crate::fs::GdpFs;
    use crate::kv::GdpKv;

    fn owner() -> SigningKey {
        SigningKey::from_seed(&[1u8; 32])
    }

    #[test]
    fn sealed_on_the_wire_plain_at_the_api() {
        let mut b = EncryptedBackend::new(LocalBackend::new());
        let (meta, writer) = new_capsule_spec(&owner(), "secret log");
        let capsule = b.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        b.append(&capsule, b"plaintext secret").unwrap();
        // The API returns plaintext…
        assert_eq!(b.read(&capsule, 1).unwrap().body, b"plaintext secret");
        // …but what the infrastructure stores is ciphertext.
        let stored = b.inner_mut().capsule(&capsule).unwrap().get_one(1).unwrap();
        assert_ne!(stored.body, b"plaintext secret".to_vec());
        assert!(stored.body.len() > 16); // includes the AEAD tag
    }

    #[test]
    fn no_key_no_read() {
        let mut writer_side = EncryptedBackend::new(LocalBackend::new());
        let (meta, writer) = new_capsule_spec(&owner(), "private");
        let capsule = writer_side.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        writer_side.append(&capsule, b"for members only").unwrap();
        // A reader without the key fails; with the granted key succeeds.
        let key = writer_side.read_key(&capsule).unwrap().clone();
        let no_key = EncryptedBackend::new(LocalBackend::new());
        assert!(no_key.key_for(&capsule).is_err());
        let mut granted = writer_side;
        granted.grant(capsule, key);
        assert_eq!(granted.read(&capsule, 1).unwrap().body, b"for members only");
    }

    #[test]
    fn encrypted_filesystem_works_unchanged() {
        let backend = EncryptedBackend::new(LocalBackend::new());
        let mut fs = GdpFs::format(backend, owner()).unwrap();
        fs.write_file("secret.txt", b"classified contents").unwrap();
        assert_eq!(fs.read_file("secret.txt").unwrap(), b"classified contents");
        // The stored chunk bodies are ciphertext.
        let file_capsule = fs.file_capsule("secret.txt").unwrap();
        let stored = fs
            .backend_mut()
            .inner_mut()
            .capsule(&file_capsule)
            .unwrap()
            .get_one(1)
            .unwrap()
            .clone();
        assert!(!stored.body.windows(10).any(|w| w == b"classified".as_slice()));
    }

    #[test]
    fn encrypted_kv_works_unchanged() {
        let backend = EncryptedBackend::new(LocalBackend::new());
        let mut kv = GdpKv::create(backend, &owner()).unwrap();
        kv.put("pin", b"1234").unwrap();
        assert_eq!(kv.get("pin").unwrap(), Some(b"1234".to_vec()));
        kv.recover().unwrap();
        assert_eq!(kv.get("pin").unwrap(), Some(b"1234".to_vec()));
    }

    #[test]
    fn batch_append_seals_per_seq() {
        let mut b = EncryptedBackend::new(LocalBackend::new());
        let (meta, writer) = new_capsule_spec(&owner(), "batch");
        let capsule = b.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        let bodies = vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()];
        b.append_batch(&capsule, &bodies).unwrap();
        assert_eq!(b.read(&capsule, 2).unwrap().body, b"two");
        assert_eq!(b.read_range(&capsule, 1, 3).unwrap()[2].body, b"three");
    }
}

//! The capsule-access abstraction CAAPIs are built on.
//!
//! "The DataCapsule-interface is rather open to system integrators and they
//! can put together an interface of their choice that uses these
//! DataCapsules underneath" (paper §V-B). A [`CapsuleAccess`] backend is
//! that underneath: append/read/latest against capsules by flat name. Two
//! implementations exist:
//!
//! * [`LocalBackend`] — in-process capsules (tests, embedded use);
//! * `gdp_sim::SyncClient` — the same operations driven through the full
//!   client → router → server stack on the simulator.

use gdp_capsule::{
    CapsuleError, CapsuleMetadata, CapsuleWriter, DataCapsule, PointerStrategy, Record,
};
use gdp_crypto::SigningKey;
use gdp_wire::Name;
use std::collections::HashMap;

/// Errors surfaced by CAAPIs.
#[derive(Debug)]
pub enum CaapiError {
    /// The capsule layer rejected the operation.
    Capsule(CapsuleError),
    /// The named capsule is unknown to the backend.
    UnknownCapsule(Name),
    /// A read returned no data.
    NotFound(String),
    /// The stored bytes did not parse as the CAAPI's record format.
    Format(String),
    /// The backend transport failed (timeout, unreachable, rejected).
    Transport(String),
    /// The operation conflicts with CAAPI invariants (e.g. duplicate key
    /// in a create-exclusive).
    Conflict(String),
}

impl std::fmt::Display for CaapiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaapiError::Capsule(e) => write!(f, "capsule error: {e}"),
            CaapiError::UnknownCapsule(n) => write!(f, "unknown capsule {n}"),
            CaapiError::NotFound(w) => write!(f, "not found: {w}"),
            CaapiError::Format(w) => write!(f, "format error: {w}"),
            CaapiError::Transport(w) => write!(f, "transport error: {w}"),
            CaapiError::Conflict(w) => write!(f, "conflict: {w}"),
        }
    }
}

impl std::error::Error for CaapiError {}

impl From<CapsuleError> for CaapiError {
    fn from(e: CapsuleError) -> Self {
        CaapiError::Capsule(e)
    }
}

/// Backend operations every CAAPI builds on.
pub trait CapsuleAccess {
    /// Creates a new capsule whose single writer this backend controls.
    /// Returns the capsule name.
    fn create_capsule(
        &mut self,
        metadata: CapsuleMetadata,
        writer: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<Name, CaapiError>;

    /// Appends a record body; returns the assigned sequence number.
    fn append(&mut self, capsule: &Name, body: &[u8]) -> Result<u64, CaapiError>;

    /// Appends several bodies; returns the last assigned sequence number.
    /// Backends with a network path override this to pipeline the appends
    /// (the single writer needs no round trip between records — §V-A:
    /// "the writer can make progress while the DataCapsule-server
    /// propagates the new updates ... in the background").
    fn append_batch(&mut self, capsule: &Name, bodies: &[Vec<u8>]) -> Result<u64, CaapiError> {
        let mut last = 0;
        for body in bodies {
            last = self.append(capsule, body)?;
        }
        Ok(last)
    }

    /// Reads one record by sequence number (verified).
    fn read(&mut self, capsule: &Name, seq: u64) -> Result<Record, CaapiError>;

    /// Reads an inclusive range (verified, oldest first).
    fn read_range(&mut self, capsule: &Name, from: u64, to: u64)
        -> Result<Vec<Record>, CaapiError>;

    /// The newest record, or `None` when empty.
    fn latest(&mut self, capsule: &Name) -> Result<Option<Record>, CaapiError>;

    /// Highest sequence number (0 when empty).
    fn latest_seq(&mut self, capsule: &Name) -> Result<u64, CaapiError> {
        Ok(self.latest(capsule)?.map(|r| r.header.seq).unwrap_or(0))
    }
}

struct LocalEntry {
    capsule: DataCapsule,
    writer: CapsuleWriter,
    clock: u64,
}

/// In-process backend: capsules live in memory, appends are immediate.
#[derive(Default)]
pub struct LocalBackend {
    entries: HashMap<Name, LocalEntry>,
}

impl LocalBackend {
    /// Creates an empty backend.
    pub fn new() -> LocalBackend {
        LocalBackend::default()
    }

    /// Direct read access to a capsule (test introspection).
    pub fn capsule(&self, name: &Name) -> Option<&DataCapsule> {
        self.entries.get(name).map(|e| &e.capsule)
    }
}

impl CapsuleAccess for LocalBackend {
    fn create_capsule(
        &mut self,
        metadata: CapsuleMetadata,
        writer: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<Name, CaapiError> {
        let name = metadata.name();
        let capsule = DataCapsule::new(metadata.clone())?;
        let writer = CapsuleWriter::new(&metadata, writer, strategy)?;
        self.entries.insert(name, LocalEntry { capsule, writer, clock: 0 });
        Ok(name)
    }

    fn append(&mut self, capsule: &Name, body: &[u8]) -> Result<u64, CaapiError> {
        let entry = self.entries.get_mut(capsule).ok_or(CaapiError::UnknownCapsule(*capsule))?;
        entry.clock += 1;
        let record = entry.writer.append(body, entry.clock)?;
        let seq = record.header.seq;
        entry.capsule.ingest(record)?;
        Ok(seq)
    }

    fn read(&mut self, capsule: &Name, seq: u64) -> Result<Record, CaapiError> {
        let entry = self.entries.get(capsule).ok_or(CaapiError::UnknownCapsule(*capsule))?;
        Ok(entry.capsule.get_one(seq)?.clone())
    }

    fn read_range(
        &mut self,
        capsule: &Name,
        from: u64,
        to: u64,
    ) -> Result<Vec<Record>, CaapiError> {
        let entry = self.entries.get(capsule).ok_or(CaapiError::UnknownCapsule(*capsule))?;
        Ok(entry.capsule.range(from, to).into_iter().cloned().collect())
    }

    fn latest(&mut self, capsule: &Name) -> Result<Option<Record>, CaapiError> {
        let entry = self.entries.get(capsule).ok_or(CaapiError::UnknownCapsule(*capsule))?;
        Ok(entry.capsule.single_head()?.cloned())
    }
}

/// Helper: builds capsule metadata + a fresh writer key for a CAAPI-managed
/// capsule, signed by `owner`.
pub fn new_capsule_spec(owner: &SigningKey, description: &str) -> (CapsuleMetadata, SigningKey) {
    let writer = SigningKey::from_seed(&gdp_crypto::random_array32());
    let metadata = gdp_capsule::MetadataBuilder::new()
        .writer(&writer.verifying_key())
        .set_str(gdp_capsule::metadata::KEY_DESCRIPTION, description)
        .sign(owner);
    (metadata, writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_backend_roundtrip() {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let mut backend = LocalBackend::new();
        let (meta, writer) = new_capsule_spec(&owner, "test");
        let name = backend.create_capsule(meta, writer, PointerStrategy::Chain).unwrap();
        assert_eq!(backend.append(&name, b"one").unwrap(), 1);
        assert_eq!(backend.append(&name, b"two").unwrap(), 2);
        assert_eq!(backend.read(&name, 1).unwrap().body, b"one");
        assert_eq!(backend.latest(&name).unwrap().unwrap().header.seq, 2);
        assert_eq!(backend.read_range(&name, 1, 2).unwrap().len(), 2);
        assert_eq!(backend.latest_seq(&name).unwrap(), 2);
    }

    #[test]
    fn unknown_capsule_errors() {
        let mut backend = LocalBackend::new();
        let ghost = Name::from_content(b"ghost");
        assert!(matches!(backend.append(&ghost, b"x"), Err(CaapiError::UnknownCapsule(_))));
        assert!(backend.read(&ghost, 1).is_err());
    }
}

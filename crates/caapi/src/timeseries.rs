//! Time-series CAAPI.
//!
//! The paper's running IoT example: "a DataCapsule could be used to store
//! ... time-series data representing ambient temperature" (§IV-A), and the
//! prototype's first applications were "time-series environmental sensors"
//! (§VIII). Samples are appended in timestamp order (the single writer is
//! the point of serialization), so time-range queries binary-search on
//! record timestamps.

use crate::backend::{new_capsule_spec, CaapiError, CapsuleAccess};
use gdp_capsule::PointerStrategy;
use gdp_crypto::SigningKey;
use gdp_wire::{DecodeError, Decoder, Encoder, Name, Wire};

/// One sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Timestamp, microseconds since epoch (must be non-decreasing).
    pub timestamp_micros: u64,
    /// The measured value.
    pub value: f64,
}

impl Wire for Sample {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.timestamp_micros);
        enc.u64(self.value.to_bits());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Sample { timestamp_micros: dec.varint()?, value: f64::from_bits(dec.u64()?) })
    }
}

/// Aggregate statistics over a queried window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregates {
    /// Number of samples.
    pub count: u64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// A capsule-backed time series.
pub struct GdpTimeSeries<B: CapsuleAccess> {
    backend: B,
    capsule: Name,
    last_ts: u64,
}

impl<B: CapsuleAccess> GdpTimeSeries<B> {
    /// Creates a fresh series. Stream pointers let readers bridge small
    /// losses (the paper's video/stream strategy applies to lossy sensor
    /// feeds too).
    pub fn create(
        mut backend: B,
        owner: &SigningKey,
        description: &str,
    ) -> Result<GdpTimeSeries<B>, CaapiError> {
        let (meta, writer) = new_capsule_spec(owner, description);
        let capsule =
            backend.create_capsule(meta, writer, PointerStrategy::Stream { lags: vec![2, 4] })?;
        Ok(GdpTimeSeries { backend, capsule, last_ts: 0 })
    }

    /// The backing capsule.
    pub fn capsule(&self) -> Name {
        self.capsule
    }

    /// Access to the backend (e.g. to subscribe via the network layer).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Appends a sample; timestamps must be non-decreasing.
    pub fn record(&mut self, sample: Sample) -> Result<u64, CaapiError> {
        if sample.timestamp_micros < self.last_ts {
            return Err(CaapiError::Conflict(format!(
                "timestamp {} < previous {}",
                sample.timestamp_micros, self.last_ts
            )));
        }
        self.last_ts = sample.timestamp_micros;
        self.backend.append(&self.capsule, &sample.to_wire())
    }

    fn sample_at(&mut self, seq: u64) -> Result<Sample, CaapiError> {
        let r = self.backend.read(&self.capsule, seq)?;
        Sample::from_wire(&r.body).map_err(|_| CaapiError::Format("bad sample".into()))
    }

    /// First seq with timestamp ≥ `ts` (binary search; None when all are
    /// older).
    fn lower_bound(&mut self, ts: u64, latest: u64) -> Result<Option<u64>, CaapiError> {
        if latest == 0 {
            return Ok(None);
        }
        let (mut lo, mut hi) = (1u64, latest);
        if self.sample_at(latest)?.timestamp_micros < ts {
            return Ok(None);
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.sample_at(mid)?.timestamp_micros < ts {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo))
    }

    /// Samples with timestamps in `[from_ts, to_ts]`, in order.
    pub fn query(&mut self, from_ts: u64, to_ts: u64) -> Result<Vec<Sample>, CaapiError> {
        let latest = self.backend.latest_seq(&self.capsule)?;
        let Some(start) = self.lower_bound(from_ts, latest)? else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for r in self.backend.read_range(&self.capsule, start, latest)? {
            let s =
                Sample::from_wire(&r.body).map_err(|_| CaapiError::Format("bad sample".into()))?;
            if s.timestamp_micros > to_ts {
                break;
            }
            out.push(s);
        }
        Ok(out)
    }

    /// Aggregates over `[from_ts, to_ts]`; `None` when the window is empty.
    pub fn aggregate(
        &mut self,
        from_ts: u64,
        to_ts: u64,
    ) -> Result<Option<Aggregates>, CaapiError> {
        let samples = self.query(from_ts, to_ts)?;
        if samples.is_empty() {
            return Ok(None);
        }
        let count = samples.len() as u64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for s in &samples {
            min = min.min(s.value);
            max = max.max(s.value);
            sum += s.value;
        }
        Ok(Some(Aggregates { count, min, max, mean: sum / count as f64 }))
    }

    /// The most recent sample.
    pub fn latest_sample(&mut self) -> Result<Option<Sample>, CaapiError> {
        match self.backend.latest(&self.capsule)? {
            Some(r) => Ok(Some(
                Sample::from_wire(&r.body).map_err(|_| CaapiError::Format("bad sample".into()))?,
            )),
            None => Ok(None),
        }
    }

    /// Fixed-width window means over `[from_ts, to_ts)` — one value per
    /// `width` µs bucket (useful for downsampled visualization, the
    /// paper's §VIII "visualization of time-series data" application).
    pub fn downsample(
        &mut self,
        from_ts: u64,
        to_ts: u64,
        width: u64,
    ) -> Result<Vec<(u64, f64)>, CaapiError> {
        if width == 0 {
            return Err(CaapiError::Conflict("zero window width".into()));
        }
        let samples = self.query(from_ts, to_ts.saturating_sub(1))?;
        let mut out: Vec<(u64, f64)> = Vec::new();
        let mut bucket_start = from_ts;
        let mut acc = 0.0;
        let mut n = 0u64;
        for s in samples {
            while s.timestamp_micros >= bucket_start + width {
                if n > 0 {
                    out.push((bucket_start, acc / n as f64));
                }
                bucket_start += width;
                acc = 0.0;
                n = 0;
            }
            acc += s.value;
            n += 1;
        }
        if n > 0 {
            out.push((bucket_start, acc / n as f64));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;

    fn series() -> GdpTimeSeries<LocalBackend> {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        GdpTimeSeries::create(LocalBackend::new(), &owner, "temp").unwrap()
    }

    fn fill(ts: &mut GdpTimeSeries<LocalBackend>, n: u64) {
        for i in 0..n {
            ts.record(Sample { timestamp_micros: i * 1000, value: (i as f64).sin() }).unwrap();
        }
    }

    #[test]
    fn record_and_query() {
        let mut ts = series();
        fill(&mut ts, 100);
        let window = ts.query(10_000, 19_999).unwrap();
        assert_eq!(window.len(), 10);
        assert_eq!(window[0].timestamp_micros, 10_000);
        assert_eq!(window[9].timestamp_micros, 19_000);
    }

    #[test]
    fn rejects_time_regression() {
        let mut ts = series();
        ts.record(Sample { timestamp_micros: 100, value: 1.0 }).unwrap();
        assert!(ts.record(Sample { timestamp_micros: 50, value: 2.0 }).is_err());
        // Equal timestamps allowed.
        ts.record(Sample { timestamp_micros: 100, value: 3.0 }).unwrap();
    }

    #[test]
    fn aggregates() {
        let mut ts = series();
        for (t, v) in [(0u64, 1.0), (1000, 5.0), (2000, 3.0)] {
            ts.record(Sample { timestamp_micros: t, value: v }).unwrap();
        }
        let agg = ts.aggregate(0, 2000).unwrap().unwrap();
        assert_eq!(agg.count, 3);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 5.0);
        assert!((agg.mean - 3.0).abs() < 1e-9);
        assert!(ts.aggregate(10_000, 20_000).unwrap().is_none());
    }

    #[test]
    fn query_empty_and_out_of_range() {
        let mut ts = series();
        assert!(ts.query(0, 100).unwrap().is_empty());
        fill(&mut ts, 5);
        assert!(ts.query(1_000_000, 2_000_000).unwrap().is_empty());
    }

    #[test]
    fn latest() {
        let mut ts = series();
        assert!(ts.latest_sample().unwrap().is_none());
        fill(&mut ts, 3);
        assert_eq!(ts.latest_sample().unwrap().unwrap().timestamp_micros, 2000);
    }

    #[test]
    fn downsampling() {
        let mut ts = series();
        for i in 0..10u64 {
            ts.record(Sample { timestamp_micros: i * 500, value: i as f64 }).unwrap();
        }
        // Buckets of 1000 µs: pairs (0,1), (2,3), ...
        let buckets = ts.downsample(0, 5000, 1000).unwrap();
        assert_eq!(buckets.len(), 5);
        assert!((buckets[0].1 - 0.5).abs() < 1e-9);
        assert!((buckets[1].1 - 2.5).abs() < 1e-9);
    }
}

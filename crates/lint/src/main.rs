//! `gdp-lint` — the workspace-invariant static analyzer CLI.
//!
//! ```text
//! gdp-lint [--root DIR] [--format text|json] [PATH ...]
//! ```
//!
//! With no `PATH` arguments the default production scan runs: every
//! `.rs` file under `<root>/crates` and `<root>/src`, filtered to crate
//! sources (shims, `tests/` trees, and the lint fixture corpus are
//! excluded). Explicit `PATH` arguments disable the filter and scan
//! every `.rs` file they contain — that is how the fixture tests drive
//! the binary at its own corpus.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use gdp_lint::{engine, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!("gdp-lint: --format expects `text` or `json`, got `{got}`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("gdp-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: gdp-lint [--root DIR] [--format text|json] [PATH ...]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("gdp-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let default_scan = paths.is_empty();
    if default_scan {
        for dir in ["crates", "src"] {
            let p = root.join(dir);
            if p.is_dir() {
                paths.push(p);
            }
        }
        if paths.is_empty() {
            eprintln!("gdp-lint: nothing to scan under {}", root.display());
            return ExitCode::from(2);
        }
    }

    let report = match engine::lint_paths(&root, &paths, &LintConfig::default(), default_scan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gdp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => print!("{}", gdp_lint::report::text(&report)),
        Format::Json => print!("{}", gdp_lint::report::json(&report)),
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Text,
    Json,
}

//! The analysis engine: loads files, computes test-region masks, applies
//! `// gdp-lint: allow(...)` suppressions, and drives the rules.

use crate::lexer::{self, Comment, StrLit, Tok};
use crate::rules;
use crate::{Finding, LintConfig, Report, Suppressed};
use std::path::{Path, PathBuf};

/// One parsed source file, ready for rules.
pub struct SourceFile {
    /// Workspace-relative path, normalized to `/` separators.
    pub path: String,
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comment side table.
    pub comments: Vec<Comment>,
    /// String-literal side table (contents never enter `tokens`).
    pub strings: Vec<StrLit>,
    /// Per-token flag: true when the token sits inside `#[cfg(test)]` /
    /// `#[test]` items (rules that police production code skip these).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Parses a file from source text.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let in_test = test_mask(&lexed.tokens);
        SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            strings: lexed.strings,
            in_test,
        }
    }

    /// True when the file has a comment containing `needle` on `line`.
    pub fn comment_on_line_contains(&self, line: usize, needle: &str) -> bool {
        self.comments.iter().any(|c| c.line == line && c.text.contains(needle))
    }
}

/// Marks tokens under `#[test]`- or `#[cfg(test)]`-attributed items.
///
/// The walk is token-based: when an attribute whose content mentions
/// `test` is found, the following item's body (the brace block after the
/// item header) is masked. Attribute stacks are handled; `mod tests;`
/// declarations (no body) are not masked — out-of-line test modules live
/// in `tests/` directories, which the workspace scan skips entirely.
fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (attr_end, is_test) = scan_attribute(tokens, i);
            if is_test {
                if let Some((body_start, body_end)) = item_body_after(tokens, attr_end) {
                    for flag in mask.iter_mut().take(body_end + 1).skip(i) {
                        *flag = true;
                    }
                    i = body_start; // nested attributes inside are moot
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans `#[...]` starting at `at` (the `#`). Returns the index one past
/// the closing `]` and whether the attribute mentions `test`.
fn scan_attribute(tokens: &[Tok], at: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut i = at + 1;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, is_test);
                }
            }
            "test" => is_test = true,
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), is_test)
}

/// Finds the brace-block body of the item following an attribute stack.
/// Returns `(body_open, body_close)` token indices, or `None` for
/// body-less items (`mod x;`, `type T = ...;`).
fn item_body_after(tokens: &[Tok], mut i: usize) -> Option<(usize, usize)> {
    // Skip any further attributes.
    while i < tokens.len()
        && tokens[i].text == "#"
        && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[")
    {
        let (end, _) = scan_attribute(tokens, i);
        i = end;
    }
    // Scan the item header for its body `{` — at zero paren/bracket depth.
    let mut paren = 0isize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren == 0 => return None,
            "{" if paren == 0 => {
                let close = matching_brace(tokens, i)?;
                return Some((i, close));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// A parsed `// gdp-lint: allow(RULE, ...) -- reason` comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Line the comment is on.
    pub line: usize,
    /// Rule IDs listed in the `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty `-- reason` trailer is present. Suppressions
    /// without a reason are invalid and do not suppress.
    pub has_reason: bool,
}

/// Extracts all suppression comments from a file.
pub fn allows(file: &SourceFile) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &file.comments {
        let Some(at) = c.text.find("gdp-lint:") else { continue };
        let rest = c.text[at + "gdp-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else { continue };
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..].trim_start();
        let has_reason = tail.strip_prefix("--").map(|r| !r.trim().is_empty()).unwrap_or(false);
        if !rules.is_empty() {
            out.push(Allow { line: c.line, rules, has_reason });
        }
    }
    out
}

/// Recursively collects `.rs` files under `path` into `out`.
fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(path)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() && (name == "target" || name == ".git") {
            continue;
        }
        collect_rs(&entry, out)?;
    }
    Ok(())
}

fn normalize(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// True when `rel` (a normalized workspace-relative path) belongs to the
/// default production scan set: source files of workspace crates, skipping
/// the vendored dependency shims, integration-test trees, examples, and
/// the lint fixture corpus (which contains deliberate violations).
pub fn in_default_scan_set(rel: &str) -> bool {
    if rel.starts_with("shims/") || rel.contains("/tests/") || rel.starts_with("examples/") {
        return false;
    }
    rel.contains("/src/") || rel.starts_with("src/")
}

/// Lints `paths` (files or directories) relative to `root`.
///
/// With `default_scan = true` the production filter
/// ([`in_default_scan_set`]) applies; explicit fixture/test paths should
/// pass `false` to scan every `.rs` file they contain.
pub fn lint_paths(
    root: &Path,
    paths: &[PathBuf],
    cfg: &LintConfig,
    default_scan: bool,
) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs(p, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut parsed = Vec::new();
    for f in &files {
        let rel = normalize(root, f);
        if default_scan && !in_default_scan_set(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(f)?;
        parsed.push(SourceFile::parse(&rel, &src));
    }

    // Aux scan set: the sim chaos suites, parsed only for OB02's
    // conservation-law direction (and their own suppression comments) —
    // their code is test-only and never sees the per-file rules.
    let mut aux: Vec<SourceFile> = Vec::new();
    if default_scan {
        let sim_tests = root.join("crates/sim/tests");
        if sim_tests.is_dir() {
            let mut sim_files = Vec::new();
            collect_rs(&sim_tests, &mut sim_files)?;
            sim_files.sort();
            for f in &sim_files {
                let rel = normalize(root, f);
                let src = std::fs::read_to_string(f)?;
                aux.push(SourceFile::parse(&rel, &src));
            }
        }
    }

    let workspace = rules::WorkspaceIndex::build(&parsed);
    let mut findings: Vec<Finding> = Vec::new();
    for file in &parsed {
        findings.extend(rules::run_all(file, cfg, &workspace));
    }
    findings.extend(rules::run_workspace(&parsed, &aux, cfg, Some(root), default_scan));

    // Uniform suppression: every finding — per-file or workspace-wide —
    // is matched against the allow comments of the file it is reported
    // in. Findings against non-Rust files (DESIGN.md rows) have no
    // allow table and cannot be suppressed.
    let mut allow_map: std::collections::BTreeMap<&str, Vec<Allow>> =
        std::collections::BTreeMap::new();
    for file in parsed.iter().chain(aux.iter()) {
        allow_map.insert(file.path.as_str(), allows(file));
    }
    let mut suppressed: Vec<Suppressed> = Vec::new();
    findings.retain(|f| {
        let covered = allow_map.get(f.path.as_str()).is_some_and(|file_allows| {
            file_allows.iter().any(|a| {
                a.has_reason
                    && (a.line == f.line || a.line + 1 == f.line)
                    && a.rules.iter().any(|r| r == f.rule)
            })
        });
        if covered {
            suppressed.push(Suppressed { rule: f.rule, path: f.path.clone(), line: f.line });
        }
        !covered
    });

    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    suppressed.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Report { files_scanned: parsed.len(), findings, suppressed })
}

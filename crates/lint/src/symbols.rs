//! Pass 1 of the workspace analyzer: the cross-file symbol table.
//!
//! Built once over every scanned file, before any rule runs. Everything
//! here is token-level — no `syn`, no rustc — which bounds what can be
//! resolved, so the table records only facts that are unambiguous at the
//! token stream: struct fields and their head type ident, functions and
//! their body spans (with the owning `impl` type), `Mutex`/`RwLock`-typed
//! fields (the nameable locks `LK01`/`LK02` reason about), channel
//! endpoints classified by their `bounded`/`unbounded` constructor
//! (`CH01`), and per-file `use` imports (call-graph resolution hints).
//!
//! Identity conventions:
//! * a lock is `Owner.field` (`Shared.peers`, `NidMap.inner`);
//! * a function is its bare name plus a `Type::name` qualifier when it
//!   is defined inside an `impl` block;
//! * a channel endpoint is its binding name, with classification
//!   propagated through `container.push(name)` / `map.insert(k, name)` /
//!   `field: name` stores into the container's name (the alias set).

use crate::engine::SourceFile;
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Which primitive a lock-typed field wraps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<T>` — acquired with `.lock()`.
    Mutex,
    /// `RwLock<T>` — acquired with `.read()` / `.write()`.
    RwLock,
}

/// One `Mutex`/`RwLock`-typed struct field: a nameable lock.
#[derive(Clone, Debug)]
pub struct LockField {
    /// Declaring struct.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// File declaring the struct.
    pub path: String,
    /// Declaration line.
    pub line: usize,
}

impl LockField {
    /// The lock's identity in diagnostics and the lock-order graph.
    pub fn id(&self) -> String {
        format!("{}.{}", self.owner, self.field)
    }
}

/// How a channel endpoint was constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChanKind {
    /// From `bounded(n)` / `sync_channel(n)`.
    Bounded,
    /// From `unbounded()` / `channel()`.
    Unbounded,
    /// The same name is bound to both kinds somewhere in the workspace
    /// (e.g. a production lane and a bench-harness lane sharing a field
    /// name); rules must stay silent rather than guess.
    Conflicting,
}

/// A classified channel endpoint name.
#[derive(Clone, Debug)]
pub struct ChanEndpoint {
    /// Construction classification.
    pub kind: ChanKind,
    /// True when the name binds the sender half (first tuple position).
    pub sender: bool,
    /// Construction site.
    pub path: String,
    /// Construction line.
    pub line: usize,
}

/// One `fn` definition with its body span.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index into the scanned-file slice.
    pub file: usize,
    /// Workspace-relative path.
    pub path: String,
    /// Bare function name.
    pub name: String,
    /// `Type::name` inside an `impl` block, bare name otherwise.
    pub qual: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token span of the body: indices of `{` and `}` inclusive.
    pub body: (usize, usize),
}

/// The cross-file symbol table (pass 1 output).
#[derive(Default)]
pub struct Symbols {
    /// All lock-typed fields, in scan order.
    pub lock_fields: Vec<LockField>,
    /// Field name → indices into `lock_fields` (receiver resolution).
    pub locks_by_field: BTreeMap<String, Vec<usize>>,
    /// All `fn` definitions, in scan order.
    pub fns: Vec<FnDef>,
    /// Bare name → indices into `fns`.
    pub fns_by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::name` → index into `fns` (first definition wins).
    pub fns_by_qual: BTreeMap<String, usize>,
    /// Struct field name → head type idents seen for it (method-receiver
    /// typing: `self.fds` → `FdPool`). Multiple structs may share a
    /// field name; all head types are kept.
    pub field_types: BTreeMap<String, BTreeSet<String>>,
    /// Channel endpoint name → classification.
    pub chan_kinds: BTreeMap<String, ChanEndpoint>,
    /// Sender name → container/field names it was stored into (shutdown-
    /// path evidence for `CH01`).
    pub chan_aliases: BTreeMap<String, BTreeSet<String>>,
    /// Per-file imported name → full `use` path (dot-free, `::`-joined).
    pub imports: Vec<BTreeMap<String, String>>,
}

/// Channel constructor names and whether they build a bounded lane.
const CHAN_CTORS: [(&str, bool); 4] =
    [("bounded", true), ("sync_channel", true), ("unbounded", false), ("channel", false)];

/// Rust keywords that can precede `(` without being a call / pattern
/// ident of interest.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

impl Symbols {
    /// Builds the table over every scanned file, in order.
    pub fn build(files: &[SourceFile]) -> Symbols {
        let mut sym = Symbols::default();
        for (fi, file) in files.iter().enumerate() {
            sym.imports.push(scan_imports(&file.tokens));
            scan_structs(file, &mut sym);
            scan_fns(fi, file, &mut sym);
            scan_channels(file, &mut sym);
        }
        for (i, lf) in sym.lock_fields.iter().enumerate() {
            sym.locks_by_field.entry(lf.field.clone()).or_default().push(i);
        }
        for (i, f) in sym.fns.iter().enumerate() {
            sym.fns_by_name.entry(f.name.clone()).or_default().push(i);
            sym.fns_by_qual.entry(f.qual.clone()).or_insert(i);
        }
        sym
    }

    /// The lock field a `.lock()`/`.read()`/`.write()` receiver named
    /// `field` resolves to, preferring a declaration in the same crate
    /// as `use_path`. Returns the lock identity string.
    pub fn resolve_lock(&self, field: &str, method: &str, use_path: &str) -> Option<String> {
        let want = match method {
            "lock" => LockKind::Mutex,
            "read" | "write" => LockKind::RwLock,
            _ => return None,
        };
        let cands: Vec<&LockField> = self
            .locks_by_field
            .get(field)?
            .iter()
            .map(|&i| &self.lock_fields[i])
            .filter(|lf| lf.kind == want)
            .collect();
        match cands.len() {
            0 => None,
            1 => Some(cands[0].id()),
            _ => {
                let use_crate = crate_of(use_path);
                let same: Vec<&&LockField> =
                    cands.iter().filter(|lf| crate_of(&lf.path) == use_crate).collect();
                match same.len() {
                    1 => Some(same[0].id()),
                    // Ambiguous across (or within) crates: degrade to a
                    // field-keyed identity rather than guessing an owner.
                    _ => Some(format!("?.{field}")),
                }
            }
        }
    }
}

/// The `crates/<name>` prefix of a workspace-relative path (crate-local
/// disambiguation), or the whole path when it has no crate prefix.
pub fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        match rest.find('/') {
            Some(at) => &path[..7 + at],
            None => path,
        }
    } else {
        path
    }
}

/// Collects `use a::b::{c, d as e};` imports: imported name → full path.
fn scan_imports(toks: &[Tok]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "use" && toks[i].kind == TokKind::Ident {
            let mut prefix: Vec<String> = Vec::new();
            let mut j = i + 1;
            // Walk `a :: b :: ...` until `{`, `;`, or `as`.
            while j < toks.len() {
                match toks[j].text.as_str() {
                    ";" => {
                        if let Some(last) = prefix.last() {
                            out.insert(last.clone(), prefix.join("::"));
                        }
                        break;
                    }
                    "as" => {
                        // `use path as alias;`
                        if let Some(alias) = toks.get(j + 1) {
                            out.insert(alias.text.clone(), prefix.join("::"));
                        }
                        break;
                    }
                    "{" => {
                        // One flat group level: `use p::{a, b as c, d::e}`.
                        let mut depth = 1usize;
                        let mut seg: Vec<String> = Vec::new();
                        j += 1;
                        while j < toks.len() && depth > 0 {
                            match toks[j].text.as_str() {
                                "{" => depth += 1,
                                "}" => depth -= 1,
                                "," if depth == 1 => {
                                    record_group_item(&prefix, &seg, &mut out);
                                    seg.clear();
                                }
                                "::" => {}
                                t if toks[j].kind == TokKind::Ident => seg.push(t.to_string()),
                                _ => {}
                            }
                            j += 1;
                        }
                        record_group_item(&prefix, &seg, &mut out);
                        break;
                    }
                    "::" => {}
                    _ if toks[j].kind == TokKind::Ident => prefix.push(toks[j].text.clone()),
                    _ => break,
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Records one item of a `use p::{...}` group (`a`, `a as b`, `a::b`).
fn record_group_item(prefix: &[String], seg: &[String], out: &mut BTreeMap<String, String>) {
    let Some(last) = seg.last() else { return };
    let mut full: Vec<String> = prefix.to_vec();
    // `a as b`: the alias is the last segment, the path stops before it —
    // close enough at token level to record both under the alias.
    full.extend(seg.iter().cloned());
    out.insert(last.clone(), full.join("::"));
}

/// Collects struct declarations: field head types and lock-typed fields.
fn scan_structs(file: &SourceFile, sym: &mut Symbols) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "struct" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body `{` (skip generics / where clauses); `;` or `(`
        // first means a unit/tuple struct — skip it.
        let mut j = i + 2;
        let mut angle = 0isize;
        let mut body = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "(" | ";" if angle <= 0 => break,
                "{" if angle <= 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i += 1;
            continue;
        };
        let Some(close) = crate::engine::matching_brace(toks, open) else { break };
        scan_struct_fields(file, &name_tok.text, open, close, sym);
        i = close + 1;
    }
}

/// Walks one struct body collecting `field: Type` pairs at depth 1.
fn scan_struct_fields(
    file: &SourceFile,
    owner: &str,
    open: usize,
    close: usize,
    sym: &mut Symbols,
) {
    let toks = &file.tokens;
    let mut k = open + 1;
    while k < close {
        // Skip attributes and visibility.
        match toks[k].text.as_str() {
            "#" => {
                let (end, _) = crate::rules::attr_span(toks, k);
                k = end;
                continue;
            }
            "pub" => {
                k += 1;
                // `pub(crate)` / `pub(super)`.
                if toks.get(k).map(|t| t.text.as_str()) == Some("(") {
                    while k < close && toks[k].text != ")" {
                        k += 1;
                    }
                    k += 1;
                }
                continue;
            }
            _ => {}
        }
        // `ident :` at depth 1 opens a field's type.
        if toks[k].kind == TokKind::Ident
            && !is_keyword(&toks[k].text)
            && toks.get(k + 1).map(|t| t.text.as_str()) == Some(":")
        {
            let field = toks[k].text.clone();
            let line = toks[k].line;
            // The type runs to the `,` at depth 0 (relative to the body).
            let mut depth = 0isize;
            let mut t = k + 2;
            let mut head_type: Option<String> = None;
            let mut lock: Option<LockKind> = None;
            while t < close {
                match toks[t].text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    "," if depth <= 0 => break,
                    "Mutex" => lock = lock.or(Some(LockKind::Mutex)),
                    "RwLock" => lock = lock.or(Some(LockKind::RwLock)),
                    _ => {}
                }
                // The useful head type skips smart-pointer / sync
                // wrappers: `Arc<Mutex<LogInner>>` types the field as
                // `LogInner` for method-receiver resolution.
                if head_type.is_none()
                    && toks[t].kind == TokKind::Ident
                    && !is_keyword(&toks[t].text)
                    && !matches!(
                        toks[t].text.as_str(),
                        "Arc"
                            | "Rc"
                            | "Box"
                            | "Weak"
                            | "Mutex"
                            | "RwLock"
                            | "RefCell"
                            | "Cell"
                            | "Option"
                            | "Vec"
                            | "VecDeque"
                            | "HashMap"
                            | "BTreeMap"
                    )
                {
                    head_type = Some(toks[t].text.clone());
                }
                t += 1;
            }
            if let Some(h) = head_type {
                sym.field_types.entry(field.clone()).or_default().insert(h);
            }
            if let Some(kind) = lock {
                sym.lock_fields.push(LockField {
                    owner: owner.to_string(),
                    field,
                    kind,
                    path: file.path.clone(),
                    line,
                });
            }
            k = t;
            continue;
        }
        k += 1;
    }
}

/// Collects `fn` definitions with body spans and owning `impl` types.
fn scan_fns(fi: usize, file: &SourceFile, sym: &mut Symbols) {
    let toks = &file.tokens;
    // impl spans: (body_open, body_close, type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "impl" && toks[i].kind == TokKind::Ident {
            if let Some((open, close, ty)) = scan_impl_header(toks, i) {
                impls.push((open, close, ty));
            }
        }
        i += 1;
    }

    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "fn" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body `{` at zero paren/angle depth, or `;` (no body).
        let mut j = i + 2;
        let mut paren = 0isize;
        let mut angle = 0isize;
        let mut body = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "->" => {}
                ";" if paren == 0 => break,
                "{" if paren == 0 && angle <= 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else {
            i += 2;
            continue;
        };
        let Some(close) = crate::engine::matching_brace(toks, open) else { break };
        let name = name_tok.text.clone();
        let qual = impls
            .iter()
            .find(|(o, c, _)| *o < i && i < *c)
            .map(|(_, _, ty)| format!("{ty}::{name}"))
            .unwrap_or_else(|| name.clone());
        sym.fns.push(FnDef {
            file: fi,
            path: file.path.clone(),
            name,
            qual,
            line: name_tok.line,
            body: (open, close),
        });
        // Continue *inside* the body: nested fns are their own entries,
        // and their calls are attributed to both spans (conservative).
        i = open + 1;
    }
}

/// Parses one `impl` header starting at `at`: returns the body span and
/// the implemented type's head ident (`impl Tr for Ty` → `Ty`).
fn scan_impl_header(toks: &[Tok], at: usize) -> Option<(usize, usize, String)> {
    let mut j = at + 1;
    // Skip `<...>` generic params directly after `impl`.
    if toks.get(j).map(|t| t.text.as_str()) == Some("<") {
        let mut angle = 0isize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    let mut first_after_for: Option<String> = None;
    let mut first: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0isize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "for" => saw_for = true,
            "{" if angle <= 0 => {
                let close = crate::engine::matching_brace(toks, j)?;
                let ty = if saw_for { first_after_for } else { first };
                return ty.map(|t| (j, close, t));
            }
            ";" if angle <= 0 => return None,
            _ => {
                if toks[j].kind == TokKind::Ident && !is_keyword(&toks[j].text) && angle <= 0 {
                    if saw_for {
                        first_after_for.get_or_insert(toks[j].text.clone());
                    } else {
                        first.get_or_insert(toks[j].text.clone());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Collects channel constructor bindings and their alias stores.
fn scan_channels(file: &SourceFile, sym: &mut Symbols) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(&(_, bounded)) = CHAN_CTORS.iter().find(|(n, _)| *n == t.text) else {
            continue;
        };
        // Must be a call: `name(` or `name::<T>(`; not a definition
        // (`fn name`), not a method (`.name(` could be `scope.channel()`
        // on some API — still a constructor by convention, accept it).
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).map(|t| t.text.as_str()) == Some("::") {
            // Turbofish: skip `::<...>`.
            j += 1;
            let mut angle = 0isize;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    _ => {}
                }
                j += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        // Walk back over `::`-qualified prefixes to the `=`.
        let mut b = i;
        while b >= 2 && toks[b - 1].text == "::" && toks[b - 2].kind == TokKind::Ident {
            b -= 2;
        }
        if b == 0 || toks[b - 1].text != "=" {
            continue;
        }
        // Pattern between `let` and `=`: `(tx, rx)` or a single ident.
        let mut p = b - 1;
        let mut pat: Vec<String> = Vec::new();
        loop {
            if p == 0 {
                break;
            }
            p -= 1;
            match toks[p].text.as_str() {
                "let" | ";" | "{" | "}" => break,
                "mut" | "(" | ")" | "," | ":" => {}
                _ => {
                    if toks[p].kind == TokKind::Ident {
                        pat.push(toks[p].text.clone());
                    }
                }
            }
        }
        pat.reverse();
        let kind = if bounded { ChanKind::Bounded } else { ChanKind::Unbounded };
        for (pos, name) in pat.iter().enumerate() {
            if name == "_" {
                continue;
            }
            classify(sym, name, kind, pos == 0, &file.path, t.line);
        }
        // Propagate through stores: `container.push(name)`,
        // `map.insert(k, name)`, `field: name` (struct literal).
        for name in &pat {
            propagate_aliases(file, name, sym);
        }
    }
}

/// Records `name` as a channel endpoint, degrading to `Conflicting` when
/// the workspace already classified the name differently.
fn classify(sym: &mut Symbols, name: &str, kind: ChanKind, sender: bool, path: &str, line: usize) {
    match sym.chan_kinds.get_mut(name) {
        Some(e) => {
            if e.kind != kind {
                e.kind = ChanKind::Conflicting;
            }
            e.sender |= sender;
        }
        None => {
            sym.chan_kinds.insert(
                name.to_string(),
                ChanEndpoint { kind, sender, path: path.to_string(), line },
            );
        }
    }
}

/// Finds container stores of `name` in `file` and propagates the
/// channel classification onto the container/field name.
fn propagate_aliases(file: &SourceFile, name: &str, sym: &mut Symbols) {
    let toks = &file.tokens;
    let Some(ep) = sym.chan_kinds.get(name).cloned() else { return };
    let mut stores: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != *name || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `container . push ( name )` / `map . insert ( k , name )`
        let prev = |k: usize| toks.get(i.wrapping_sub(k)).map(|t| t.text.as_str());
        if prev(1) == Some("(") || prev(1) == Some(",") {
            // Walk back to the method ident and its receiver.
            let mut j = i - 1;
            let mut depth = 0isize;
            while j > 0 {
                match toks[j].text.as_str() {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ";" | "{" | "}" => break,
                    _ => {}
                }
                j -= 1;
            }
            if j >= 3
                && matches!(toks[j - 1].text.as_str(), "push" | "insert" | "or_insert")
                && toks[j - 2].text == "."
                && toks[j - 3].kind == TokKind::Ident
            {
                stores.push(toks[j - 3].text.clone());
            }
        }
        // Struct literal `field : name` followed by `,` or `}`.
        if prev(1) == Some(":")
            && i >= 2
            && toks[i - 2].kind == TokKind::Ident
            && matches!(toks.get(i + 1).map(|t| t.text.as_str()), Some(",") | Some("}"))
        {
            stores.push(toks[i - 2].text.clone());
        }
    }
    for s in stores {
        classify(sym, &s, ep.kind, ep.sender, &file.path, ep.line);
        sym.chan_aliases.entry(name.to_string()).or_default().insert(s);
    }
}

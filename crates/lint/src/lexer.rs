//! A small, comment- and string-aware Rust lexer.
//!
//! This is deliberately *not* a parser: the rules in this crate operate on
//! a flat token stream plus a side table of comments. The lexer's only
//! obligations are (a) never mistake the inside of a string literal or a
//! comment for code, (b) keep spans (line, column) exact so diagnostics
//! point at the offending token, and (c) keep multi-character operators
//! (`==`, `=>`, `::`, `..`) as single tokens so rules can match on them.
//!
//! It handles: line comments, nested block comments, string / raw-string /
//! byte-string / char literals (including escape sequences and the
//! lifetime-vs-char-literal ambiguity), numbers (enough to not split
//! `0..8` into a float), identifiers, and punctuation.

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`match`, `unsafe`, `foo_bar`, `_`).
    Ident,
    /// Punctuation, possibly multi-character (`==`, `=>`, `::`, `[`).
    Punct,
    /// A string, raw string, byte string, or char literal (text excluded).
    Lit,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'_`).
    Lifetime,
}

/// One token with its exact source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token (empty for literals — contents of strings
    /// must never be mistaken for code, so they are not exposed).
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based byte column of the first character.
    pub col: usize,
}

/// A comment, with the line it starts on. Multi-line block comments are
/// recorded once with their full text.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: usize,
    /// Comment text without the delimiters.
    pub text: String,
}

/// A string literal's contents, with the line it starts on. Kept in a
/// side table — never in the token stream — so rules must opt in to look
/// at literal text (`SK01` does, for inline format captures like
/// `{seed:?}`).
#[derive(Clone, Debug)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The literal's contents (delimiters excluded, escapes unprocessed).
    pub text: String,
}

/// Output of [`lex`]: the token stream plus the comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// All string-literal contents, in source order.
    pub strings: Vec<StrLit>,
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: [&str; 25] = [
    "..=", "...", "<<=", ">>=", "==", "!=", "=>", "->", "::", "..", "&&", "||", "<<", ">>", "<=",
    ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "?",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens and comments. Unknown bytes are skipped; the
/// lexer never fails (a static analyzer must degrade, not crash, on the
/// code it polices).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b' ') as char);
                }
                out.comments.push(Comment { line, text });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    if cur.starts_with("/*") {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if cur.starts_with("*/") {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    } else {
                        match cur.bump() {
                            Some(c) => text.push(c as char),
                            None => break,
                        }
                    }
                }
                out.comments.push(Comment { line, text });
            }
            b'"' => {
                let text = eat_string(&mut cur);
                out.strings.push(StrLit { line, text });
                out.tokens.push(Tok { kind: TokKind::Lit, text: String::new(), line, col });
            }
            b'r' | b'b' if raw_or_byte_string_ahead(&cur) => {
                if let Some(text) = eat_prefixed_string(&mut cur) {
                    out.strings.push(StrLit { line, text });
                }
                out.tokens.push(Tok { kind: TokKind::Lit, text: String::new(), line, col });
            }
            b'\'' => {
                if char_literal_ahead(&cur) {
                    eat_char_literal(&mut cur);
                    out.tokens.push(Tok { kind: TokKind::Lit, text: String::new(), line, col });
                } else {
                    cur.bump(); // the quote
                    let mut text = String::from("'");
                    while let Some(c) = cur.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        text.push(cur.bump().unwrap_or(b'_') as char);
                    }
                    out.tokens.push(Tok { kind: TokKind::Lifetime, text, line, col });
                }
            }
            _ if b.is_ascii_digit() => {
                let text = eat_number(&mut cur);
                out.tokens.push(Tok { kind: TokKind::Num, text, line, col });
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b'_') as char);
                }
                out.tokens.push(Tok { kind: TokKind::Ident, text, line, col });
            }
            _ => {
                let mut matched = false;
                for p in PUNCTS {
                    if cur.starts_with(p) {
                        for _ in 0..p.len() {
                            cur.bump();
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::Punct,
                            text: p.to_string(),
                            line,
                            col,
                        });
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    cur.bump();
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: (b as char).to_string(),
                        line,
                        col,
                    });
                }
            }
        }
    }
    out
}

/// Is the `r`/`b` at the cursor the prefix of a raw/byte string?
fn raw_or_byte_string_ahead(cur: &Cursor<'_>) -> bool {
    // r", r#", b", br", b'x' (byte char), rb is not a thing.
    match cur.peek(0) {
        Some(b'r') => matches!(cur.peek(1), Some(b'"') | Some(b'#')),
        Some(b'b') => match cur.peek(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(cur.peek(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// After a `'`, decide char literal (`'a'`, `'\n'`) vs lifetime (`'a`).
fn char_literal_ahead(cur: &Cursor<'_>) -> bool {
    match cur.peek(1) {
        Some(b'\\') => true,
        Some(c) if c != b'\'' => cur.peek(2) == Some(b'\''),
        _ => false,
    }
}

fn eat_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e as char);
                }
            }
            b'"' => break,
            c => text.push(c as char),
        }
    }
    text
}

fn eat_prefixed_string(cur: &mut Cursor<'_>) -> Option<String> {
    // Consume the r/b/br prefix.
    while matches!(cur.peek(0), Some(b'r') | Some(b'b')) {
        cur.bump();
    }
    if cur.peek(0) == Some(b'\'') {
        // Byte char literal b'x' — not a string; no side-table entry.
        cur.bump();
        while let Some(c) = cur.bump() {
            match c {
                b'\\' => {
                    cur.bump();
                }
                b'\'' => break,
                _ => {}
            }
        }
        return None;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some(b'"') {
        return None; // not actually a string (e.g. `r#ident`); give up gracefully
    }
    cur.bump();
    let mut text = String::new();
    if hashes == 0 {
        // Raw string without hashes still has no escapes.
        while let Some(c) = cur.bump() {
            if c == b'"' {
                break;
            }
            text.push(c as char);
        }
        return Some(text);
    }
    let closer = format!("\"{}", "#".repeat(hashes));
    while cur.peek(0).is_some() {
        if cur.starts_with(&closer) {
            for _ in 0..closer.len() {
                cur.bump();
            }
            break;
        }
        if let Some(c) = cur.bump() {
            text.push(c as char);
        }
    }
    Some(text)
}

fn eat_char_literal(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

fn eat_number(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == b'_' {
            text.push(cur.bump().unwrap_or(b'0') as char);
        } else if c == b'.' {
            // `0..8` must not swallow the range operator.
            if cur.peek(1) == Some(b'.') {
                break;
            }
            if cur.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                text.push(cur.bump().unwrap_or(b'.') as char);
            } else {
                break;
            }
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let l = lex("let x = \"== unsafe //\"; // trailing == note\nlet y = 1;");
        assert!(l.tokens.iter().all(|t| t.text != "unsafe"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("trailing"));
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(l.tokens[0].text, "fn");
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex("let s = r#\"has \"quotes\" and == inside\"#; let t = 2;");
        assert!(l.tokens.iter().all(|t| t.text != "=="));
        assert!(l.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count(), 2);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        assert!(texts("a == b != c => d :: e .. f ..= g").contains(&"..=".to_string()));
        let t = texts("x[..8]");
        assert_eq!(t, vec!["x", "[", "..", "8", "]"]);
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let t = texts("for i in 0..8 {}");
        assert!(t.contains(&"0".to_string()) && t.contains(&"..".to_string()));
        let t = texts("let f = 1.5f64;");
        assert!(t.contains(&"1.5f64".to_string()));
    }

    #[test]
    fn spans_are_exact() {
        let l = lex("ab\n  cd == ef");
        let eq = l.tokens.iter().find(|t| t.text == "==").expect("== token");
        assert_eq!((eq.line, eq.col), (2, 6));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex("let a = b\"bytes == \"; let b = b'x'; let c = br#\"raw\"#;");
        assert!(l.tokens.iter().all(|t| t.text != "=="));
    }
}

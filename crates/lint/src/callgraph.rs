//! Pass 1½: per-function facts over the symbol table — lock-guard live
//! ranges, blocking-primitive call sites, and a call graph with a
//! may-block fixpoint.
//!
//! Guard live-ranges implement the pre-2024 temporary rules the
//! workspace compiles under:
//!
//! * `let g = x.lock();` (chain empty, `.unwrap()`, `.expect(..)` or
//!   `?`) binds the guard: live to the end of the enclosing block, or
//!   to an explicit `drop(g)`.
//! * `let v = x.lock().pop();` — the guard is a temporary: dropped at
//!   the end of the statement.
//! * `if let`/`while let`/`match` on a locked expression: the temporary
//!   guard lives through the *entire* following block (the classic
//!   match-temporary extension) — even when the chain is non-preserving.
//! * A plain `if x.lock().is_empty() {` condition drops the guard at
//!   the `{`.
//!
//! The may-block fixpoint runs in rounds (shortest witness chain wins)
//! and records a human-readable chain for diagnostics:
//! `` `build` (crates/store/src/engine.rs:97) → `pread_fill` (...) ``.

use crate::engine::SourceFile;
use crate::lexer::{Tok, TokKind};
use crate::symbols::{is_keyword, Symbols};
use crate::LintConfig;

/// One lock acquisition and its guard's live range.
#[derive(Clone, Debug)]
pub struct Acq {
    /// Resolved lock identity (`Owner.field`, or `?.field` when the
    /// owner is ambiguous).
    pub lock: String,
    /// Token index of the `.lock`/`.read`/`.write` method ident.
    pub tok: usize,
    /// Acquisition line / column (of the method ident).
    pub line: usize,
    /// Column.
    pub col: usize,
    /// Live-range end: last token index at which the guard is held.
    pub end: usize,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Called name (bare).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// Line.
    pub line: usize,
    /// Resolved definition candidates (indices into `Symbols::fns`).
    pub targets: Vec<usize>,
}

/// One direct blocking-primitive call site.
#[derive(Clone, Debug)]
pub struct Prim {
    /// Primitive name (`fsync`, `send`, `pread_fill`, ...).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// Line.
    pub line: usize,
}

/// Facts for one function body.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Lock acquisitions with guard ranges.
    pub acqs: Vec<Acq>,
    /// Resolved call sites.
    pub calls: Vec<Call>,
    /// Direct blocking primitives.
    pub prims: Vec<Prim>,
}

/// The call graph: per-fn facts plus the may-block verdicts.
pub struct CallGraph {
    /// Parallel to `Symbols::fns`.
    pub facts: Vec<FnFacts>,
    /// Parallel to `Symbols::fns`: a witness-chain description when the
    /// function may block (directly or transitively), `None` otherwise.
    pub blocked: Vec<Option<String>>,
}

/// Names too common for name-based call resolution — resolving them by
/// bare name across the workspace would wire unrelated types together.
const RESOLVE_STOPLIST: [&str; 40] = [
    "append",
    "build",
    "clear",
    "clone",
    "close",
    "contains",
    "contains_key",
    "decode",
    "drain",
    "drop",
    "encode",
    "entry",
    "extend",
    "flush",
    "from",
    "get",
    "handle",
    "init",
    "insert",
    "into",
    "is_empty",
    "iter",
    "keys",
    "len",
    "lock",
    "new",
    "next",
    "open",
    "poll",
    "pop",
    "push",
    "read",
    "recv",
    "remove",
    "run",
    "send",
    "spawn",
    "take",
    "values",
    "write",
];

impl CallGraph {
    /// Builds facts and the may-block fixpoint for every function.
    pub fn build(files: &[SourceFile], sym: &Symbols, cfg: &LintConfig) -> CallGraph {
        let mut facts = Vec::with_capacity(sym.fns.len());
        for (fi, f) in sym.fns.iter().enumerate() {
            let file = &files[f.file];
            let locals = local_types(&file.tokens, f.body);
            let mut ff = FnFacts::default();
            scan_body(file, sym, fi, &locals, cfg, &mut ff);
            facts.push(ff);
        }

        // May-block fixpoint, in rounds: round 0 is direct primitives;
        // each later round blocks callers of already-blocked functions,
        // so the recorded witness chain is a shortest one.
        let mut blocked: Vec<Option<String>> = vec![None; sym.fns.len()];
        for (i, ff) in facts.iter().enumerate() {
            if let Some(p) = ff.prims.first() {
                blocked[i] = Some(format!("`{}` ({}:{})", p.name, sym.fns[i].path, p.line));
            }
        }
        loop {
            let snapshot = blocked.clone();
            let mut changed = false;
            for (i, ff) in facts.iter().enumerate() {
                if blocked[i].is_some() {
                    continue;
                }
                'calls: for c in &ff.calls {
                    for &t in &c.targets {
                        if let Some(why) = &snapshot[t] {
                            blocked[i] = Some(chain(&c.name, &sym.fns[i].path, c.line, why));
                            changed = true;
                            break 'calls;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        CallGraph { facts, blocked }
    }
}

/// Extends a witness chain by one hop, capping the displayed depth.
fn chain(name: &str, path: &str, line: usize, why: &str) -> String {
    let hops = why.matches('→').count();
    if hops >= 3 {
        let head = why.split('→').next().unwrap_or(why).trim();
        return format!("`{name}` ({path}:{line}) → {head} → …");
    }
    format!("`{name}` ({path}:{line}) → {why}")
}

/// Infers local-variable types in a body: `let x: T`, `let x = T::new`,
/// `let x = T { ... }`.
fn local_types(
    toks: &[Tok],
    (open, close): (usize, usize),
) -> std::collections::BTreeMap<String, String> {
    let mut map = std::collections::BTreeMap::new();
    let mut i = open;
    while i < close {
        if toks[i].text == "let" && toks[i].kind == TokKind::Ident {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            let Some(name) = toks.get(j) else { break };
            if name.kind == TokKind::Ident {
                match toks.get(j + 1).map(|t| t.text.as_str()) {
                    Some(":") => {
                        if let Some(ty) = toks.get(j + 2) {
                            if ty.kind == TokKind::Ident && !is_keyword(&ty.text) {
                                map.insert(name.text.clone(), ty.text.clone());
                            }
                        }
                    }
                    Some("=") => {
                        if let Some(ty) = toks.get(j + 2) {
                            let next = toks.get(j + 3).map(|t| t.text.as_str());
                            if ty.kind == TokKind::Ident
                                && ty.text.chars().next().is_some_and(|c| c.is_uppercase())
                                && matches!(next, Some("::") | Some("{"))
                            {
                                map.insert(name.text.clone(), ty.text.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
    map
}

/// Scans one fn body collecting acquisitions, primitives, and calls.
fn scan_body(
    file: &SourceFile,
    sym: &Symbols,
    fn_idx: usize,
    locals: &std::collections::BTreeMap<String, String>,
    cfg: &LintConfig,
    out: &mut FnFacts,
) {
    let toks = &file.tokens;
    let (open, close) = sym.fns[fn_idx].body;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            i += 1;
            continue;
        }
        // Lock acquisition: `recv.lock()` / `recv.read()` / `recv.write()`.
        if matches!(t.text.as_str(), "lock" | "read" | "write")
            && i >= 2
            && toks[i - 1].text == "."
            && toks[i - 2].kind == TokKind::Ident
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(")")
        {
            if let Some(lock) = sym.resolve_lock(&toks[i - 2].text, &t.text, &file.path) {
                let end = guard_end(toks, i, i + 2, close);
                out.acqs.push(Acq { lock, tok: i, line: t.line, col: t.col, end });
            }
        }
        // Blocking primitive?
        if let Some(name) = prim_at(toks, i, cfg) {
            out.prims.push(Prim { name: name.to_string(), tok: i, line: t.line });
            i += 1;
            continue;
        }
        // Call site: `name (` that is not a definition or macro.
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && (i == 0 || toks[i - 1].text != "fn")
        {
            let targets = resolve_call(sym, fn_idx, toks, i, locals);
            out.calls.push(Call { name: t.text.clone(), tok: i, line: t.line, targets });
        }
        i += 1;
    }
}

/// Matches a blocking-primitive call at ident `i`, with per-name
/// structural refinements that keep common names precise:
/// `join` must be argless (`path.join("x")` is not blocking), `open`
/// must be `File::open`/`.open(`, `spawn` must be `thread::spawn`/
/// `.spawn(`, channel ops must be method calls, and `try_send`/
/// `try_recv` never match.
fn prim_at<'c>(toks: &[Tok], i: usize, cfg: &'c LintConfig) -> Option<&'c str> {
    let name = toks[i].text.as_str();
    let entry = cfg.blocking_calls.iter().find(|b| b.as_str() == name)?;
    if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let prev = |k: usize| i.checked_sub(k).map(|j| toks[j].text.as_str());
    let ok = match name {
        "join" => toks.get(i + 2).map(|t| t.text.as_str()) == Some(")") && prev(1) == Some("."),
        "open" => (prev(1) == Some("::") && prev(2) == Some("File")) || prev(1) == Some("."),
        "spawn" => (prev(1) == Some("::") && prev(2) == Some("thread")) || prev(1) == Some("."),
        "send" | "recv" | "recv_timeout" => prev(1) == Some("."),
        "sleep" => prev(1) == Some("::") || prev(1) != Some("."),
        _ => true,
    };
    ok.then_some(entry.as_str())
}

/// Resolves a call site to candidate fn definitions.
fn resolve_call(
    sym: &Symbols,
    fn_idx: usize,
    toks: &[Tok],
    i: usize,
    locals: &std::collections::BTreeMap<String, String>,
) -> Vec<usize> {
    let name = toks[i].text.as_str();
    let prev = |k: usize| i.checked_sub(k).map(|j| toks[j].text.as_str());

    // `Type::name(...)` — exact qualified lookup.
    if prev(1) == Some("::") {
        if let Some(ty) = i.checked_sub(2).map(|j| &toks[j]) {
            if ty.kind == TokKind::Ident {
                if let Some(&idx) = sym.fns_by_qual.get(&format!("{}::{}", ty.text, name)) {
                    return vec![idx];
                }
            }
        }
        return by_name(sym, name, None);
    }

    // Method call: type the receiver.
    if prev(1) == Some(".") {
        let recv = i.checked_sub(2).map(|j| &toks[j]);
        let Some(recv) = recv else { return vec![] };
        if recv.text == ")" {
            // `x.field.lock().method(...)` — the method runs on the
            // lock's inner type; type it through the field.
            if prev(3) == Some("(")
                && matches!(prev(4), Some("lock") | Some("read") | Some("write"))
                && prev(5) == Some(".")
            {
                if let Some(field) = i.checked_sub(6).map(|j| &toks[j]) {
                    if field.kind == TokKind::Ident {
                        if let Some(types) = sym.field_types.get(&field.text) {
                            let hits: Vec<usize> = types
                                .iter()
                                .filter_map(|ty| {
                                    sym.fns_by_qual.get(&format!("{ty}::{name}")).copied()
                                })
                                .collect();
                            if !hits.is_empty() {
                                return hits;
                            }
                        }
                    }
                }
            }
            // Any other call-chained receiver is untypable at token
            // level; guessing by name wires unrelated types together.
            return vec![];
        }
        if recv.text == "self" {
            // `self.name(...)` — the enclosing impl type.
            let qual = &sym.fns[fn_idx].qual;
            if let Some(ty) = qual.split("::").next().filter(|t| *t != qual.as_str()) {
                if let Some(&idx) = sym.fns_by_qual.get(&format!("{ty}::{name}")) {
                    return vec![idx];
                }
            }
            return by_name(sym, name, None);
        }
        if recv.kind == TokKind::Ident {
            // `self.field.name(...)` — type the field.
            if prev(3) == Some(".") && prev(4) == Some("self") {
                if let Some(types) = sym.field_types.get(&recv.text) {
                    let hits: Vec<usize> = types
                        .iter()
                        .filter_map(|ty| sym.fns_by_qual.get(&format!("{ty}::{name}")).copied())
                        .collect();
                    if !hits.is_empty() {
                        return hits;
                    }
                }
            }
            // `x.name(...)` — locally-inferred type.
            if let Some(ty) = locals.get(&recv.text) {
                if let Some(&idx) = sym.fns_by_qual.get(&format!("{ty}::{name}")) {
                    return vec![idx];
                }
            }
            // Field-typed receiver without the `self.` prefix (a guard
            // or alias named after the field).
            if let Some(types) = sym.field_types.get(&recv.text) {
                let hits: Vec<usize> = types
                    .iter()
                    .filter_map(|ty| sym.fns_by_qual.get(&format!("{ty}::{name}")).copied())
                    .collect();
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        return by_name(sym, name, None);
    }

    // Bare call: prefer a definition in the same file.
    by_name(sym, name, Some(sym.fns[fn_idx].file))
}

/// Name-based resolution with the ambiguity stoplist and candidate cap.
fn by_name(sym: &Symbols, name: &str, prefer_file: Option<usize>) -> Vec<usize> {
    if RESOLVE_STOPLIST.contains(&name) {
        return vec![];
    }
    let Some(all) = sym.fns_by_name.get(name) else { return vec![] };
    if let Some(fi) = prefer_file {
        let local: Vec<usize> = all.iter().copied().filter(|&i| sym.fns[i].file == fi).collect();
        if !local.is_empty() {
            return local;
        }
    }
    if all.len() > 3 {
        return vec![];
    }
    all.clone()
}

/// Statement context of a lock acquisition (what owns the guard).
enum Ctx {
    /// `let g = ...;` — named binding (block-scoped when preserving).
    Let { name: Option<String> },
    /// `if let` / `while let` / `match` header: temporary lives through
    /// the following block.
    ThroughBlock,
    /// Plain `if`/`while` condition: dropped at the `{`.
    Cond,
    /// Anything else: dropped at end of statement.
    Temporary,
}

/// Computes the guard live-range end for the acquisition whose method
/// ident is at `m` and closing paren at `pc`, clamped to `close`.
fn guard_end(toks: &[Tok], m: usize, pc: usize, close: usize) -> usize {
    // Receiver chain start: walk `a.b.c` backwards from the receiver.
    let mut r = m - 2; // receiver ident
    while r >= 2 && toks[r - 1].text == "." && toks[r - 2].kind == TokKind::Ident {
        r -= 2;
    }
    // Skip a leading `&`/`&mut`.
    let mut c = r; // chain start
    while c >= 1 && matches!(toks[c - 1].text.as_str(), "&" | "mut" | "*") {
        c -= 1;
    }

    let ctx = statement_ctx(toks, c);
    match ctx {
        Ctx::Let { name } => {
            let (stmt_end, preserving) = preserving_chain(toks, pc, close);
            if preserving {
                block_end_or_drop(toks, stmt_end, name.as_deref(), close)
            } else {
                stmt_end
            }
        }
        Ctx::ThroughBlock => {
            // Forward to the `{` at depth 0, then through its block.
            let mut depth = 0isize;
            let mut j = pc + 1;
            while j < close {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth <= 0 => {
                        return crate::engine::matching_brace(toks, j).unwrap_or(close).min(close);
                    }
                    ";" if depth <= 0 => return j, // defensive
                    _ => {}
                }
                j += 1;
            }
            close
        }
        Ctx::Cond => {
            let mut depth = 0isize;
            let mut j = pc + 1;
            while j < close {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth <= 0 => return j,
                    ";" if depth <= 0 => return j,
                    _ => {}
                }
                j += 1;
            }
            close
        }
        Ctx::Temporary => statement_end(toks, pc, close),
    }
}

/// Classifies the statement owning the expression starting at `c`.
fn statement_ctx(toks: &[Tok], c: usize) -> Ctx {
    if c == 0 {
        return Ctx::Temporary;
    }
    match toks[c - 1].text.as_str() {
        "=" => {
            // Walk back over the pattern looking for `let` (bounded).
            let mut k = c - 1;
            let mut steps = 0usize;
            while k > 0 && steps < 40 {
                k -= 1;
                steps += 1;
                match toks[k].text.as_str() {
                    "let" => {
                        let before = k.checked_sub(1).map(|j| toks[j].text.as_str());
                        if matches!(before, Some("if") | Some("while")) {
                            return Ctx::ThroughBlock;
                        }
                        // Binding name: first ident after `let` (skip `mut`).
                        let mut n = k + 1;
                        if toks.get(n).map(|t| t.text.as_str()) == Some("mut") {
                            n += 1;
                        }
                        let name = toks
                            .get(n)
                            .filter(|t| t.kind == TokKind::Ident && !is_keyword(&t.text))
                            .map(|t| t.text.clone());
                        return Ctx::Let { name };
                    }
                    ";" | "{" | "}" => {
                        // Plain assignment `x = ...;` — treat the target
                        // as the binding name.
                        let name = c
                            .checked_sub(2)
                            .map(|j| &toks[j])
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone());
                        return Ctx::Let { name };
                    }
                    _ => {}
                }
            }
            Ctx::Temporary
        }
        "match" => Ctx::ThroughBlock,
        "if" | "while" => Ctx::Cond,
        "in" => Ctx::ThroughBlock, // `for x in y.lock().iter()` — through the loop
        _ => Ctx::Temporary,
    }
}

/// Walks the method chain after the lock call's `)` at `pc`; returns
/// (index of the token ending the statement, whether the chain is
/// guard-preserving — empty, `.unwrap()`, `.expect(..)`, or `?` only).
fn preserving_chain(toks: &[Tok], pc: usize, close: usize) -> (usize, bool) {
    let mut j = pc + 1;
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("?") => j += 1,
            Some(".") => {
                let meth = toks.get(j + 1).map(|t| t.text.as_str());
                match meth {
                    Some("unwrap")
                        if toks.get(j + 2).map(|t| t.text.as_str()) == Some("(")
                            && toks.get(j + 3).map(|t| t.text.as_str()) == Some(")") =>
                    {
                        j += 4;
                    }
                    Some("expect") if toks.get(j + 2).map(|t| t.text.as_str()) == Some("(") => {
                        j = match_paren(toks, j + 2, close) + 1;
                    }
                    _ => break,
                }
            }
            _ => break,
        }
        if j >= close {
            break;
        }
    }
    if toks.get(j).map(|t| t.text.as_str()) == Some(";") {
        (j.min(close), true)
    } else {
        (statement_end(toks, pc, close), false)
    }
}

/// Index of the `)` matching the `(` at `open`, clamped to `close`.
fn match_paren(toks: &[Tok], open: usize, close: usize) -> usize {
    let mut depth = 0isize;
    for (k, t) in toks.iter().enumerate().take(close + 1).skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    close
}

/// End of the statement containing position `from`: the next `;` at
/// non-positive bracket depth, or the closing bracket that leaves the
/// expression.
fn statement_end(toks: &[Tok], from: usize, close: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from + 1;
    while j < close {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth <= 0 => return j,
            "," if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    close
}

/// End of a block-scoped guard: the `}` closing the enclosing block, or
/// an earlier `drop(name)`.
fn block_end_or_drop(toks: &[Tok], from: usize, name: Option<&str>, close: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from + 1;
    while j < close {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            "drop"
                if toks[j].kind == TokKind::Ident
                    && toks.get(j + 1).map(|t| t.text.as_str()) == Some("(") =>
            {
                if let (Some(n), Some(arg)) = (name, toks.get(j + 2)) {
                    if arg.text == n && toks.get(j + 3).map(|t| t.text.as_str()) == Some(")") {
                        return j;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    close
}

//! Report rendering: compiler-style text and machine-readable JSON.
//!
//! The JSON document is emitted via `gdp_obs::json::escape` and is
//! guaranteed to pass `gdp_obs::json::validate` (tested). The
//! `"findings_total"`/`"suppressed_total"` keys are adjacent on purpose:
//! `verify.sh` extracts them with `sed` for its summary line.

use crate::rules::RULE_IDS;
use crate::Report;
use gdp_obs::json::escape;
use std::fmt::Write as _;

/// Renders findings the way rustc does (`path:line:col: RULE: message`)
/// plus a per-rule summary block.
pub fn text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message);
    }
    if !report.findings.is_empty() {
        out.push('\n');
    }
    let by_rule = report.by_rule();
    let _ = writeln!(
        out,
        "gdp-lint: {} file(s) scanned, {} finding(s), {} suppressed",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
    let counts: Vec<String> =
        RULE_IDS.iter().map(|r| format!("{r}={}", by_rule.get(r).copied().unwrap_or(0))).collect();
    let _ = writeln!(out, "gdp-lint: {}", counts.join(" "));
    out
}

/// Renders the report as a single JSON object.
pub fn json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"findings_total\": {},", report.findings.len());
    let _ = writeln!(out, "  \"suppressed_total\": {},", report.suppressed.len());

    let by_rule = report.by_rule();
    out.push_str("  \"by_rule\": {");
    let counts: Vec<String> = RULE_IDS
        .iter()
        .map(|r| format!("\"{r}\": {}", by_rule.get(r).copied().unwrap_or(0)))
        .collect();
    out.push_str(&counts.join(", "));
    out.push_str("},\n");

    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            f.rule,
            escape(&f.path),
            f.line,
            f.col,
            escape(&f.message)
        );
    }
    if report.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }

    out.push_str("  \"suppressed\": [");
    for (i, s) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}}}",
            s.rule,
            escape(&s.path),
            s.line
        );
    }
    if report.suppressed.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

//! # gdp-lint
//!
//! An offline, dependency-free static analyzer for the GDP workspace. The
//! paper's security argument (§IV/§VII) rests on invariants the compiler
//! cannot see; each rule here turns one of them from a code-review
//! convention into a CI gate:
//!
//! | rule | invariant |
//! |---|---|
//! | `CT01` | MAC/tag/digest/signature byte comparisons are constant-time (`gdp_crypto::ct::eq`), never `==`/`!=` |
//! | `SK01` | secret key material never reaches `Debug`/format/trace output |
//! | `HP01` | hot-path/daemon modules contain no `unwrap`/`expect`/`panic!`/range-index panics |
//! | `OB01` | plain load/store counter increments only in modules allowlisted as single-writer |
//! | `WX01` | wire-enum decoders/dispatchers cover every variant; no silent `_ =>` swallowing |
//! | `US01` | `unsafe` requires a `// SAFETY:` comment; unsafe-free crates carry `#![forbid(unsafe_code)]` |
//! | `LK01` | the global lock graph is acyclic: no guard live-range (interprocedural, one call deep) acquires locks in a cycle-forming order |
//! | `LK02` | no blocking call (`fsync`, `write_all`, `pread_fill`, channel ops, `File::open`, `sleep`, `spawn`) while a hot-path lock is held |
//! | `CH01` | data-plane sends go to `bounded` channels, control lanes drain before data in dual-polling loops, cloned senders have a shutdown path |
//! | `OB02` | registered metric names, DESIGN.md's metric-namespace tables, and chaos conservation laws agree exactly |
//!
//! The first six are per-file token rules; the `LK`/`CH`/`OB02` family
//! runs on a two-pass, workspace-wide analysis: pass 1 builds a
//! cross-file symbol table and call graph ([`symbols`], [`callgraph`]),
//! pass 2 evaluates lock-guard live ranges, channel constructor kinds,
//! and the metric namespace against it.
//!
//! A finding is suppressed — deliberately and auditable — with a trailing
//! or preceding comment naming the rule *and a reason*:
//!
//! ```text
//! // gdp-lint: allow(SK01) -- render() writes the config file; the seed is its contents
//! ```
//!
//! Suppressions without a `-- reason` trailer are invalid and do not
//! suppress. The analyzer is a hand-rolled lexer (comment- and
//! string-aware, no `syn`) plus token-stream rules; it scans the whole
//! workspace in well under a second.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod symbols;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One diagnostic: a rule violation at an exact source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (`CT01`, `SK01`, ...).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description with the fix direction.
    pub message: String,
}

/// A finding that was matched by a valid `gdp-lint: allow` comment.
#[derive(Clone, Debug)]
pub struct Suppressed {
    /// Rule ID.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// Line of the suppressed finding.
    pub line: usize,
}

/// Analyzer output.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by valid suppression comments.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Per-rule counts of unsuppressed findings (all six rules present,
    /// zeros included, so CI logs show full coverage).
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut map: BTreeMap<&'static str, usize> =
            rules::RULE_IDS.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *map.entry(f.rule).or_insert(0) += 1;
        }
        map
    }
}

/// Rule configuration. [`LintConfig::default`] encodes the workspace
/// policy; tests may build custom configs.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Path fragments designating hot-path/daemon modules for `HP01`:
    /// the router forward path, the shard workers, the gdpd event loop,
    /// and the TCP transport.
    pub hot_path_modules: Vec<String>,
    /// `OB01` allowlist: `(path fragment, owning thread)` pairs for
    /// modules sanctioned to use single-writer (plain load/store) counter
    /// increments. The reason names the one thread that owns the writes.
    pub single_writer_allowlist: Vec<(String, String)>,
    /// Enum names whose dispatch/decode matches `WX01` polices.
    pub wire_enums: Vec<String>,
    /// Minimum distinct variants a match must name before `WX01` treats
    /// it as a dispatcher (small partial matches are exempt).
    pub dispatch_threshold: usize,
    /// Path fragments of modules where `LK02` polices blocking calls
    /// under a held lock. Deliberately *excludes* `seglog/mod.rs`: the
    /// segmented log's `LogInner` is an I/O-owning coarse lock by design
    /// (see DESIGN.md, "Lock policy") — its read path is kept honest by
    /// the fetch-outside/install-under-lock structure and the TSan
    /// smoke, not by this rule.
    pub blocking_sensitive_modules: Vec<String>,
    /// Call names `LK02` treats as blocking. Structural refinements in
    /// the call-graph scan keep the common ones precise (`join` must be
    /// argless, `open` must be `File::open`/`.open(`, channel ops must
    /// be method calls; `try_send`/`try_recv` never match).
    pub blocking_calls: Vec<String>,
    /// Path fragments of data-plane modules for `CH01`: sends must go
    /// to bounded lanes, control drains before data, cloned senders
    /// need a shutdown path.
    pub data_plane_modules: Vec<String>,
    /// Identifier segments marking a channel name as a control lane
    /// (`ctrl_rx`, `ev_tx`, ...): exempt from the bounded-lane check
    /// and required to drain first in dual-polling loops.
    pub control_lane_markers: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            hot_path_modules: vec![
                // The PR-4 forwarding fast path and its lookup structures.
                "crates/router/src/router.rs".into(),
                "crates/router/src/fib.rs".into(),
                "crates/router/src/vcache.rs".into(),
                // Shard workers and the node event loop.
                "crates/node/src/shard.rs".into(),
                "crates/node/src/runtime.rs".into(),
                "crates/node/src/bin/gdpd.rs".into(),
                // The threaded transport (reader/writer/accept loops).
                "crates/net/src/tcp.rs".into(),
                // The segmented log's group-commit writer: every durable
                // append crosses it, and a panic here loses the batch.
                "crates/store/src/seglog/writer.rs".into(),
                // The read fast lane: the block cache and fd pool sit on
                // every sealed-segment read a serving node performs.
                "crates/store/src/seglog/cache.rs".into(),
                "crates/store/src/seglog/fdpool.rs".into(),
                // The rule's own fixture corpus.
                "fixtures/hp01/".into(),
            ],
            single_writer_allowlist: vec![
                (
                    "crates/obs/src/lib.rs".into(),
                    "definition site of the sanctioned Counter::inc_single_writer primitive".into(),
                ),
                (
                    "crates/router/src/router.rs".into(),
                    "each Router instance is owned by exactly one thread: the gdpd event loop, \
                     or its shard worker (crates/node/src/shard.rs) when `shards > 1`"
                        .into(),
                ),
                ("fixtures/ob01/good.rs".into(), "fixture: models an allowlisted module".into()),
            ],
            wire_enums: vec!["Pdu".into(), "PduType".into(), "DataMsg".into()],
            dispatch_threshold: 4,
            blocking_sensitive_modules: vec![
                "crates/router/src/router.rs".into(),
                "crates/router/src/fib.rs".into(),
                "crates/router/src/vcache.rs".into(),
                "crates/node/src/shard.rs".into(),
                "crates/node/src/runtime.rs".into(),
                "crates/node/src/bin/gdpd.rs".into(),
                "crates/net/src/tcp.rs".into(),
                // The storage engine's capsule map is on every open;
                // recovery I/O must never run under it.
                "crates/store/src/engine.rs".into(),
                "crates/store/src/seglog/writer.rs".into(),
                "crates/store/src/seglog/cache.rs".into(),
                "crates/store/src/seglog/fdpool.rs".into(),
                // The rule's own fixture corpus.
                "fixtures/lk02/".into(),
            ],
            blocking_calls: [
                "fsync",
                "fdatasync",
                "sync_all",
                "sync_data",
                "write_all",
                "read_fill",
                "pread_fill",
                "read_exact",
                "sleep",
                "send",
                "recv",
                "recv_timeout",
                "open",
                "connect",
                "accept",
                "join",
                "spawn",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            data_plane_modules: vec![
                "crates/router/src/router.rs".into(),
                "crates/node/src/shard.rs".into(),
                "crates/node/src/runtime.rs".into(),
                "crates/node/src/bin/gdpd.rs".into(),
                "crates/net/src/tcp.rs".into(),
                // The rule's own fixture corpus.
                "fixtures/ch01/".into(),
            ],
            control_lane_markers: vec![
                "ctrl".into(),
                "control".into(),
                "ev".into(),
                "event".into(),
                "shutdown".into(),
                "wake".into(),
            ],
        }
    }
}

/// Convenience wrapper: lint `paths` under `root` with the default
/// workspace policy. `default_scan` selects the production file filter.
pub fn lint(root: &Path, paths: &[PathBuf], default_scan: bool) -> std::io::Result<Report> {
    engine::lint_paths(root, paths, &LintConfig::default(), default_scan)
}

//! `LK01` — lock-order cycles.
//!
//! Builds the global lock graph: an edge `A → B` is recorded whenever a
//! guard for `A` is still live (see `callgraph` for the live-range
//! rules) at a point that acquires `B` — either directly in the same
//! function, or one call deep through a resolved callee that acquires
//! `B` in its own body. Any cycle in that graph (including the trivial
//! `A → A` re-acquisition) is a potential deadlock: two threads taking
//! the edges in opposite order wedge forever, and a re-entrant `lock()`
//! on the shims' parking_lot-style mutex deadlocks a single thread.
//!
//! One finding is reported per distinct cycle, anchored at the outer
//! acquisition site of its lexicographically smallest edge, with every
//! edge's acquisition sites listed in the message.

use crate::callgraph::CallGraph;
use crate::engine::SourceFile;
use crate::symbols::Symbols;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One lock-graph edge with its witness sites.
struct Edge {
    /// Outer acquisition site: `path:line` plus exact (path, line, col)
    /// for the anchor finding.
    outer: (String, usize, usize),
    /// Inner acquisition site as `path:line`.
    inner: String,
    /// Optional call hop (`via \`f\``) when the edge is interprocedural.
    via: Option<String>,
}

/// Runs the rule over the whole workspace.
pub fn run(files: &[SourceFile], sym: &Symbols, cg: &CallGraph) -> Vec<Finding> {
    // Collect edges, first witness per (from, to) pair wins.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (i, ff) in cg.facts.iter().enumerate() {
        let fdef = &sym.fns[i];
        let file = &files[fdef.file];
        for a in &ff.acqs {
            if file.in_test.get(a.tok).copied().unwrap_or(false) || a.lock.starts_with("?.") {
                continue;
            }
            let outer = (file.path.clone(), a.line, a.col);
            // Direct nested acquisitions.
            for b in &ff.acqs {
                if b.tok > a.tok && b.tok <= a.end && !b.lock.starts_with("?.") {
                    edges.entry((a.lock.clone(), b.lock.clone())).or_insert_with(|| Edge {
                        outer: outer.clone(),
                        inner: format!("{}:{}", file.path, b.line),
                        via: None,
                    });
                }
            }
            // One call deep: callee's direct acquisitions.
            for c in &ff.calls {
                if c.tok <= a.tok || c.tok > a.end {
                    continue;
                }
                for &t in &c.targets {
                    let tdef = &sym.fns[t];
                    let tfile = &files[tdef.file];
                    for b in &cg.facts[t].acqs {
                        if tfile.in_test.get(b.tok).copied().unwrap_or(false)
                            || b.lock.starts_with("?.")
                        {
                            continue;
                        }
                        edges.entry((a.lock.clone(), b.lock.clone())).or_insert_with(|| Edge {
                            outer: outer.clone(),
                            inner: format!("{}:{}", tdef.path, b.line),
                            via: Some(format!("via `{}` ({}:{})", c.name, file.path, c.line)),
                        });
                    }
                }
            }
        }
    }

    // Adjacency for cycle search.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }

    // Every edge that closes a cycle: BFS from `to` back to `from`,
    // reconstruct the node sequence, canonicalize (rotate to the
    // smallest node), dedupe.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for (from, to) in edges.keys() {
        let Some(path_back) = bfs_path(&adj, to, from) else { continue };
        // Cycle node sequence: from -> to -> ... -> from.
        let mut cycle: Vec<String> = vec![from.clone()];
        cycle.extend(path_back.iter().map(|s| s.to_string()));
        cycle.pop(); // last == from again
        let canon = canonicalize(&cycle);
        if !seen.insert(canon.clone()) {
            continue;
        }
        // Describe every edge of the canonical rotation.
        let mut parts = Vec::new();
        for k in 0..canon.len() {
            let a = &canon[k];
            let b = &canon[(k + 1) % canon.len()];
            if let Some(e) = edges.get(&(a.clone(), b.clone())) {
                let via = e.via.as_deref().map(|v| format!(", {v}")).unwrap_or_default();
                parts.push(format!(
                    "`{a}` held at {}:{} while acquiring `{b}` at {}{via}",
                    e.outer.0, e.outer.1, e.inner
                ));
            }
        }
        let anchor = edges
            .get(&(canon[0].clone(), canon[(1) % canon.len()].clone()))
            .map(|e| e.outer.clone())
            .unwrap_or_else(|| (String::new(), 0, 0));
        let message = if canon.len() == 1 {
            format!(
                "lock `{}` acquired while a guard for it is already held ({}) — \
                 self-deadlock on re-entrant lock",
                canon[0],
                parts.join("; ")
            )
        } else {
            format!(
                "lock-order cycle {} — two threads taking these edges in opposite order \
                 deadlock: {}",
                canon.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(" → "),
                parts.join("; ")
            )
        };
        out.push(Finding { rule: "LK01", path: anchor.0, line: anchor.1, col: anchor.2, message });
    }
    out
}

/// Shortest path `from → … → to` (inclusive of `to`), or `None`.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    visited.insert(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            // Reconstruct.
            let mut path = vec![n];
            let mut cur = n;
            while cur != from {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if visited.insert(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// Rotates the cycle so the lexicographically smallest node leads.
fn canonicalize(cycle: &[String]) -> Vec<String> {
    let min = cycle.iter().enumerate().min_by_key(|(_, n)| n.as_str()).map(|(i, _)| i).unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        out.push(cycle[(min + k) % cycle.len()].clone());
    }
    out
}

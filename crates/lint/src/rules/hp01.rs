//! **HP01 — hot-path and daemon modules must not panic.**
//!
//! A panic in the router forward path, a shard worker, the gdpd event
//! loop, or the TCP transport threads takes down a federation node that
//! other domains depend on (paper §VI: the delegated infrastructure must
//! stay available to every writer routed through it). Those modules are
//! designated in [`crate::LintConfig::hot_path_modules`]; inside them,
//! non-test code may not contain:
//!
//! - `.unwrap()` / `.expect(...)`
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - range-indexing with a hard-coded numeric bound (`buf[..8]`), which
//!   panics when the input is shorter than the assumption
//!
//! Deliberate exceptions (e.g. thread-spawn at startup, before the data
//! plane is live) are suppressed with
//! `// gdp-lint: allow(HP01) -- reason`.

use crate::engine::SourceFile;
use crate::lexer::TokKind;
use crate::rules::finding;
use crate::{Finding, LintConfig};

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub(crate) fn run(file: &SourceFile, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    if !cfg.hot_path_modules.iter().any(|m| file.path.contains(m.as_str())) {
        return out;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        let t = &toks[i];

        // `.unwrap(` / `.expect(`
        if t.text == "."
            && matches!(toks.get(i + 1).map(|n| n.text.as_str()), Some("unwrap") | Some("expect"))
            && toks.get(i + 2).map(|n| n.text.as_str()) == Some("(")
        {
            let name = &toks[i + 1];
            out.push(finding(
                "HP01",
                file,
                name,
                format!(
                    "`.{}()` in hot-path module; return/propagate the error or \
                     restructure so the failure is impossible by construction",
                    name.text
                ),
            ));
            continue;
        }

        // panic-family macros
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            out.push(finding(
                "HP01",
                file,
                t,
                format!("`{}!` in hot-path module; hot paths must not panic", t.text),
            ));
            continue;
        }

        // `expr[.. 8]`-style range indexing with a numeric bound.
        if t.text == "["
            && i > 0
            && is_expr_end(&toks[i - 1])
            && range_index_with_numeric_bound(file, i)
        {
            out.push(finding(
                "HP01",
                file,
                t,
                "range-indexing with a hard-coded bound panics on short input in a \
                 hot-path module; use a fixed-size array or checked slicing"
                    .to_string(),
            ));
        }
    }
    out
}

/// Token kinds that can end an expression (making a following `[` an
/// index operation rather than an array literal).
fn is_expr_end(t: &crate::lexer::Tok) -> bool {
    matches!(t.kind, TokKind::Ident) && !is_keyword(&t.text) || t.text == ")" || t.text == "]"
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "if"
            | "else"
            | "match"
            | "while"
            | "for"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "break"
            | "continue"
            | "loop"
            | "as"
    )
}

/// True when the bracket group opening at `open` contains a `..`/`..=`
/// with a numeric-literal bound at depth 1.
fn range_index_with_numeric_bound(file: &SourceFile, open: usize) -> bool {
    let toks = &file.tokens;
    let mut depth = 0isize;
    let mut saw_range = false;
    let mut saw_num = false;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" | "(" | "{" => depth += 1,
            "]" | ")" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ".." | "..=" if depth == 1 => saw_range = true,
            _ => {
                if depth == 1 && toks[i].kind == TokKind::Num {
                    saw_num = true;
                }
            }
        }
        i += 1;
    }
    saw_range && saw_num
}

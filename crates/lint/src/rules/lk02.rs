//! `LK02` — blocking calls while a hot-path lock is held.
//!
//! For every guard acquired in a module on
//! [`crate::LintConfig::blocking_sensitive_modules`], any blocking
//! primitive (`fsync`, `write_all`, `pread_fill`, channel `send`/`recv`,
//! `File::open`, `thread::sleep`, `thread::spawn`, ...) reached inside
//! the guard's live range is reported — directly, or through a resolved
//! call whose may-block witness chain is included in the message.
//!
//! The fix direction is always the same: stage the I/O outside the
//! critical section (fetch-outside/install-under-lock), or split the
//! lock. Modules whose lock deliberately *owns* the I/O (the segmented
//! log's `LogInner`) are excluded from the list and documented in
//! DESIGN.md instead.

use crate::callgraph::CallGraph;
use crate::engine::SourceFile;
use crate::symbols::Symbols;
use crate::{Finding, LintConfig};
use std::collections::BTreeSet;

/// Runs the rule over the whole workspace.
pub fn run(files: &[SourceFile], sym: &Symbols, cg: &CallGraph, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (i, ff) in cg.facts.iter().enumerate() {
        let fdef = &sym.fns[i];
        if !cfg.blocking_sensitive_modules.iter().any(|m| fdef.path.contains(m.as_str())) {
            continue;
        }
        let file = &files[fdef.file];
        for a in &ff.acqs {
            if file.in_test.get(a.tok).copied().unwrap_or(false) {
                continue;
            }
            // Direct primitives inside the guard range.
            for p in &ff.prims {
                if p.tok <= a.tok || p.tok > a.end {
                    continue;
                }
                if !seen.insert((file.path.clone(), p.line, a.lock.clone())) {
                    continue;
                }
                let tok = &file.tokens[p.tok];
                out.push(Finding {
                    rule: "LK02",
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "blocking `{}` called while `{}` guard (acquired line {}) is held — \
                         move the I/O outside the critical section",
                        p.name, a.lock, a.line
                    ),
                });
            }
            // Calls that may block, one witness per site.
            for c in &ff.calls {
                if c.tok <= a.tok || c.tok > a.end {
                    continue;
                }
                let Some(why) = c.targets.iter().find_map(|&t| cg.blocked[t].as_ref()) else {
                    continue;
                };
                if !seen.insert((file.path.clone(), c.line, a.lock.clone())) {
                    continue;
                }
                let tok = &file.tokens[c.tok];
                out.push(Finding {
                    rule: "LK02",
                    path: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{}` may block ({}) while `{}` guard (acquired line {}) is held — \
                         move the blocking work outside the critical section",
                        c.name, why, a.lock, a.line
                    ),
                });
            }
        }
    }
    out
}

//! **SK01 — secret key material never reaches debug/trace output.**
//!
//! The read-access-control story (paper §V) is "selective sharing of
//! decryption keys": a `Debug` derive on a struct holding raw key bytes,
//! or a `format!`/trace call interpolating a key-named value, ships key
//! material to logs the infrastructure is explicitly untrusted to hold.
//!
//! Two detections, both in non-test code:
//!
//! 1. `#[derive(.. Debug ..)]` on a struct with a raw secret field — a
//!    field whose name has a `seed`/`secret`/`key` segment *and* whose
//!    type is raw bytes (`[u8; N]`), or whose type names a secret type
//!    (`SecretKey`, `SessionKey`). Fix: a manual redacting impl
//!    (`write!(f, "SecretKey(…redacted…)")`). Types like
//!    `gdp_crypto::SigningKey` already redact themselves, so fields of
//!    those types are fine to derive through.
//! 2. Format-like macros (`format!`, `println!`, `write!`, `panic!`,
//!    log-style macros) and `.trace(...)`/`to_json` calls whose arguments
//!    mention a secret-named identifier (`seed`, `flow_key`,
//!    `session_key`, `signing_key`, ...).

use crate::engine::SourceFile;
use crate::lexer::{Tok, TokKind};
use crate::rules::{attr_span, finding, ident_segments, is_screaming};
use crate::Finding;

/// Type names that are secret wherever they appear.
const SECRET_TYPES: [&str; 2] = ["SecretKey", "SessionKey"];

/// Exact identifiers that are secret values in format/trace position.
const SECRET_VALUE_IDENTS: [&str; 9] = [
    "flow_key",
    "session_key",
    "signing_key",
    "read_key",
    "mac_key",
    "secret_key",
    "private_key",
    "key_material",
    "ikm",
];

/// Name segments that make a *raw-bytes* field secret.
const SECRET_FIELD_SEGMENTS: [&str; 3] = ["seed", "secret", "key"];

/// Format-like macro names.
const FORMAT_MACROS: [&str; 16] = [
    "format",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug",
    "trace",
    "info",
    "warn",
    "error",
];

pub(crate) fn run(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    derive_debug_on_secrets(file, &mut out);
    format_leaks(file, &mut out);
    out
}

/// Detection 1: `derive(Debug)` (or `Display`) on secret-bearing structs.
fn derive_debug_on_secrets(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "#" || file.in_test[i] {
            i += 1;
            continue;
        }
        let (attr_end, ok) = attr_span(toks, i);
        if !ok {
            break;
        }
        let attr = &toks[i..attr_end];
        let derives_debug = attr.iter().any(|t| t.text == "derive")
            && attr.iter().any(|t| t.text == "Debug" || t.text == "Display");
        if !derives_debug {
            i = attr_end;
            continue;
        }
        // Skip further attributes, find `struct Name`.
        let mut j = attr_end;
        while j < toks.len() && toks[j].text == "#" {
            let (end, ok) = attr_span(toks, j);
            if !ok {
                break;
            }
            j = end;
        }
        while j < toks.len() && matches!(toks[j].text.as_str(), "pub" | "(" | ")" | "crate") {
            j += 1;
        }
        if toks.get(j).map(|t| t.text.as_str()) != Some("struct") {
            i = attr_end;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else { break };
        // Find the field block `{` (tuple structs scan `(` instead).
        let mut k = j + 2;
        let mut angle = 0isize;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | "(" if angle <= 0 => break,
                ";" => break,
                _ => {}
            }
            k += 1;
        }
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("{") => {
                if let Some(close) = crate::engine::matching_brace(toks, k) {
                    if let Some(field) = secret_named_field(&toks[k + 1..close]) {
                        out.push(finding(
                            "SK01",
                            file,
                            &toks[i],
                            format!(
                                "#[derive(Debug)] on secret-bearing struct `{}` (field `{}`); \
                                 write a manual impl that redacts the key material",
                                name_tok.text, field
                            ),
                        ));
                    }
                }
            }
            Some("(") => {
                // Tuple struct: flag when the element types name a secret type.
                let mut depth = 0isize;
                let mut end = k;
                while end < toks.len() {
                    match toks[end].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    end += 1;
                }
                if toks[k..end].iter().any(|t| SECRET_TYPES.contains(&t.text.as_str())) {
                    out.push(finding(
                        "SK01",
                        file,
                        &toks[i],
                        format!(
                            "#[derive(Debug)] on secret-bearing tuple struct `{}`; \
                             write a manual impl that redacts the key material",
                            name_tok.text
                        ),
                    ));
                }
            }
            _ => {}
        }
        i = attr_end;
    }
}

/// Scans a named-field block for a secret field; returns its name.
fn secret_named_field(field_toks: &[Tok]) -> Option<String> {
    // Fields at depth 0 look like: [pub] name : type-tokens, ...
    let mut depth = 0isize;
    let mut idx = 0usize;
    while idx < field_toks.len() {
        let t = &field_toks[idx];
        match t.text.as_str() {
            "{" | "(" | "[" => {
                depth += 1;
                idx += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                idx += 1;
            }
            "#" if depth == 0 => {
                let (end, ok) = attr_span(field_toks, idx);
                if !ok {
                    return None;
                }
                idx = end;
            }
            _ => {
                if depth == 0
                    && t.kind == TokKind::Ident
                    && field_toks.get(idx + 1).map(|n| n.text.as_str()) == Some(":")
                {
                    // Collect the type tokens up to the field-separating comma.
                    let name = &t.text;
                    let mut ty_end = idx + 2;
                    let mut ty_depth = 0isize;
                    while ty_end < field_toks.len() {
                        match field_toks[ty_end].text.as_str() {
                            "{" | "(" | "[" | "<" => ty_depth += 1,
                            "}" | ")" | "]" | ">" => ty_depth -= 1,
                            "," if ty_depth <= 0 => break,
                            _ => {}
                        }
                        ty_end += 1;
                    }
                    let ty = &field_toks[idx + 2..ty_end.min(field_toks.len())];
                    if field_is_secret(name, ty) {
                        return Some(name.clone());
                    }
                    idx = ty_end;
                } else {
                    idx += 1;
                }
            }
        }
    }
    None
}

fn field_is_secret(name: &str, ty: &[Tok]) -> bool {
    if ty.iter().any(|t| SECRET_TYPES.contains(&t.text.as_str())) {
        return true;
    }
    let named_secret =
        ident_segments(name).iter().any(|s| SECRET_FIELD_SEGMENTS.contains(&s.as_str()));
    let raw_bytes = ty.windows(2).any(|w| w[0].text == "[" && w[1].text == "u8");
    named_secret && raw_bytes
}

/// Detection 2: secret identifiers inside format-like macros and
/// `.trace(...)` / `.to_json(...)`-adjacent calls.
fn format_leaks(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] {
            continue;
        }
        // format-like: Ident ! ( ... )   trace-call: . trace ( ... )
        let (callee, args_open, kind) = if toks[i].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!")
            && matches!(toks.get(i + 2).map(|t| t.text.as_str()), Some("(") | Some("["))
        {
            (&toks[i], i + 2, "macro")
        } else if toks[i].text == "."
            && matches!(toks.get(i + 1).map(|t| t.text.as_str()), Some("trace") | Some("to_json"))
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some("(")
        {
            (&toks[i + 1], i + 2, "call")
        } else {
            continue;
        };
        let mut depth = 0isize;
        let mut j = args_open;
        let mut last_line = toks[args_open].line;
        while j < toks.len() {
            last_line = toks[j].line;
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    let t = &toks[j];
                    if t.kind == TokKind::Ident
                        && !is_screaming(&t.text)
                        && is_secret_value(&t.text)
                    {
                        out.push(finding(
                            "SK01",
                            file,
                            t,
                            format!(
                                "secret-named value `{}` reaches {} `{}` output; \
                                 key material must never be formatted or traced",
                                t.text, kind, callee.text
                            ),
                        ));
                    }
                }
            }
            j += 1;
        }
        // Rust 2021 inline format captures (`"{seed:?}"`) put the
        // identifier inside the string literal; scan the literals spanned
        // by this call for secret-named captures.
        let first_line = toks[args_open].line;
        for lit in &file.strings {
            if lit.line < first_line || lit.line > last_line {
                continue;
            }
            for cap in inline_captures(&lit.text) {
                if !is_screaming(&cap) && is_secret_value(&cap) {
                    out.push(Finding {
                        rule: "SK01",
                        path: file.path.clone(),
                        line: lit.line,
                        col: 1,
                        message: format!(
                            "secret-named value `{cap}` reaches {kind} `{}` output via an \
                             inline format capture; key material must never be formatted \
                             or traced",
                            callee.text
                        ),
                    });
                }
            }
        }
    }
}

/// Identifiers captured inline by a format string: `{seed}`, `{seed:?}`.
/// `{{` escapes and positional/spec-only captures (`{}`, `{0}`, `{:x}`)
/// yield nothing.
fn inline_captures(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped brace
            continue;
        }
        let mut j = i + 1;
        let mut name = String::new();
        while j < bytes.len() {
            let c = bytes[j];
            if c.is_ascii_alphanumeric() || c == b'_' {
                name.push(c as char);
                j += 1;
            } else {
                break;
            }
        }
        let terminated = matches!(bytes.get(j), Some(b'}') | Some(b':'));
        let is_ident =
            name.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false);
        if terminated && is_ident {
            out.push(name);
        }
        i = j.max(i + 1);
    }
    out
}

fn is_secret_value(ident: &str) -> bool {
    if SECRET_VALUE_IDENTS.contains(&ident) {
        return true;
    }
    ident_segments(ident).iter().any(|s| s == "seed" || s == "secret")
}

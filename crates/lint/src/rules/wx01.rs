//! **WX01 — wire-enum dispatch exhaustiveness.**
//!
//! The wire protocol evolves: when a `PduType`/`DataMsg` variant is
//! added, every decoder and dispatcher must make a decision about it. A
//! quiet `_ =>` arm turns "forgot to handle the new variant" into silent
//! message loss instead of a compile error (the exact bug class the PR-3
//! chaos harness exists to catch at runtime — this rule catches it at
//! lint time).
//!
//! Detection: a *dispatcher* is a `match` whose arm patterns name at
//! least [`crate::LintConfig::dispatch_threshold`] distinct variants of a
//! designated wire enum ([`crate::LintConfig::wire_enums`]). In a
//! dispatcher, a catch-all arm (`_ =>` or a bare binding) must be *loud*
//! — its body must reject (`Err`/`panic!`/`unreachable!`/`todo!`/
//! `bail`), as decoders do for unknown tags. A quiet catch-all is
//! flagged, with the declared variants it currently swallows listed in
//! the message. The fix is to enumerate the remaining variants
//! explicitly so rustc enforces exhaustiveness from then on.

use crate::engine::{matching_brace, SourceFile};
use crate::lexer::{Tok, TokKind};
use crate::rules::{finding, WorkspaceIndex};
use crate::{Finding, LintConfig};
use std::collections::BTreeSet;

const LOUD_IDENTS: [&str; 6] = ["Err", "panic", "unreachable", "todo", "unimplemented", "bail"];

pub(crate) fn run(file: &SourceFile, cfg: &LintConfig, ws: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "match" || toks[i].kind != TokKind::Ident || file.in_test[i] {
            i += 1;
            continue;
        }
        // The match body is the first `{` at zero bracket depth after the
        // scrutinee (struct literals cannot appear un-parenthesized there).
        let mut j = i + 1;
        let mut depth = 0isize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if toks.get(j).map(|t| t.text.as_str()) != Some("{") {
            i += 1;
            continue;
        }
        let Some(close) = matching_brace(toks, j) else { break };
        check_dispatch(file, cfg, ws, j, close, &mut out);
        i = j + 1; // descend into the body for nested matches
    }
    out
}

struct Arm {
    /// Token range of the pattern (up to the `=>`).
    pat: (usize, usize),
    /// Token range of the body.
    body: (usize, usize),
}

/// Splits the match body `toks[open+1..close]` into arms.
fn arms(toks: &[Tok], open: usize, close: usize) -> Vec<Arm> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Pattern: up to `=>` at depth 0.
        let pat_start = i;
        let mut depth = 0isize;
        let mut or_pipe = false;
        while i < close {
            match toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "|" if depth == 0 => or_pipe = true,
                "=>" if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let _ = or_pipe;
        if i >= close {
            break;
        }
        let pat_end = i; // exclusive, points at `=>`
        i += 1;
        // Body: a brace block, or tokens to the next `,` at depth 0.
        let body_start = i;
        let body_end;
        if toks.get(i).map(|t| t.text.as_str()) == Some("{") {
            let Some(bclose) = matching_brace(toks, i) else { break };
            body_end = bclose + 1;
            i = bclose + 1;
            if toks.get(i).map(|t| t.text.as_str()) == Some(",") {
                i += 1;
            }
        } else {
            let mut depth = 0isize;
            while i < close {
                match toks[i].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            body_end = i;
            if i < close {
                i += 1; // past the `,`
            }
        }
        if pat_end > pat_start {
            out.push(Arm { pat: (pat_start, pat_end), body: (body_start, body_end) });
        }
    }
    out
}

fn check_dispatch(
    file: &SourceFile,
    cfg: &LintConfig,
    ws: &WorkspaceIndex,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let arms = arms(toks, open, close);
    if arms.is_empty() {
        return;
    }

    for enum_name in &cfg.wire_enums {
        let Some(declared) = ws.enum_variants.get(enum_name.as_str()) else { continue };

        // Variants of this enum named across all arm patterns. Count only
        // qualified uses (`Enum::Variant`) plus bare idents that are
        // declared variants — bare idents in binding position (`t =>`) are
        // handled by the catch-all check instead.
        let mut named: BTreeSet<&str> = BTreeSet::new();
        let mut catch_all: Option<&Arm> = None;
        for arm in &arms {
            let pat = &toks[arm.pat.0..arm.pat.1];
            let mut qualified_hit = false;
            for w in pat.windows(3) {
                if w[0].text == *enum_name
                    && w[1].text == "::"
                    && declared.contains(w[2].text.as_str())
                {
                    named.insert(w[2].text.as_str());
                    qualified_hit = true;
                }
            }
            if !qualified_hit {
                for t in pat {
                    if t.kind == TokKind::Ident && declared.contains(t.text.as_str()) {
                        named.insert(t.text.as_str());
                    }
                }
            }
            if is_catch_all(pat) {
                catch_all = Some(arm);
            }
        }
        if named.len() < cfg.dispatch_threshold {
            continue;
        }
        let Some(ca) = catch_all else { continue };
        let body = &toks[ca.body.0..ca.body.1.min(toks.len())];
        if body.iter().any(|t| LOUD_IDENTS.contains(&t.text.as_str())) {
            continue; // loud wildcard: rejects unknown variants, as decoders must
        }
        let missing: Vec<&str> =
            declared.iter().map(|s| s.as_str()).filter(|v| !named.contains(*v)).collect();
        let at = &toks[ca.pat.0];
        let msg = if missing.is_empty() {
            format!(
                "quiet catch-all in a {enum_name} dispatcher; it will silently swallow \
                 any future variant — enumerate the variants explicitly so rustc \
                 enforces exhaustiveness"
            )
        } else {
            format!(
                "quiet catch-all in a {enum_name} dispatcher silently swallows: {}; \
                 enumerate these variants explicitly so rustc enforces exhaustiveness",
                missing.join(", ")
            )
        };
        out.push(finding("WX01", file, at, msg));
        return; // one finding per match is enough
    }
}

/// A catch-all pattern: `_`, or a single non-keyword lowercase binding
/// (`t`, `other`), optionally with a leading `ref`/`mut`.
fn is_catch_all(pat: &[Tok]) -> bool {
    let pat: Vec<&Tok> = pat.iter().filter(|t| !matches!(t.text.as_str(), "ref" | "mut")).collect();
    match pat.as_slice() {
        [t] => {
            t.text == "_"
                || (t.kind == TokKind::Ident
                    && t.text.chars().next().map(|c| c.is_ascii_lowercase()).unwrap_or(false))
        }
        _ => false,
    }
}

//! `CH01` — channel discipline in data-plane modules.
//!
//! Three checks, all scoped to
//! [`crate::LintConfig::data_plane_modules`]:
//!
//! 1. **Bounded data lanes** — a `send`/`try_send` on an endpoint whose
//!    constructor was `unbounded()`/`channel()` is reported, unless the
//!    receiver chain is control-marked (`ctrl`, `ev`, `shutdown`, ... —
//!    see [`crate::LintConfig::control_lane_markers`]): an unbounded
//!    data lane converts overload into unbounded memory growth instead
//!    of typed backpressure.
//! 2. **Control before data** — any loop body polling both a
//!    control-marked and a data receiver must drain control first. This
//!    statically pins the shard workers' control-no-stall invariant:
//!    reorder the drains and the build fails here.
//! 3. **Shutdown evidence** — a cloned, classified sender constructed
//!    in a data-plane module must have a visible shutdown path: a
//!    `drop(name)` somewhere, or the name (or a container it is stored
//!    into) referenced inside a `*shutdown*`/`*close*`/`*stop*`/
//!    `*join*`/`*drain*` function. Senders parked in long-lived maps
//!    with no such path keep receiver loops alive forever.
//!
//! Endpoints whose name is bound to conflicting constructor kinds
//! anywhere in the workspace are skipped rather than guessed at.

use crate::engine::SourceFile;
use crate::lexer::TokKind;
use crate::rules::ident_segments;
use crate::symbols::{ChanKind, Symbols};
use crate::{Finding, LintConfig};
use std::collections::BTreeSet;

/// Runs the rule over the whole workspace.
pub fn run(files: &[SourceFile], sym: &Symbols, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        if !cfg.data_plane_modules.iter().any(|m| file.path.contains(m.as_str())) {
            continue;
        }
        unbounded_sends(file, sym, cfg, &mut out);
        drain_order(file, cfg, &mut out);
    }
    shutdown_evidence(files, sym, cfg, &mut out);
    out
}

/// True when any `_`-separated segment of `name` is a control marker.
fn is_control(name: &str, cfg: &LintConfig) -> bool {
    let segs = ident_segments(name);
    segs.iter().any(|s| cfg.control_lane_markers.iter().any(|m| m == s))
}

/// Check 1: sends on unbounded endpoints.
fn unbounded_sends(file: &SourceFile, sym: &Symbols, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !matches!(toks[i].text.as_str(), "send" | "try_send")
            || toks[i].kind != TokKind::Ident
            || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
            || i < 2
            || toks[i - 1].text != "."
            || toks[i - 2].kind != TokKind::Ident
            || file.in_test.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        // Receiver chain: `shared.ev_tx.send(..)` → [shared, ev_tx].
        let mut chain = vec![toks[i - 2].text.clone()];
        let mut r = i - 2;
        while r >= 2 && toks[r - 1].text == "." && toks[r - 2].kind == TokKind::Ident {
            r -= 2;
            chain.push(toks[r].text.clone());
        }
        if chain.iter().any(|seg| is_control(seg, cfg)) {
            continue;
        }
        let name = &toks[i - 2].text;
        let Some(ep) = sym.chan_kinds.get(name) else { continue };
        if ep.kind != ChanKind::Unbounded {
            continue;
        }
        out.push(Finding {
            rule: "CH01",
            path: file.path.clone(),
            line: toks[i].line,
            col: toks[i].col,
            message: format!(
                "data-plane `{}` on unbounded channel `{name}` (constructed {}:{}) — data \
                 lanes must be bounded so overload becomes backpressure, not memory growth",
                toks[i].text, ep.path, ep.line
            ),
        });
    }
}

/// Check 2: control lanes drained before data in dual-polling loops.
fn drain_order(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        let body = match toks[i].text.as_str() {
            "loop" if toks.get(i + 1).map(|t| t.text.as_str()) == Some("{") => {
                crate::engine::matching_brace(toks, i + 1).map(|c| (i + 1, c))
            }
            "while" | "for" => {
                // Find the body `{` at depth 0 after the header.
                let mut depth = 0isize;
                let mut j = i + 1;
                let mut open = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth <= 0 => {
                            open = Some(j);
                            break;
                        }
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                open.and_then(|o| crate::engine::matching_brace(toks, o).map(|c| (o, c)))
            }
            _ => None,
        };
        let Some((open, close)) = body else {
            i += 1;
            continue;
        };
        // Receives inside the loop (header included for `while let`):
        // classify by receiver name.
        let mut first_ctrl: Option<usize> = None;
        let mut first_data: Option<usize> = None;
        let mut data_site = 0usize;
        let mut ctrl_name = String::new();
        let mut data_name = String::new();
        for k in i..close {
            if !matches!(toks[k].text.as_str(), "recv" | "try_recv" | "recv_timeout")
                || toks.get(k + 1).map(|t| t.text.as_str()) != Some("(")
                || k < 2
                || toks[k - 1].text != "."
                || toks[k - 2].kind != TokKind::Ident
            {
                continue;
            }
            let recv = &toks[k - 2].text;
            if !ident_segments(recv).iter().any(|s| s == "rx") {
                continue;
            }
            if is_control(recv, cfg) {
                if first_ctrl.is_none() {
                    first_ctrl = Some(k);
                    ctrl_name = recv.clone();
                }
            } else if first_data.is_none() {
                first_data = Some(k);
                data_site = k;
                data_name = recv.clone();
            }
        }
        if let (Some(fc), Some(fd)) = (first_ctrl, first_data) {
            if fd < fc
                && !file.in_test.get(fd).copied().unwrap_or(false)
                && reported.insert(toks[data_site].line)
            {
                out.push(Finding {
                    rule: "CH01",
                    path: file.path.clone(),
                    line: toks[data_site].line,
                    col: toks[data_site].col,
                    message: format!(
                        "loop polls data lane `{data_name}` before draining control lane \
                         `{ctrl_name}` — control must be drained first or shutdown/reconfig \
                         stalls behind data backlog (control-no-stall invariant)"
                    ),
                });
            }
        }
        i = open + 1;
    }
}

/// Check 3: cloned data-plane senders need a visible shutdown path.
fn shutdown_evidence(
    files: &[SourceFile],
    sym: &Symbols,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    let shutdown_fams = ["shutdown", "close", "stop", "join", "drain", "finish"];
    for (name, ep) in &sym.chan_kinds {
        if !ep.sender
            || ep.kind == ChanKind::Conflicting
            || is_control(name, cfg)
            || !cfg.data_plane_modules.iter().any(|m| ep.path.contains(m.as_str()))
        {
            continue;
        }
        let mut names: BTreeSet<&str> = BTreeSet::new();
        names.insert(name.as_str());
        if let Some(aliases) = sym.chan_aliases.get(name) {
            names.extend(aliases.iter().map(|s| s.as_str()));
        }
        // Only senders that are actually cloned escape into long-lived
        // structures in a way this check can police.
        let cloned = files.iter().any(|f| {
            f.tokens.windows(4).any(|w| {
                w[0].kind == TokKind::Ident
                    && names.contains(w[0].text.as_str())
                    && w[1].text == "."
                    && w[2].text == "clone"
                    && w[3].text == "("
            })
        });
        if !cloned {
            continue;
        }
        // Evidence: drop(name) anywhere, or any alias referenced inside
        // a shutdown-family function.
        let dropped = files.iter().any(|f| {
            f.tokens.windows(4).any(|w| {
                w[0].text == "drop"
                    && w[1].text == "("
                    && names.contains(w[2].text.as_str())
                    && w[3].text == ")"
            })
        });
        let referenced = sym.fns.iter().any(|fd| {
            let lower = fd.name.to_lowercase();
            if !shutdown_fams.iter().any(|s| lower.contains(s)) {
                return false;
            }
            let toks = &files[fd.file].tokens;
            (fd.body.0..=fd.body.1)
                .any(|k| toks[k].kind == TokKind::Ident && names.contains(toks[k].text.as_str()))
        });
        if dropped || referenced {
            continue;
        }
        out.push(Finding {
            rule: "CH01",
            path: ep.path.clone(),
            line: ep.line,
            col: 1,
            message: format!(
                "sender `{name}` is cloned but has no visible shutdown path — no `drop({name})` \
                 and neither it nor a container it is stored in is referenced by any \
                 shutdown/close/stop/join/drain function; receiver loops outlive the component"
            ),
        });
    }
}

//! The rule engine: shared token helpers, the cross-file workspace index,
//! and the ten rules (one module each). Six are per-file token rules run
//! by [`run_all`]; the concurrency/namespace family (`LK01`, `LK02`,
//! `CH01`, `OB02`) runs once over the whole scan set via
//! [`run_workspace`] on the pass-1 symbol table and call graph.

pub mod ch01;
pub mod ct01;
pub mod hp01;
pub mod lk01;
pub mod lk02;
pub mod ob01;
pub mod ob02;
pub mod sk01;
pub mod us01;
pub mod wx01;

use crate::engine::SourceFile;
use crate::lexer::{Tok, TokKind};
use crate::{Finding, LintConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// All rule IDs, in report order.
pub const RULE_IDS: [&str; 10] =
    ["CH01", "CT01", "HP01", "LK01", "LK02", "OB01", "OB02", "SK01", "US01", "WX01"];

/// Cross-file facts rules need: wire-enum variant sets (`WX01`) and
/// per-crate `unsafe` inventory (`US01`).
pub struct WorkspaceIndex {
    /// Designated wire enums found in the scan set: name → declared
    /// variants. Wire enums are identified by name (see
    /// [`crate::LintConfig::wire_enums`]).
    pub enum_variants: BTreeMap<String, BTreeSet<String>>,
    /// Crate roots in the scan set: `src` dir → (root file path if
    /// scanned, crate contains `unsafe`, root carries
    /// `#![forbid(unsafe_code)]`).
    pub crates: BTreeMap<String, CrateFacts>,
}

/// Per-crate facts for `US01`'s crate-level check.
#[derive(Default)]
pub struct CrateFacts {
    /// The crate root (`lib.rs`/`main.rs`) path, when scanned.
    pub root: Option<String>,
    /// Any scanned file of the crate contains an `unsafe` token.
    pub has_unsafe: bool,
    /// The root file carries `#![forbid(unsafe_code)]`.
    pub root_forbids: bool,
}

impl WorkspaceIndex {
    /// Builds the index over every scanned file. Wire enums use the
    /// default designation list; per-run configs see the same index
    /// because designation is by name at rule time.
    pub fn build(files: &[SourceFile]) -> WorkspaceIndex {
        let mut enum_variants: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut crates: BTreeMap<String, CrateFacts> = BTreeMap::new();

        for file in files {
            for (name, variants) in enum_decls(&file.tokens) {
                enum_variants.entry(name).or_default().extend(variants);
            }

            if let Some(src_dir) = crate_src_dir(&file.path) {
                let facts = crates.entry(src_dir.clone()).or_default();
                if file.tokens.iter().any(|t| t.text == "unsafe") {
                    facts.has_unsafe = true;
                }
                let is_root = file.path == format!("{src_dir}/lib.rs")
                    || file.path == format!("{src_dir}/main.rs");
                if is_root {
                    facts.root = Some(file.path.clone());
                    facts.root_forbids = has_inner_forbid(&file.tokens);
                }
            }
        }
        WorkspaceIndex { enum_variants, crates }
    }
}

/// The `src` directory of the crate owning `path`, if any
/// (`crates/net/src/tcp.rs` → `crates/net/src`; `src/lib.rs` → `src`).
fn crate_src_dir(path: &str) -> Option<String> {
    if let Some(at) = path.find("/src/") {
        return Some(path[..at + 4].to_string());
    }
    if path.starts_with("src/") {
        return Some("src".to_string());
    }
    None
}

/// Detects `#![forbid(unsafe_code)]` anywhere in the token stream.
fn has_inner_forbid(tokens: &[Tok]) -> bool {
    tokens.windows(7).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
    })
}

/// Collects `enum Name { Variant, ... }` declarations.
fn enum_decls(tokens: &[Tok]) -> Vec<(String, BTreeSet<String>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "enum" && tokens[i].kind == TokKind::Ident {
            let Some(name_tok) = tokens.get(i + 1) else { break };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            // Find the `{` opening the body (skipping generics).
            let mut j = i + 2;
            let mut angle = 0isize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => break,
                    ";" => break, // not a declaration we understand
                    _ => {}
                }
                j += 1;
            }
            if tokens.get(j).map(|t| t.text.as_str()) != Some("{") {
                i += 1;
                continue;
            }
            let Some(close) = crate::engine::matching_brace(tokens, j) else { break };
            let mut variants = BTreeSet::new();
            let mut k = j + 1;
            let mut expect_variant = true;
            let mut depth = 0isize;
            while k < close {
                let t = &tokens[k];
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => expect_variant = true,
                    "#" if depth == 0 => {
                        // Skip variant attributes.
                        let (end, _) = attr_span(tokens, k);
                        k = end;
                        continue;
                    }
                    _ => {
                        if expect_variant && depth == 0 && t.kind == TokKind::Ident {
                            variants.insert(t.text.clone());
                            expect_variant = false;
                        }
                    }
                }
                k += 1;
            }
            out.push((name_tok.text.clone(), variants));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Span of the attribute starting at `at` (the `#`): index one past `]`.
pub fn attr_span(tokens: &[Tok], at: usize) -> (usize, bool) {
    let mut depth = 0isize;
    let mut i = at + 1;
    if tokens.get(i).map(|t| t.text.as_str()) == Some("!") {
        i += 1;
    }
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, true);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), false)
}

/// Lower-cased snake/camel segments of an identifier:
/// `expect_tag` → `[expect, tag]`, `SigningKey` → `[signing, key]`.
pub fn ident_segments(ident: &str) -> Vec<String> {
    let mut segs = Vec::new();
    for part in ident.split('_') {
        if part.is_empty() {
            continue;
        }
        let mut current = String::new();
        let chars: Vec<char> = part.chars().collect();
        for (i, &c) in chars.iter().enumerate() {
            let boundary = c.is_uppercase()
                && i > 0
                && (chars[i - 1].is_lowercase()
                    || chars.get(i + 1).map(|n| n.is_lowercase()).unwrap_or(false));
            if boundary && !current.is_empty() {
                segs.push(current.to_lowercase());
                current = String::new();
            }
            current.push(c);
        }
        if !current.is_empty() {
            segs.push(current.to_lowercase());
        }
    }
    segs
}

/// True for SCREAMING_CASE identifiers (constants — lengths, limits),
/// which are never secret values themselves.
pub fn is_screaming(ident: &str) -> bool {
    ident.chars().any(|c| c.is_ascii_uppercase()) && !ident.chars().any(|c| c.is_ascii_lowercase())
}

/// Builds a [`Finding`] at a token.
pub fn finding(rule: &'static str, file: &SourceFile, tok: &Tok, message: String) -> Finding {
    Finding { rule, path: file.path.clone(), line: tok.line, col: tok.col, message }
}

/// Runs every per-file rule over one file.
pub fn run_all(file: &SourceFile, cfg: &LintConfig, ws: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(ct01::run(file));
    out.extend(sk01::run(file));
    out.extend(hp01::run(file, cfg));
    out.extend(ob01::run(file, cfg));
    out.extend(wx01::run(file, cfg, ws));
    out.extend(us01::run(file, ws));
    out
}

/// Runs the workspace-wide rules (`LK01`, `LK02`, `CH01`, `OB02`) once
/// over the whole scan set: builds the pass-1 symbol table and call
/// graph, then evaluates each rule on it. `aux` carries files scanned
/// for conservation-law assertions only (the sim chaos suites); `root`
/// anchors `OB02`'s DESIGN.md lookup.
pub fn run_workspace(
    files: &[SourceFile],
    aux: &[SourceFile],
    cfg: &LintConfig,
    root: Option<&Path>,
    default_scan: bool,
) -> Vec<Finding> {
    let sym = crate::symbols::Symbols::build(files);
    let cg = crate::callgraph::CallGraph::build(files, &sym, cfg);
    let mut out = Vec::new();
    out.extend(lk01::run(files, &sym, &cg));
    out.extend(lk02::run(files, &sym, &cg, cfg));
    out.extend(ch01::run(files, &sym, cfg));
    out.extend(ob02::run(files, aux, root, default_scan));
    out
}

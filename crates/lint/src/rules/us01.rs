//! **US01 — `unsafe` is justified or forbidden.**
//!
//! Two checks, mirroring the standard-library convention:
//!
//! 1. Every `unsafe` keyword — in tests too; test UB is still UB — must
//!    be preceded by a `// SAFETY:` comment on the same line or within
//!    the two lines above it, stating why the invariants hold.
//! 2. A crate whose scanned sources contain no `unsafe` at all must pin
//!    that property with `#![forbid(unsafe_code)]` in its root
//!    (`lib.rs`/`main.rs`), so the first future `unsafe` block is a
//!    deliberate, reviewed decision rather than a drive-by.

use crate::engine::SourceFile;
use crate::rules::{finding, WorkspaceIndex};
use crate::Finding;

pub(crate) fn run(file: &SourceFile, ws: &WorkspaceIndex) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;

    for (i, t) in toks.iter().enumerate() {
        if t.text != "unsafe" {
            continue;
        }
        // `#![forbid(unsafe_code)]` / `#[allow(unsafe_code)]` attribute
        // mentions are not unsafe blocks.
        if i > 0 && matches!(toks[i - 1].text.as_str(), "(" | ",") {
            continue;
        }
        let justified = (t.line.saturating_sub(2)..=t.line)
            .any(|l| file.comment_on_line_contains(l, "SAFETY:"));
        if !justified {
            out.push(finding(
                "US01",
                file,
                t,
                "`unsafe` without a preceding `// SAFETY:` comment; state why the \
                 invariants hold"
                    .to_string(),
            ));
        }
    }

    // Crate-level check, reported once, on the crate root file.
    if let Some((_, facts)) =
        ws.crates.iter().find(|(_, f)| f.root.as_deref() == Some(file.path.as_str()))
    {
        if !facts.has_unsafe && !facts.root_forbids {
            out.push(Finding {
                rule: "US01",
                path: file.path.clone(),
                line: 1,
                col: 1,
                message: "crate contains no unsafe code but its root lacks \
                          `#![forbid(unsafe_code)]`; add it so future unsafe is a \
                          deliberate decision"
                    .to_string(),
            });
        }
    }
    out
}

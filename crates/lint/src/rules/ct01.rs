//! **CT01 — constant-time comparison of authenticator bytes.**
//!
//! Comparing a MAC, tag, digest, or signature with `==`/`!=` leaks the
//! position of the first differing byte through timing (paper §V: secure
//! responses authenticate with HMACs; a timing oracle on the comparison
//! forges them byte by byte). Such comparisons must go through
//! `gdp_crypto::ct::eq`.
//!
//! Detection: for every `==`/`!=` token in non-test code, scan the two
//! operand windows (token runs bounded by expression separators). If
//! either window mentions an identifier with a `mac`/`hmac`/`tag`/
//! `digest`/`sig`/`signature` name segment, the comparison is flagged.
//! Windows containing `.len()` are exempt — length is public — as are
//! SCREAMING_CASE constants (`TAG_LEN`).

use crate::engine::SourceFile;
use crate::lexer::TokKind;
use crate::rules::{finding, ident_segments, is_screaming};
use crate::Finding;

/// Name segments that mark a value as an authenticator.
const SECRET_CMP_SEGMENTS: [&str; 6] = ["mac", "hmac", "tag", "digest", "sig", "signature"];

/// Tokens that bound an operand window at bracket depth zero.
const WINDOW_BOUNDARY: [&str; 15] =
    [";", ",", "&&", "||", "=", "==", "!=", "=>", "return", "if", "while", "match", "{", "}", "?"];

pub(crate) fn run(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.in_test[i] || (tok.text != "==" && tok.text != "!=") {
            continue;
        }
        if window_names_authenticator(file, i, Direction::Left)
            || window_names_authenticator(file, i, Direction::Right)
        {
            out.push(finding(
                "CT01",
                file,
                tok,
                format!(
                    "`{}` on MAC/tag/digest/signature bytes is not constant-time; \
                     use gdp_crypto::ct::eq",
                    tok.text
                ),
            ));
        }
    }
    out
}

enum Direction {
    Left,
    Right,
}

/// Scans one operand window of the comparison at `at`. Returns true when
/// the window names an authenticator identifier (and is not a `.len()`
/// length check).
fn window_names_authenticator(file: &SourceFile, at: usize, dir: Direction) -> bool {
    let toks = &file.tokens;
    let mut depth = 0isize;
    let mut idents: Vec<&str> = Vec::new();
    let mut has_len = false;

    let mut step = 0usize;
    loop {
        step += 1;
        let idx = match dir {
            Direction::Left => {
                if at < step {
                    break;
                }
                at - step
            }
            Direction::Right => {
                if at + step >= toks.len() {
                    break;
                }
                at + step
            }
        };
        let t = &toks[idx];
        let (open, close) = match dir {
            Direction::Left => (")]", "(["),
            Direction::Right => ("([", ")]"),
        };
        if t.text.len() == 1 && open.contains(&t.text) {
            depth += 1;
        } else if t.text.len() == 1 && close.contains(&t.text) {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && WINDOW_BOUNDARY.contains(&t.text.as_str()) {
            break;
        } else if t.kind == TokKind::Ident {
            if t.text == "len" {
                has_len = true;
            }
            idents.push(&t.text);
        }
        if step > 64 {
            break; // windows are short expressions; cap the scan
        }
    }

    if has_len {
        return false;
    }
    idents.iter().any(|id| {
        !is_screaming(id)
            && ident_segments(id).iter().any(|s| SECRET_CMP_SEGMENTS.contains(&s.as_str()))
    })
}

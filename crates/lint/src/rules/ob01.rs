//! **OB01 — single-writer counter discipline.**
//!
//! PR 4 introduced `Counter::inc_single_writer` — a plain
//! `load`/`store` pair that skips the atomic RMW on the forwarding fast
//! path. It is sound only when exactly one thread writes a given counter
//! instance. That ownership claim cannot be checked by the compiler, so
//! this rule pins it to an allowlist
//! ([`crate::LintConfig::single_writer_allowlist`]): every allowlist
//! entry names the one thread that owns the writes. Outside allowlisted
//! modules, non-test code may not:
//!
//! - call `.inc_single_writer(...)`, nor
//! - hand-roll the same bug with `.store(.. .load(..) ..)` — a non-atomic
//!   read-modify-write on a shared cell.

use crate::engine::SourceFile;
use crate::rules::finding;
use crate::{Finding, LintConfig};

pub(crate) fn run(file: &SourceFile, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.single_writer_allowlist.iter().any(|(frag, _)| file.path.contains(frag.as_str())) {
        return out;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.in_test[i] || toks[i].text != "." {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { break };
        if toks.get(i + 2).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        match name.text.as_str() {
            "inc_single_writer" => out.push(finding(
                "OB01",
                file,
                name,
                "inc_single_writer() outside the single-writer allowlist; either use the \
                 atomic inc(), or add this module to the allowlist naming the one \
                 owning thread"
                    .to_string(),
            )),
            "store" if args_contain_load(file, i + 2) => out.push(finding(
                "OB01",
                file,
                name,
                "non-atomic read-modify-write (.store of a .load) outside the \
                 single-writer allowlist; increments race and drop counts under \
                 concurrent writers"
                    .to_string(),
            )),
            _ => {}
        }
    }
    out
}

/// True when the paren group opening at `open` contains a `.load(` call.
fn args_contain_load(file: &SourceFile, open: usize) -> bool {
    let toks = &file.tokens;
    let mut depth = 0isize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "." if depth >= 1
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("load")
                && toks.get(i + 2).map(|t| t.text.as_str()) == Some("(") =>
            {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

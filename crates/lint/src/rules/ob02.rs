//! `OB02` — counter-namespace drift between code, docs, and chaos laws.
//!
//! Three directions, all name-based over literal strings:
//!
//! 1. **code → doc**: every metric registered with a literal name
//!    (`obs.counter("...")` / `.gauge(..)` / `.histogram(..)`, outside
//!    test code) must appear in the metric-namespace tables of the
//!    governing `DESIGN.md`.
//! 2. **doc → code**: every metric named in those tables must be
//!    registered somewhere in the scanned set — stale rows rot the
//!    operator documentation.
//! 3. **chaos → registry**: every counter asserted through
//!    `counter_value("scope", "name")` in a conservation law must be a
//!    registered metric; a law asserting a ghost counter is vacuous.
//!
//! The governing doc for a file is a sibling `DESIGN.md` in the file's
//! own directory when present (this is how the fixture corpus carries
//! its own table), else the workspace-root `DESIGN.md` on default
//! scans. Files with no governing doc are skipped. Doc-side findings
//! are reported against the `DESIGN.md` line of the stale row.

use crate::engine::SourceFile;
use crate::lexer::TokKind;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One literal metric registration site.
struct Reg {
    name: String,
    path: String,
    line: usize,
    col: usize,
}

/// Runs the rule. `root` anchors doc lookup; without it (or with no doc
/// found for any file) only the chaos direction against an empty
/// registry is skipped entirely.
pub fn run(
    files: &[SourceFile],
    aux: &[SourceFile],
    root: Option<&Path>,
    default_scan: bool,
) -> Vec<Finding> {
    let Some(root) = root else { return Vec::new() };
    let mut out = Vec::new();

    // Literal registrations per file, grouped by governing doc.
    let mut regs: Vec<(Reg, Option<String>)> = Vec::new();
    let mut doc_cache: BTreeMap<String, bool> = BTreeMap::new();
    for file in files {
        let doc = governing_doc(&file.path, root, default_scan, &mut doc_cache);
        for reg in registrations(file) {
            regs.push((reg, doc.clone()));
        }
    }
    let all_names: BTreeSet<&str> = regs.iter().map(|(r, _)| r.name.as_str()).collect();

    // Per-doc: parse the tables once, run both directions.
    let docs: BTreeSet<String> =
        regs.iter().filter_map(|(_, d)| d.clone()).collect::<BTreeSet<_>>();
    // Docs that govern files with zero registrations still need the
    // doc→code direction (a table row with no code at all).
    let mut governed: BTreeSet<String> = docs;
    for file in files {
        if let Some(d) = governing_doc(&file.path, root, default_scan, &mut doc_cache) {
            governed.insert(d);
        }
    }
    for doc_rel in &governed {
        let Ok(text) = std::fs::read_to_string(root.join(doc_rel)) else { continue };
        let table = metric_table(&text);
        let doc_names: BTreeSet<&str> = table.iter().map(|(n, _)| n.as_str()).collect();
        let group_regs: BTreeSet<&str> = regs
            .iter()
            .filter(|(_, d)| d.as_deref() == Some(doc_rel.as_str()))
            .map(|(r, _)| r.name.as_str())
            .collect();
        for (reg, d) in &regs {
            if d.as_deref() == Some(doc_rel.as_str()) && !doc_names.contains(reg.name.as_str()) {
                out.push(Finding {
                    rule: "OB02",
                    path: reg.path.clone(),
                    line: reg.line,
                    col: reg.col,
                    message: format!(
                        "metric `{}` is registered here but missing from the metric-namespace \
                         table in {doc_rel} — document it or the operator surface drifts",
                        reg.name
                    ),
                });
            }
        }
        for (name, line) in &table {
            if !group_regs.contains(name.as_str()) {
                out.push(Finding {
                    rule: "OB02",
                    path: doc_rel.clone(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "metric `{name}` is documented in {doc_rel} but never registered in the \
                         scanned code — stale row, remove it or restore the metric"
                    ),
                });
            }
        }
    }

    // Chaos direction: counter_value("scope", "name") pairs everywhere
    // (scanned files and the aux conservation-law suites).
    if !all_names.is_empty() {
        for file in files.iter().chain(aux.iter()) {
            for (name, line, col) in counter_values(file) {
                if !all_names.contains(name.as_str()) {
                    out.push(Finding {
                        rule: "OB02",
                        path: file.path.clone(),
                        line,
                        col,
                        message: format!(
                            "conservation law asserts counter `{name}` which is not registered \
                             anywhere — the assertion is vacuous"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The governing doc for `path`, as a workspace-relative path.
fn governing_doc(
    path: &str,
    root: &Path,
    default_scan: bool,
    cache: &mut BTreeMap<String, bool>,
) -> Option<String> {
    if let Some(at) = path.rfind('/') {
        let sibling = format!("{}/DESIGN.md", &path[..at]);
        let exists = *cache.entry(sibling.clone()).or_insert_with(|| root.join(&sibling).is_file());
        if exists {
            return Some(sibling);
        }
    }
    if default_scan {
        let exists =
            *cache.entry("DESIGN.md".into()).or_insert_with(|| root.join("DESIGN.md").is_file());
        if exists {
            return Some("DESIGN.md".into());
        }
    }
    None
}

/// The string literal carried by the `Lit` token at `idx`, matched
/// through the per-line side table by literal order on the line.
fn lit_text(file: &SourceFile, idx: usize) -> Option<String> {
    let toks = &file.tokens;
    let line = toks.get(idx)?.line;
    if toks[idx].kind != TokKind::Lit {
        return None;
    }
    let nth = toks[..idx].iter().filter(|t| t.kind == TokKind::Lit && t.line == line).count();
    file.strings.iter().filter(|s| s.line == line).nth(nth).map(|s| s.text.clone())
}

/// Literal registrations (`.counter("x")` etc.) outside test code.
fn registrations(file: &SourceFile) -> Vec<Reg> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !matches!(toks[i].text.as_str(), "counter" | "gauge" | "histogram")
            || toks[i].kind != TokKind::Ident
            || i == 0
            || toks[i - 1].text != "."
            || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
            || file.in_test.get(i).copied().unwrap_or(false)
        {
            continue;
        }
        let Some(name) = lit_text(file, i + 2) else { continue };
        out.push(Reg { name, path: file.path.clone(), line: toks[i].line, col: toks[i].col });
    }
    out
}

/// `counter_value("scope", "name")` literal pairs (test code included —
/// that is where conservation laws live).
fn counter_values(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "counter_value"
            || toks[i].kind != TokKind::Ident
            || toks.get(i + 1).map(|t| t.text.as_str()) != Some("(")
            || toks.get(i + 2).map(|t| t.kind) != Some(TokKind::Lit)
            || toks.get(i + 3).map(|t| t.text.as_str()) != Some(",")
            || toks.get(i + 4).map(|t| t.kind) != Some(TokKind::Lit)
        {
            continue;
        }
        if let Some(name) = lit_text(file, i + 4) {
            out.push((name, toks[i].line, toks[i].col));
        }
    }
    out
}

/// Metric names (with their line numbers) from every metric-namespace
/// table in a markdown document. A table qualifies when its header row
/// names both a "scope" and a "metric" column; names are the backticked
/// identifiers in the metric column of each data row.
fn metric_table(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut metric_col: Option<usize> = None;
    for (ln, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            metric_col = None;
            continue;
        }
        let cells: Vec<&str> = trimmed.split('|').collect();
        let is_sep = trimmed.chars().all(|c| matches!(c, '|' | '-' | ':' | ' '));
        if is_sep {
            continue;
        }
        match metric_col {
            None => {
                let lower: Vec<String> = cells.iter().map(|c| c.to_lowercase()).collect();
                if lower.iter().any(|c| c.contains("scope")) {
                    metric_col = lower.iter().position(|c| c.contains("metric"));
                }
            }
            Some(col) => {
                if let Some(cell) = cells.get(col) {
                    for name in backticked(cell) {
                        out.push((name, ln + 1));
                    }
                }
            }
        }
    }
    out
}

/// Every `` `name` `` span in a table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(a) = rest.find('`') {
        let tail = &rest[a + 1..];
        let Some(b) = tail.find('`') else { break };
        let name = &tail[..b];
        if !name.is_empty() && !name.contains(' ') {
            out.push(name.to_string());
        }
        rest = &tail[b + 1..];
    }
    out
}

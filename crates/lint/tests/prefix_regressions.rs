//! Regression pins for the real findings this PR fixed.
//!
//! Each test lints a snippet reproducing the *pre-fix* shape of actual
//! workspace code (file and line noted inline). If a rule regresses to
//! the point where it would no longer have caught the original bug, the
//! corresponding test fails — the analyzer must keep catching what it
//! already caught once.

use gdp_lint::engine::SourceFile;
use gdp_lint::rules::{run_all, run_workspace, WorkspaceIndex};
use gdp_lint::LintConfig;

/// Lints a snippet as if it lived at `path` (path matters: HP01 and OB01
/// are path-scoped).
fn findings_at(path: &str, src: &str) -> Vec<(String, usize)> {
    let file = SourceFile::parse(path, src);
    let ws = WorkspaceIndex::build(std::slice::from_ref(&file));
    run_all(&file, &LintConfig::default(), &ws)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

/// Runs the workspace-wide rules (LK01/LK02/CH01) over snippets placed
/// at real workspace paths (the module lists are path-scoped).
fn workspace_findings(files: &[(&str, &str)]) -> Vec<(String, String, usize)> {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    run_workspace(&parsed, &[], &LintConfig::default(), None, false)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.path, f.line))
        .collect()
}

#[test]
fn catches_prefix_shard_of_unwrap() {
    // crates/node/src/shard.rs:44 before the fix: a slice-index with a
    // hard-coded bound plus try_into().unwrap() on the forwarding path.
    let src = "pub fn shard_of(name: &Name, shards: usize) -> usize {\n\
               \x20   let word = u64::from_le_bytes(name.as_bytes()[..8].try_into().unwrap());\n\
               \x20   (word % shards.max(1) as u64) as usize\n\
               }\n";
    let found = findings_at("crates/node/src/shard.rs", src);
    assert!(found.contains(&("HP01".to_string(), 2)), "pre-fix shard_of must fire HP01: {found:?}");
}

#[test]
fn catches_prefix_tcp_writer_unwrap() {
    // crates/net/src/tcp.rs:608 before the fix: unwrap on the writer
    // thread's connection option.
    let src = "fn writer() {\n    let stream = conn.as_mut().unwrap();\n}\n";
    let found = findings_at("crates/net/src/tcp.rs", src);
    assert_eq!(found, vec![("HP01".to_string(), 2)]);
}

#[test]
fn catches_prefix_node_config_debug_derive() {
    // crates/node/src/config.rs:109 before the fix: derive(Debug) on
    // NodeConfig exposes the 32-byte identity seed in any debug dump.
    let src = "#[derive(Clone, Debug)]\n\
               pub struct NodeConfig {\n\
               \x20   pub role: Role,\n\
               \x20   pub seed: [u8; 32],\n\
               \x20   pub label: String,\n\
               }\n";
    let found = findings_at("crates/node/src/config.rs", src);
    assert_eq!(found, vec![("SK01".to_string(), 1)]);
}

#[test]
fn catches_prefix_client_quiet_catch_all() {
    // crates/client/src/client.rs:615 before the fix: the client's
    // DataMsg dispatcher ended in `_ => Vec::new()`, silently swallowing
    // eleven request-plane variants (and any future variant).
    let src = "pub enum DataMsg {\n\
               \x20   SessionAccept,\n\
               \x20   AppendAck,\n\
               \x20   ReadResp,\n\
               \x20   Event,\n\
               \x20   ErrResp,\n\
               \x20   Append,\n\
               \x20   Read,\n\
               }\n\
               fn handle(msg: DataMsg) -> Vec<u32> {\n\
               \x20   match msg {\n\
               \x20       DataMsg::SessionAccept => vec![1],\n\
               \x20       DataMsg::AppendAck => vec![2],\n\
               \x20       DataMsg::ReadResp => vec![3],\n\
               \x20       DataMsg::Event => vec![4],\n\
               \x20       DataMsg::ErrResp => vec![5],\n\
               \x20       _ => Vec::new(),\n\
               \x20   }\n\
               }\n";
    let found = findings_at("crates/client/src/client.rs", src);
    assert_eq!(found, vec![("WX01".to_string(), 17)]);
}

#[test]
fn catches_prefix_router_wildcard_forward() {
    // crates/router/src/router.rs:287 before the fix: guarded control
    // arms fell through to `_ => self.forward_into(...)`.
    let src = "pub enum PduType { Data, Advertise, Lookup, RouterControl, Error }\n\
               fn handle(&mut self, pdu: Pdu) {\n\
               \x20   match pdu.pdu_type {\n\
               \x20       PduType::Data => self.forward_into(pdu),\n\
               \x20       PduType::Advertise if dst == me => self.adv(pdu),\n\
               \x20       PduType::Lookup if dst == me => self.lookup(pdu),\n\
               \x20       PduType::RouterControl if dst == me => self.ctl(pdu),\n\
               \x20       _ => self.forward_into(pdu),\n\
               \x20   }\n\
               }\n";
    let found = findings_at("crates/router/src/router.rs", src);
    assert!(
        found.iter().any(|(r, l)| r == "WX01" && *l == 8),
        "pre-fix router dispatch must fire WX01: {found:?}"
    );
}

#[test]
fn catches_missing_crate_forbid() {
    // Every gdp crate root lacked `#![forbid(unsafe_code)]` before this
    // PR; the crate-level US01 drove adding it to all fifteen roots.
    let file = SourceFile::parse("crates/demo/src/lib.rs", "pub fn f() -> u8 { 1 }\n");
    let ws = WorkspaceIndex::build(std::slice::from_ref(&file));
    let found = run_all(&file, &LintConfig::default(), &ws);
    assert!(
        found.iter().any(|f| f.rule == "US01" && f.line == 1),
        "crate root without forbid must fire US01: {found:?}"
    );
}

#[test]
fn fixed_shapes_stay_clean() {
    // The post-fix shard_of (const-indexing a fixed-size array) must not
    // fire: the fix is panic-free by construction, not suppressed.
    let src = "pub fn shard_of(name: &Name, shards: usize) -> usize {\n\
               \x20   let b = name.as_bytes();\n\
               \x20   let word = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);\n\
               \x20   (word % shards.max(1) as u64) as usize\n\
               }\n";
    let found = findings_at("crates/node/src/shard.rs", src);
    assert!(found.is_empty(), "post-fix shard_of must be clean: {found:?}");
}

#[test]
fn catches_prefix_tcp_spawn_under_peers_lock() {
    // crates/net/src/tcp.rs:354 (and three sibling sites) before the
    // fix: `peers.lock()` held across `spawn_writer`, whose writer
    // thread creation is a blocking syscall — every data-plane send
    // contended on a lock that could be held across `spawn(2)`. The
    // fix (`writer_for`) spawns outside the lock.
    let pre = "use parking_lot::Mutex;\n\
               pub struct Shared {\n\
               \x20   peers: Mutex<u32>,\n\
               }\n\
               fn spawn_writer(shared: &Shared) -> u32 {\n\
               \x20   std::thread::Builder::new().spawn(move || {}).ok();\n\
               \x20   1\n\
               }\n\
               pub fn send(shared: &Shared) {\n\
               \x20   let mut peers = shared.peers.lock();\n\
               \x20   let tx = spawn_writer(shared);\n\
               \x20   *peers += tx;\n\
               }\n";
    let found = workspace_findings(&[("crates/net/src/tcp.rs", pre)]);
    assert!(
        found.iter().any(|(r, _, l)| r == "LK02" && *l == 11),
        "spawn under the peers lock must fire LK02: {found:?}"
    );

    // Post-fix shape: spawn first, lock second. Clean by construction.
    let post = "use parking_lot::Mutex;\n\
                pub struct Shared {\n\
                \x20   peers: Mutex<u32>,\n\
                }\n\
                fn spawn_writer(shared: &Shared) -> u32 {\n\
                \x20   std::thread::Builder::new().spawn(move || {}).ok();\n\
                \x20   1\n\
                }\n\
                pub fn send(shared: &Shared) {\n\
                \x20   let tx = spawn_writer(shared);\n\
                \x20   let mut peers = shared.peers.lock();\n\
                \x20   *peers += tx;\n\
                }\n";
    let found = workspace_findings(&[("crates/net/src/tcp.rs", post)]);
    assert!(found.is_empty(), "post-fix writer_for shape must be clean: {found:?}");
}

#[test]
fn catches_prefix_tcp_unbounded_ingest_lane() {
    // crates/net/src/tcp.rs:314/633 before the fix: the shared receive
    // queue was `unbounded()` and `read_loop` did a plain `send` — a
    // wedged consumer turned hostile traffic into unbounded heap
    // growth. The fix bounds the lane and sheds with `ingest_dropped`.
    let pre = "pub fn bind() {\n\
               \x20   let (pdu_tx, pdu_rx) = unbounded();\n\
               \x20   pdu_tx.send(1u8).ok();\n\
               \x20   let _ = pdu_rx.recv();\n\
               }\n";
    let found = workspace_findings(&[("crates/net/src/tcp.rs", pre)]);
    assert!(
        found.iter().any(|(r, _, l)| r == "CH01" && *l == 3),
        "unbounded ingest send must fire CH01: {found:?}"
    );

    let post = "pub fn bind(cap: usize) {\n\
                \x20   let (pdu_tx, pdu_rx) = bounded(cap);\n\
                \x20   if pdu_tx.try_send(1u8).is_err() {}\n\
                \x20   let _ = pdu_rx.recv();\n\
                }\n";
    let found = workspace_findings(&[("crates/net/src/tcp.rs", post)]);
    assert!(found.is_empty(), "bounded try_send lane must be clean: {found:?}");
}

#[test]
fn catches_prefix_engine_build_under_stores_lock() {
    // crates/store/src/engine.rs:138 before the fix: `open()` held the
    // hot `stores` map lock across `build()`, which replays a log from
    // disk on the file-backed paths. The fix builds outside the lock
    // and inserts with a first-wins re-check.
    let pre = "use parking_lot::Mutex;\n\
               pub struct StorageEngine {\n\
               \x20   stores: Mutex<u32>,\n\
               }\n\
               impl StorageEngine {\n\
               \x20   fn build(&self) -> u32 {\n\
               \x20       std::fs::File::open(\"x\").ok();\n\
               \x20       0\n\
               \x20   }\n\
               \x20   pub fn open(&self) -> u32 {\n\
               \x20       let mut stores = self.stores.lock();\n\
               \x20       let s = self.build();\n\
               \x20       *stores += s;\n\
               \x20       s\n\
               \x20   }\n\
               }\n";
    let found = workspace_findings(&[("crates/store/src/engine.rs", pre)]);
    assert!(
        found.iter().any(|(r, _, l)| r == "LK02" && *l == 12),
        "recovery I/O under the stores lock must fire LK02: {found:?}"
    );

    let post = "use parking_lot::Mutex;\n\
                pub struct StorageEngine {\n\
                \x20   stores: Mutex<u32>,\n\
                }\n\
                impl StorageEngine {\n\
                \x20   fn build(&self) -> u32 {\n\
                \x20       std::fs::File::open(\"x\").ok();\n\
                \x20       0\n\
                \x20   }\n\
                \x20   pub fn open(&self) -> u32 {\n\
                \x20       let s = self.build();\n\
                \x20       let mut stores = self.stores.lock();\n\
                \x20       *stores += s;\n\
                \x20       s\n\
                \x20   }\n\
                }\n";
    let found = workspace_findings(&[("crates/store/src/engine.rs", post)]);
    assert!(found.is_empty(), "post-fix open() shape must be clean: {found:?}");
}

#[test]
fn pins_fdpool_blockcache_single_lock_audit() {
    // The PR-9 read fast lane keeps FdPool and BlockCache as plain
    // fields of LogInner, owned by its one mutex — by construction no
    // two locks are ever held across the sealed-segment pread, and the
    // pool now hands out refcounted fds so the read borrows nothing.
    // This pin proves the analyzer would catch the tempting "split the
    // read path into its own pool/cache locks" refactor: both guards
    // held across the pread fire LK02, and the reversed invalidation
    // order closes an LK01 cycle.
    let split = "use parking_lot::Mutex;\n\
                 pub struct ReadPath {\n\
                 \x20   pool: Mutex<u32>,\n\
                 \x20   blocks: Mutex<u32>,\n\
                 }\n\
                 pub fn fetch(rp: &ReadPath, buf: &mut [u8]) {\n\
                 \x20   let pool = rp.pool.lock();\n\
                 \x20   let blocks = rp.blocks.lock();\n\
                 \x20   pread_fill(&*pool, 0, buf).ok();\n\
                 \x20   drop(blocks);\n\
                 \x20   drop(pool);\n\
                 }\n\
                 pub fn invalidate(rp: &ReadPath) {\n\
                 \x20   let blocks = rp.blocks.lock();\n\
                 \x20   let pool = rp.pool.lock();\n\
                 \x20   drop(pool);\n\
                 \x20   drop(blocks);\n\
                 }\n";
    let found = workspace_findings(&[("crates/store/src/seglog/cache.rs", split)]);
    let lk02: Vec<_> = found.iter().filter(|(r, _, _)| r == "LK02").collect();
    assert!(
        lk02.iter().any(|(_, _, l)| *l == 9),
        "pread under two read-path locks must fire LK02: {found:?}"
    );
    assert!(
        found.iter().any(|(r, _, _)| r == "LK01"),
        "opposite-order pool/cache acquisition must close an LK01 cycle: {found:?}"
    );
}

#[test]
fn pins_shard_control_before_data_drain_order() {
    // crates/node/src/shard.rs:609 — the PR-8 control-no-stall
    // invariant, now statically pinned: the worker loop drains the
    // control lane before polling data. Reverting the order (verified
    // against the real file) fires CH01 and fails the build.
    let reverted = "fn shard_worker(data_rx: Receiver<u8>, ctrl_rx: Receiver<u8>) {\n\
                    \x20   loop {\n\
                    \x20       match data_rx.recv_timeout(DATA_POLL) {\n\
                    \x20           Ok(batch) => {\n\
                    \x20               let _ = batch;\n\
                    \x20           }\n\
                    \x20           Err(_) => return,\n\
                    \x20       }\n\
                    \x20       while let Ok(msg) = ctrl_rx.try_recv() {\n\
                    \x20           let _ = msg;\n\
                    \x20       }\n\
                    \x20   }\n\
                    }\n";
    let found = workspace_findings(&[("crates/node/src/shard.rs", reverted)]);
    assert!(
        found.iter().any(|(r, _, l)| r == "CH01" && *l == 3),
        "data-before-control drain must fire CH01: {found:?}"
    );

    let upstream = "fn shard_worker(data_rx: Receiver<u8>, ctrl_rx: Receiver<u8>) {\n\
                    \x20   loop {\n\
                    \x20       while let Ok(msg) = ctrl_rx.try_recv() {\n\
                    \x20           let _ = msg;\n\
                    \x20       }\n\
                    \x20       match data_rx.recv_timeout(DATA_POLL) {\n\
                    \x20           Ok(batch) => {\n\
                    \x20               let _ = batch;\n\
                    \x20           }\n\
                    \x20           Err(_) => return,\n\
                    \x20       }\n\
                    \x20   }\n\
                    }\n";
    let found = workspace_findings(&[("crates/node/src/shard.rs", upstream)]);
    assert!(found.is_empty(), "control-first drain must be clean: {found:?}");
}

#[test]
fn seglog_writer_is_hot_path() {
    // crates/store/src/seglog/writer.rs joined the HP01 hot-path list
    // with the segmented storage engine: every durable append crosses
    // the group-commit writer, and a panic there loses the whole batch.
    // Pin that the path stays on the list — a snippet that would be
    // clean elsewhere must fire HP01 at this path.
    let src = "fn stage(buf: &mut Vec<u8>, entry: &[u8]) {\n\
               \x20   let len: u32 = entry.len().try_into().unwrap();\n\
               \x20   buf.extend_from_slice(&len.to_le_bytes());\n\
               }\n";
    let found = findings_at("crates/store/src/seglog/writer.rs", src);
    assert!(
        found.contains(&("HP01".to_string(), 2)),
        "unwrap in the seglog writer must fire HP01: {found:?}"
    );
    let elsewhere = findings_at("crates/store/src/file.rs", src);
    assert!(
        !elsewhere.iter().any(|(r, _)| r == "HP01"),
        "the same snippet off the hot-path list must not fire HP01: {elsewhere:?}"
    );
}

// Suppression fixture: an allow WITHOUT a reason is invalid and does
// not suppress — the finding below must still be reported.

pub fn check_mac(mac: &[u8], other: &[u8]) -> bool {
    // gdp-lint: allow(CT01)
    mac == other
}

pub fn wrong_rule(sig: &[u8], other: &[u8]) -> bool {
    // gdp-lint: allow(HP01) -- fixture: reason present but names the wrong rule
    sig != other
}

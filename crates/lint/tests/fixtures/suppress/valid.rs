// Suppression fixture: an allow WITH a reason suppresses the finding.

pub fn check_mac(mac: &[u8], other: &[u8]) -> bool {
    // gdp-lint: allow(CT01) -- fixture: deliberate, reasoned suppression
    mac == other
}

pub fn trailing(sig: &[u8], other: &[u8]) -> bool {
    sig != other // gdp-lint: allow(CT01) -- fixture: same-line suppression
}

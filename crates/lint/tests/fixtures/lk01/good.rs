// LK01 fixture: nested acquisition in a single consistent order — an
// edge in the lock graph, but no cycle, so no finding.

use parking_lot::Mutex;

pub struct PairB {
    pub gamma: Mutex<u8>,
    pub delta: Mutex<u8>,
}

pub fn first(p: &PairB) {
    let g = p.gamma.lock();
    let d = p.delta.lock();
    drop(d);
    drop(g);
}

pub fn second(p: &PairB) {
    let g = p.gamma.lock();
    let d = p.delta.lock();
    drop(d);
    drop(g);
}

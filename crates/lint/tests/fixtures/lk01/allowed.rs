// LK01 fixture: a deliberate re-entrant acquisition carrying a reasoned
// suppression — must land in the suppressed list, not the findings.

use parking_lot::Mutex;

pub struct Solo {
    pub omega: Mutex<u8>,
}

pub fn waived(s: &Solo) {
    // gdp-lint: allow(LK01) -- fixture: waived re-entrant acquisition exercising suppression on a workspace-wide rule
    let g = s.omega.lock();
    let again = s.omega.lock();
    drop(again);
    drop(g);
}

// LK01 fixture: one half of a lock-order cycle that spans two files
// (bad_peer.rs acquires the same locks in the opposite order), plus a
// self-deadlock re-acquisition. Fixture files are data, not compiled.

use parking_lot::Mutex;

pub struct PairA {
    pub alpha: Mutex<u8>,
    pub beta: Mutex<u8>,
}

pub fn forward_order(p: &PairA) {
    let a = p.alpha.lock();
    let b = p.beta.lock();
    drop(b);
    drop(a);
}

pub fn reenter(p: &PairA) {
    let g = p.alpha.lock();
    let again = p.alpha.lock();
    drop(again);
    drop(g);
}

// LK01 fixture: the other half of the cross-file cycle — acquires the
// PairA locks in the opposite order from bad.rs. Neither file alone
// contains a cycle; only the workspace-wide lock graph sees it.

use crate::PairA;

pub fn reverse_order(p: &PairA) {
    let b = p.beta.lock();
    let a = p.alpha.lock();
    drop(a);
    drop(b);
}

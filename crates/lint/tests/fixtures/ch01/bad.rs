// CH01 fixture: three violations of data-plane channel discipline. The
// path fragment `fixtures/ch01/` is on the default data-plane list.

use crossbeam::channel::{bounded, unbounded, Receiver};

pub fn pump() {
    let (pkt_tx, pkt_rx) = unbounded();
    pkt_tx.send(1u8).ok();
    let _ = pkt_rx.recv();
}

pub fn poll(pkt2_rx: &Receiver<u8>, ctrl_rx: &Receiver<u8>) {
    loop {
        if let Ok(v) = pkt2_rx.try_recv() {
            let _ = v;
        }
        if let Ok(c) = ctrl_rx.try_recv() {
            let _ = c;
        }
        break;
    }
}

pub fn fan_out() {
    let (feed_tx, feed_rx) = bounded(8);
    let worker = feed_tx.clone();
    worker.send(1u8).ok();
    let _ = feed_rx.recv();
}

// CH01 fixture: the compliant shapes — bounded data lane, control
// drained before data, cloned sender with a visible drop. No findings.

use crossbeam::channel::{bounded, Receiver};

pub fn pump_bounded() {
    let (frame_tx, frame_rx) = bounded(64);
    let extra = frame_tx.clone();
    extra.send(1u8).ok();
    let _ = frame_rx.recv();
    drop(frame_tx);
}

pub fn poll_ordered(frame2_rx: &Receiver<u8>, ctrl_rx: &Receiver<u8>) {
    loop {
        if let Ok(c) = ctrl_rx.try_recv() {
            let _ = c;
        }
        if let Ok(v) = frame2_rx.try_recv() {
            let _ = v;
        }
        break;
    }
}

pub fn event_lane_may_be_unbounded() {
    // Control lanes (`ev`, `ctrl`, ... markers) are exempt from the
    // bounded-lane check: they are low-rate by construction.
    let (ev_tx, ev_rx) = crossbeam::channel::unbounded();
    ev_tx.send(1u8).ok();
    let _ = ev_rx.recv();
}

// CH01 fixture: an unbounded data send carrying a reasoned suppression
// — must be recorded as suppressed, not reported.

use crossbeam::channel::unbounded;

pub fn legacy_pump() {
    let (legacy_tx, legacy_rx) = unbounded();
    // gdp-lint: allow(CH01) -- fixture: waived unbounded lane exercising suppression on a workspace-wide rule
    legacy_tx.send(1u8).ok();
    let _ = legacy_rx.recv();
}

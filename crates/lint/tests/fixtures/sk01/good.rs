// SK01 fixture: redaction and public values (must NOT fire).

pub struct Identity {
    pub label: String,
    pub seed: [u8; 32],
}

// The fix for the bad fixture: a manual impl that never touches the bytes.
impl std::fmt::Debug for Identity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Identity({}, seed: [redacted])", self.label)
    }
}

// Secret-*named* field of a non-raw type: `PublicTag` is not key bytes.
#[derive(Debug)]
pub struct TagInfo {
    pub key: PublicTag,
}

#[derive(Debug)]
pub struct PublicTag;

pub fn log_name(label: &str) -> String {
    format!("node label: {label}")
}

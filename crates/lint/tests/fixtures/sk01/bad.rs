// SK01 fixture: secret key material reaching Debug/format output (must fire).

#[derive(Clone, Debug)]
pub struct Identity {
    pub label: String,
    pub seed: [u8; 32],
}

pub fn log_key(session_key: &[u8]) -> String {
    format!("session key: {session_key:?}")
}

pub fn trace_seed(seed: [u8; 32]) {
    println!("booting with seed {seed:?}");
}

// OB02 fixture: namespace drift in both directions plus a vacuous
// conservation law. The sibling DESIGN.md is the governing doc.

pub fn install(scope: &gdp_obs::Scope) {
    let _ = scope.counter("frames_relayed");
    let _ = scope.counter("mystery_total");
}

pub fn law(m: &gdp_obs::Metrics) {
    assert_eq!(m.counter_value("fix", "frames_relayed"), 0);
    assert_eq!(m.counter_value("fix", "phantom"), 0);
}

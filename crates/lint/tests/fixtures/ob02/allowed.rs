// OB02 fixture: an undocumented registration carrying a reasoned
// suppression — must be recorded as suppressed, not reported.

pub fn install_waived(scope: &gdp_obs::Scope) {
    // gdp-lint: allow(OB02) -- fixture: waived undocumented metric exercising suppression on a workspace-wide rule
    let _ = scope.counter("undoc_but_waived");
}

// OB02 fixture: a registration present in the sibling DESIGN.md table
// and a law asserting a registered counter. No findings.

pub fn install_documented(scope: &gdp_obs::Scope) {
    let _ = scope.counter("frames_relayed");
}

pub fn sound_law(m: &gdp_obs::Metrics) {
    assert_eq!(m.counter_value("fix", "frames_relayed"), 0);
}

// CT01 fixture: timing-unsafe authenticator comparisons (must fire).

pub fn check_mac(expected_mac: &[u8], got_mac: &[u8]) -> bool {
    expected_mac == got_mac
}

pub fn reject_sig(signature: &[u8], wire_sig: &[u8]) -> bool {
    signature != wire_sig
}

pub fn digest_match(digest: [u8; 32], other: [u8; 32]) -> bool {
    digest == other
}

// CT01 fixture: comparisons that must NOT fire.

pub const TAG_LEN: usize = 16;

// Length checks are public: a window mentioning `.len()` is exempt.
pub fn check_len(tag: &[u8]) -> bool {
    tag.len() == TAG_LEN
}

// SCREAMING_CASE constants are lengths/limits, never secret bytes.
pub fn check_version(version: u8) -> bool {
    version == 3
}

// The sanctioned constant-time comparison takes the operands as call
// arguments; no `==` appears.
pub fn check_ct(mac: &[u8], other: &[u8]) -> bool {
    ct_eq(mac, other)
}

fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len()
}

#[cfg(test)]
mod tests {
    // Test assertions on authenticators are fine: tests are not oracles.
    #[test]
    fn mac_equality_in_tests_is_exempt() {
        let mac = [0u8; 4];
        assert!(mac == [0u8; 4]);
    }
}

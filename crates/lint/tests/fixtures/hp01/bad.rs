// HP01 fixture: panic sources in a hot-path module (must fire).
// The path fragment `fixtures/hp01/` is in the default hot-path list.

pub fn forward(buf: &[u8]) -> u8 {
    *buf.first().unwrap()
}

pub fn must(v: Option<u8>) -> u8 {
    v.expect("present")
}

pub fn header(buf: &[u8]) -> &[u8] {
    &buf[..8]
}

pub fn assert_state(ready: bool) {
    if !ready {
        panic!("not ready");
    }
}

// HP01 fixture: the same operations made panic-free (must NOT fire).

pub fn forward(buf: &[u8]) -> u8 {
    buf.first().copied().unwrap_or(0)
}

pub fn header(buf: &[u8]) -> Option<&[u8]> {
    buf.get(..8)
}

pub fn must(v: Option<u8>) -> u8 {
    v.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test code may unwrap: a failing test *should* panic.
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(forward(&[7]), Some(7).unwrap());
    }
}

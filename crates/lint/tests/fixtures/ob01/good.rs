// OB01 fixture: this path is on the default allowlist (it models a
// module owned by exactly one writer thread), so the single-writer
// increment is sanctioned here (must NOT fire).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &Counter) {
    counter.inc_single_writer(1);
}

pub fn read(cell: &AtomicU64) -> u64 {
    cell.load(Ordering::Relaxed)
}

pub struct Counter;

// OB01 fixture: single-writer counter discipline violations in a module
// that is NOT on the allowlist (must fire).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &Counter) {
    counter.inc_single_writer(1);
}

pub fn racy(cell: &AtomicU64) {
    cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
}

pub struct Counter;

// LK02 fixture: blocking work inside a hot-path critical section. The
// path fragment `fixtures/lk02/` is on the default blocking-sensitive
// list. One direct primitive, one interprocedural witness.

use parking_lot::Mutex;
use std::fs::File;

pub struct Ledger {
    pub cursor: Mutex<u64>,
}

pub fn flush_under_lock(l: &Ledger, f: &mut File) {
    let g = l.cursor.lock();
    f.sync_all().ok();
    drop(g);
}

fn settle() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn wait_under_lock(l: &Ledger) {
    let g = l.cursor.lock();
    settle();
    drop(g);
}

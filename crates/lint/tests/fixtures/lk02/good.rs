// LK02 fixture: the staged shape — state mutated under the lock, the
// blocking I/O done after the guard is released. No finding.

use parking_lot::Mutex;
use std::fs::File;

pub struct Journal {
    pub head: Mutex<u64>,
}

pub fn flush_staged(j: &Journal, f: &mut File) {
    {
        let mut g = j.head.lock();
        *g += 1;
    }
    f.sync_all().ok();
}

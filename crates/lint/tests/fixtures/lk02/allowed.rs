// LK02 fixture: a lock that deliberately owns its I/O, waived with a
// reasoned suppression — must be recorded as suppressed, not reported.

use parking_lot::Mutex;
use std::fs::File;

pub struct OwnedIo {
    pub gate: Mutex<u64>,
}

pub fn flush_owned(o: &OwnedIo, f: &mut File) {
    let g = o.gate.lock();
    // gdp-lint: allow(LK02) -- fixture: this guard deliberately owns the fsync (coarse I/O-owning lock pattern)
    f.sync_all().ok();
    drop(g);
}

// US01 fixture: justified unsafe (must NOT fire).

pub fn peek(v: &[u8]) -> u8 {
    // SAFETY: callers pass a non-empty slice, so the pointer is valid for
    // a one-byte read.
    unsafe { *v.as_ptr() }
}

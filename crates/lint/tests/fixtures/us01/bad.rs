// US01 fixture: unsafe without a SAFETY justification (must fire).

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

// WX01 fixture: dispatch shapes that must NOT fire.

pub enum PduType {
    Data,
    Advertise,
    Lookup,
    Control,
    Error,
}

// Fully exhaustive: rustc enforces coverage of future variants.
pub fn dispatch(t: PduType) -> u32 {
    match t {
        PduType::Data => 1,
        PduType::Advertise => 2,
        PduType::Lookup => 3,
        PduType::Control | PduType::Error => 4,
    }
}

// A loud wildcard (rejects unknown input) is the decoder idiom and is fine.
pub fn decode(tag: u8) -> Result<PduType, u8> {
    match tag {
        0 => Ok(PduType::Data),
        1 => Ok(PduType::Advertise),
        2 => Ok(PduType::Lookup),
        3 => Ok(PduType::Control),
        4 => Ok(PduType::Error),
        t => Err(t),
    }
}

// Below the dispatcher threshold: a small predicate match may use `_`.
pub fn is_data(t: &PduType) -> bool {
    match t {
        PduType::Data => true,
        _ => false,
    }
}

// WX01 fixture: a quiet catch-all in a wire-enum dispatcher (must fire).

pub enum DataMsg {
    Append,
    Read,
    Subscribe,
    Event,
    ErrResp,
    Replicate,
}

pub fn dispatch(msg: DataMsg) -> u32 {
    match msg {
        DataMsg::Append => 1,
        DataMsg::Read => 2,
        DataMsg::Subscribe => 3,
        DataMsg::Event => 4,
        _ => 0,
    }
}

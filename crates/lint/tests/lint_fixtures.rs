//! Fixture-corpus tests for every gdp-lint rule, the suppression
//! mechanism, the JSON output contract, and the binary's exit codes.
//!
//! The corpus lives in `tests/fixtures/<rule>/{bad.rs,good.rs}`; fixture
//! files are data, not compiled code. Assertions are line-accurate: a
//! lexer or rule regression that shifts a diagnostic by one line fails
//! here.

use gdp_lint::{engine, LintConfig, Report};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Workspace-relative fixture root (`crates/lint/tests`). Lint paths are
/// reported relative to this, so findings read `fixtures/ct01/bad.rs`.
fn tests_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests")
}

/// Lints one fixture directory with the default workspace policy.
fn lint_fixture(sub: &str) -> Report {
    let root = tests_root();
    let dir = root.join("fixtures").join(sub);
    assert!(dir.is_dir(), "missing fixture dir {}", dir.display());
    engine::lint_paths(&root, &[dir], &LintConfig::default(), false).expect("lint fixtures")
}

/// (rule, file, line) triples of a report's findings, sorted.
fn triples(report: &Report) -> Vec<(String, String, usize)> {
    report.findings.iter().map(|f| (f.rule.to_string(), f.path.clone(), f.line)).collect()
}

fn expect(rule: &str, file: &str, lines: &[usize]) -> Vec<(String, String, usize)> {
    lines.iter().map(|&l| (rule.to_string(), file.to_string(), l)).collect()
}

#[test]
fn ct01_flags_bad_and_passes_good() {
    let report = lint_fixture("ct01");
    assert_eq!(
        triples(&report),
        expect("CT01", "fixtures/ct01/bad.rs", &[4, 8, 12]),
        "CT01 fixture drift"
    );
}

#[test]
fn sk01_flags_bad_and_passes_good() {
    let report = lint_fixture("sk01");
    // Line 3: derive(Debug) on a struct with a raw seed field.
    // Lines 10/14: inline format captures of secret-named values.
    assert_eq!(
        triples(&report),
        expect("SK01", "fixtures/sk01/bad.rs", &[3, 10, 14]),
        "SK01 fixture drift"
    );
}

#[test]
fn hp01_flags_bad_and_passes_good() {
    let report = lint_fixture("hp01");
    // unwrap (5), expect (9), range index (13), panic! (18).
    assert_eq!(
        triples(&report),
        expect("HP01", "fixtures/hp01/bad.rs", &[5, 9, 13, 18]),
        "HP01 fixture drift"
    );
}

#[test]
fn ob01_flags_bad_and_passes_allowlisted_good() {
    let report = lint_fixture("ob01");
    // good.rs contains the identical inc_single_writer call but is on the
    // allowlist; only bad.rs may fire.
    assert_eq!(
        triples(&report),
        expect("OB01", "fixtures/ob01/bad.rs", &[7, 11]),
        "OB01 fixture drift"
    );
}

#[test]
fn wx01_flags_bad_and_passes_good() {
    let report = lint_fixture("wx01");
    assert_eq!(
        triples(&report),
        expect("WX01", "fixtures/wx01/bad.rs", &[18]),
        "WX01 fixture drift"
    );
    // The message must name exactly the swallowed variants.
    let msg = &report.findings[0].message;
    assert!(msg.contains("ErrResp, Replicate"), "missing variant list in: {msg}");
}

#[test]
fn us01_flags_bad_and_passes_good() {
    let report = lint_fixture("us01");
    assert_eq!(
        triples(&report),
        expect("US01", "fixtures/us01/bad.rs", &[4]),
        "US01 fixture drift"
    );
}

#[test]
fn lk01_flags_cross_file_cycle_and_self_deadlock() {
    let report = lint_fixture("lk01");
    // Line 13: anchor of the two-file cycle (bad.rs takes alpha→beta,
    // bad_peer.rs takes beta→alpha). Line 20: re-entrant self-cycle.
    assert_eq!(
        triples(&report),
        expect("LK01", "fixtures/lk01/bad.rs", &[13, 20]),
        "LK01 fixture drift"
    );
    // The cycle message must carry both edges' acquisition sites — the
    // proof that the analysis is workspace-wide, not per-file.
    let msg = &report.findings[0].message;
    assert!(msg.contains("fixtures/lk01/bad.rs:13"), "missing local edge in: {msg}");
    assert!(msg.contains("fixtures/lk01/bad_peer.rs:8"), "missing cross-file edge in: {msg}");
    assert!(msg.contains("`PairA.alpha` → `PairA.beta`"), "missing cycle path in: {msg}");
    assert!(report.findings[1].message.contains("self-deadlock"));
}

#[test]
fn lk02_flags_direct_and_interprocedural_blocking() {
    let report = lint_fixture("lk02");
    // Line 14: fsync directly under the guard. Line 24: a call whose
    // may-block witness chain reaches thread::sleep.
    assert_eq!(
        triples(&report),
        expect("LK02", "fixtures/lk02/bad.rs", &[14, 24]),
        "LK02 fixture drift"
    );
    let msg = &report.findings[1].message;
    assert!(msg.contains("`sleep` (fixtures/lk02/bad.rs:19)"), "missing witness chain in: {msg}");
}

#[test]
fn ch01_flags_unbounded_send_drain_order_and_shutdown_gap() {
    let report = lint_fixture("ch01");
    // Line 8: send on an unbounded data lane. Line 14: data polled
    // before control in a dual loop. Line 25: cloned sender with no
    // visible shutdown path (anchored at its construction).
    assert_eq!(
        triples(&report),
        expect("CH01", "fixtures/ch01/bad.rs", &[8, 14, 25]),
        "CH01 fixture drift"
    );
}

#[test]
fn ob02_flags_drift_in_both_directions_and_vacuous_laws() {
    let report = lint_fixture("ob02");
    // DESIGN.md line 10: documented-but-unregistered row. bad.rs line 6:
    // registered-but-undocumented metric. bad.rs line 11: conservation
    // law asserting a ghost counter.
    let mut want = expect("OB02", "fixtures/ob02/DESIGN.md", &[10]);
    want.extend(expect("OB02", "fixtures/ob02/bad.rs", &[6, 11]));
    assert_eq!(triples(&report), want, "OB02 fixture drift");
}

#[test]
fn workspace_rules_suppression_round_trip() {
    // Each new-rule fixture dir carries one reasoned allow; all four
    // must land in the suppressed list (auditable), never in findings.
    for (sub, file, line) in [
        ("lk01", "fixtures/lk01/allowed.rs", 12usize),
        ("lk02", "fixtures/lk02/allowed.rs", 14),
        ("ch01", "fixtures/ch01/allowed.rs", 9),
        ("ob02", "fixtures/ob02/allowed.rs", 6),
    ] {
        let report = lint_fixture(sub);
        let hit = report.suppressed.iter().any(|s| s.path == file && s.line == line);
        assert!(hit, "{sub}: expected a suppressed finding at {file}:{line}");
        assert!(
            !report.findings.iter().any(|f| f.path == file),
            "{sub}: allowed fixture must not produce findings"
        );
    }
}

#[test]
fn binary_mixed_per_file_and_workspace_findings() {
    // One per-file rule dir (ct01) plus one workspace rule dir (lk01)
    // in the same invocation: exit 1, and the JSON by_rule block counts
    // both families.
    let root = tests_root();
    let out = Command::new(env!("CARGO_BIN_EXE_gdp-lint"))
        .args(["--format", "json", "--root"])
        .arg(&root)
        .arg(root.join("fixtures/ct01"))
        .arg(root.join("fixtures/lk01"))
        .output()
        .expect("run gdp-lint");
    assert_eq!(out.status.code(), Some(1), "mixed corpus must fail the lint");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    gdp_obs::json::validate(&stdout).expect("binary JSON must validate");
    assert!(stdout.contains("\"CT01\": 3"), "per-file rule count missing: {stdout}");
    assert!(stdout.contains("\"LK01\": 2"), "workspace rule count missing: {stdout}");
}

#[test]
fn suppression_round_trip() {
    let report = lint_fixture("suppress");
    // valid.rs: both findings carry a reasoned allow — suppressed, and
    // *recorded* as suppressed (auditable, not invisible).
    // invalid.rs: a reason-less allow (line 6) and a wrong-rule allow
    // (line 11) must NOT suppress.
    assert_eq!(
        triples(&report),
        expect("CT01", "fixtures/suppress/invalid.rs", &[6, 11]),
        "invalid suppressions must not silence findings"
    );
    let mut suppressed: Vec<(String, usize)> =
        report.suppressed.iter().map(|s| (s.path.clone(), s.line)).collect();
    suppressed.sort();
    assert_eq!(
        suppressed,
        vec![
            ("fixtures/suppress/valid.rs".to_string(), 5),
            ("fixtures/suppress/valid.rs".to_string(), 9)
        ],
        "valid suppressions must be recorded"
    );
}

#[test]
fn all_rule_ids_covered_by_fixture_corpus() {
    let root = tests_root();
    let report = engine::lint_paths(&root, &[root.join("fixtures")], &LintConfig::default(), false)
        .expect("lint fixtures");
    let by_rule = report.by_rule();
    for rule in gdp_lint::rules::RULE_IDS {
        assert!(
            by_rule.get(rule).copied().unwrap_or(0) > 0,
            "fixture corpus has no {rule} finding — a rule with no known-bad \
             fixture is untested"
        );
    }
}

#[test]
fn json_output_is_valid_and_has_adjacent_totals() {
    let root = tests_root();
    let report = engine::lint_paths(&root, &[root.join("fixtures")], &LintConfig::default(), false)
        .expect("lint fixtures");
    let doc = gdp_lint::report::json(&report);
    gdp_obs::json::validate(&doc).expect("gdp-lint JSON must pass the gdp_obs validator");
    // verify.sh extracts these with sed; keep them present and adjacent.
    let f_at = doc.find("\"findings_total\"").expect("findings_total key");
    let s_at = doc.find("\"suppressed_total\"").expect("suppressed_total key");
    assert!(f_at < s_at, "findings_total must precede suppressed_total");
    // Empty-report JSON must be valid too.
    let empty = gdp_lint::report::json(&Report::default());
    gdp_obs::json::validate(&empty).expect("empty report JSON");
}

#[test]
fn binary_exits_nonzero_on_fixture_corpus() {
    let root = tests_root();
    let out = Command::new(env!("CARGO_BIN_EXE_gdp-lint"))
        .args(["--format", "json", "--root"])
        .arg(&root)
        .arg(root.join("fixtures"))
        .output()
        .expect("run gdp-lint");
    assert_eq!(out.status.code(), Some(1), "fixtures must fail the lint");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    gdp_obs::json::validate(&stdout).expect("binary JSON must validate");
    assert!(stdout.contains("\"findings_total\""));
}

#[test]
fn binary_is_clean_on_the_workspace() {
    // The acceptance bar for the whole PR: the production tree has zero
    // unsuppressed findings. Runs the same default scan as verify.sh.
    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = Command::new(env!("CARGO_BIN_EXE_gdp-lint"))
        .args(["--format", "text", "--root"])
        .arg(&ws_root)
        .output()
        .expect("run gdp-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "workspace must be lint-clean; findings:\n{stdout}");
}

#[test]
fn us01_crate_level_forbid_check() {
    // A crate with no unsafe and no `#![forbid(unsafe_code)]` in its root
    // gets a crate-level US01; adding the attribute clears it. Uses a
    // scratch tree because the real workspace is already compliant.
    let base = std::env::temp_dir().join(format!("gdp-lint-us01-{}", std::process::id()));
    let src = base.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch crate");

    std::fs::write(src.join("lib.rs"), "pub fn f() -> u8 { 1 }\n").expect("write lib.rs");
    let report = engine::lint_paths(&base, &[base.join("crates")], &LintConfig::default(), true)
        .expect("lint scratch");
    assert_eq!(
        triples(&report),
        expect("US01", "crates/demo/src/lib.rs", &[1]),
        "missing forbid must fire a crate-level US01"
    );

    std::fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\npub fn f() -> u8 { 1 }\n")
        .expect("rewrite lib.rs");
    let report = engine::lint_paths(&base, &[base.join("crates")], &LintConfig::default(), true)
        .expect("lint scratch");
    assert!(report.findings.is_empty(), "forbid must clear the finding");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn reports_are_deterministic() {
    let a = lint_fixture("ct01");
    let b = lint_fixture("ct01");
    assert_eq!(triples(&a), triples(&b));
    assert_eq!(gdp_lint::report::json(&a), gdp_lint::report::json(&b));
}

//! End-to-end acceptance test: a 3-node GDP cluster as real OS processes.
//!
//! Spawns three `gdpd` daemons on loopback — one router, two storage
//! replicas serving the same DataCapsule — then drives a verifying client
//! over real TCP sockets: session establishment, signed appends with
//! quorum durability (exercising server-to-server replication through the
//! router), verified range reads and membership proofs, and finally
//! replica failover: one storage process is killed and reads must succeed
//! from the survivor.

use gdp_capsule::{MetadataBuilder, PointerStrategy};
use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_client::VerifiedRead;
use gdp_crypto::SigningKey;
use gdp_node::{ClusterClient, HostSpec, NodeConfig, Role, StoreEngine, FOREVER};
use gdp_router::Router;
use gdp_server::{AckMode, ReadTarget};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A gdpd child process that is killed on drop (test panics must not
/// leak daemons).
struct Daemon {
    child: Child,
    listen: std::net::SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `gdpd <config>` and parses its status lines for the actual
/// listen address (configs use port 0).
fn spawn_gdpd(dir: &std::path::Path, name: &str, cfg: &NodeConfig) -> Daemon {
    let path = dir.join(format!("{name}.conf"));
    std::fs::write(&path, cfg.render()).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_gdpd"))
        .arg(&path)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn gdpd");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let listen = loop {
        let line =
            lines.next().expect("gdpd exited before printing status").expect("read gdpd stdout");
        if let Some(addr) = line.strip_prefix("gdpd listen ") {
            break addr.parse().expect("gdpd printed a bad listen addr");
        }
    };
    // Drain the remaining status lines in the background so the child
    // never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, listen }
}

/// The server identity a gdpd storage node derives from its config seed
/// (must match the derivation in `gdp_node::node::start`).
fn server_identity(seed: [u8; 32], label: &str) -> PrincipalId {
    let mut s = seed;
    s[0] ^= 0x5a;
    PrincipalId::from_seed(PrincipalKind::Server, &s, label)
}

#[test]
fn three_process_cluster_with_failover() {
    let dir = std::env::temp_dir().join(format!("gdp-live-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // --- Cluster identity plan (all deterministic from seeds) ---------
    let router_seed = [10u8; 32];
    let router_name = Router::from_seed(&router_seed, "r1").name();
    let s1 = server_identity([21u8; 32], "s1");
    let s2 = server_identity([22u8; 32], "s2");

    // The capsule and its delegations, issued by the owner out-of-band.
    let owner = SigningKey::from_seed(&[31u8; 32]);
    let writer_key = SigningKey::from_seed(&[32u8; 32]);
    let meta = MetadataBuilder::new()
        .writer(&writer_key.verifying_key())
        .set_str("description", "live-cluster e2e")
        .sign(&owner);
    let capsule = meta.name();
    let chain_for = |srv: &PrincipalId| {
        ServingChain::direct(
            AdCert::issue(&owner, capsule, srv.name(), false, Scope::Global, FOREVER),
            srv.principal().clone(),
        )
    };

    // --- Router first (storage configs need its live port) ------------
    let router = spawn_gdpd(
        &dir,
        "router",
        &NodeConfig {
            role: Role::Router,
            listen: "127.0.0.1:0".parse().unwrap(),
            seed: router_seed,
            label: "r1".into(),
            peers: vec![],
            router: None,
            data_dir: None,
            store_engine: StoreEngine::File,
            fsync: None,
            read_cache_bytes: None,
            max_open_segments: None,
            stats_path: None,
            hosts: vec![],
            shards: 1,
            shard_batch: 64,
            admission_rate: 0,
            admission_burst: 64,
        },
    );

    let storage_cfg =
        |seed: [u8; 32], label: &str, me: &PrincipalId, other: &PrincipalId| NodeConfig {
            role: Role::Storage,
            listen: "127.0.0.1:0".parse().unwrap(),
            seed,
            label: label.into(),
            peers: vec![router.listen],
            router: Some(router_name),
            data_dir: Some(dir.join(label)),
            store_engine: StoreEngine::File,
            fsync: None,
            read_cache_bytes: None,
            max_open_segments: None,
            stats_path: None,
            shards: 1,
            shard_batch: 64,
            admission_rate: 0,
            admission_burst: 64,
            hosts: vec![HostSpec {
                metadata: meta.clone(),
                chain: chain_for(me),
                peers: vec![other.name()],
            }],
        };
    let store1 = spawn_gdpd(&dir, "s1", &storage_cfg([21u8; 32], "s1", &s1, &s2));
    let store2 = spawn_gdpd(&dir, "s2", &storage_cfg([22u8; 32], "s2", &s2, &s1));

    // --- Client: session + replicated appends over real sockets -------
    let mut client = ClusterClient::connect(router.listen, router_name, &[41u8; 32], "cli")
        .expect("client attach");
    client.timeout = Duration::from_secs(20);
    client.track(&meta).expect("track");
    client.register_writer(&meta, writer_key, PointerStrategy::Chain).expect("register writer");

    client.session(capsule).expect("session establishment");
    assert!(client.core().has_session(&capsule));

    const N: u64 = 10;
    for i in 0..N {
        // Quorum(1): the serving replica must confirm replication to the
        // other storage process before acking.
        let seq = client
            .append(capsule, format!("record {i}").as_bytes(), AckMode::Quorum(1))
            .unwrap_or_else(|e| panic!("append {i}: {e}"));
        assert_eq!(seq, i + 1);
    }

    // Verified range read (self-verifying hash chain back to the anchor).
    let read = client.read(capsule, ReadTarget::Range(1, N)).expect("range read");
    let VerifiedRead::Records(records) = read else { panic!("wanted records, got {read:?}") };
    assert_eq!(records.len() as u64, N);
    assert_eq!(records[0].body, b"record 0");
    assert_eq!(records[N as usize - 1].body, format!("record {}", N - 1).as_bytes());

    // Membership proof for an interior record against the newest heartbeat.
    let read = client.read(capsule, ReadTarget::ProofOf(3)).expect("membership proof read");
    let VerifiedRead::Proven(rec) = read else { panic!("wanted proven record, got {read:?}") };
    assert_eq!(rec.header.seq, 3);
    assert_eq!(rec.body, b"record 2");

    // --- Failover: kill one replica, the cluster must keep serving ----
    drop(store2);
    // Appends keep working against the survivor (Local ack: with one
    // replica dead a replication quorum is no longer reachable).
    let seq = client
        .append(capsule, b"after failover", AckMode::Local)
        .expect("append after replica death");
    assert_eq!(seq, N + 1);

    let read = client.read(capsule, ReadTarget::Range(1, N + 1)).expect("read after replica death");
    let VerifiedRead::Records(records) = read else { panic!("wanted records, got {read:?}") };
    assert_eq!(records.len() as u64, N + 1);
    assert_eq!(records[N as usize].body, b"after failover");

    client.close();
    drop(store1);
    drop(router);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same wiring, but exercising the `both` role: a single process that
/// routes and stores, with a client attached over TCP.
#[test]
fn single_both_node_serves_clients() {
    let dir = std::env::temp_dir().join(format!("gdp-live-both-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let seed = [50u8; 32];
    let router_name = Router::from_seed(&seed, "solo").name();
    let server = server_identity(seed, "solo");

    let owner = SigningKey::from_seed(&[51u8; 32]);
    let writer_key = SigningKey::from_seed(&[52u8; 32]);
    let meta = MetadataBuilder::new().writer(&writer_key.verifying_key()).sign(&owner);
    let capsule = meta.name();
    let chain = ServingChain::direct(
        AdCert::issue(&owner, capsule, server.name(), false, Scope::Global, FOREVER),
        server.principal().clone(),
    );

    let node = spawn_gdpd(
        &dir,
        "solo",
        &NodeConfig {
            role: Role::Both,
            listen: "127.0.0.1:0".parse().unwrap(),
            seed,
            label: "solo".into(),
            peers: vec![],
            router: None,
            data_dir: Some(dir.join("data")),
            store_engine: StoreEngine::File,
            fsync: None,
            read_cache_bytes: None,
            max_open_segments: None,
            stats_path: None,
            shards: 1,
            shard_batch: 64,
            admission_rate: 0,
            admission_burst: 64,
            hosts: vec![HostSpec { metadata: meta.clone(), chain, peers: vec![] }],
        },
    );

    let mut client =
        ClusterClient::connect(node.listen, router_name, &[53u8; 32], "cli2").expect("attach");
    client.track(&meta).expect("track");
    client.register_writer(&meta, writer_key, PointerStrategy::Chain).expect("writer");
    client.append(capsule, b"solo record", AckMode::Local).expect("append");
    let read = client.read(capsule, ReadTarget::Latest).expect("latest read");
    let VerifiedRead::Latest(rec, _) = read else { panic!("wanted latest, got {read:?}") };
    assert_eq!(rec.body, b"solo record");

    client.close();
    drop(node);
    let _ = std::fs::remove_dir_all(&dir);
}

//! The sharded forwarding engine end-to-end: a router `gdpd` running with
//! `shards = 4` must carry a real client workload — session establishment,
//! signed appends, verified reads — with all data-plane PDUs flowing
//! through the shard workers, while the control plane (attach handshakes,
//! certificate verification) stays on the event-loop thread. The stats
//! dump must show the per-shard scopes and, after a repeat attach with an
//! identical advertisement, `verify_cache_hits > 0` on the control router.

use gdp_capsule::{MetadataBuilder, PointerStrategy};
use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_client::VerifiedRead;
use gdp_node::{
    node, request_path, ClusterClient, HostSpec, NodeConfig, Role, StoreEngine, FOREVER,
};
use gdp_router::Router;
use gdp_server::{AckMode, ReadTarget};
use std::time::{Duration, Instant};

/// Every integer value of `"key": <n>` occurrences in a JSON dump.
fn counter_values(doc: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let digits: String = rest
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse() {
            out.push(v);
        }
    }
    out
}

#[test]
fn sharded_router_carries_cluster_traffic() {
    let dir = std::env::temp_dir().join(format!("gdp-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let stats = dir.join("router-stats.json");

    let router_seed = [60u8; 32];
    let router_name = Router::from_seed(&router_seed, "shard-r").name();
    let router = node::start(NodeConfig {
        role: Role::Router,
        listen: "127.0.0.1:0".parse().unwrap(),
        seed: router_seed,
        label: "shard-r".into(),
        peers: vec![],
        router: None,
        data_dir: None,
        store_engine: StoreEngine::File,
        fsync: None,
        read_cache_bytes: None,
        max_open_segments: None,
        stats_path: Some(stats.clone()),
        hosts: vec![],
        shards: 4,
        shard_batch: 64,
        admission_rate: 0,
        admission_burst: 64,
    })
    .expect("start sharded router");

    // One storage replica serving one capsule through the sharded router.
    let server = {
        let mut s = [61u8; 32];
        s[0] ^= 0x5a;
        PrincipalId::from_seed(PrincipalKind::Server, &s, "shard-s")
    };
    let owner = gdp_crypto::SigningKey::from_seed(&[62u8; 32]);
    let writer_key = gdp_crypto::SigningKey::from_seed(&[63u8; 32]);
    let meta = MetadataBuilder::new().writer(&writer_key.verifying_key()).sign(&owner);
    let capsule = meta.name();
    let storage = node::start(NodeConfig {
        role: Role::Storage,
        listen: "127.0.0.1:0".parse().unwrap(),
        seed: [61u8; 32],
        label: "shard-s".into(),
        peers: vec![router.local_addr()],
        router: Some(router_name),
        data_dir: None,
        store_engine: StoreEngine::File,
        fsync: None,
        read_cache_bytes: None,
        max_open_segments: None,
        stats_path: None,
        hosts: vec![HostSpec {
            metadata: meta.clone(),
            chain: ServingChain::direct(
                AdCert::issue(&owner, capsule, server.name(), false, Scope::Global, FOREVER),
                server.principal().clone(),
            ),
            peers: vec![],
        }],
        shards: 1,
        shard_batch: 64,
        admission_rate: 0,
        admission_burst: 64,
    })
    .expect("start storage node");

    // A full client workload: every Data PDU here crosses a shard worker.
    let mut client = ClusterClient::connect(router.local_addr(), router_name, &[64u8; 32], "cli")
        .expect("client attach");
    client.timeout = Duration::from_secs(20);
    client.track(&meta).expect("track");
    client.register_writer(&meta, writer_key, PointerStrategy::Chain).expect("register writer");
    const N: u64 = 8;
    for i in 0..N {
        let seq = client
            .append(capsule, format!("sharded record {i}").as_bytes(), AckMode::Local)
            .unwrap_or_else(|e| panic!("append {i}: {e}"));
        assert_eq!(seq, i + 1);
    }
    let read = client.read(capsule, ReadTarget::Range(1, N)).expect("range read");
    let VerifiedRead::Records(records) = read else { panic!("wanted records, got {read:?}") };
    assert_eq!(records.len() as u64, N);
    assert_eq!(records[0].body, b"sharded record 0");
    client.close();

    // Re-attach with the *same* deterministic identity: the advertisement
    // bytes are identical (Ed25519 is deterministic, catalog expiry is the
    // fixed FOREVER), so the control router's verification cache must hit.
    let mut again = ClusterClient::connect(router.local_addr(), router_name, &[64u8; 32], "cli")
        .expect("repeat client attach");
    again.timeout = Duration::from_secs(20);
    again.track(&meta).expect("track again");
    let read = again.read(capsule, ReadTarget::Latest).expect("read after re-attach");
    let VerifiedRead::Latest(rec, _) = read else { panic!("wanted latest, got {read:?}") };
    assert_eq!(rec.body, format!("sharded record {}", N - 1).as_bytes());
    again.close();

    // Steady-state stats dump via the trigger file.
    std::fs::write(request_path(&stats), b"").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while request_path(&stats).exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let doc = std::fs::read_to_string(&stats).expect("stats dump written");
    gdp_obs::json::validate(&doc).expect("dump must be valid JSON");

    // The per-shard scopes registered (with their queue-depth gauges)…
    for i in 0..4 {
        assert!(doc.contains(&format!("\"router-shard{i}\":")), "missing shard scope {i}: {doc}");
    }
    assert!(doc.contains("\"queue_depth\":"), "missing shard queue_depth gauge: {doc}");
    // …the reader-side batch path actually carried traffic (data-plane
    // PDUs are classified on the TCP readers and handed to workers in
    // batches — `batches_dispatched` counts every handoff)…
    assert!(doc.contains("\"router-shards\":"), "missing shared shard scope: {doc}");
    let batches: u64 = counter_values(&doc, "batches_dispatched").iter().sum();
    assert!(batches > 0, "reader-side batching never dispatched: {doc}");
    // …the shard workers actually forwarded the data plane…
    let shard_forwarded: u64 = counter_values(&doc, "pdus_forwarded").iter().sum::<u64>()
        + counter_values(&doc, "pdus_delivered_local").iter().sum::<u64>();
    assert!(shard_forwarded > 0, "no PDU crossed a shard worker: {doc}");
    // …and the repeat attach hit the verification cache.
    let hits: u64 = counter_values(&doc, "verify_cache_hits").iter().sum();
    assert!(hits > 0, "verification cache never hit: {doc}");

    storage.stop();
    router.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

//! Per-name FIFO across batch boundaries.
//!
//! The batched shard handoff must not reorder traffic: a destination
//! name always maps to one shard, a connection's batcher stages in
//! arrival order, buffers flush in FIFO order into a FIFO lane, and the
//! worker runs each batch to completion. This test drives interleaved
//! traffic for several destinations through a real engine with a tiny
//! batch cap (so every destination crosses many batch boundaries) and
//! asserts each destination's sequence numbers egress strictly in
//! arrival order.

use gdp_cert::identity::{PrincipalId, PrincipalKind};
use gdp_node::{Egress, EgressPort, NidMap, ShardedEngine};
use gdp_obs::Metrics;
use gdp_router::{attach_directly, Attacher, Router};
use gdp_wire::{Name, Pdu};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Records every egressed PDU (destination name, sequence) in arrival
/// order at the port. Shared across all shard workers.
struct CaptureEgress {
    log: Arc<Mutex<Vec<(Name, u64)>>>,
}

struct CapturePort {
    log: Arc<Mutex<Vec<(Name, u64)>>>,
}

impl Egress for CaptureEgress {
    fn port(&self) -> Box<dyn EgressPort> {
        Box::new(CapturePort { log: Arc::clone(&self.log) })
    }
}

impl EgressPort for CapturePort {
    fn send_to(&mut self, _addr: SocketAddr, pdu: Pdu) {
        self.log.lock().push((pdu.dst, pdu.seq));
    }
}

#[test]
fn same_destination_pdus_egress_in_arrival_order_across_batches() {
    const DESTS: usize = 6;
    const PER_DEST: u64 = 500;
    const BATCH_CAP: usize = 5; // tiny: forces ~100 batch boundaries per dest

    let log = Arc::new(Mutex::new(Vec::new()));
    let egress = Arc::new(CaptureEgress { log: Arc::clone(&log) });
    let metrics = Metrics::new();

    // Seeded fixture: a control router records installs for six attached
    // principals; the engine mirrors them into the owning shards.
    let seed = [31u8; 32];
    let mut control = Router::from_seed(&seed, "order-control");
    control.record_installs(true);
    let mut dests = Vec::new();
    for d in 0..DESTS as u8 {
        let p = PrincipalId::from_seed(PrincipalKind::Server, &[40 + d; 32], "order-dst");
        dests.push(p.name());
        let mut attacher = Attacher::new(p, control.name(), vec![], 1 << 50);
        attach_directly(&mut control, 3, &mut attacher, 0).expect("attach");
    }

    // nid space: 0 = the ingress peer, 3 = the attach neighbor (must
    // resolve to an address for egress to happen).
    let nids: Arc<NidMap<SocketAddr>> = Arc::new(NidMap::default());
    for port in 0..4u16 {
        nids.nid(format!("127.0.0.1:{}", 21000 + port).parse().unwrap());
    }

    let engine = ShardedEngine::start(
        4,
        BATCH_CAP,
        &seed,
        "order",
        &metrics,
        Arc::clone(&nids),
        egress,
        Instant::now(),
    );
    for install in control.drain_installs() {
        engine.mirror_install(install, 0);
    }
    // Mirrors travel the control lane; give workers a moment to apply
    // them before data arrives (in production the attach reply races the
    // first data PDU the same way, and a miss just means a no-route
    // Error — here we want every PDU forwarded).
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Interleave destinations so every batch boundary lands mid-stream
    // for each of them.
    let mut batcher = engine.batcher();
    for seq in 0..PER_DEST {
        for dst in &dests {
            batcher.stage(0, Pdu::data(Name::ZERO, *dst, seq, vec![0u8; 16]));
        }
    }
    batcher.flush();
    engine.shutdown();

    let log = log.lock();
    assert_eq!(log.len(), DESTS * PER_DEST as usize, "every PDU must egress exactly once");
    // Per destination, sequences must be strictly increasing — batching
    // may interleave *across* destinations but never reorder within one.
    let mut last: std::collections::HashMap<Name, u64> = std::collections::HashMap::new();
    for (dst, seq) in log.iter() {
        if let Some(prev) = last.get(dst) {
            assert!(seq > prev, "dst {dst:?} reordered: {seq} after {prev}");
        }
        last.insert(*dst, *seq);
    }
    assert_eq!(last.len(), DESTS);
    // The tiny cap must actually have produced many batches.
    let batches = metrics.counter_value("router-shards", "batches_dispatched");
    assert!(
        batches as usize > DESTS * (PER_DEST as usize / BATCH_CAP) / 2,
        "expected many batch boundaries, got {batches}"
    );
}

//! The daemon's stats facility: a `<stats_path>.request` trigger file
//! makes the event loop write the whole metric registry as one JSON
//! document, and a stopping node leaves a final dump behind.

use gdp_node::{node, request_path, NodeConfig, Role, StoreEngine};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdp-stats-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trigger_file_and_shutdown_both_dump_valid_json() {
    let dir = tmpdir("dump");
    let stats = dir.join("stats.json");
    let handle = node::start(NodeConfig {
        role: Role::Both,
        listen: "127.0.0.1:0".parse().unwrap(),
        seed: [77u8; 32],
        label: "stats-node".into(),
        peers: vec![],
        router: None,
        data_dir: None,
        store_engine: StoreEngine::File,
        fsync: None,
        read_cache_bytes: None,
        max_open_segments: None,
        stats_path: Some(stats.clone()),
        hosts: vec![],
        shards: 1,
        shard_batch: 64,
        admission_rate: 0,
        admission_burst: 64,
    })
    .expect("start node");

    // On-demand dump: drop the trigger file, wait for the next tick to
    // serve it (the trigger is deleted once the dump is written).
    std::fs::write(request_path(&stats), b"").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while request_path(&stats).exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!request_path(&stats).exists(), "trigger file never consumed");
    let doc = std::fs::read_to_string(&stats).expect("stats dump written");
    gdp_obs::json::validate(&doc).expect("on-demand dump must be valid JSON");
    // Every layer the node runs registers into the same document.
    for scope in ["\"router\":", "\"server\":", "\"net\":"] {
        assert!(doc.contains(scope), "dump missing scope {scope}: {doc}");
    }

    // The handle exposes the same registry for in-process inspection.
    assert_eq!(handle.metrics().to_json(), doc);

    // Shutdown dump: counters observed after stop are the final ones.
    std::fs::remove_file(&stats).unwrap();
    handle.stop();
    let doc = std::fs::read_to_string(&stats).expect("shutdown dump written");
    gdp_obs::json::validate(&doc).expect("shutdown dump must be valid JSON");
    let _ = std::fs::remove_dir_all(dir);
}

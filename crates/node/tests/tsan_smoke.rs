//! ThreadSanitizer smoke suite — the concurrency hot spots under real
//! multi-threaded load. `scripts/verify.sh --tsan` builds this file with
//! `-Zsanitizer=thread` on nightly; it also runs as a normal tier-1
//! integration test, so the workload itself is race-checked continuously
//! even where TSan is unavailable.
//!
//! Coverage targets:
//! - the segmented store's sealed-read fast lane (BlockCache + FdPool,
//!   both owned by `LogInner`'s one mutex, fds handed out as `Arc<File>`)
//!   under concurrent writers and readers;
//! - the engine's build-outside-lock `open()` path racing on one capsule;
//! - the 4-shard forwarding engine carrying a live cluster workload
//!   (event-loop thread, shard workers, net reader/writer threads).

use gdp_capsule::{MetadataBuilder, PointerStrategy, Record, RecordHash};
use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope, ServingChain};
use gdp_client::VerifiedRead;
use gdp_crypto::SigningKey;
use gdp_node::{node, ClusterClient, HostSpec, NodeConfig, Role, StoreEngine, FOREVER};
use gdp_router::Router;
use gdp_server::{AckMode, ReadTarget};
use gdp_store::{Backing, StorageEngine};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn store_read_fast_lane_under_concurrent_load() {
    let dir = std::env::temp_dir().join(format!("gdp-tsan-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let metrics = gdp_obs::Metrics::new();
    // A deliberately tiny block cache and fd pool so concurrent readers
    // continuously evict, refill, and reopen — the churn TSan watches.
    let engine = Arc::new(
        StorageEngine::with_obs(Backing::Segmented(dir.clone()), metrics.scope("store"))
            .with_seg_tuning(Some(16 * 1024), Some(2)),
    );

    const WRITERS: usize = 4;
    const PER_PHASE: u64 = 16;
    let caps: Vec<_> = (0..WRITERS)
        .map(|w| {
            let owner = SigningKey::from_seed(&[10 + w as u8; 32]);
            let writer = SigningKey::from_seed(&[40 + w as u8; 32]);
            let meta = MetadataBuilder::new()
                .writer(&writer.verifying_key())
                .set_str("description", &format!("tsan-{w}"))
                .sign(&owner);
            (meta, writer)
        })
        .collect();

    // Two write phases with a rotation between them: the first phase's
    // records end up in a sealed segment, so phase-two readers cross the
    // BlockCache/FdPool path while writers still append.
    let mut prevs: Vec<RecordHash> = Vec::new();
    for phase in 0..2u64 {
        let handles: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(w, (meta, writer))| {
                let engine = Arc::clone(&engine);
                let meta = meta.clone();
                let writer = writer.clone();
                let mut prev =
                    prevs.get(w).copied().unwrap_or_else(|| RecordHash::anchor(&meta.name()));
                std::thread::spawn(move || {
                    // Every thread races `open()` for its capsule (and, on
                    // phase 0, the shared log's once-cell initialization).
                    let store = engine.open(&meta.name()).expect("open capsule");
                    if phase == 0 {
                        store.lock().put_metadata(&meta).expect("put metadata");
                    }
                    for i in 1..=PER_PHASE {
                        let seq = phase * PER_PHASE + i;
                        let r = Record::create(
                            &meta.name(),
                            &writer,
                            seq,
                            seq,
                            prev,
                            vec![],
                            vec![seq as u8; 700],
                        );
                        prev = r.hash();
                        store.lock().append(&r).expect("append");
                    }
                    store.lock().flush(phase * 1_000_000 + 900_000).expect("flush");
                    prev
                })
            })
            .collect();
        prevs = handles.into_iter().map(|h| h.join().expect("writer thread")).collect();
        let log = engine.seg_log().expect("segmented backing");
        log.flush_now(phase * 1_000_000 + 990_000).expect("flush_now");
        log.rotate_now(phase * 1_000_000 + 999_000).expect("rotate_now");
    }

    // Concurrent readers over every capsule: cache hits, misses with
    // pooled-fd preads, evictions, and zero-copy `Bytes` refcounts all
    // exercised from four threads at once.
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let names: Vec<_> = caps.iter().map(|(m, _)| m.name()).collect();
            std::thread::spawn(move || {
                for round in 0..3 {
                    for name in &names {
                        let store = engine.open(name).expect("reopen");
                        let recs = store.lock().range(1, 2 * PER_PHASE).expect("range read");
                        assert_eq!(recs.len() as u64, 2 * PER_PHASE, "reader {r} round {round}");
                        assert_eq!(recs[0].body.len(), 700);
                    }
                }
            })
        })
        .collect();
    for h in readers {
        h.join().expect("reader thread");
    }

    // The conservation law must survive the concurrency.
    let hits = metrics.counter_value("store", "read_cache_hits");
    let misses = metrics.counter_value("store", "read_cache_misses");
    let served = metrics.counter_value("store", "reads_served_from_store");
    assert_eq!(hits + misses, served, "read-path conservation law broke under threads");
    assert!(misses > 0, "sealed reads never crossed the block cache");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_engine_carries_traffic_under_tsan() {
    let dir = std::env::temp_dir().join(format!("gdp-tsan-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let router_seed = [70u8; 32];
    let router_name = Router::from_seed(&router_seed, "tsan-r").name();
    let router = node::start(NodeConfig {
        role: Role::Router,
        listen: "127.0.0.1:0".parse().unwrap(),
        seed: router_seed,
        label: "tsan-r".into(),
        peers: vec![],
        router: None,
        data_dir: None,
        store_engine: StoreEngine::File,
        fsync: None,
        read_cache_bytes: None,
        max_open_segments: None,
        stats_path: None,
        hosts: vec![],
        shards: 4,
        shard_batch: 16,
        admission_rate: 0,
        admission_burst: 64,
    })
    .expect("start sharded router");

    // The node derives its server identity from the config seed with the
    // first byte XOR'd (distinct seed domain from the router half).
    let server = {
        let mut s = [71u8; 32];
        s[0] ^= 0x5a;
        PrincipalId::from_seed(PrincipalKind::Server, &s, "tsan-s")
    };
    let owner = SigningKey::from_seed(&[72u8; 32]);
    let writer_key = SigningKey::from_seed(&[73u8; 32]);
    let meta = MetadataBuilder::new().writer(&writer_key.verifying_key()).sign(&owner);
    let capsule = meta.name();
    let storage = node::start(NodeConfig {
        role: Role::Storage,
        listen: "127.0.0.1:0".parse().unwrap(),
        seed: [71u8; 32],
        label: "tsan-s".into(),
        peers: vec![router.local_addr()],
        router: Some(router_name),
        data_dir: Some(dir.clone()),
        store_engine: StoreEngine::Segmented,
        fsync: None,
        read_cache_bytes: None,
        max_open_segments: None,
        stats_path: None,
        hosts: vec![HostSpec {
            metadata: meta.clone(),
            chain: ServingChain::direct(
                AdCert::issue(&owner, capsule, server.name(), false, Scope::Global, FOREVER),
                server.principal().clone(),
            ),
            peers: vec![],
        }],
        shards: 1,
        shard_batch: 16,
        admission_rate: 0,
        admission_burst: 64,
    })
    .expect("start storage node");

    // A live client workload: every data PDU crosses a shard worker, the
    // egress writer threads, and the storage node's segmented engine.
    let mut client = ClusterClient::connect(router.local_addr(), router_name, &[74u8; 32], "cli")
        .expect("client attach");
    client.timeout = Duration::from_secs(30);
    client.track(&meta).expect("track");
    client.register_writer(&meta, writer_key, PointerStrategy::Chain).expect("register writer");
    const N: u64 = 6;
    for i in 0..N {
        let seq = client
            .append(capsule, format!("tsan record {i}").as_bytes(), AckMode::Local)
            .unwrap_or_else(|e| panic!("append {i}: {e}"));
        assert_eq!(seq, i + 1);
    }
    let read = client.read(capsule, ReadTarget::Range(1, N)).expect("range read");
    let VerifiedRead::Records(records) = read else { panic!("wanted records, got {read:?}") };
    assert_eq!(records.len() as u64, N);
    client.close();

    storage.stop();
    router.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

//! # gdp-node
//!
//! The deployable GDP node: glue between the sans-I/O protocol cores
//! (gdp-router, gdp-server) and the real-socket TCP transport, plus the
//! `gdpd` daemon binary and a blocking client driver.
//!
//! A node is configured with a small text file ([`NodeConfig`]) selecting
//! a role — `router`, `storage`, or `both` — a listen address, a
//! deterministic identity, peers to dial, and (for storage roles) the
//! DataCapsules to serve. Three `gdpd` processes on loopback form a
//! complete GDP cluster: clients establish sessions, append signed
//! records, and perform verified reads with membership proofs over real
//! sockets, and reads fail over to a surviving replica when a storage
//! process dies (see `tests/live_cluster.rs`).

#![forbid(unsafe_code)]

pub mod client_io;
pub mod config;
pub mod ingress;
pub mod node;
pub mod runtime;
pub mod shard;

pub use client_io::{ClientError, ClusterClient};
pub use config::{ConfigError, HostSpec, NodeConfig, Role, StoreEngine};
pub use ingress::IngressQueue;
pub use node::{request_path, start, NodeError, NodeHandle, FOREVER};
pub use runtime::{
    build_cores, build_cores_with_obs, NidMap, NidSnapshot, NodeOutbox, NodeRuntime,
};
pub use shard::{
    is_data_plane, shard_of, Egress, EgressPort, NetEgress, ShardBatch, ShardBatcher, ShardState,
    ShardedEngine, DEFAULT_SHARD_BATCH, SHARD_QUEUE_BATCHES,
};

//! Blocking client driver over TCP: wraps the sans-I/O [`GdpClient`] with
//! a [`TcpNet`] endpoint and the retry/pump loops a live cluster needs.
//!
//! This is the piece examples, integration tests, and operator tooling
//! use to talk to a running `gdpd` cluster; latency-sensitive
//! applications would drive `GdpClient` themselves.

use gdp_capsule::{CapsuleMetadata, PointerStrategy};
use gdp_client::{ClientEvent, GdpClient, VerifiedRead};
use gdp_crypto::SigningKey;
use gdp_net::tcp::{TcpNet, TcpNetConfig};
use gdp_router::{AttachStep, Attacher};
use gdp_server::{AckMode, ReadTarget};
use gdp_wire::Name;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::node::FOREVER;

/// Errors from the blocking client driver.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Net(String),
    /// The attach handshake was rejected.
    AttachRejected(String),
    /// No acceptable response arrived before the deadline.
    Timeout(&'static str),
    /// The client core rejected the request.
    Client(&'static str),
    /// A response failed cryptographic verification.
    Verification(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Net(e) => write!(f, "transport: {e}"),
            ClientError::AttachRejected(r) => write!(f, "attach rejected: {r}"),
            ClientError::Timeout(what) => write!(f, "timed out waiting for {what}"),
            ClientError::Client(e) => write!(f, "client: {e}"),
            ClientError::Verification(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A verifying GDP client attached to a router over real sockets.
pub struct ClusterClient {
    client: GdpClient,
    net: TcpNet,
    router_addr: SocketAddr,
    /// Per-request response deadline.
    pub timeout: Duration,
    /// Monotonic epoch for the pending-request deadline sweep.
    started: Instant,
}

impl ClusterClient {
    /// Binds an ephemeral socket, dials `router_addr`, and completes the
    /// secure-advertisement handshake as a plain (no-catalog) client.
    pub fn connect(
        router_addr: SocketAddr,
        router_name: Name,
        seed: &[u8; 32],
        label: &str,
    ) -> Result<ClusterClient, ClientError> {
        let cfg =
            TcpNetConfig { poll_interval: Duration::from_millis(5), ..TcpNetConfig::default() };
        let net = TcpNet::bind_with("127.0.0.1:0".parse().unwrap(), cfg)
            .map_err(|e| ClientError::Net(e.to_string()))?;
        let client = GdpClient::from_seed(seed, label);
        let mut me = ClusterClient {
            client,
            net,
            router_addr,
            timeout: Duration::from_secs(10),
            started: Instant::now(),
        };
        me.attach(router_name)?;
        Ok(me)
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn attach(&mut self, router_name: Name) -> Result<(), ClientError> {
        let mut attacher =
            Attacher::new(self.client.principal_id().clone(), router_name, Vec::new(), FOREVER);
        let deadline = Instant::now() + self.timeout;
        let mut last_hello = Instant::now();
        self.send(attacher.hello())?;
        loop {
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout("attach"));
            }
            // The router may not be up yet; keep re-Hello-ing while the
            // transport redials underneath.
            if last_hello.elapsed() >= Duration::from_millis(300) {
                last_hello = Instant::now();
                self.send(attacher.hello())?;
            }
            let Some((_, pdu)) = self
                .net
                .recv_timeout(Duration::from_millis(50))
                .map_err(|e| ClientError::Net(e.to_string()))?
            else {
                continue;
            };
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(p) => self.send(p)?,
                AttachStep::Done(_) => return Ok(()),
                AttachStep::Failed(r) => return Err(ClientError::AttachRejected(r)),
                AttachStep::Ignored => {}
            }
        }
    }

    fn send(&self, pdu: gdp_wire::Pdu) -> Result<(), ClientError> {
        self.net.send(self.router_addr, pdu).map_err(|e| ClientError::Net(e.to_string()))
    }

    /// Direct access to the protocol core (track capsules, inspect state).
    pub fn core(&mut self) -> &mut GdpClient {
        &mut self.client
    }

    /// Starts verifying reads of `metadata`'s capsule.
    pub fn track(&mut self, metadata: &CapsuleMetadata) -> Result<(), ClientError> {
        self.client.track_capsule(metadata).map_err(ClientError::Client)
    }

    /// Registers this client as a writer of the capsule.
    pub fn register_writer(
        &mut self,
        metadata: &CapsuleMetadata,
        key: SigningKey,
        strategy: PointerStrategy,
    ) -> Result<(), ClientError> {
        self.client.register_writer(metadata, key, strategy).map_err(ClientError::Client)
    }

    /// Pumps responses until `pred` accepts an event or the deadline hits.
    fn wait_for<T>(
        &mut self,
        what: &'static str,
        pred: impl FnMut(&ClientEvent) -> Option<T>,
    ) -> Result<T, ClientError> {
        self.wait_for_within(what, self.timeout, pred)
    }

    fn wait_for_within<T>(
        &mut self,
        what: &'static str,
        window: Duration,
        mut pred: impl FnMut(&ClientEvent) -> Option<T>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + window;
        while Instant::now() < deadline {
            // Deadline sweep: expire pending requests whose responses were
            // lost in transit, so they can't leak or absorb late acks.
            let now_us = self.now_us();
            for ev in self.client.sweep_timeouts(now_us) {
                if let Some(v) = pred(&ev) {
                    return Ok(v);
                }
            }
            let Some((_, pdu)) = self
                .net
                .recv_timeout(Duration::from_millis(50))
                .map_err(|e| ClientError::Net(e.to_string()))?
            else {
                continue;
            };
            for ev in self.client.handle_pdu(0, pdu) {
                if let ClientEvent::VerificationFailed { reason, .. } = &ev {
                    return Err(ClientError::Verification(reason.to_string()));
                }
                if let Some(v) = pred(&ev) {
                    return Ok(v);
                }
            }
        }
        Err(ClientError::Timeout(what))
    }

    /// Establishes an encrypted session flow with a serving replica.
    pub fn session(&mut self, capsule: Name) -> Result<(), ClientError> {
        let pdu = self.client.session_init(capsule);
        self.send(pdu)?;
        self.wait_for("session", |ev| matches!(ev, ClientEvent::SessionReady { .. }).then_some(()))
    }

    /// Appends a signed record and blocks until the durability mode is
    /// acknowledged. Retries the same signed record while the capsule is
    /// unroutable (e.g. the serving replica has not attached yet) —
    /// appends are idempotent server-side.
    pub fn append(&mut self, capsule: Name, body: &[u8], ack: AckMode) -> Result<u64, ClientError> {
        let timestamp = 0; // wall-clock timestamps are not part of the proof
        let (mut pdu, record) =
            self.client.append(capsule, body, timestamp, ack).map_err(ClientError::Client)?;
        let want = record.header.seq;
        let deadline = Instant::now() + self.timeout;
        // Per-attempt window: short enough that a request lost to a
        // mid-failover route is retried well before the outer deadline.
        let slice = (self.timeout / 8).max(Duration::from_millis(250));
        loop {
            self.send(pdu.clone())?;
            let request_seq = pdu.seq;
            let acked = self.wait_for_within("append ack", slice, |ev| match ev {
                ClientEvent::AppendAcked { seq, .. } if *seq == want => Some(true),
                ClientEvent::Unreachable { .. } => Some(false),
                ClientEvent::Timeout { request_seq: t, .. } if *t == request_seq => Some(false),
                _ => None,
            });
            match acked {
                Ok(true) => return Ok(want),
                Ok(false) | Err(ClientError::Timeout(_)) => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout("append ack"));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                    // Re-issue the signed record under a fresh request seq:
                    // the old pending entry may have been swept, and a
                    // response to it would otherwise be ignored forever.
                    pdu = self.client.append_record(capsule, record.clone(), ack);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Issues a verified read, retrying while the capsule is unroutable
    /// or a replica is mid-failover.
    pub fn read(&mut self, capsule: Name, target: ReadTarget) -> Result<VerifiedRead, ClientError> {
        let deadline = Instant::now() + self.timeout;
        let slice = (self.timeout / 8).max(Duration::from_millis(250));
        let mut attempts = 0u32;
        loop {
            let pdu = self.client.read(capsule, target);
            attempts += 1;
            if attempts > 1 {
                self.client.mark_retry();
            }
            self.send(pdu)?;
            let got = self.wait_for_within("read result", slice, |ev| match ev {
                ClientEvent::ReadOk { result, .. } => Some(Ok(result.clone())),
                ClientEvent::Unreachable { .. } => Some(Err("unreachable")),
                ClientEvent::ServerError { .. } => Some(Err("server error")),
                _ => None,
            });
            match got {
                Ok(Ok(result)) => return Ok(result),
                Ok(Err(_)) | Err(ClientError::Timeout(_)) => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout("read"));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Shuts the client's socket down.
    pub fn close(self) {
        self.net.shutdown();
    }
}

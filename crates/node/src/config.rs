//! `gdpd` configuration: a small line-oriented `key = value` format.
//!
//! No external parser dependencies are available offline, and the config
//! surface is deliberately tiny, so this is a hand-rolled format:
//!
//! ```text
//! # role of this node in the cluster
//! role       = both              # router | storage | both
//! listen     = 127.0.0.1:7000
//! seed       = 0101…01           # 64 hex chars: deterministic identity
//! label      = node-a            # human-readable identity label
//! peer       = 127.0.0.1:7001    # repeatable: addresses this node dials
//! router     = ab…cd             # Name (64 hex) of the router to attach
//!                                # through (storage role; optional when
//!                                # this node runs its own router)
//! data_dir   = /var/lib/gdp      # optional: file-backed capsule stores
//! store_engine = segmented       # file | segmented (default file);
//!                                # segmented = one shared group-commit
//!                                # log for all capsules (needs data_dir)
//! fsync      = batch(5)          # never | always | batch(<ms>):
//!                                # durability policy for the store
//!                                # engine (needs data_dir)
//! read_cache_bytes = 4194304     # optional (segmented engine): byte
//!                                # budget of the sealed-segment block
//!                                # cache; 0 disables read caching
//! max_open_segments = 128        # optional (segmented engine): cap on
//!                                # pooled sealed-segment read fds
//! stats_path = /run/gdp/stats.json # optional: metrics dump target; the
//!                                # daemon dumps on shutdown and whenever
//!                                # `<stats_path>.request` appears
//! shards     = 4                 # optional (router role): data-plane
//!                                # forwarding shards; default 1 keeps the
//!                                # single-threaded router
//! shard_batch = 64               # optional (requires shards > 1): PDUs
//!                                # per shard handoff batch; default 64
//! admission_rate  = 5000         # optional: per-peer ingest admission,
//!                                # frames/second; 0 (default) disables
//! admission_burst = 256          # optional: admission bucket depth in
//!                                # frames (requires admission_rate)
//! host       = <meta>:<chain>:<peer>,<peer>   # repeatable, see below
//! ```
//!
//! A `host` entry tells a storage node to serve one DataCapsule. The three
//! `:`-separated fields are the hex-encoded wire encodings of the
//! [`CapsuleMetadata`], of this server's [`ServingChain`] (the owner's
//! delegation ending at *this* server), and a comma-separated (possibly
//! empty) list of replica-peer server [`Name`]s. Everything is hex so
//! specs survive any config transport; they are produced with
//! [`HostSpec::render`].

use gdp_capsule::CapsuleMetadata;
use gdp_cert::ServingChain;
use gdp_store::FsyncPolicy;
use gdp_wire::{Name, Wire};
use std::net::SocketAddr;
use std::path::PathBuf;

/// What protocol roles a node runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// GDP-router only: forwards PDUs, terminates attach handshakes.
    Router,
    /// DataCapsule-server only: hosts capsules, attaches via `router`.
    Storage,
    /// Both in one process (the server attaches to the local router).
    Both,
}

impl Role {
    /// True if this node runs a router.
    pub fn routes(self) -> bool {
        matches!(self, Role::Router | Role::Both)
    }

    /// True if this node runs a DataCapsule-server.
    pub fn stores(self) -> bool {
        matches!(self, Role::Storage | Role::Both)
    }
}

/// Which storage engine backs hosted capsules when `data_dir` is set
/// (without a `data_dir` everything is in memory and the engine choice
/// is moot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreEngine {
    /// One append-only log file per capsule (`<data_dir>/<name>.log`).
    #[default]
    File,
    /// One shared segmented log for the whole node, with group-commit,
    /// checkpointed recovery, and compaction (`<data_dir>/seglog/`).
    Segmented,
}

/// One capsule this node serves: metadata + this server's delegation +
/// replica peers.
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// The capsule's signed metadata (defines its name).
    pub metadata: CapsuleMetadata,
    /// Owner → … → this server delegation chain.
    pub chain: ServingChain,
    /// Names of the other replicas serving this capsule.
    pub peers: Vec<Name>,
}

impl HostSpec {
    /// Renders the spec as the config-file `host =` value.
    pub fn render(&self) -> String {
        let peers: Vec<String> = self.peers.iter().map(|p| p.to_hex()).collect();
        format!(
            "{}:{}:{}",
            hex_encode(&self.metadata.to_wire()),
            hex_encode(&self.chain.to_wire()),
            peers.join(",")
        )
    }

    fn parse(value: &str) -> Result<HostSpec, ConfigError> {
        let mut parts = value.splitn(3, ':');
        let meta_hex = parts.next().unwrap_or("");
        let chain_hex = parts.next().ok_or(ConfigError::bad("host", "missing chain field"))?;
        let peers_csv = parts.next().unwrap_or("");
        let metadata = CapsuleMetadata::from_wire(
            &hex_decode(meta_hex).ok_or(ConfigError::bad("host", "metadata is not hex"))?,
        )
        .map_err(|_| ConfigError::bad("host", "metadata does not decode"))?;
        let chain = ServingChain::from_wire(
            &hex_decode(chain_hex).ok_or(ConfigError::bad("host", "chain is not hex"))?,
        )
        .map_err(|_| ConfigError::bad("host", "chain does not decode"))?;
        let mut peers = Vec::new();
        for p in peers_csv.split(',').filter(|p| !p.is_empty()) {
            peers.push(Name::from_hex(p).ok_or(ConfigError::bad("host", "bad peer name"))?);
        }
        Ok(HostSpec { metadata, chain, peers })
    }
}

/// Full configuration of one `gdpd` process.
///
/// `Debug` is implemented by hand: `seed` derives the node's signing key,
/// so it must never reach logs or crash reports.
#[derive(Clone)]
pub struct NodeConfig {
    /// Protocol roles to run.
    pub role: Role,
    /// TCP listen address (port 0 for OS-assigned).
    pub listen: SocketAddr,
    /// Identity seed (deterministic keypair).
    pub seed: [u8; 32],
    /// Identity label.
    pub label: String,
    /// Peers this node dials at startup (a storage node lists its router
    /// here; routers may list other routers).
    pub peers: Vec<SocketAddr>,
    /// Name of the router to attach through. Required for `Storage`;
    /// ignored for `Both` (the local router is used) and `Router`.
    pub router: Option<Name>,
    /// Directory for file-backed capsule stores; in-memory when absent.
    pub data_dir: Option<PathBuf>,
    /// Storage engine for hosted capsules (only meaningful with
    /// `data_dir`; `segmented` requires it).
    pub store_engine: StoreEngine,
    /// Durability policy for the storage engine; `None` keeps each
    /// engine's default (`never` for `file`, `batch(5)` for `segmented`).
    pub fsync: Option<FsyncPolicy>,
    /// Byte budget of the segmented engine's sealed-segment block cache;
    /// `None` keeps the engine default. Requires `store_engine =
    /// segmented`. `0` disables read caching.
    pub read_cache_bytes: Option<u64>,
    /// Cap on pooled sealed-segment read fds in the segmented engine;
    /// `None` keeps the engine default. Requires `store_engine =
    /// segmented`.
    pub max_open_segments: Option<u64>,
    /// Where to dump the metrics registry as JSON. Dumped on shutdown,
    /// and on demand whenever a `<stats_path>.request` trigger file
    /// appears (the file is deleted once the dump is written).
    pub stats_path: Option<PathBuf>,
    /// Capsules this node serves (storage roles).
    pub hosts: Vec<HostSpec>,
    /// Data-plane forwarding shards for `role = router` nodes: `1` (the
    /// default) keeps the single-threaded event-loop router; `N > 1`
    /// spawns N worker shards fed over bounded channels, with the FIB
    /// partitioned by destination-name hash (see `crate::shard`).
    pub shards: usize,
    /// PDUs staged per shard handoff batch (`shards > 1` only): readers
    /// hand workers chunks of up to this many PDUs in one channel send,
    /// amortizing the wakeup. Default 64; `1` degenerates to per-PDU
    /// handoff (useful for latency-sensitive or low-rate deployments).
    pub shard_batch: usize,
    /// Per-peer token-bucket admission at TCP ingest, in frames/second;
    /// `0` (the default) disables admission control entirely (see
    /// DESIGN.md, "Overload & admission").
    pub admission_rate: u64,
    /// Admission bucket depth in frames (largest honest burst admitted at
    /// line rate). Only meaningful with `admission_rate > 0`.
    pub admission_burst: u64,
}

impl std::fmt::Debug for NodeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeConfig")
            .field("role", &self.role)
            .field("listen", &self.listen)
            .field("seed", &"[redacted; 32 bytes]")
            .field("label", &self.label)
            .field("peers", &self.peers)
            .field("router", &self.router)
            .field("data_dir", &self.data_dir)
            .field("store_engine", &self.store_engine)
            .field("fsync", &self.fsync)
            .field("read_cache_bytes", &self.read_cache_bytes)
            .field("max_open_segments", &self.max_open_segments)
            .field("stats_path", &self.stats_path)
            .field("hosts", &self.hosts)
            .field("shards", &self.shards)
            .field("shard_batch", &self.shard_batch)
            .field("admission_rate", &self.admission_rate)
            .field("admission_burst", &self.admission_burst)
            .finish()
    }
}

/// Config parse failures, with the offending key.
#[derive(Debug)]
pub struct ConfigError {
    /// The config key that failed.
    pub key: String,
    /// What was wrong with it.
    pub reason: String,
}

impl ConfigError {
    fn bad(key: &str, reason: &str) -> ConfigError {
        ConfigError { key: key.to_string(), reason: reason.to_string() }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config key `{}`: {}", self.key, self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl NodeConfig {
    /// Parses the `key = value` config format. Unknown keys are an error
    /// (config typos should not silently change cluster behavior).
    pub fn parse(text: &str) -> Result<NodeConfig, ConfigError> {
        let mut role = None;
        let mut listen = None;
        let mut seed = None;
        let mut label = None;
        let mut router = None;
        let mut data_dir = None;
        let mut store_engine = None;
        let mut fsync = None;
        let mut read_cache_bytes = None;
        let mut max_open_segments = None;
        let mut stats_path = None;
        let mut peers = Vec::new();
        let mut hosts = Vec::new();
        let mut shards = None;
        let mut shard_batch = None;
        let mut admission_rate = None;
        let mut admission_burst = None;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) =
                line.split_once('=').ok_or(ConfigError::bad(line, "expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "role" => {
                    role = Some(match value {
                        "router" => Role::Router,
                        "storage" => Role::Storage,
                        "both" => Role::Both,
                        _ => return Err(ConfigError::bad("role", "must be router|storage|both")),
                    })
                }
                "listen" => {
                    listen = Some(
                        value.parse().map_err(|_| ConfigError::bad("listen", "bad socket addr"))?,
                    )
                }
                "seed" => {
                    let bytes = hex_decode(value).ok_or(ConfigError::bad("seed", "must be hex"))?;
                    let arr: [u8; 32] = bytes
                        .try_into()
                        .map_err(|_| ConfigError::bad("seed", "must be 32 bytes (64 hex chars)"))?;
                    seed = Some(arr);
                }
                "label" => label = Some(value.to_string()),
                "peer" => peers
                    .push(value.parse().map_err(|_| ConfigError::bad("peer", "bad socket addr"))?),
                "router" => {
                    router =
                        Some(Name::from_hex(value).ok_or(ConfigError::bad("router", "bad name"))?)
                }
                "data_dir" => data_dir = Some(PathBuf::from(value)),
                "store_engine" => {
                    store_engine = Some(match value {
                        "file" => StoreEngine::File,
                        "segmented" => StoreEngine::Segmented,
                        _ => {
                            return Err(ConfigError::bad("store_engine", "must be file|segmented"))
                        }
                    })
                }
                "fsync" => {
                    fsync = Some(
                        FsyncPolicy::parse(value)
                            .ok_or(ConfigError::bad("fsync", "must be never|always|batch(<ms>)"))?,
                    )
                }
                "read_cache_bytes" => {
                    read_cache_bytes = Some(value.parse::<u64>().map_err(|_| {
                        ConfigError::bad("read_cache_bytes", "must be a byte count (0 disables)")
                    })?);
                }
                "max_open_segments" => {
                    let n: u64 = value.parse().map_err(|_| {
                        ConfigError::bad("max_open_segments", "must be a positive fd count")
                    })?;
                    if n == 0 {
                        return Err(ConfigError::bad("max_open_segments", "must be at least 1"));
                    }
                    max_open_segments = Some(n);
                }
                "stats_path" => stats_path = Some(PathBuf::from(value)),
                "host" => hosts.push(HostSpec::parse(value)?),
                "shards" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| ConfigError::bad("shards", "must be a positive integer"))?;
                    if n == 0 {
                        return Err(ConfigError::bad("shards", "must be at least 1"));
                    }
                    shards = Some(n);
                }
                "shard_batch" => {
                    let n: usize = value.parse().map_err(|_| {
                        ConfigError::bad("shard_batch", "must be a positive integer")
                    })?;
                    if n == 0 {
                        return Err(ConfigError::bad("shard_batch", "must be at least 1"));
                    }
                    shard_batch = Some(n);
                }
                "admission_rate" => {
                    admission_rate = Some(value.parse::<u64>().map_err(|_| {
                        ConfigError::bad("admission_rate", "must be frames/second (0 disables)")
                    })?);
                }
                "admission_burst" => {
                    let n: u64 = value.parse().map_err(|_| {
                        ConfigError::bad("admission_burst", "must be a positive frame count")
                    })?;
                    if n == 0 {
                        return Err(ConfigError::bad("admission_burst", "must be at least 1"));
                    }
                    admission_burst = Some(n);
                }
                other => return Err(ConfigError::bad(other, "unknown key")),
            }
        }
        let cfg = NodeConfig {
            role: role.ok_or(ConfigError::bad("role", "missing"))?,
            listen: listen.ok_or(ConfigError::bad("listen", "missing"))?,
            seed: seed.ok_or(ConfigError::bad("seed", "missing"))?,
            label: label.ok_or(ConfigError::bad("label", "missing"))?,
            peers,
            router,
            data_dir,
            store_engine: store_engine.unwrap_or_default(),
            fsync,
            read_cache_bytes,
            max_open_segments,
            stats_path,
            hosts,
            shards: shards.unwrap_or(1),
            shard_batch: shard_batch.unwrap_or(crate::shard::DEFAULT_SHARD_BATCH),
            admission_rate: admission_rate.unwrap_or(0),
            admission_burst: admission_burst.unwrap_or(64),
        };
        if cfg.shards > 1 && cfg.role != Role::Router {
            return Err(ConfigError::bad("shards", "sharding requires role = router"));
        }
        if shard_batch.is_some() && cfg.shards <= 1 {
            return Err(ConfigError::bad("shard_batch", "requires shards > 1"));
        }
        if admission_burst.is_some() && cfg.admission_rate == 0 {
            return Err(ConfigError::bad("admission_burst", "requires admission_rate > 0"));
        }
        if cfg.store_engine == StoreEngine::Segmented && cfg.data_dir.is_none() {
            return Err(ConfigError::bad("store_engine", "segmented requires data_dir"));
        }
        if cfg.fsync.is_some() && cfg.data_dir.is_none() {
            return Err(ConfigError::bad("fsync", "durability policy requires data_dir"));
        }
        if cfg.read_cache_bytes.is_some() && cfg.store_engine != StoreEngine::Segmented {
            return Err(ConfigError::bad("read_cache_bytes", "requires store_engine = segmented"));
        }
        if cfg.max_open_segments.is_some() && cfg.store_engine != StoreEngine::Segmented {
            return Err(ConfigError::bad("max_open_segments", "requires store_engine = segmented"));
        }
        if cfg.role == Role::Storage {
            if cfg.router.is_none() {
                return Err(ConfigError::bad("router", "required for role = storage"));
            }
            if cfg.peers.is_empty() {
                return Err(ConfigError::bad("peer", "storage nodes need a router peer"));
            }
        }
        Ok(cfg)
    }

    /// Renders the config back to the file format (inverse of `parse`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let role = match self.role {
            Role::Router => "router",
            Role::Storage => "storage",
            Role::Both => "both",
        };
        out.push_str(&format!("role = {role}\n"));
        out.push_str(&format!("listen = {}\n", self.listen));
        // gdp-lint: allow(SK01) -- render() *is* the config file serializer; the seed is the file's contents, written only where the operator points it
        out.push_str(&format!("seed = {}\n", hex_encode(&self.seed)));
        out.push_str(&format!("label = {}\n", self.label));
        for p in &self.peers {
            out.push_str(&format!("peer = {p}\n"));
        }
        if let Some(r) = &self.router {
            out.push_str(&format!("router = {}\n", r.to_hex()));
        }
        if let Some(d) = &self.data_dir {
            out.push_str(&format!("data_dir = {}\n", d.display()));
        }
        if self.store_engine != StoreEngine::File {
            out.push_str("store_engine = segmented\n");
        }
        if let Some(p) = &self.fsync {
            out.push_str(&format!("fsync = {}\n", p.render()));
        }
        if let Some(b) = self.read_cache_bytes {
            out.push_str(&format!("read_cache_bytes = {b}\n"));
        }
        if let Some(n) = self.max_open_segments {
            out.push_str(&format!("max_open_segments = {n}\n"));
        }
        if let Some(s) = &self.stats_path {
            out.push_str(&format!("stats_path = {}\n", s.display()));
        }
        if self.shards != 1 {
            out.push_str(&format!("shards = {}\n", self.shards));
            if self.shard_batch != crate::shard::DEFAULT_SHARD_BATCH {
                out.push_str(&format!("shard_batch = {}\n", self.shard_batch));
            }
        }
        if self.admission_rate != 0 {
            out.push_str(&format!("admission_rate = {}\n", self.admission_rate));
            if self.admission_burst != 64 {
                out.push_str(&format!("admission_burst = {}\n", self.admission_burst));
            }
        }
        for h in &self.hosts {
            out.push_str(&format!("host = {}\n", h.render()));
        }
        out
    }
}

/// Lowercase hex encoding.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Hex decoding; `None` on odd length or non-hex characters.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2).map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_capsule::MetadataBuilder;
    use gdp_cert::{AdCert, PrincipalId, PrincipalKind, Scope};
    use gdp_crypto::SigningKey;

    fn sample_host() -> HostSpec {
        let owner = SigningKey::from_seed(&[1u8; 32]);
        let writer = SigningKey::from_seed(&[2u8; 32]);
        let meta = MetadataBuilder::new().writer(&writer.verifying_key()).sign(&owner);
        let server = PrincipalId::from_seed(PrincipalKind::Server, &[3u8; 32], "cfg-srv");
        let chain = ServingChain::direct(
            AdCert::issue(&owner, meta.name(), server.name(), false, Scope::Global, 1 << 50),
            server.principal().clone(),
        );
        HostSpec { metadata: meta, chain, peers: vec![Name::from_content(b"replica-2")] }
    }

    #[test]
    fn roundtrip_full_config() {
        let cfg = NodeConfig {
            role: Role::Storage,
            listen: "127.0.0.1:7001".parse().unwrap(),
            seed: [7u8; 32],
            label: "storage-1".into(),
            peers: vec!["127.0.0.1:7000".parse().unwrap()],
            router: Some(Name::from_content(b"router")),
            data_dir: Some(PathBuf::from("/tmp/gdp-test")),
            store_engine: StoreEngine::Segmented,
            fsync: Some(FsyncPolicy::Batch { interval_us: 7_000 }),
            read_cache_bytes: Some(8 * 1024 * 1024),
            max_open_segments: Some(32),
            stats_path: Some(PathBuf::from("/tmp/gdp-test/stats.json")),
            hosts: vec![sample_host()],
            shards: 1,
            shard_batch: 64,
            admission_rate: 2_000,
            admission_burst: 128,
        };
        let text = cfg.render();
        let parsed = NodeConfig::parse(&text).unwrap();
        assert_eq!(parsed.role, cfg.role);
        assert_eq!(parsed.listen, cfg.listen);
        assert_eq!(parsed.seed, cfg.seed);
        assert_eq!(parsed.label, cfg.label);
        assert_eq!(parsed.peers, cfg.peers);
        assert_eq!(parsed.router, cfg.router);
        assert_eq!(parsed.data_dir, cfg.data_dir);
        assert_eq!(parsed.store_engine, cfg.store_engine);
        assert_eq!(parsed.fsync, cfg.fsync);
        assert_eq!(parsed.read_cache_bytes, cfg.read_cache_bytes);
        assert_eq!(parsed.max_open_segments, cfg.max_open_segments);
        assert_eq!(parsed.stats_path, cfg.stats_path);
        assert_eq!(parsed.hosts.len(), 1);
        assert_eq!(parsed.hosts[0].metadata, cfg.hosts[0].metadata);
        assert_eq!(parsed.hosts[0].peers, cfg.hosts[0].peers);
        assert_eq!(parsed.admission_rate, cfg.admission_rate);
        assert_eq!(parsed.admission_burst, cfg.admission_burst);
    }

    #[test]
    fn admission_parse_render_and_validation() {
        let base = "role = router\nlisten = 127.0.0.1:0\nseed = 0101010101010101010101010101010101010101010101010101010101010101\nlabel = r\n";
        // Defaults: disabled, keys not emitted.
        let cfg = NodeConfig::parse(base).unwrap();
        assert_eq!(cfg.admission_rate, 0);
        assert_eq!(cfg.admission_burst, 64);
        assert!(!cfg.render().contains("admission"));
        // Rate alone round-trips with the default burst (not emitted).
        let cfg = NodeConfig::parse(&format!("{base}admission_rate = 5000\n")).unwrap();
        assert_eq!((cfg.admission_rate, cfg.admission_burst), (5000, 64));
        assert!(!cfg.render().contains("admission_burst"));
        // Rate + burst round-trip.
        let cfg =
            NodeConfig::parse(&format!("{base}admission_rate = 5000\nadmission_burst = 256\n"))
                .unwrap();
        let re = NodeConfig::parse(&cfg.render()).unwrap();
        assert_eq!((re.admission_rate, re.admission_burst), (5000, 256));
        // Burst without a rate is meaningless: reject with the key.
        let err = NodeConfig::parse(&format!("{base}admission_burst = 8\n")).unwrap_err();
        assert_eq!(err.key, "admission_burst");
        // Zero burst is rejected (a bucket that can never admit).
        let err = NodeConfig::parse(&format!("{base}admission_rate = 10\nadmission_burst = 0\n"))
            .unwrap_err();
        assert_eq!(err.key, "admission_burst");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let cfg = NodeConfig::parse(
            "# a router\nrole = router\n\nlisten = 127.0.0.1:0 # inline\nseed = 0101010101010101010101010101010101010101010101010101010101010101\nlabel = r\n",
        )
        .unwrap();
        assert_eq!(cfg.role, Role::Router);
    }

    #[test]
    fn unknown_key_rejected() {
        let err = NodeConfig::parse(
            "role = router\nlisten = 127.0.0.1:0\nseed = 00\nlabel = x\nbogus = 1\n",
        );
        assert!(err.is_err());
    }

    #[test]
    fn storage_requires_router_and_peer() {
        let text = format!(
            "role = storage\nlisten = 127.0.0.1:0\nseed = {}\nlabel = s\n",
            hex_encode(&[9u8; 32])
        );
        let err = NodeConfig::parse(&text).unwrap_err();
        assert_eq!(err.key, "router");
    }

    #[test]
    fn shards_parse_render_and_validation() {
        let base = "role = router\nlisten = 127.0.0.1:0\nseed = 0101010101010101010101010101010101010101010101010101010101010101\nlabel = r\n";
        // Default is 1 and round-trips without emitting the key.
        let cfg = NodeConfig::parse(base).unwrap();
        assert_eq!(cfg.shards, 1);
        assert!(!cfg.render().contains("shards"));
        // Explicit value round-trips.
        let cfg = NodeConfig::parse(&format!("{base}shards = 4\n")).unwrap();
        assert_eq!(cfg.shards, 4);
        assert_eq!(NodeConfig::parse(&cfg.render()).unwrap().shards, 4);
        // Zero and non-router sharding are rejected.
        assert_eq!(NodeConfig::parse(&format!("{base}shards = 0\n")).unwrap_err().key, "shards");
        let both = base.replace("role = router", "role = both");
        assert_eq!(NodeConfig::parse(&format!("{both}shards = 2\n")).unwrap_err().key, "shards");
        // Batch cap: defaults, round-trips, and is gated on sharding.
        let cfg = NodeConfig::parse(&format!("{base}shards = 4\nshard_batch = 16\n")).unwrap();
        assert_eq!(cfg.shard_batch, 16);
        assert_eq!(NodeConfig::parse(&cfg.render()).unwrap().shard_batch, 16);
        assert_eq!(
            NodeConfig::parse(&format!("{base}shards = 4\n")).unwrap().shard_batch,
            crate::shard::DEFAULT_SHARD_BATCH
        );
        assert_eq!(
            NodeConfig::parse(&format!("{base}shards = 4\nshard_batch = 0\n")).unwrap_err().key,
            "shard_batch"
        );
        assert_eq!(
            NodeConfig::parse(&format!("{base}shard_batch = 16\n")).unwrap_err().key,
            "shard_batch"
        );
    }

    #[test]
    fn store_engine_and_fsync_parse_render_and_validation() {
        let base = "role = router\nlisten = 127.0.0.1:0\nseed = 0101010101010101010101010101010101010101010101010101010101010101\nlabel = r\n";
        // Defaults: file engine, no explicit policy, keys not emitted.
        let cfg = NodeConfig::parse(base).unwrap();
        assert_eq!(cfg.store_engine, StoreEngine::File);
        assert_eq!(cfg.fsync, None);
        assert!(!cfg.render().contains("store_engine"));
        assert!(!cfg.render().contains("fsync"));
        // Explicit values round-trip.
        let text =
            format!("{base}data_dir = /tmp/d\nstore_engine = segmented\nfsync = batch(12)\n");
        let cfg = NodeConfig::parse(&text).unwrap();
        assert_eq!(cfg.store_engine, StoreEngine::Segmented);
        assert_eq!(cfg.fsync, Some(FsyncPolicy::Batch { interval_us: 12_000 }));
        let re = NodeConfig::parse(&cfg.render()).unwrap();
        assert_eq!(re.store_engine, cfg.store_engine);
        assert_eq!(re.fsync, cfg.fsync);
        // Bad values are rejected with the offending key.
        let err = NodeConfig::parse(&format!("{base}store_engine = sqlite\n")).unwrap_err();
        assert_eq!(err.key, "store_engine");
        let err =
            NodeConfig::parse(&format!("{base}data_dir = /tmp/d\nfsync = batch(0)\n")).unwrap_err();
        assert_eq!(err.key, "fsync");
        // Both knobs are meaningless without a data_dir: reject.
        let err = NodeConfig::parse(&format!("{base}store_engine = segmented\n")).unwrap_err();
        assert_eq!(err.key, "store_engine");
        let err = NodeConfig::parse(&format!("{base}fsync = always\n")).unwrap_err();
        assert_eq!(err.key, "fsync");
    }

    #[test]
    fn read_path_keys_parse_render_and_validation() {
        let base = "role = router\nlisten = 127.0.0.1:0\nseed = 0101010101010101010101010101010101010101010101010101010101010101\nlabel = r\n";
        // Defaults: unset, keys not emitted.
        let cfg = NodeConfig::parse(base).unwrap();
        assert_eq!(cfg.read_cache_bytes, None);
        assert_eq!(cfg.max_open_segments, None);
        assert!(!cfg.render().contains("read_cache_bytes"));
        assert!(!cfg.render().contains("max_open_segments"));
        // Explicit values round-trip (0 = caching disabled is legal).
        let seg = format!("{base}data_dir = /tmp/d\nstore_engine = segmented\n");
        let cfg =
            NodeConfig::parse(&format!("{seg}read_cache_bytes = 0\nmax_open_segments = 16\n"))
                .unwrap();
        assert_eq!(cfg.read_cache_bytes, Some(0));
        assert_eq!(cfg.max_open_segments, Some(16));
        let re = NodeConfig::parse(&cfg.render()).unwrap();
        assert_eq!(re.read_cache_bytes, cfg.read_cache_bytes);
        assert_eq!(re.max_open_segments, cfg.max_open_segments);
        // Bad values are rejected with the offending key.
        let err = NodeConfig::parse(&format!("{seg}read_cache_bytes = lots\n")).unwrap_err();
        assert_eq!(err.key, "read_cache_bytes");
        let err = NodeConfig::parse(&format!("{seg}max_open_segments = 0\n")).unwrap_err();
        assert_eq!(err.key, "max_open_segments");
        // Both knobs tune the segmented read path only: reject elsewhere.
        let err = NodeConfig::parse(&format!("{base}read_cache_bytes = 4096\n")).unwrap_err();
        assert_eq!(err.key, "read_cache_bytes");
        let err = NodeConfig::parse(&format!("{base}max_open_segments = 8\n")).unwrap_err();
        assert_eq!(err.key, "max_open_segments");
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(hex_decode(&hex_encode(&[0x00, 0xff, 0x5a])).unwrap(), vec![0x00, 0xff, 0x5a]);
        assert!(hex_decode("zz").is_none());
        assert!(hex_decode("abc").is_none());
    }
}

//! Control-over-data ingress prioritization for node event loops.
//!
//! Under overload the receive queue fills with Data-plane traffic, and a
//! router that processes it strictly FIFO starves the very messages that
//! would relieve the pressure: advertisements that install routes,
//! lookups that resolve them, attach handshakes, and session traffic.
//! [`IngressQueue`] is the fix: the event loop drains a batch from the
//! transport into it and pops control-plane PDUs first, so route
//! convergence continues while Data waits.
//!
//! Classification is deliberately cheap — the PDU type byte, plus a
//! one-byte peek at the Data payload tag for session handshakes. It is a
//! scheduling *hint* only: a wrong guess reorders a PDU within the batch,
//! it never drops or corrupts one. Within each class order stays FIFO, so
//! per-peer ordering guarantees survive for same-class traffic.
//!
//! On a sharded router (`shards > 1`) most Data never reaches this queue
//! at all: the per-connection TCP readers classify with
//! [`crate::shard::is_data_plane`] and stage forwarding traffic straight
//! into the shard lanes (see `crate::shard`), so the event loop — and
//! this queue — carry only the control plane plus session handshakes.
//! On unsharded nodes this queue remains the sole ingress path and its
//! prioritization is what keeps convergence alive under a Data flood.

use gdp_wire::{Pdu, PduType};
use std::collections::VecDeque;

/// Wire tags of the `DataMsg` session-handshake messages (`SessionInit`,
/// `SessionAccept`) — the one Data-plane exchange that gates everything
/// else a client does, so it rides with the control plane.
const TAG_SESSION_INIT: u8 = 0;
const TAG_SESSION_ACCEPT: u8 = 1;

/// A two-class priority queue the event loop drains batches through.
#[derive(Debug, Default)]
pub struct IngressQueue<P> {
    control: VecDeque<(P, Pdu)>,
    data: VecDeque<(P, Pdu)>,
    preemptions: u64,
}

/// True for PDUs that must dequeue ahead of Data under pressure.
fn is_control(pdu: &Pdu) -> bool {
    match pdu.pdu_type {
        PduType::Advertise | PduType::Lookup | PduType::RouterControl | PduType::Error => true,
        PduType::Data => {
            matches!(pdu.payload.first(), Some(&TAG_SESSION_INIT | &TAG_SESSION_ACCEPT))
        }
    }
}

impl<P> IngressQueue<P> {
    /// An empty queue.
    pub fn new() -> IngressQueue<P> {
        IngressQueue { control: VecDeque::new(), data: VecDeque::new(), preemptions: 0 }
    }

    /// Enqueues one received PDU into its class.
    pub fn push(&mut self, from: P, pdu: Pdu) {
        if is_control(&pdu) {
            self.control.push_back((from, pdu));
        } else {
            self.data.push_back((from, pdu));
        }
    }

    /// Dequeues the next PDU: control-plane first, FIFO within a class.
    pub fn pop(&mut self) -> Option<(P, Pdu)> {
        if let Some(item) = self.control.pop_front() {
            if !self.data.is_empty() {
                self.preemptions += 1;
            }
            return Some(item);
        }
        self.data.pop_front()
    }

    /// Queued PDUs across both classes.
    pub fn len(&self) -> usize {
        self.control.len() + self.data.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.control.is_empty() && self.data.is_empty()
    }

    /// Times a control-plane PDU dequeued ahead of waiting Data — the
    /// signal that prioritization actually did work under pressure.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_wire::Name;

    fn pdu(pdu_type: PduType, payload: &[u8]) -> Pdu {
        Pdu {
            pdu_type,
            src: Name::from_content(b"src"),
            dst: Name::from_content(b"dst"),
            seq: 0,
            payload: payload.to_vec().into(),
        }
    }

    #[test]
    fn control_dequeues_ahead_of_data() {
        let mut q = IngressQueue::new();
        q.push(1, pdu(PduType::Data, &[3])); // Append
        q.push(2, pdu(PduType::Data, &[5])); // Read
        q.push(3, pdu(PduType::Advertise, &[]));
        q.push(4, pdu(PduType::Lookup, &[]));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(p, _)| p)).collect();
        assert_eq!(order, vec![3, 4, 1, 2], "control first, FIFO within class");
        assert_eq!(q.preemptions(), 2, "both control pops jumped queued data");
    }

    #[test]
    fn session_handshake_rides_with_control() {
        let mut q = IngressQueue::new();
        q.push(1, pdu(PduType::Data, &[3])); // Append: data class
        q.push(2, pdu(PduType::Data, &[TAG_SESSION_INIT])); // handshake
        q.push(3, pdu(PduType::Data, &[TAG_SESSION_ACCEPT])); // handshake
        assert_eq!(q.pop().unwrap().0, 2);
        assert_eq!(q.pop().unwrap().0, 3);
        assert_eq!(q.pop().unwrap().0, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_when_no_pressure() {
        // All-data and all-control batches stay strictly FIFO, and popping
        // control with no data waiting is not a preemption.
        let mut q = IngressQueue::new();
        for i in 0..4u32 {
            q.push(i, pdu(PduType::RouterControl, &[]));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(p, _)| p)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(q.preemptions(), 0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn empty_payload_data_is_data() {
        let mut q = IngressQueue::new();
        q.push(1u8, pdu(PduType::Data, &[]));
        q.push(2u8, pdu(PduType::Error, &[]));
        assert_eq!(q.pop().unwrap().0, 2, "error PDUs are control");
        assert_eq!(q.pop().unwrap().0, 1);
    }
}

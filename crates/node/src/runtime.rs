//! Transport-agnostic node runtime: the full node composition (router +
//! DataCapsule server + attach state machine + peer↔neighbor mapping)
//! as a sans-I/O core, generic over the peer-address type `P`.
//!
//! [`crate::node`] wraps this over [`gdp_net::TcpNet`] (P = `SocketAddr`)
//! for real deployments; `gdp-sim` wraps the *same* runtime over the
//! deterministic `gdp_net::simnet` fabric (P = `SimAddr`) for seeded
//! chaos testing. Every method takes the caller's clock (`now`, µs) and
//! returns an outbox of `(peer, pdu)` pairs to transmit — the runtime
//! never reads a wall clock, never spawns a thread, and (once seeded via
//! [`NodeRuntime::set_rng_seed`]) never touches OS randomness, which is
//! what makes simulation runs byte-for-byte replayable.

use crate::config::{NodeConfig, Role, StoreEngine};
use crate::node::NodeError;
use gdp_obs::Metrics;
use gdp_router::{attach_directly, AttachStep, Attacher, Router};
use gdp_server::DataCapsuleServer;
use gdp_store::{Backing, StorageEngine};
use gdp_wire::{Name, Pdu};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Catalog/RtCert expiry for runtime attachments: effectively forever on
/// the node's own clock (node time starts at zero at process start).
pub const FOREVER: u64 = 1 << 50;

/// Reserved neighbor id for the co-located server (role `both`).
pub const LOCAL_NID: usize = usize::MAX;

/// How long (µs) to wait before re-sending a Hello for an unfinished
/// network attach.
pub const ATTACH_RETRY_US: u64 = 500_000;

/// PDUs to transmit, in order: `(peer, pdu)`.
pub type NodeOutbox<P> = Vec<(P, Pdu)>;

/// Shared peer ↔ neighbor-id table with epoch-snapshot address reads.
///
/// The runtime used to own the peer→nid map privately; with reader-side
/// shard dispatch the per-connection TCP reader threads must allocate and
/// resolve the *same* id space as the control router, so the map lives
/// behind an `Arc` with two access paths tuned very differently:
///
/// * **Allocation and peer→nid lookup** take a mutex. Both are off the
///   per-PDU path: a reader resolves its own peer's id once per
///   connection, and the control plane allocates once per new peer.
/// * **nid→peer resolution** (shard egress, per PDU) is contention-free:
///   every allocation publishes a fresh immutable `Arc<Vec<P>>` snapshot
///   and bumps an epoch counter. Workers cache the snapshot and compare
///   the epoch at most once per *batch* — one relaxed atomic load — so
///   the steady state does no locking and no reference-count traffic.
///
/// Ids are dense, allocated in first-sight order, and never reused — a
/// returning peer keeps its id, which is what keeps SimNet runs (where
/// one thread drives everything through the same structure) replayable.
pub struct NidMap<P> {
    inner: Mutex<NidInner<P>>,
    epoch: AtomicU64,
}

struct NidInner<P> {
    ids: HashMap<P, usize>,
    snap: Arc<Vec<P>>,
}

/// A worker-cached view of a [`NidMap`] snapshot; see
/// [`NidMap::refresh`].
pub struct NidSnapshot<P> {
    epoch: u64,
    addrs: Arc<Vec<P>>,
}

impl<P> Default for NidSnapshot<P> {
    fn default() -> NidSnapshot<P> {
        NidSnapshot { epoch: 0, addrs: Arc::new(Vec::new()) }
    }
}

impl<P> NidSnapshot<P> {
    /// The peer bound to `nid` in this snapshot, if allocated by then.
    pub fn addr(&self, nid: usize) -> Option<&P> {
        self.addrs.get(nid)
    }
}

impl<P> Default for NidMap<P> {
    fn default() -> NidMap<P> {
        NidMap {
            inner: Mutex::new(NidInner { ids: HashMap::new(), snap: Arc::new(Vec::new()) }),
            epoch: AtomicU64::new(0),
        }
    }
}

impl<P: Copy + Eq + Hash> NidMap<P> {
    /// The stable neighbor id for `peer`, allocating one on first sight.
    pub fn nid(&self, peer: P) -> usize {
        let mut inner = self.inner.lock();
        if let Some(&n) = inner.ids.get(&peer) {
            return n;
        }
        let n = inner.snap.len();
        // Copy-on-write: readers keep whatever snapshot they hold; the
        // O(n) copy runs once per *new peer*, never per PDU.
        let mut next = Vec::with_capacity(n + 1);
        next.extend_from_slice(&inner.snap);
        next.push(peer);
        inner.snap = Arc::new(next);
        inner.ids.insert(peer, n);
        // Release pairs with the Acquire in `refresh`: a worker that sees
        // the new epoch also sees the snapshot that produced it.
        self.epoch.fetch_add(1, Ordering::Release);
        n
    }

    /// The id already bound to `peer`, without allocating.
    pub fn lookup(&self, peer: P) -> Option<usize> {
        self.inner.lock().ids.get(&peer).copied()
    }

    /// The peer bound to `nid` (locking convenience for cold paths).
    pub fn addr(&self, nid: usize) -> Option<P> {
        self.inner.lock().snap.get(nid).copied()
    }

    /// Allocated id count.
    pub fn len(&self) -> usize {
        self.inner.lock().snap.len()
    }

    /// True when no id has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Brings a worker-owned snapshot cache up to date. Unchanged epochs
    /// cost one relaxed atomic load; call once per batch, then resolve
    /// through [`NidSnapshot::addr`] with no locking at all.
    pub fn refresh(&self, cache: &mut NidSnapshot<P>) {
        let epoch = self.epoch.load(Ordering::Acquire);
        if epoch != cache.epoch {
            cache.addrs = Arc::clone(&self.inner.lock().snap);
            cache.epoch = epoch;
        }
    }
}

/// Server-side attach progress (storage role, network attach).
enum ServerAttach {
    /// Handshake in flight; retry Hello after a quiet period (µs of the
    /// last Hello sent).
    Pending(Box<Attacher>, u64),
    /// Attached; nothing to do until a re-advertise is needed.
    Done,
}

/// Builds the protocol cores for a node config: the router (when the
/// role routes) and the server with its hosted capsules mounted through
/// the configured storage engine (when the role stores).
///
/// Extracted from the TCP daemon so the simulator restarts a crashed
/// node through the *same* code path — including `FileStore` torn-tail
/// recovery and `host_with_store` replay.
pub fn build_cores(
    cfg: &NodeConfig,
) -> Result<(Option<Router>, Option<DataCapsuleServer>), NodeError> {
    build_cores_with_obs(cfg, &Metrics::new())
}

/// [`build_cores`] with the node's shared metric registry: the router
/// registers under scope `"router"`, the server under `"server"`, and
/// every capsule store under `"store"`.
pub fn build_cores_with_obs(
    cfg: &NodeConfig,
    metrics: &Metrics,
) -> Result<(Option<Router>, Option<DataCapsuleServer>), NodeError> {
    let router = cfg
        .role
        .routes()
        .then(|| Router::from_seed_with_obs(&cfg.seed, &cfg.label, &metrics.scope("router")));

    let server = if cfg.role.stores() {
        // Distinct seed domain for the server half of a `both` node, so
        // router and server identities never collide.
        let mut seed = cfg.seed;
        seed[0] ^= 0x5a;
        let mut server =
            DataCapsuleServer::from_seed_with_obs(&seed, &cfg.label, &metrics.scope("server"));
        if let Some(dir) = &cfg.data_dir {
            std::fs::create_dir_all(dir).map_err(|e| NodeError::Host(format!("data_dir: {e}")))?;
        }
        // The storage engine maps the config's `data_dir`/`store_engine`/
        // `fsync` knobs onto one backing shared by every hosted capsule:
        // per-capsule log files, one shared segmented group-commit log, or
        // memory when no data_dir is configured. Restart recovery (torn
        // tails, checkpoint replay) happens inside the engine's open path,
        // then `host_with_store` replays the store into the server core.
        let backing = match (&cfg.data_dir, cfg.store_engine) {
            (None, _) => Backing::Memory,
            (Some(dir), StoreEngine::File) => Backing::Directory(dir.clone()),
            (Some(dir), StoreEngine::Segmented) => Backing::Segmented(dir.join("seglog")),
        };
        let mut engine = StorageEngine::with_obs(backing, metrics.scope("store"));
        if let Some(policy) = cfg.fsync {
            engine = engine.with_policy(policy);
        }
        if cfg.read_cache_bytes.is_some() || cfg.max_open_segments.is_some() {
            engine = engine.with_seg_tuning(
                cfg.read_cache_bytes.map(|b| b as usize),
                cfg.max_open_segments.map(|n| n as usize),
            );
        }
        for spec in &cfg.hosts {
            let capsule = spec.metadata.name();
            let store = engine
                .open_boxed(&capsule)
                .map_err(|e| NodeError::Host(format!("open store: {e:?}")))?;
            server
                .host_with_store(
                    spec.metadata.clone(),
                    spec.chain.clone(),
                    spec.peers.clone(),
                    store,
                )
                .map_err(|e| NodeError::Host(format!("{e:?}")))?;
        }
        Some(server)
    } else {
        None
    };

    Ok((router, server))
}

/// The node composition as a sans-I/O state machine over peer type `P`.
pub struct NodeRuntime<P> {
    role: Role,
    router: Option<Router>,
    server: Option<DataCapsuleServer>,
    attach: Option<ServerAttach>,
    /// The router identity a storage node attaches to.
    attach_target: Option<Name>,
    /// The peer all storage-role traffic is sent through.
    uplink: Option<P>,
    /// Stable peer ↔ neighbor-id table (never reused; a returning peer
    /// keeps its id). Shared so TCP reader threads dispatching data-plane
    /// PDUs straight into shard workers use the same id space.
    nids: Arc<NidMap<P>>,
}

impl<P: Copy + Eq + Hash> NodeRuntime<P> {
    /// Assembles a runtime from pre-built cores. `attach_target` and
    /// `uplink` are required for (and only used by) the storage role.
    pub fn new(
        role: Role,
        router: Option<Router>,
        server: Option<DataCapsuleServer>,
        attach_target: Option<Name>,
        uplink: Option<P>,
    ) -> NodeRuntime<P> {
        NodeRuntime {
            role,
            router,
            server,
            attach: None,
            attach_target,
            uplink,
            nids: Arc::new(NidMap::default()),
        }
    }

    /// Builds cores from `cfg` and assembles the runtime.
    pub fn from_config(cfg: &NodeConfig, uplink: Option<P>) -> Result<NodeRuntime<P>, NodeError> {
        let (router, server) = build_cores(cfg)?;
        Ok(NodeRuntime::new(cfg.role, router, server, cfg.router, uplink))
    }

    /// [`NodeRuntime::from_config`] registering all core metrics into the
    /// node's shared registry.
    pub fn from_config_with_obs(
        cfg: &NodeConfig,
        uplink: Option<P>,
        metrics: &Metrics,
    ) -> Result<NodeRuntime<P>, NodeError> {
        let (router, server) = build_cores_with_obs(cfg, metrics)?;
        Ok(NodeRuntime::new(cfg.role, router, server, cfg.router, uplink))
    }

    /// The router identity, when this node runs one.
    pub fn router_name(&self) -> Option<Name> {
        self.router.as_ref().map(|r| r.name())
    }

    /// The DataCapsule-server identity, when this node runs one.
    pub fn server_name(&self) -> Option<Name> {
        self.server.as_ref().map(|s| s.name())
    }

    /// The hosted-data core, for inspection (e.g. invariant checks).
    pub fn server(&self) -> Option<&DataCapsuleServer> {
        self.server.as_ref()
    }

    /// Mutable access to the hosted-data core.
    pub fn server_mut(&mut self) -> Option<&mut DataCapsuleServer> {
        self.server.as_mut()
    }

    /// The routing core, for inspection.
    pub fn router(&self) -> Option<&Router> {
        self.router.as_ref()
    }

    /// Mutable access to the routing core (e.g. to turn on route-install
    /// recording for the sharded forwarding engine).
    pub fn router_mut(&mut self) -> Option<&mut Router> {
        self.router.as_mut()
    }

    /// The stable neighbor id for a peer, allocating one on first sight.
    /// This is the same id space `on_pdu` uses, so external dispatchers
    /// (the sharded engine) stay consistent with the control router.
    pub fn neighbor_id(&mut self, peer: P) -> usize {
        self.nid(peer)
    }

    /// The shared peer ↔ neighbor-id table. The sharded engine holds a
    /// clone so its reader-side classifiers and worker egress resolve
    /// through the exact ids the control plane allocates.
    pub fn nid_map(&self) -> Arc<NidMap<P>> {
        Arc::clone(&self.nids)
    }

    /// The peer address bound to a neighbor id, if one was ever mapped.
    pub fn neighbor_addr(&self, nid: usize) -> Option<P> {
        self.nids.addr(nid)
    }

    /// True once a storage node's network attach has completed.
    pub fn is_attached(&self) -> bool {
        matches!(self.attach, Some(ServerAttach::Done))
    }

    /// Seeds every internal RNG (router challenges, server session keys)
    /// so runs are deterministic. Call before any traffic is processed.
    pub fn set_rng_seed(&mut self, seed: u64) {
        if let Some(r) = self.router.as_mut() {
            r.set_rng_seed(seed ^ 0x524f_5554);
        }
        if let Some(s) = self.server.as_mut() {
            s.set_rng_seed(seed ^ 0x5352_5652);
        }
    }

    fn nid(&mut self, peer: P) -> usize {
        self.nids.nid(peer)
    }

    /// Starts the node: a `both` node attaches its server to its own
    /// router in-process; a pure storage node opens the network attach
    /// handshake toward its uplink.
    pub fn start(&mut self, now: u64) -> NodeOutbox<P> {
        let mut out = Vec::new();
        self.local_attach(now);
        self.start_network_attach(now, &mut out);
        out
    }

    /// Role `both`: drive the attach handshake against the local router
    /// directly — no network round trip for co-located components.
    fn local_attach(&mut self, now: u64) {
        let (Some(router), Some(server)) = (self.router.as_mut(), self.server.as_mut()) else {
            return;
        };
        let mut attacher = Attacher::new(
            server.principal_id().clone(),
            router.name(),
            server.advert_entries(),
            FOREVER,
        );
        attach_directly(router, LOCAL_NID, &mut attacher, now)
            // gdp-lint: allow(HP01) -- both halves of the attach run in-process with no I/O; failure is a construction-order bug, not a runtime condition
            .expect("local attach cannot fail: both halves are in-process");
    }

    /// Storage role: begin (or restart) the attach handshake toward the
    /// configured router.
    fn start_network_attach(&mut self, now: u64, out: &mut NodeOutbox<P>) {
        if self.role != Role::Storage {
            return;
        }
        let (Some(server), Some(target), Some(uplink)) =
            (self.server.as_ref(), self.attach_target, self.uplink)
        else {
            return;
        };
        let attacher =
            Attacher::new(server.principal_id().clone(), target, server.advert_entries(), FOREVER);
        out.push((uplink, attacher.hello()));
        self.attach = Some(ServerAttach::Pending(Box::new(attacher), now));
    }

    /// Re-arms the attach handshake *without* sending a Hello now; the
    /// tick retry sends it one `ATTACH_RETRY_US` later. Used after a
    /// rejection, where immediate retry would feed an attach storm.
    fn rearm_network_attach(&mut self, now: u64) {
        if self.role != Role::Storage {
            return;
        }
        let (Some(server), Some(target)) = (self.server.as_ref(), self.attach_target) else {
            return;
        };
        let attacher =
            Attacher::new(server.principal_id().clone(), target, server.advert_entries(), FOREVER);
        self.attach = Some(ServerAttach::Pending(Box::new(attacher), now));
    }

    /// A peer's transport reported it dead: withdraw its routes and, if
    /// it was our uplink, restart the attach handshake.
    pub fn on_peer_down(&mut self, now: u64, peer: P) -> NodeOutbox<P> {
        let mut out = Vec::new();
        // Withdraw everything the dead neighbor advertised so reads fail
        // over to surviving replicas.
        if let (Some(router), Some(nid)) = (self.router.as_mut(), self.nids.lookup(peer)) {
            router.neighbor_down(nid);
        }
        // A storage node that lost its uplink must re-attach once the
        // router is reachable again.
        if self.role == Role::Storage && Some(peer) == self.uplink {
            self.start_network_attach(now, &mut out);
        }
        out
    }

    /// Feeds one received PDU through the node: the attach handshake
    /// claims matching PDUs first, then the router cascade (or, on a
    /// router-less storage node, the server directly).
    pub fn on_pdu(&mut self, now: u64, from: P, pdu: Pdu) -> NodeOutbox<P> {
        let mut out = Vec::new();
        // Storage role: the attach handshake claims matching PDUs first.
        if let Some(ServerAttach::Pending(attacher, _)) = self.attach.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(reply) => {
                    if let Some(uplink) = self.uplink {
                        out.push((uplink, reply));
                    }
                    return out;
                }
                AttachStep::Done(_) => {
                    self.attach = Some(ServerAttach::Done);
                    return out;
                }
                AttachStep::Failed(_) => {
                    // Router restarted mid-handshake or rejected us; start
                    // over from Hello — but let the tick retry send it.
                    // Re-Helloing *immediately* on rejection turns overlapping
                    // handshake cycles into a self-sustaining reject/Hello
                    // storm (attach livelock, found by chaos seed 160).
                    self.rearm_network_attach(now);
                    return out;
                }
                AttachStep::Ignored => {}
            }
        }

        if self.router.is_some() {
            let nid = self.nid(from);
            self.route(now, nid, pdu, &mut out);
        } else if let Some(server) = self.server.as_mut() {
            let replies = server.handle_pdu(now, pdu);
            if let Some(uplink) = self.uplink {
                for reply in replies {
                    out.push((uplink, reply));
                }
            }
        }
        out
    }

    /// Feeds one PDU into the router and collects the resulting cascade,
    /// bouncing between router and co-located server until quiescent.
    fn route(&mut self, now: u64, from_nid: usize, pdu: Pdu, out: &mut NodeOutbox<P>) {
        let mut work: VecDeque<(usize, Pdu)> = VecDeque::new();
        work.push_back((from_nid, pdu));
        // The request/response protocol cannot ping-pong unboundedly; the
        // cap is defense against a protocol bug becoming a busy loop.
        let mut budget = 10_000usize;
        while let Some((nid, pdu)) = work.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let Some(router) = self.router.as_mut() else { return };
            for (to, pdu_out) in router.handle_pdu(now, nid, pdu) {
                if to == LOCAL_NID {
                    if let Some(server) = self.server.as_mut() {
                        for reply in server.handle_pdu(now, pdu_out) {
                            work.push_back((LOCAL_NID, reply));
                        }
                    }
                } else if let Some(peer) = self.nids.addr(to) {
                    out.push((peer, pdu_out));
                }
            }
        }
    }

    /// Periodic maintenance: route-expiry purge, server durability
    /// timeouts + anti-entropy, re-advertise, attach-Hello retry.
    pub fn tick(&mut self, now: u64) -> NodeOutbox<P> {
        let mut out = Vec::new();
        if let Some(router) = self.router.as_mut() {
            router.purge_expired(now);
        }

        // Server maintenance: durability timeouts + anti-entropy.
        if let Some(server) = self.server.as_mut() {
            let pdus = server.tick(now);
            match self.role {
                Role::Both => {
                    for pdu in pdus {
                        self.route(now, LOCAL_NID, pdu, &mut out);
                    }
                }
                _ => {
                    if let Some(uplink) = self.uplink {
                        for pdu in pdus {
                            out.push((uplink, pdu));
                        }
                    }
                }
            }
        }

        // Re-advertise when new capsules were mounted at runtime.
        if self.server.as_mut().map(|s| s.needs_readvertise()).unwrap_or(false) {
            match self.role {
                Role::Both => self.local_attach(now),
                Role::Storage => self.start_network_attach(now, &mut out),
                Role::Router => {}
            }
        }

        // Nudge an unfinished network attach (lost Hello, slow router).
        if let Some(ServerAttach::Pending(attacher, last_hello)) = self.attach.as_mut() {
            if now.saturating_sub(*last_hello) >= ATTACH_RETRY_US {
                *last_hello = now;
                let hello = attacher.hello();
                if let Some(uplink) = self.uplink {
                    out.push((uplink, hello));
                }
            }
        }
        out
    }
}

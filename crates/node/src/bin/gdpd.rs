//! `gdpd` — the GDP node daemon.
//!
//! ```text
//! gdpd <config-file>
//! ```
//!
//! Reads a [`gdp_node::NodeConfig`], starts the node, prints one
//! machine-readable status line per identity to stdout, and serves until
//! the process is killed. See the crate docs and README for the config
//! format and a 3-node loopback walkthrough.

use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if !p.starts_with('-') => p,
        _ => {
            eprintln!("usage: gdpd <config-file>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gdpd: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let cfg = match gdp_node::NodeConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gdpd: {path}: {e}");
            std::process::exit(1);
        }
    };
    let stats_path = cfg.stats_path.clone();
    let handle = match gdp_node::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gdpd: startup failed: {e}");
            std::process::exit(1);
        }
    };

    // Status lines are a stable interface: orchestration (and the e2e
    // test) parses them to learn the OS-assigned port and identities.
    let mut out = std::io::stdout();
    let _ = writeln!(out, "gdpd listen {}", handle.local_addr());
    if let Some(r) = handle.router_name() {
        let _ = writeln!(out, "gdpd router {}", r.to_hex());
    }
    if let Some(s) = handle.server_name() {
        let _ = writeln!(out, "gdpd server {}", s.to_hex());
    }
    if let Some(p) = &stats_path {
        // Dumped on shutdown, and on demand when the trigger file appears.
        let _ = writeln!(out, "gdpd stats {}", p.display());
    }
    let _ = out.flush();

    handle.wait();
}

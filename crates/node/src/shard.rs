//! Sharded forwarding engine for router-role `gdpd` nodes.
//!
//! The sans-I/O [`Router`] is single-threaded by design — that is what
//! keeps SimNet runs byte-for-byte replayable. A deployed router node,
//! however, can spread the *data plane* across cores without giving that
//! up: the event-loop thread keeps one **control** router (attach
//! handshakes, advertisements, lookups — everything that verifies
//! certificates and mutates routing state), and `N` worker shards each
//! own a plain `Router` instance that only ever sees forwarding traffic
//! for its slice of the name space.
//!
//! Partitioning is by destination name hash: names are SHA-256 outputs,
//! so the first 8 bytes are already uniformly distributed and
//! `name mod N` needs no further mixing. Because a name always maps to
//! the same shard, per-name FIB state never needs cross-shard
//! synchronization: the control router records every route install
//! ([`Router::record_installs`]) and each [`RouteInstall`] is mirrored to
//! the one shard that owns the name. Neighbor-down and expiry purges
//! broadcast to all shards.
//!
//! ## Run-to-completion data path
//!
//! PDUs never touch the event-loop thread. Each per-connection TCP
//! reader classifies frames with [`is_data_plane`] (the same predicate
//! `Router::handle_pdu_into` dispatches on) and stages data-plane PDUs
//! into a [`ShardBatcher`]; control-plane PDUs keep flowing to the event
//! loop. The batcher hands each shard a [`ShardBatch`] — up to
//! `batch_cap` PDUs in one channel send, so the per-PDU handoff cost
//! (channel lock + worker wakeup) is amortized across the whole batch.
//! A worker drains its batch to completion: decode already happened in
//! the reader, FIB lookup and egress happen on the worker, and egressed
//! PDUs go straight to the per-peer writer queue through a cached
//! [`PeerHandle`] — no shared lock anywhere on the per-PDU path.
//!
//! Two lanes reach each worker:
//!
//! * a **bounded** data lane carrying batches — a full lane stalls the
//!   staging reader (per-connection backpressure), never the event loop;
//! * an **unbounded** control lane carrying route-install mirrors,
//!   neighbor-down withdrawals, and expiry purges — mirrors can never be
//!   delayed behind queued data, so a data flood cannot stall route
//!   convergence (the lane is tiny: its rate is the control plane's).
//!
//! Egress addresses resolve through an epoch-snapshot [`NidMap`]: the
//! runtime (sole nid authority) installs a new copy-on-write snapshot
//! when a peer appears, and workers re-validate their cached snapshot
//! once per *batch* with a single atomic load.
//!
//! Each shard reports queue depth (scope `router-shard<i>`, gauge
//! `queue_depth`, in queued batches) so an operator can see skew; the
//! shared `router-shards` scope counts `batches_dispatched` and records
//! a `batch_occupancy` histogram (PDUs per batch — mean occupancy is
//! `sum/count`).

use crate::runtime::{NidMap, NidSnapshot};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use gdp_net::tcp::{PeerHandle, PeerSendError, TcpNet};
use gdp_obs::{Counter, Gauge, Histogram, Metrics};
use gdp_router::{Outbox, RouteInstall, Router, VerifiedRoute};
use gdp_wire::{Name, Pdu};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use gdp_router::is_data_plane;

/// Default PDUs per batch (config key `shard_batch`). Large enough to
/// amortize the channel send + wakeup to noise, small enough that a
/// batch is microseconds of worker time.
pub const DEFAULT_SHARD_BATCH: usize = 64;

/// Per-shard bounded data-lane depth, in *batches*. With the default
/// batch cap this bounds in-flight data at `64 × 64` PDUs per shard.
pub const SHARD_QUEUE_BATCHES: usize = 64;

/// Recycled batch buffers kept across the engine (bounded so a burst of
/// short-lived connections cannot hoard memory).
const POOL_CAP: usize = 256;

/// How long a worker waits on the data lane before re-checking the
/// control lane; bounds mirror latency when data traffic is idle.
const DATA_POLL: Duration = Duration::from_millis(1);

/// Backoff while a staging reader waits for space in a full data lane.
const FULL_LANE_BACKOFF: Duration = Duration::from_micros(50);

/// Which shard owns a name. Names are SHA-256 outputs, so the leading
/// 8 bytes are uniform and a plain modulus partitions evenly.
pub fn shard_of(name: &Name, shards: usize) -> usize {
    // `as_bytes` returns a `&[u8; NAME_LEN]`, so these indices are
    // compile-time in-bounds: no slicing, no fallible conversion.
    let b = name.as_bytes();
    let word = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
    (word % shards.max(1) as u64) as usize
}

/// One handoff unit on a shard's data lane: a timestamp (sampled once at
/// flush) and the staged `(ingress nid, PDU)` pairs, in arrival order.
pub struct ShardBatch {
    /// Microseconds since the node epoch, stamped at flush.
    pub now: u64,
    /// Staged PDUs with their ingress neighbor ids, in arrival order.
    pub items: Vec<(usize, Pdu)>,
}

/// Where a shard worker puts forwarded PDUs. One port per worker, so
/// implementations can keep per-worker caches without locking.
pub trait EgressPort: Send {
    /// Queues `pdu` toward `addr`. Best-effort: a saturated or dead peer
    /// sheds, exactly as the transport's own send path does.
    fn send_to(&mut self, addr: SocketAddr, pdu: Pdu);
}

/// Factory handing each shard worker its own [`EgressPort`].
pub trait Egress: Send + Sync {
    /// Builds one port; called once per worker at engine start.
    fn port(&self) -> Box<dyn EgressPort>;
}

/// The production egress: each worker's port resolves a [`PeerHandle`]
/// per destination once and then enqueues straight onto the per-peer
/// writer queue, skipping the shared connection-pool lock per PDU.
pub struct NetEgress {
    net: TcpNet,
    drops: Counter,
}

impl NetEgress {
    /// Wraps the node's transport; `drops` counts PDUs shed because a
    /// peer's writer queue was saturated.
    pub fn new(net: TcpNet, drops: Counter) -> NetEgress {
        NetEgress { net, drops }
    }
}

impl Egress for NetEgress {
    fn port(&self) -> Box<dyn EgressPort> {
        Box::new(NetEgressPort {
            net: self.net.clone(),
            drops: self.drops.clone(),
            handles: HashMap::new(),
        })
    }
}

struct NetEgressPort {
    net: TcpNet,
    drops: Counter,
    handles: HashMap<SocketAddr, PeerHandle>,
}

impl EgressPort for NetEgressPort {
    fn send_to(&mut self, addr: SocketAddr, pdu: Pdu) {
        let handle = match self.handles.entry(addr) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => match self.net.peer_handle(addr) {
                Ok(h) => v.insert(h),
                Err(_) => return,
            },
        };
        match handle.try_send(pdu) {
            Ok(()) => {}
            // Writer saturated: shed, as `TcpNet::send` would.
            Err(PeerSendError::Full) => self.drops.inc(),
            // Writer died (peer reconnecting): drop the stale handle and
            // go through the pool once, which respawns the writer.
            Err(PeerSendError::Gone(pdu)) => {
                self.handles.remove(&addr);
                let _ = self.net.send(addr, pdu);
            }
        }
    }
}

/// Control-lane messages (unbounded lane — senders never block).
enum CtrlMsg {
    /// Mirror of a control-router route install for a name this shard owns.
    Install { neighbor: usize, distance: u32, route: Box<VerifiedRoute>, now: u64 },
    /// A neighbor's transport died; withdraw its routes.
    NeighborDown(usize),
    /// Periodic expiry purge.
    Purge(u64),
    /// Drain the data lane and exit.
    Shutdown,
}

/// Everything batchers and the engine handle share: lanes, gauges, the
/// buffer pool, and the dispatch-side counters.
struct EngineCore {
    data_txs: Vec<Sender<ShardBatch>>,
    ctrl_txs: Vec<Sender<CtrlMsg>>,
    depth: Vec<Gauge>,
    pool_tx: Sender<Vec<(usize, Pdu)>>,
    pool_rx: Receiver<Vec<(usize, Pdu)>>,
    epoch: Instant,
    batch_cap: usize,
    /// Set by `shutdown`; staging readers drop instead of spinning on a
    /// lane whose worker has exited.
    closed: AtomicBool,
    batches_dispatched: Counter,
    batch_occupancy: Histogram,
}

impl EngineCore {
    /// Hands a staged buffer to shard `i`'s data lane, blocking (with
    /// backoff) while the lane is full: backpressure lands on the one
    /// staging reader, never on the event loop.
    fn push_batch(&self, i: usize, items: Vec<(usize, Pdu)>) {
        let occupancy = items.len() as u64;
        let mut batch = ShardBatch { now: self.epoch.elapsed().as_micros() as u64, items };
        let Some(tx) = self.data_txs.get(i) else { return };
        loop {
            match tx.try_send(batch) {
                Ok(()) => {
                    self.batches_dispatched.inc();
                    self.batch_occupancy.observe(occupancy);
                    if let Some(g) = self.depth.get(i) {
                        g.set(tx.len() as i64);
                    }
                    return;
                }
                Err(TrySendError::Full(b)) => {
                    if self.closed.load(Ordering::Relaxed) {
                        return;
                    }
                    batch = b;
                    std::thread::sleep(FULL_LANE_BACKOFF);
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
    }

    /// A cleared buffer from the recycle pool, or a fresh one.
    fn buffer(&self) -> Vec<(usize, Pdu)> {
        match self.pool_rx.try_recv() {
            Ok(v) => v,
            Err(_) => Vec::with_capacity(self.batch_cap),
        }
    }
}

/// A per-connection staging area: one pending buffer per shard, flushed
/// when it reaches the batch cap or when the connection's read loop goes
/// idle. Not shared — every TCP reader owns its own batcher, so staging
/// is lock-free and per-name arrival order is preserved (a name always
/// lands in the same shard's buffer, and buffers flush in FIFO order
/// into a FIFO lane).
pub struct ShardBatcher {
    core: Arc<EngineCore>,
    staged: Vec<Vec<(usize, Pdu)>>,
}

impl ShardBatcher {
    /// Stages one data-plane PDU from ingress neighbor `from`, flushing
    /// the owning shard's buffer if it reaches the batch cap.
    pub fn stage(&mut self, from: usize, pdu: Pdu) {
        let i = shard_of(&pdu.dst, self.staged.len());
        let Some(buf) = self.staged.get_mut(i) else { return };
        if buf.capacity() == 0 {
            *buf = self.core.buffer();
        }
        buf.push((from, pdu));
        if buf.len() >= self.core.batch_cap {
            self.flush_shard(i);
        }
    }

    /// Flushes every non-empty buffer; called when the reader has no
    /// more framed PDUs to decode, so a trickle is never held hostage
    /// waiting for a full batch.
    pub fn flush(&mut self) {
        for i in 0..self.staged.len() {
            if !self.staged[i].is_empty() {
                self.flush_shard(i);
            }
        }
    }

    fn flush_shard(&mut self, i: usize) {
        if let Some(buf) = self.staged.get_mut(i) {
            let items = std::mem::take(buf);
            self.core.push_batch(i, items);
        }
    }
}

impl Drop for ShardBatcher {
    fn drop(&mut self) {
        // A closing connection must not swallow staged PDUs.
        self.flush();
    }
}

/// Ingest-sink factory for the shard engine; see
/// [`ShardedEngine::ingest_factory`].
pub struct ShardIngest {
    core: Arc<EngineCore>,
    nids: Arc<NidMap<SocketAddr>>,
    router_name: Name,
}

impl gdp_net::IngestSinkFactory for ShardIngest {
    fn make(&self) -> Box<dyn gdp_net::IngestSink> {
        Box::new(ShardIngestSink {
            batcher: ShardBatcher {
                core: Arc::clone(&self.core),
                staged: (0..self.core.data_txs.len()).map(|_| Vec::new()).collect(),
            },
            nids: Arc::clone(&self.nids),
            router_name: self.router_name,
            peer_nid: None,
        })
    }
}

/// One connection's reader-side sink: classify with [`is_data_plane`],
/// resolve the peer's neighbor id once (cached for the connection's
/// life), and stage into the owning shard. Control-plane PDUs pass
/// through to the shared receive queue untouched.
struct ShardIngestSink {
    batcher: ShardBatcher,
    nids: Arc<NidMap<SocketAddr>>,
    router_name: Name,
    /// The connection's `(peer, nid)` binding, resolved on first use.
    /// The shared [`NidMap`] allocates, so reader-side ids agree with
    /// the runtime's — both sides key by the peer's advertised address.
    peer_nid: Option<(SocketAddr, usize)>,
}

impl gdp_net::IngestSink for ShardIngestSink {
    fn offer(&mut self, from: SocketAddr, pdu: Pdu) -> Option<Pdu> {
        if !is_data_plane(&pdu, &self.router_name) {
            return Some(pdu);
        }
        let nid = match self.peer_nid {
            Some((addr, nid)) if addr == from => nid,
            _ => {
                let nid = self.nids.nid(from);
                self.peer_nid = Some((from, nid));
                nid
            }
        };
        self.batcher.stage(nid, pdu);
        None
    }

    fn idle(&mut self) {
        self.batcher.flush();
    }
}

/// One shard worker's state: its router replica, the reused outbox, the
/// cached nid→addr snapshot, and its private egress port. Public so the
/// benchmark harness can drive `process_batch` directly and measure the
/// worker stage in isolation.
pub struct ShardState {
    router: Router,
    out: Outbox,
    nids: Arc<NidMap<SocketAddr>>,
    snap: NidSnapshot<SocketAddr>,
    port: Box<dyn EgressPort>,
}

impl ShardState {
    /// Builds one worker's state around an already-seeded router.
    pub fn new(
        router: Router,
        nids: Arc<NidMap<SocketAddr>>,
        port: Box<dyn EgressPort>,
    ) -> ShardState {
        ShardState { router, out: Vec::new(), nids, snap: NidSnapshot::default(), port }
    }

    /// Runs one batch to completion: refresh the address snapshot once
    /// (a single atomic load when nothing changed), then forward every
    /// PDU and egress its outbox straight to the port. No per-PDU locks,
    /// no per-PDU allocation.
    pub fn process_batch(&mut self, batch: &mut ShardBatch) {
        self.nids.refresh(&mut self.snap);
        for (from, pdu) in batch.items.drain(..) {
            self.out.clear();
            self.router.handle_pdu_into(batch.now, from, pdu, &mut self.out);
            for (nid, pdu) in self.out.drain(..) {
                if let Some(addr) = self.snap.addr(nid) {
                    self.port.send_to(*addr, pdu);
                }
            }
        }
    }

    fn apply_ctrl(&mut self, msg: CtrlMsg) -> bool {
        match msg {
            CtrlMsg::Install { neighbor, distance, route, now } => {
                self.router.install_verified(neighbor, distance, &route, now);
                false
            }
            CtrlMsg::NeighborDown(nid) => {
                self.router.neighbor_down(nid);
                false
            }
            CtrlMsg::Purge(now) => {
                self.router.purge_expired(now);
                false
            }
            CtrlMsg::Shutdown => true,
        }
    }
}

/// The running shard pool: the shared core (lanes, pool, counters) and
/// the worker join handles (joined on [`ShardedEngine::shutdown`]).
pub struct ShardedEngine {
    core: Arc<EngineCore>,
    nids: Arc<NidMap<SocketAddr>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ShardedEngine {
    /// Spawns `shards` workers, each owning a `Router` built from the
    /// *same* seed and label as the control router (identical identity —
    /// shard-emitted Error PDUs carry the node's router name) but
    /// registering metrics under its own `router-shard<i>` scope.
    ///
    /// `nids` is the runtime's peer table (shared, epoch-snapshot);
    /// `epoch` is the node's clock origin, so batch timestamps line up
    /// with event-loop timestamps.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        shards: usize,
        batch_cap: usize,
        seed: &[u8; 32],
        label: &str,
        metrics: &Metrics,
        nids: Arc<NidMap<SocketAddr>>,
        egress: Arc<dyn Egress>,
        epoch: Instant,
    ) -> ShardedEngine {
        let shards = shards.max(1);
        let batch_cap = batch_cap.max(1);
        let shared = metrics.scope("router-shards");
        let (pool_tx, pool_rx) = bounded::<Vec<(usize, Pdu)>>(POOL_CAP);
        let mut data_txs = Vec::with_capacity(shards);
        let mut ctrl_txs = Vec::with_capacity(shards);
        let mut depth = Vec::with_capacity(shards);
        let mut lanes = Vec::with_capacity(shards);
        for i in 0..shards {
            let (dtx, drx) = bounded::<ShardBatch>(SHARD_QUEUE_BATCHES);
            let (ctx, crx) = unbounded::<CtrlMsg>();
            data_txs.push(dtx);
            ctrl_txs.push(ctx);
            let scope = metrics.scope(&format!("router-shard{i}"));
            depth.push(scope.gauge("queue_depth"));
            lanes.push((drx, crx, scope));
        }
        let core = Arc::new(EngineCore {
            data_txs,
            ctrl_txs,
            depth,
            pool_tx,
            pool_rx,
            epoch,
            batch_cap,
            closed: AtomicBool::new(false),
            batches_dispatched: shared.counter("batches_dispatched"),
            batch_occupancy: shared.histogram("batch_occupancy"),
        });
        let mut workers = Vec::with_capacity(shards);
        for (i, (data_rx, ctrl_rx, scope)) in lanes.into_iter().enumerate() {
            let router = Router::from_seed_with_obs(seed, label, &scope);
            let state = ShardState::new(router, Arc::clone(&nids), egress.port());
            let worker_core = Arc::clone(&core);
            let handle = std::thread::Builder::new()
                .name(format!("gdp-shard-{i}"))
                .spawn(move || shard_worker(state, data_rx, ctrl_rx, worker_core, i))
                // gdp-lint: allow(HP01) -- runs once at engine construction, before the data plane is live; a node that cannot spawn its workers cannot serve at all
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardedEngine { core, nids, workers }
    }

    /// Benchmark harness: a pool with *unbounded* data lanes and no
    /// worker threads — staged batches simply accumulate. Staging into
    /// it measures the dispatch stage (batcher, shard hash, batched
    /// channel enqueue, counters) in complete isolation: no forwarding
    /// work and no consumer competing for the driver's core. The fig6
    /// sharded ablation in `gdp-bench` uses it to project multi-core
    /// scaling on machines with fewer cores than shards; the lanes'
    /// receivers are parked in the engine itself, so everything queued
    /// is dropped on [`ShardedEngine::shutdown`].
    #[doc(hidden)]
    pub fn start_unconsumed(
        shards: usize,
        batch_cap: usize,
        metrics: &Metrics,
        nids: Arc<NidMap<SocketAddr>>,
        epoch: Instant,
    ) -> (ShardedEngine, Vec<Receiver<ShardBatch>>) {
        let shards = shards.max(1);
        let batch_cap = batch_cap.max(1);
        let shared = metrics.scope("router-shards");
        let (pool_tx, pool_rx) = bounded::<Vec<(usize, Pdu)>>(POOL_CAP);
        let mut data_txs = Vec::with_capacity(shards);
        let mut ctrl_txs = Vec::with_capacity(shards);
        let mut depth = Vec::with_capacity(shards);
        let mut data_rxs = Vec::with_capacity(shards);
        for i in 0..shards {
            let (dtx, drx) = unbounded::<ShardBatch>();
            let (ctx, _crx) = unbounded::<CtrlMsg>();
            data_txs.push(dtx);
            ctrl_txs.push(ctx);
            depth.push(metrics.scope(&format!("router-shard{i}")).gauge("queue_depth"));
            data_rxs.push(drx);
        }
        let core = Arc::new(EngineCore {
            data_txs,
            ctrl_txs,
            depth,
            pool_tx,
            pool_rx,
            epoch,
            batch_cap,
            closed: AtomicBool::new(false),
            batches_dispatched: shared.counter("batches_dispatched"),
            batch_occupancy: shared.histogram("batch_occupancy"),
        });
        (ShardedEngine { core, nids, workers: Vec::new() }, data_rxs)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.core.data_txs.len()
    }

    /// A fresh per-connection staging batcher. Every TCP reader gets its
    /// own; they share only the lanes and the buffer pool.
    pub fn batcher(&self) -> ShardBatcher {
        ShardBatcher {
            core: Arc::clone(&self.core),
            staged: (0..self.shards()).map(|_| Vec::new()).collect(),
        }
    }

    /// The per-connection ingest classifier installed on the transport
    /// ([`gdp_net::TcpNet::set_ingest_sink`]): readers classify with the
    /// router's own dispatch predicate and stage data-plane PDUs
    /// straight into the shard lanes, so the event loop only ever sees
    /// control traffic.
    pub fn ingest_factory(&self, router_name: Name) -> ShardIngest {
        ShardIngest { core: Arc::clone(&self.core), nids: Arc::clone(&self.nids), router_name }
    }

    /// Mirrors one control-router route install into the owning shard.
    /// Never blocks: the control lane is unbounded, so a data flood that
    /// fills every data lane cannot stall route convergence.
    pub fn mirror_install(&self, install: RouteInstall, now: u64) {
        let i = shard_of(&install.route.name, self.core.ctrl_txs.len());
        if let Some(tx) = self.core.ctrl_txs.get(i) {
            let _ = tx.send(CtrlMsg::Install {
                neighbor: install.neighbor,
                distance: install.distance,
                route: Box::new(install.route),
                now,
            });
        }
    }

    /// Broadcasts a neighbor death (route withdrawal) to every shard.
    pub fn neighbor_down(&self, nid: usize) {
        for tx in &self.core.ctrl_txs {
            let _ = tx.send(CtrlMsg::NeighborDown(nid));
        }
    }

    /// Broadcasts the periodic expiry purge.
    pub fn purge(&self, now: u64) {
        for tx in &self.core.ctrl_txs {
            let _ = tx.send(CtrlMsg::Purge(now));
        }
    }

    /// Stops the pool: marks the core closed (staging readers shed
    /// instead of spinning), tells every worker to drain its data lane
    /// and exit, and joins them.
    pub fn shutdown(self) {
        self.core.closed.store(true, Ordering::SeqCst);
        for tx in &self.core.ctrl_txs {
            let _ = tx.send(CtrlMsg::Shutdown);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One shard worker: control lane first (mirrors must never wait behind
/// queued data), then up to one data batch, run to completion. The 1 ms
/// data-lane timeout bounds mirror latency when traffic is idle.
fn shard_worker(
    mut state: ShardState,
    data_rx: Receiver<ShardBatch>,
    ctrl_rx: Receiver<CtrlMsg>,
    core: Arc<EngineCore>,
    shard: usize,
) {
    loop {
        while let Ok(msg) = ctrl_rx.try_recv() {
            if state.apply_ctrl(msg) {
                // Shutdown: run whatever data is already queued, then exit.
                while let Ok(mut batch) = data_rx.try_recv() {
                    state.process_batch(&mut batch);
                }
                return;
            }
        }
        match data_rx.recv_timeout(DATA_POLL) {
            Ok(mut batch) => {
                if let Some(g) = core.depth.get(shard) {
                    g.set(data_rx.len() as i64);
                }
                state.process_batch(&mut batch);
                // Return the drained buffer to the recycle pool.
                let _ = core.pool_tx.try_send(batch.items);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_cert::identity::{PrincipalId, PrincipalKind};
    use gdp_router::Attacher;
    use gdp_wire::PduType;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for i in 0..64u8 {
            let name = Name::from_content(&[i]);
            let s = shard_of(&name, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&name, 4));
        }
        assert_eq!(shard_of(&Name::from_content(b"x"), 1), 0);
    }

    #[test]
    fn shard_of_spreads_names() {
        let shards = 4;
        let mut buckets = vec![0usize; shards];
        for i in 0..256u16 {
            buckets[shard_of(&Name::from_content(&i.to_le_bytes()), shards)] += 1;
        }
        // SHA-256-uniform names must not collapse onto few shards.
        assert!(buckets.iter().all(|&b| b > 256 / shards / 4), "skewed: {buckets:?}");
    }

    #[test]
    fn data_plane_predicate_mirrors_router_dispatch() {
        let me = Name::from_content(b"router");
        let other = Name::from_content(b"elsewhere");
        let mk = |t: PduType, dst: Name| Pdu {
            pdu_type: t,
            src: Name::from_content(b"src"),
            dst,
            seq: 1,
            payload: gdp_wire::Bytes::new(),
        };
        // Consumed by the control router:
        assert!(!is_data_plane(&mk(PduType::Advertise, me), &me));
        assert!(!is_data_plane(&mk(PduType::Lookup, me), &me));
        assert!(!is_data_plane(&mk(PduType::Lookup, Name::ZERO), &me));
        assert!(!is_data_plane(&mk(PduType::RouterControl, Name::ZERO), &me));
        // Forwarded (shard-eligible):
        assert!(is_data_plane(&mk(PduType::Data, other), &me));
        assert!(is_data_plane(&mk(PduType::Data, me), &me));
        assert!(is_data_plane(&mk(PduType::Error, other), &me));
        assert!(is_data_plane(&mk(PduType::Advertise, other), &me));
        assert!(is_data_plane(&mk(PduType::Lookup, other), &me));
    }

    /// An egress that parks inside `send_to` until released — simulates
    /// a wedged downstream so the data lane can be filled end to end.
    struct StallEgress {
        release: Arc<AtomicBool>,
        sent: Arc<AtomicU64>,
    }

    impl Egress for StallEgress {
        fn port(&self) -> Box<dyn EgressPort> {
            Box::new(StallPort { release: Arc::clone(&self.release), sent: Arc::clone(&self.sent) })
        }
    }

    struct StallPort {
        release: Arc<AtomicBool>,
        sent: Arc<AtomicU64>,
    }

    impl EgressPort for StallPort {
        fn send_to(&mut self, _addr: SocketAddr, _pdu: Pdu) {
            while !self.release.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_micros(200));
            }
            self.sent.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Regression for the control-stall bug: with a single bounded lane
    /// per shard (the old design), `mirror_install` blocked behind a
    /// full data queue, so a data flood froze route convergence. The
    /// control lane is now unbounded and separate: mirroring must return
    /// immediately even while the data lane is wedged solid.
    #[test]
    fn mirror_install_never_blocks_behind_full_data_lane() {
        let release = Arc::new(AtomicBool::new(false));
        let sent = Arc::new(AtomicU64::new(0));
        let egress =
            Arc::new(StallEgress { release: Arc::clone(&release), sent: Arc::clone(&sent) });
        let metrics = Metrics::new();
        let nids = Arc::new(NidMap::default());
        let peer: SocketAddr = "127.0.0.1:19999".parse().unwrap();
        let from = nids.nid(peer);
        let engine = ShardedEngine::start(
            1,
            1, // batch cap 1: every PDU is its own batch
            &[21u8; 32],
            "stall",
            &metrics,
            Arc::clone(&nids),
            egress,
            Instant::now(),
        );

        // No route for `dst` and no parent: each Data PDU makes the
        // worker emit a no-route Error back to `from`, whose address
        // resolves — so the worker parks inside the stalled egress, and
        // every further batch queues. Stage exactly one more PDU than
        // the lane holds: worker (1, parked) + lane (SHARD_QUEUE_BATCHES).
        let dst = Name::from_content(b"nowhere");
        let mut batcher = engine.batcher();
        for seq in 0..(SHARD_QUEUE_BATCHES as u64 + 1) {
            batcher.stage(from, Pdu::data(Name::ZERO, dst, seq, vec![0u8; 8]));
        }

        // The data lane is now full and its worker is wedged. A route
        // mirror must still land promptly.
        let mut control = Router::from_seed(&[22u8; 32], "stall-control");
        control.record_installs(true);
        let srv = PrincipalId::from_seed(PrincipalKind::Server, &[23u8; 32], "stall-srv");
        let mut attacher = Attacher::new(srv, control.name(), vec![], 1 << 50);
        gdp_router::attach_directly(&mut control, 3, &mut attacher, 0).expect("attach");
        let installs = control.drain_installs();
        assert!(!installs.is_empty(), "attach recorded no installs");

        let started = Instant::now();
        for install in installs {
            engine.mirror_install(install, 0);
        }
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "mirror_install stalled behind the data lane: {:?}",
            started.elapsed()
        );

        release.store(true, Ordering::SeqCst);
        engine.shutdown();
        // Every staged PDU produced exactly one Error egress.
        assert_eq!(sent.load(Ordering::SeqCst), SHARD_QUEUE_BATCHES as u64 + 1);
    }
}

//! Sharded forwarding engine for router-role `gdpd` nodes.
//!
//! The sans-I/O [`Router`] is single-threaded by design — that is what
//! keeps SimNet runs byte-for-byte replayable. A deployed router node,
//! however, can spread the *data plane* across cores without giving that
//! up: the event-loop thread keeps one **control** router (attach
//! handshakes, advertisements, lookups — everything that verifies
//! certificates and mutates routing state), and `N` worker shards each
//! own a plain `Router` instance that only ever sees forwarding traffic
//! for its slice of the name space.
//!
//! Partitioning is by destination name hash: names are SHA-256 outputs,
//! so the first 8 bytes are already uniformly distributed and
//! `name mod N` needs no further mixing. Because a name always maps to
//! the same shard, per-name FIB state never needs cross-shard
//! synchronization: the control router records every route install
//! ([`Router::record_installs`]) and the event loop mirrors each
//! [`RouteInstall`] to the one shard that owns the name. Neighbor-down
//! and expiry purges broadcast to all shards.
//!
//! PDUs travel: per-connection TCP reader threads → the transport ingress
//! queue → the event-loop dispatcher (one hash + one bounded-channel send,
//! no verification) → shard worker → direct egress on the shared
//! [`TcpNet`] handle. Bounded channels give backpressure; a full shard
//! queue stalls the dispatcher rather than growing without limit. Each
//! shard reports its queue depth as a gauge (`router-shard<i>` /
//! `queue_depth`) so an operator can see skew.

use crossbeam::channel::{bounded, Receiver, Sender};
use gdp_net::tcp::TcpNet;
use gdp_obs::{Gauge, Metrics};
use gdp_router::{Outbox, RouteInstall, Router, VerifiedRoute};
use gdp_wire::{Name, Pdu, PduType};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;

/// Per-shard bounded queue length (PDUs + control mirrors).
pub const SHARD_QUEUE: usize = 1024;

/// Which shard owns a name. Names are SHA-256 outputs, so the leading
/// 8 bytes are uniform and a plain modulus partitions evenly.
pub fn shard_of(name: &Name, shards: usize) -> usize {
    // `as_bytes` returns a `&[u8; NAME_LEN]`, so these indices are
    // compile-time in-bounds: no slicing, no fallible conversion.
    let b = name.as_bytes();
    let word = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
    (word % shards.max(1) as u64) as usize
}

/// True when the control router would *forward* this PDU rather than
/// consume it — the dispatch predicate mirrors `Router::handle_pdu_into`.
pub fn is_data_plane(pdu: &Pdu, router_name: &Name) -> bool {
    let for_me = pdu.dst == *router_name || pdu.dst.is_zero();
    match pdu.pdu_type {
        PduType::Advertise => pdu.dst != *router_name,
        PduType::Lookup | PduType::RouterControl => !for_me,
        PduType::Data | PduType::Error => true,
    }
}

/// Work items for one shard worker.
enum ShardMsg {
    /// Forward one data-plane PDU (`from` is the control nid space).
    Pdu { now: u64, from: usize, pdu: Pdu },
    /// Mirror of a control-router route install for a name this shard owns.
    Install { neighbor: usize, distance: u32, route: Box<VerifiedRoute>, now: u64 },
    /// A neighbor's transport died; withdraw its routes.
    NeighborDown(usize),
    /// Periodic expiry purge.
    Purge(u64),
}

/// Shared neighbor-id → socket-address table. The event loop (the sole
/// nid authority, via the runtime) appends; shard workers read on egress.
/// `None` slots are nids whose peer address has not been published yet —
/// a PDU toward one is dropped, exactly as the transport would drop a
/// send to a dead peer.
#[derive(Default)]
struct AddrTable {
    addrs: Mutex<Vec<Option<SocketAddr>>>,
}

impl AddrTable {
    fn publish(&self, nid: usize, addr: SocketAddr) {
        let mut addrs = self.addrs.lock();
        if nid >= addrs.len() {
            addrs.resize(nid + 1, None);
        }
        addrs[nid] = Some(addr);
    }

    fn resolve(&self, nid: usize) -> Option<SocketAddr> {
        self.addrs.lock().get(nid).copied().flatten()
    }
}

/// The running shard pool: senders, per-shard depth gauges, and the
/// worker join handles (joined on [`ShardedEngine::shutdown`]).
pub struct ShardedEngine {
    txs: Vec<Sender<ShardMsg>>,
    depth: Vec<Gauge>,
    addrs: Arc<AddrTable>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ShardedEngine {
    /// Spawns `shards` workers, each owning a `Router` built from the
    /// *same* seed and label as the control router (identical identity —
    /// shard-emitted Error PDUs carry the node's router name) but
    /// registering metrics under its own `router-shard<i>` scope.
    pub fn start(
        shards: usize,
        seed: &[u8; 32],
        label: &str,
        metrics: &Metrics,
        net: TcpNet,
    ) -> ShardedEngine {
        let shards = shards.max(1);
        let addrs = Arc::new(AddrTable::default());
        let mut txs = Vec::with_capacity(shards);
        let mut depth = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let scope = metrics.scope(&format!("router-shard{i}"));
            let router = Router::from_seed_with_obs(seed, label, &scope);
            depth.push(scope.gauge("queue_depth"));
            let (tx, rx) = bounded::<ShardMsg>(SHARD_QUEUE);
            txs.push(tx);
            let worker_net = net.clone();
            let worker_addrs = Arc::clone(&addrs);
            let handle = std::thread::Builder::new()
                .name(format!("gdp-shard-{i}"))
                .spawn(move || shard_worker(router, rx, worker_net, worker_addrs))
                // gdp-lint: allow(HP01) -- runs once at engine construction, before the data plane is live; a node that cannot spawn its workers cannot serve at all
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardedEngine { txs, depth, addrs, workers }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Publishes a neighbor-id → address binding so shard egress can
    /// resolve outbox entries. Idempotent; last write wins (a peer that
    /// reconnects from a new address keeps its nid).
    pub fn note_peer(&self, nid: usize, addr: SocketAddr) {
        self.addrs.publish(nid, addr);
    }

    /// Hands one data-plane PDU to the shard owning its destination.
    /// Blocks when that shard's queue is full (backpressure).
    pub fn dispatch(&self, now: u64, from: usize, pdu: Pdu) {
        let i = shard_of(&pdu.dst, self.txs.len());
        if self.txs[i].send(ShardMsg::Pdu { now, from, pdu }).is_ok() {
            self.depth[i].set(self.txs[i].len() as i64);
        }
    }

    /// Mirrors one control-router route install into the owning shard.
    pub fn mirror_install(&self, install: RouteInstall, now: u64) {
        let i = shard_of(&install.route.name, self.txs.len());
        let _ = self.txs[i].send(ShardMsg::Install {
            neighbor: install.neighbor,
            distance: install.distance,
            route: Box::new(install.route),
            now,
        });
    }

    /// Broadcasts a neighbor death (route withdrawal) to every shard.
    pub fn neighbor_down(&self, nid: usize) {
        for tx in &self.txs {
            let _ = tx.send(ShardMsg::NeighborDown(nid));
        }
    }

    /// Broadcasts the periodic expiry purge.
    pub fn purge(&self, now: u64) {
        for tx in &self.txs {
            let _ = tx.send(ShardMsg::Purge(now));
        }
    }

    /// Drops the queues and joins every worker (drains in-flight work).
    pub fn shutdown(self) {
        drop(self.txs);
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One shard: drains its queue until every sender is gone. Forwarding
/// reuses a single outbox vector across all PDUs (no per-PDU allocation)
/// and egresses directly on the shared transport handle.
fn shard_worker(mut router: Router, rx: Receiver<ShardMsg>, net: TcpNet, addrs: Arc<AddrTable>) {
    let mut out: Outbox = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Pdu { now, from, pdu } => {
                out.clear();
                router.handle_pdu_into(now, from, pdu, &mut out);
                for (nid, pdu) in out.drain(..) {
                    if let Some(peer) = addrs.resolve(nid) {
                        let _ = net.send(peer, pdu);
                    }
                }
            }
            ShardMsg::Install { neighbor, distance, route, now } => {
                router.install_verified(neighbor, distance, &route, now);
            }
            ShardMsg::NeighborDown(nid) => router.neighbor_down(nid),
            ShardMsg::Purge(now) => router.purge_expired(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for i in 0..64u8 {
            let name = Name::from_content(&[i]);
            let s = shard_of(&name, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&name, 4));
        }
        assert_eq!(shard_of(&Name::from_content(b"x"), 1), 0);
    }

    #[test]
    fn shard_of_spreads_names() {
        let shards = 4;
        let mut buckets = vec![0usize; shards];
        for i in 0..256u16 {
            buckets[shard_of(&Name::from_content(&i.to_le_bytes()), shards)] += 1;
        }
        // SHA-256-uniform names must not collapse onto few shards.
        assert!(buckets.iter().all(|&b| b > 256 / shards / 4), "skewed: {buckets:?}");
    }

    #[test]
    fn data_plane_predicate_mirrors_router_dispatch() {
        let me = Name::from_content(b"router");
        let other = Name::from_content(b"elsewhere");
        let mk = |t: PduType, dst: Name| Pdu {
            pdu_type: t,
            src: Name::from_content(b"src"),
            dst,
            seq: 1,
            payload: gdp_wire::Bytes::new(),
        };
        // Consumed by the control router:
        assert!(!is_data_plane(&mk(PduType::Advertise, me), &me));
        assert!(!is_data_plane(&mk(PduType::Lookup, me), &me));
        assert!(!is_data_plane(&mk(PduType::Lookup, Name::ZERO), &me));
        assert!(!is_data_plane(&mk(PduType::RouterControl, Name::ZERO), &me));
        // Forwarded (shard-eligible):
        assert!(is_data_plane(&mk(PduType::Data, other), &me));
        assert!(is_data_plane(&mk(PduType::Data, me), &me));
        assert!(is_data_plane(&mk(PduType::Error, other), &me));
        assert!(is_data_plane(&mk(PduType::Advertise, other), &me));
        assert!(is_data_plane(&mk(PduType::Lookup, other), &me));
    }
}

//! The node runtime: composes the sans-I/O protocol cores (gdp-router,
//! gdp-server) with the real-socket [`TcpNet`] transport.
//!
//! One event-loop thread owns all protocol state. TCP peers (identified
//! by their advertised listen address) are mapped to stable router
//! [`NeighborId`]s; a peer whose connection pool gives up is reported to
//! the router as a down neighbor so its routes are withdrawn (replica
//! failover). A co-located DataCapsule-server (role `both`) occupies a
//! reserved neighbor id and exchanges PDUs with the router in-process.

use crate::config::{NodeConfig, Role};
use gdp_net::tcp::{PeerEvent, TcpNet, TcpNetConfig};
use gdp_router::{attach_directly, AttachStep, Attacher, Router};
use gdp_server::DataCapsuleServer;
use gdp_store::{CapsuleStore, FileStore, MemStore};
use gdp_wire::{Name, Pdu};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Catalog/RtCert expiry for daemon attachments: effectively forever on
/// the node's own clock (node time starts at zero at process start).
pub const FOREVER: u64 = 1 << 50;

/// Reserved neighbor id for the co-located server (role `both`).
const LOCAL_NID: usize = usize::MAX;

/// How often periodic maintenance (purge, server tick, re-attach) runs.
const TICK_INTERVAL: Duration = Duration::from_millis(200);

/// How long to wait before re-sending a Hello for an unfinished attach.
const ATTACH_RETRY: Duration = Duration::from_millis(500);

/// Errors starting a node.
#[derive(Debug)]
pub enum NodeError {
    /// The transport failed to bind.
    Bind(gdp_net::tcp::TcpNetError),
    /// A host spec was rejected (chain does not end at this server, bad
    /// metadata, or an unusable store).
    Host(String),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Bind(e) => write!(f, "bind: {e}"),
            NodeError::Host(e) => write!(f, "host: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// A running node; dropping the handle does NOT stop it — call
/// [`NodeHandle::stop`].
pub struct NodeHandle {
    local: SocketAddr,
    router_name: Option<Name>,
    server_name: Option<Name>,
    stop: Arc<AtomicBool>,
    net: TcpNet,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Actual listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The router identity, when this node runs one.
    pub fn router_name(&self) -> Option<Name> {
        self.router_name
    }

    /// The DataCapsule-server identity, when this node runs one.
    pub fn server_name(&self) -> Option<Name> {
        self.server_name
    }

    /// Stops the event loop and shuts the transport down.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.net.shutdown();
    }

    /// Blocks until the node exits on its own (daemon main).
    pub fn wait(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.net.shutdown();
    }
}

/// Starts a node from its config: binds the listener, mounts hosted
/// capsules, and spawns the event-loop thread.
pub fn start(cfg: NodeConfig) -> Result<NodeHandle, NodeError> {
    let net = TcpNet::bind_with(cfg.listen, TcpNetConfig::default()).map_err(NodeError::Bind)?;
    let local = net.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let router = cfg.role.routes().then(|| Router::from_seed(&cfg.seed, &cfg.label));
    let router_name = router.as_ref().map(|r| r.name());

    let server = if cfg.role.stores() {
        // Distinct seed domain for the server half of a `both` node, so
        // router and server identities never collide.
        let mut seed = cfg.seed;
        seed[0] ^= 0x5a;
        let mut server = DataCapsuleServer::from_seed(&seed, &cfg.label);
        if let Some(dir) = &cfg.data_dir {
            std::fs::create_dir_all(dir).map_err(|e| NodeError::Host(format!("data_dir: {e}")))?;
        }
        for spec in &cfg.hosts {
            let capsule = spec.metadata.name();
            // One append-only segment file per capsule (restart recovery
            // happens inside host_with_store), or memory without data_dir.
            let store: Box<dyn CapsuleStore> = match &cfg.data_dir {
                Some(dir) => Box::new(
                    FileStore::open(dir.join(format!("{}.log", capsule.to_hex())))
                        .map_err(|e| NodeError::Host(format!("open store: {e:?}")))?,
                ),
                None => Box::new(MemStore::new()),
            };
            server
                .host_with_store(
                    spec.metadata.clone(),
                    spec.chain.clone(),
                    spec.peers.clone(),
                    store,
                )
                .map_err(|e| NodeError::Host(format!("{e:?}")))?;
        }
        Some(server)
    } else {
        None
    };
    let server_name = server.as_ref().map(|s| s.name());

    let loop_net = net.clone();
    let loop_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(format!("gdp-node-{}", cfg.label))
        .spawn(move || {
            EventLoop::new(cfg, loop_net, loop_stop, router, server).run();
        })
        .expect("spawn node event loop");

    Ok(NodeHandle { local, router_name, server_name, stop, net, thread: Some(thread) })
}

/// Server-side attach progress (storage role, network attach).
enum ServerAttach {
    /// Handshake in flight; retry Hello after a quiet period.
    Pending(Box<Attacher>, Instant),
    /// Attached; nothing to do until a re-advertise is needed.
    Done,
}

struct EventLoop {
    cfg: NodeConfig,
    net: TcpNet,
    stop: Arc<AtomicBool>,
    router: Option<Router>,
    server: Option<DataCapsuleServer>,
    attach: Option<ServerAttach>,
    /// Stable peer-addr → neighbor-id map (never reused; a returning
    /// peer keeps its id).
    nids: HashMap<SocketAddr, usize>,
    addrs: Vec<SocketAddr>,
    epoch: Instant,
    last_tick: Instant,
}

impl EventLoop {
    fn new(
        cfg: NodeConfig,
        net: TcpNet,
        stop: Arc<AtomicBool>,
        router: Option<Router>,
        server: Option<DataCapsuleServer>,
    ) -> EventLoop {
        EventLoop {
            cfg,
            net,
            stop,
            router,
            server,
            attach: None,
            nids: HashMap::new(),
            addrs: Vec::new(),
            epoch: Instant::now(),
            last_tick: Instant::now() - TICK_INTERVAL,
        }
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn nid(&mut self, addr: SocketAddr) -> usize {
        if let Some(&n) = self.nids.get(&addr) {
            return n;
        }
        let n = self.addrs.len();
        self.addrs.push(addr);
        self.nids.insert(addr, n);
        n
    }

    /// The address all storage-role traffic is sent through.
    fn uplink(&self) -> Option<SocketAddr> {
        self.cfg.peers.first().copied()
    }

    fn run(mut self) {
        // A `both` node attaches its server to its own router in-process
        // before serving traffic.
        self.local_attach();
        // A pure storage node starts its network attach immediately (the
        // transport dials and retries underneath).
        self.start_network_attach();

        while !self.stop.load(Ordering::SeqCst) {
            while let Some(ev) = self.net.poll_peer_event() {
                self.on_peer_event(ev);
            }
            match self.net.recv_timeout(Duration::from_millis(20)) {
                Ok(Some((from, pdu))) => self.on_pdu(from, pdu),
                Ok(None) => {}
                Err(_) => break,
            }
            if self.last_tick.elapsed() >= TICK_INTERVAL {
                self.last_tick = Instant::now();
                self.tick();
            }
        }
    }

    /// Role `both`: drive the attach handshake against the local router
    /// directly — no network round trip for co-located components.
    fn local_attach(&mut self) {
        let (Some(router), Some(server)) = (self.router.as_mut(), self.server.as_mut()) else {
            return;
        };
        let mut attacher = Attacher::new(
            server.principal_id().clone(),
            router.name(),
            server.advert_entries(),
            FOREVER,
        );
        let now = self.epoch.elapsed().as_micros() as u64;
        attach_directly(router, LOCAL_NID, &mut attacher, now)
            .expect("local attach cannot fail: both halves are in-process");
    }

    /// Storage role: begin (or restart) the attach handshake toward the
    /// configured router over TCP.
    fn start_network_attach(&mut self) {
        if self.cfg.role != Role::Storage {
            return;
        }
        let (Some(server), Some(router_name), Some(uplink)) =
            (self.server.as_ref(), self.cfg.router, self.uplink())
        else {
            return;
        };
        let attacher = Attacher::new(
            server.principal_id().clone(),
            router_name,
            server.advert_entries(),
            FOREVER,
        );
        let _ = self.net.send(uplink, attacher.hello());
        self.attach = Some(ServerAttach::Pending(Box::new(attacher), Instant::now()));
    }

    fn on_peer_event(&mut self, ev: PeerEvent) {
        match ev {
            PeerEvent::Down(addr) => {
                // Withdraw everything the dead neighbor advertised so
                // reads fail over to surviving replicas.
                if let (Some(router), Some(&nid)) = (self.router.as_mut(), self.nids.get(&addr)) {
                    router.neighbor_down(nid);
                }
                // A storage node that lost its uplink must re-attach once
                // the router is reachable again.
                if self.cfg.role == Role::Storage && Some(addr) == self.uplink() {
                    self.start_network_attach();
                }
            }
            PeerEvent::Up(_) => {}
        }
    }

    fn on_pdu(&mut self, from: SocketAddr, pdu: Pdu) {
        let now = self.now();
        // Storage role: the attach handshake claims matching PDUs first.
        if let Some(ServerAttach::Pending(attacher, _)) = self.attach.as_mut() {
            match attacher.on_pdu(&pdu) {
                AttachStep::Send(reply) => {
                    if let Some(uplink) = self.uplink() {
                        let _ = self.net.send(uplink, reply);
                    }
                    return;
                }
                AttachStep::Done(_) => {
                    self.attach = Some(ServerAttach::Done);
                    return;
                }
                AttachStep::Failed(_) => {
                    // Router restarted mid-handshake or rejected us; start
                    // over from Hello.
                    self.start_network_attach();
                    return;
                }
                AttachStep::Ignored => {}
            }
        }

        if self.router.is_some() {
            let nid = self.nid(from);
            self.route(now, nid, pdu);
        } else if let Some(server) = self.server.as_mut() {
            let replies = server.handle_pdu(now, pdu);
            if let Some(uplink) = self.uplink() {
                for reply in replies {
                    let _ = self.net.send(uplink, reply);
                }
            }
        }
    }

    /// Feeds one PDU into the router and delivers the resulting cascade,
    /// bouncing between router and co-located server until quiescent.
    fn route(&mut self, now: u64, from_nid: usize, pdu: Pdu) {
        let mut work: VecDeque<(usize, Pdu)> = VecDeque::new();
        work.push_back((from_nid, pdu));
        // The request/response protocol cannot ping-pong unboundedly; the
        // cap is defense against a protocol bug becoming a busy loop.
        let mut budget = 10_000usize;
        while let Some((nid, pdu)) = work.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let Some(router) = self.router.as_mut() else { return };
            for (to, out) in router.handle_pdu(now, nid, pdu) {
                if to == LOCAL_NID {
                    if let Some(server) = self.server.as_mut() {
                        for reply in server.handle_pdu(now, out) {
                            work.push_back((LOCAL_NID, reply));
                        }
                    }
                } else if let Some(&addr) = self.addrs.get(to) {
                    let _ = self.net.send(addr, out);
                }
            }
        }
    }

    fn tick(&mut self) {
        let now = self.now();
        if let Some(router) = self.router.as_mut() {
            router.purge_expired(now);
        }

        // Server maintenance: durability timeouts + anti-entropy.
        if let Some(server) = self.server.as_mut() {
            let out = server.tick(now);
            match self.cfg.role {
                Role::Both => {
                    for pdu in out {
                        self.route(now, LOCAL_NID, pdu);
                    }
                }
                _ => {
                    if let Some(uplink) = self.uplink() {
                        for pdu in out {
                            let _ = self.net.send(uplink, pdu);
                        }
                    }
                }
            }
        }

        // Re-advertise when new capsules were mounted at runtime.
        if self.server.as_mut().map(|s| s.needs_readvertise()).unwrap_or(false) {
            match self.cfg.role {
                Role::Both => self.local_attach(),
                Role::Storage => self.start_network_attach(),
                Role::Router => {}
            }
        }

        // Nudge an unfinished network attach (lost Hello, slow router).
        if let Some(ServerAttach::Pending(attacher, started)) = self.attach.as_mut() {
            if started.elapsed() >= ATTACH_RETRY {
                *started = Instant::now();
                let hello = attacher.hello();
                if let Some(uplink) = self.uplink() {
                    let _ = self.net.send(uplink, hello);
                }
            }
        }
    }
}
